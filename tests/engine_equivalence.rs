//! Equivalence of the analytic scoring engines (per-sample and batched)
//! with the gate-level circuit engine, across random ansätze, register
//! widths, compression levels and execution modes — plus determinism and
//! thread-count invariance through the analytic paths.

use proptest::prelude::*;
use quorum::core::bucket::BucketPlan;
use quorum::core::engine::{
    resolve, AnalyticEngine, BatchedAnalyticEngine, CircuitEngine, ScoringEngine,
};
use quorum::core::ensemble::EnsembleGroup;
use quorum::core::{EngineKind, ExecutionMode, QuorumConfig, QuorumDetector};
use quorum::data::Dataset;

/// A small spread-out dataset with `features` columns.
fn dataset(features: usize, samples: usize) -> Dataset {
    let rows: Vec<Vec<f64>> = (0..samples)
        .map(|i| {
            (0..features)
                .map(|j| 0.3 + 0.6 * ((i * features + j) as f64 * 0.7182).sin().abs())
                .collect()
        })
        .collect();
    Dataset::from_rows("engine-eq", rows, None).unwrap()
}

fn group_for(config: &QuorumConfig, ds: &Dataset, index: usize) -> EnsembleGroup {
    let plan = BucketPlan::from_target(ds.num_samples(), 0.1, config.bucket_probability);
    EnsembleGroup::generate(index, config, ds.num_features(), &plan)
}

/// Normalises the dataset the way the detector does before deviations are
/// evaluated (engines expect embedded-range features).
fn normalized(ds: &Dataset) -> Dataset {
    let ranged = quorum::data::preprocess::RangeNormalizer::fit_transform(ds);
    Dataset::from_rows(
        ranged.name(),
        ranged
            .rows()
            .iter()
            .map(|r| r.iter().map(|v| v.abs()).collect())
            .collect(),
        None,
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Exact-mode deviations agree to ≤ 1e-9 for every reset count and
    /// random ansatz draw, on 2-, 3- and 4-qubit registers.
    #[test]
    fn engines_agree_across_widths_and_resets(
        seed in 0u64..10_000,
        group_index in 0usize..4
    ) {
        for data_qubits in 2usize..=4 {
            let config = QuorumConfig::default()
                .with_data_qubits(data_qubits)
                .with_seed(seed);
            let ds = normalized(&dataset(config.features_per_circuit(), 8));
            let group = group_for(&config, &ds, group_index);
            for reset_count in 1..data_qubits {
                let circuit = CircuitEngine
                    .deviations(&group, &ds, &config, reset_count)
                    .unwrap();
                let analytic = AnalyticEngine
                    .deviations(&group, &ds, &config, reset_count)
                    .unwrap();
                for (c, a) in circuit.iter().zip(&analytic) {
                    prop_assert!(
                        (c - a).abs() <= 1e-9,
                        "n={} reset={} seed={}: circuit {} vs analytic {}",
                        data_qubits, reset_count, seed, c, a
                    );
                }
            }
        }
    }

    /// The analytic engines are deterministic: identical inputs give
    /// identical outputs, in Exact and Sampled modes alike.
    #[test]
    fn analytic_engines_are_deterministic(seed in 0u64..10_000) {
        let config = QuorumConfig::default().with_seed(seed);
        let ds = normalized(&dataset(7, 10));
        let group = group_for(&config, &ds, 0);
        let sampled_config = config.clone().with_execution(ExecutionMode::Sampled { shots: 512 });
        for engine in [&AnalyticEngine as &dyn ScoringEngine, &BatchedAnalyticEngine] {
            let a = engine.deviations(&group, &ds, &config, 1).unwrap();
            let b = engine.deviations(&group, &ds, &config, 1).unwrap();
            prop_assert_eq!(a, b);

            let a = engine.deviations(&group, &ds, &sampled_config, 1).unwrap();
            let b = engine.deviations(&group, &ds, &sampled_config, 1).unwrap();
            prop_assert_eq!(a, b);
        }
    }
}

#[test]
fn full_detector_scores_agree_between_engines() {
    // End-to-end: the complete pipeline (normalisation, buckets, z-scores)
    // produces the same scores whichever engine evaluates deviations.
    let mut rows: Vec<Vec<f64>> = (0..18)
        .map(|i| vec![2.0 + 0.03 * i as f64, 4.0, 1.5, 3.0, 2.5, 1.0, 3.5])
        .collect();
    rows.push(vec![9.0, 0.2, 8.5, 0.1, 9.5, 0.3, 8.0]);
    let ds = Dataset::from_rows("detector-eq", rows, None).unwrap();

    let base = QuorumConfig::default()
        .with_ensemble_groups(6)
        .with_anomaly_rate_estimate(0.1)
        .with_seed(23);
    let analytic = QuorumDetector::new(base.clone().with_engine(EngineKind::Analytic))
        .unwrap()
        .score(&ds)
        .unwrap();
    let circuit = QuorumDetector::new(base.with_engine(EngineKind::Circuit))
        .unwrap()
        .score(&ds)
        .unwrap();
    for (a, c) in analytic.scores().iter().zip(circuit.scores()) {
        assert!((a - c).abs() < 1e-7, "analytic {a} vs circuit {c}");
    }
    assert_eq!(analytic.ranking()[0], circuit.ranking()[0]);
}

#[test]
fn analytic_path_is_thread_count_invariant() {
    let mut rows: Vec<Vec<f64>> = (0..16)
        .map(|i| vec![1.0 + 0.05 * i as f64, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0])
        .collect();
    rows.push(vec![9.0, 0.1, 8.0, 0.2, 9.5, 0.3, 7.5]);
    let ds = Dataset::from_rows("threads-eq", rows, None).unwrap();

    let config = QuorumConfig::default()
        .with_engine(EngineKind::Analytic)
        .with_ensemble_groups(8)
        .with_anomaly_rate_estimate(0.1)
        .with_seed(11);
    let single = QuorumDetector::new(config.clone().with_threads(1))
        .unwrap()
        .score(&ds)
        .unwrap();
    let multi = QuorumDetector::new(config.with_threads(4))
        .unwrap()
        .score(&ds)
        .unwrap();
    assert_eq!(single.scores(), multi.scores());
}

#[test]
fn auto_engine_selection_matches_forced_batched() {
    let mut rows: Vec<Vec<f64>> = (0..12)
        .map(|i| vec![1.0 + 0.02 * i as f64, 2.0, 1.5, 2.5, 1.8, 2.2, 1.3])
        .collect();
    rows.push(vec![8.0, 0.1, 7.0, 0.2, 8.5, 0.1, 7.7]);
    let ds = Dataset::from_rows("auto-eq", rows, None).unwrap();

    let base = QuorumConfig::default()
        .with_ensemble_groups(4)
        .with_anomaly_rate_estimate(0.1)
        .with_seed(3);
    assert_eq!(resolve(&base).unwrap().name(), "batched");
    let auto = QuorumDetector::new(base.clone())
        .unwrap()
        .score(&ds)
        .unwrap();
    let forced = QuorumDetector::new(base.clone().with_engine(EngineKind::Batched))
        .unwrap()
        .score(&ds)
        .unwrap();
    assert_eq!(auto.scores(), forced.scores());
    // The per-sample analytic oracle lands on the same scores too (the
    // batched path preserves its per-sample summation order).
    let per_sample = QuorumDetector::new(base.with_engine(EngineKind::Analytic))
        .unwrap()
        .score(&ds)
        .unwrap();
    for (a, b) in per_sample.scores().iter().zip(auto.scores()) {
        assert!((a - b).abs() < 1e-9, "per-sample {a} vs batched {b}");
    }
}

#[test]
fn batched_sampled_scores_bit_identical_across_runs_and_threads() {
    // Satellite pin: Sampled-mode scores through the batched path are
    // bit-identical across repeated runs and across worker-thread counts
    // (per-measurement seeds do not depend on scheduling).
    let mut rows: Vec<Vec<f64>> = (0..20)
        .map(|i| vec![3.0 + 0.04 * i as f64, 1.0, 2.0, 4.0, 2.5, 3.5, 1.5])
        .collect();
    rows.push(vec![9.0, 0.2, 8.0, 0.1, 9.5, 0.3, 8.5]);
    let ds = Dataset::from_rows("batched-det", rows, None).unwrap();

    let base = QuorumConfig::default()
        .with_engine(EngineKind::Batched)
        .with_execution(ExecutionMode::Sampled { shots: 1024 })
        .with_ensemble_groups(8)
        .with_anomaly_rate_estimate(0.1)
        .with_seed(19);
    let reference = QuorumDetector::new(base.clone().with_threads(1))
        .unwrap()
        .score(&ds)
        .unwrap();
    for threads in [1usize, 4] {
        let detector = QuorumDetector::new(base.clone().with_threads(threads)).unwrap();
        for run in 0..2 {
            let scores = detector.score(&ds).unwrap();
            assert_eq!(
                reference.scores(),
                scores.scores(),
                "threads {threads} run {run}"
            );
        }
    }
    // And the per-sample analytic engine draws the very same samples.
    let per_sample = QuorumDetector::new(base.with_engine(EngineKind::Analytic).with_threads(2))
        .unwrap()
        .score(&ds)
        .unwrap();
    assert_eq!(reference.scores(), per_sample.scores());
}

#[test]
fn noisy_sampled_scores_bit_identical_across_runs_and_threads() {
    // Satellite pin: Noisy + shots scoring through the density path (the
    // Auto resolution for noisy runs) is bit-identical across repeated
    // runs and across worker-thread counts — per-measurement seeds do not
    // depend on scheduling, and the fused-superoperator caches only ever
    // hold one deterministic matrix per level.
    use quorum::sim::NoiseModel;
    let mut rows: Vec<Vec<f64>> = (0..18)
        .map(|i| vec![2.5 + 0.05 * i as f64, 1.0, 3.0, 2.0, 4.0, 1.5, 2.8])
        .collect();
    rows.push(vec![9.0, 0.1, 8.5, 0.2, 9.5, 0.3, 8.0]);
    let ds = Dataset::from_rows("noisy-det", rows, None).unwrap();

    let base = QuorumConfig::default()
        .with_execution(ExecutionMode::Noisy {
            noise: NoiseModel::brisbane(),
            shots: Some(2048),
        })
        .with_ensemble_groups(6)
        .with_anomaly_rate_estimate(0.1)
        .with_seed(31);
    assert_eq!(resolve(&base).unwrap().name(), "density");
    let reference = QuorumDetector::new(base.clone().with_threads(1))
        .unwrap()
        .score(&ds)
        .unwrap();
    for threads in [1usize, 4] {
        let detector = QuorumDetector::new(base.clone().with_threads(threads)).unwrap();
        for run in 0..2 {
            let scores = detector.score(&ds).unwrap();
            assert_eq!(
                reference.scores(),
                scores.scores(),
                "threads {threads} run {run}"
            );
        }
    }
    // Forcing the (batched) density engine explicitly lands on the same
    // draws, and so does the per-sample density oracle: the batched
    // vec(ρ) GEMM preserves the per-sample accumulation order, so the
    // exact deviations — and hence the seeded binomial draws — coincide.
    let forced = QuorumDetector::new(
        base.clone()
            .with_engine(EngineKind::Density)
            .with_threads(2),
    )
    .unwrap()
    .score(&ds)
    .unwrap();
    assert_eq!(reference.scores(), forced.scores());
    let per_sample =
        QuorumDetector::new(base.with_engine(EngineKind::DensitySample).with_threads(2))
            .unwrap()
            .score(&ds)
            .unwrap();
    assert_eq!(reference.scores(), per_sample.scores());
}

#[test]
fn sampled_mode_engines_agree_through_shared_sampler() {
    // Same exact deviation, same per-measurement seed, same cumulative
    // sampler ⇒ the binomial draws coincide.
    let config = QuorumConfig::default()
        .with_seed(41)
        .with_execution(ExecutionMode::Sampled { shots: 1024 });
    let ds = normalized(&dataset(7, 8));
    let group = group_for(&config, &ds, 2);
    for reset_count in 1..config.data_qubits {
        let circuit = CircuitEngine
            .deviations(&group, &ds, &config, reset_count)
            .unwrap();
        let analytic = AnalyticEngine
            .deviations(&group, &ds, &config, reset_count)
            .unwrap();
        let batched = BatchedAnalyticEngine
            .deviations(&group, &ds, &config, reset_count)
            .unwrap();
        for ((c, a), b) in circuit.iter().zip(&analytic).zip(&batched) {
            assert!((c - a).abs() < 1e-12, "circuit {c} vs analytic {a}");
            assert!((c - b).abs() < 1e-12, "circuit {c} vs batched {b}");
        }
    }
}
