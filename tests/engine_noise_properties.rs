//! Property pins for the analytic density noise engine: under every noise
//! model the `n`-qubit `vec(ρ)` path (fused noisy superoperators plus the
//! Heisenberg-picture SWAP-test functional) must agree with the
//! paper-literal noisy `2n+1`-qubit circuit simulation — across random
//! ansatz draws, register widths n ∈ {2, 3}, reset counts and the
//! ideal/Brisbane/scaled noise models — and must collapse onto the
//! pure-state analytic engine when the noise model is ideal.
//!
//! The fast blocks run on every `cargo test`; the `#[ignore]`d blocks are
//! the slow exhaustive suite CI executes with `cargo test -- --ignored`
//! and a bumped `PROPTEST_CASES`.

use proptest::prelude::*;
use quorum::core::bucket::BucketPlan;
use quorum::core::engine::{
    AnalyticEngine, CircuitEngine, DensityEngine, SampleDensityEngine, ScoringEngine,
};
use quorum::core::ensemble::EnsembleGroup;
use quorum::core::{ExecutionMode, QuorumConfig};
use quorum::data::Dataset;
use quorum::sim::NoiseModel;

/// The noise models every equivalence block sweeps: no noise at all, the
/// paper's Brisbane preset, and an ablation-style amplified copy.
fn noise_models() -> Vec<NoiseModel> {
    vec![
        NoiseModel::ideal(),
        NoiseModel::brisbane(),
        NoiseModel::brisbane().scaled(2.0),
    ]
}

/// A spread-out dataset with `features` columns in the embedded range.
fn normalized_dataset(features: usize, samples: usize, salt: u64) -> Dataset {
    let m = features as f64;
    let rows: Vec<Vec<f64>> = (0..samples)
        .map(|i| {
            (0..features)
                .map(|j| {
                    let t = (i * features + j) as f64 + salt as f64 * 0.13;
                    (t * 0.7182).sin().abs() / m
                })
                .collect()
        })
        .collect();
    Dataset::from_rows("noise-props", rows, None).unwrap()
}

/// A group drawn from `config`'s seed (bucket plan sized independently of
/// the scored batch — deviations never touch buckets).
fn group_for(config: &QuorumConfig, num_features: usize, index: usize) -> EnsembleGroup {
    let plan = BucketPlan::from_target(64, 0.1, config.bucket_probability);
    EnsembleGroup::generate(index, config, num_features, &plan)
}

fn noisy_config(
    data_qubits: usize,
    seed: u64,
    noise: NoiseModel,
    shots: Option<u64>,
) -> QuorumConfig {
    QuorumConfig::default()
        .with_data_qubits(data_qubits)
        .with_seed(seed)
        .with_execution(ExecutionMode::Noisy { noise, shots })
}

/// Runs the density-vs-circuit comparison for one (seed, group) draw at
/// one register width, over every noise model and reset count.
fn check_density_vs_circuit(data_qubits: usize, seed: u64, group_index: usize, samples: usize) {
    for noise in noise_models() {
        let config = noisy_config(data_qubits, seed, noise, None);
        let ds = normalized_dataset(config.features_per_circuit(), samples, seed);
        let group = group_for(&config, ds.num_features(), group_index);
        for reset_count in 1..data_qubits {
            let circuit = CircuitEngine
                .deviations(&group, &ds, &config, reset_count)
                .unwrap();
            let density = DensityEngine
                .deviations(&group, &ds, &config, reset_count)
                .unwrap();
            for (i, (c, d)) in circuit.iter().zip(&density).enumerate() {
                assert!(
                    (c - d).abs() <= 1e-9,
                    "n={data_qubits} reset={reset_count} seed={seed} sample {i}: \
                     circuit {c} vs density {d}"
                );
            }
        }
    }
}

/// Ideal-noise density deviations against the pure-state analytic engine,
/// at the tight 1e-12 tolerance.
fn check_ideal_density_vs_analytic(data_qubits: usize, seed: u64, group_index: usize) {
    let exact = QuorumConfig::default()
        .with_data_qubits(data_qubits)
        .with_seed(seed);
    let ideal = noisy_config(data_qubits, seed, NoiseModel::ideal(), None);
    let ds = normalized_dataset(exact.features_per_circuit(), 8, seed);
    let group = group_for(&exact, ds.num_features(), group_index);
    for reset_count in 1..data_qubits {
        let analytic = AnalyticEngine
            .deviations(&group, &ds, &exact, reset_count)
            .unwrap();
        let density = DensityEngine
            .deviations(&group, &ds, &ideal, reset_count)
            .unwrap();
        for (i, (a, d)) in analytic.iter().zip(&density).enumerate() {
            assert!(
                (a - d).abs() <= 1e-12,
                "n={data_qubits} reset={reset_count} seed={seed} sample {i}: \
                 analytic {a} vs density {d}"
            );
        }
    }
}

/// The batched vec(ρ) GEMM path against the per-sample density oracle:
/// both engines over the full level sweep, at one register width, across
/// every noise model. The two paths accumulate each sample in the same
/// index order, so 1e-9 is generous (they are value-identical without the
/// `simd` feature and within FMA rounding with it).
fn check_batched_density_vs_per_sample(
    data_qubits: usize,
    seed: u64,
    group_index: usize,
    samples: usize,
) {
    let levels: Vec<usize> = (1..data_qubits).collect();
    for noise in noise_models() {
        let config = noisy_config(data_qubits, seed, noise, None);
        let ds = normalized_dataset(config.features_per_circuit(), samples, seed);
        let group = group_for(&config, ds.num_features(), group_index);
        let batched = DensityEngine
            .deviations_all_levels(&group, &ds, &config, &levels)
            .unwrap();
        let per_sample = SampleDensityEngine
            .deviations_all_levels(&group, &ds, &config, &levels)
            .unwrap();
        for (level, (b, s)) in batched.iter().zip(&per_sample).enumerate() {
            for (i, (bv, sv)) in b.iter().zip(s).enumerate() {
                assert!(
                    (bv - sv).abs() <= 1e-9,
                    "n={data_qubits} level={} seed={seed} sample {i}: \
                     batched {bv} vs per-sample {sv}",
                    levels[level]
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Fast pin at n=2, where the noisy `2n+1`-qubit oracle is cheap:
    /// density vs circuit across random ansatz draws and all noise models.
    #[test]
    fn density_matches_circuit_n2(
        seed in 0u64..10_000,
        group_index in 0usize..4,
    ) {
        check_density_vs_circuit(2, seed, group_index, 6);
    }

    /// With an ideal noise model the density path must reproduce the
    /// pure-state analytic engine to 1e-12, at both register widths.
    #[test]
    fn ideal_density_matches_analytic(
        seed in 0u64..10_000,
        group_index in 0usize..4,
    ) {
        for data_qubits in 2usize..=3 {
            check_ideal_density_vs_analytic(data_qubits, seed, group_index);
        }
    }

    /// Deterministic sampling: the density engine's Noisy + shots draws are
    /// reproducible, and they coincide with the circuit oracle's draws
    /// (same exact probability, same per-measurement seed, same sampler).
    #[test]
    fn density_sampled_matches_circuit_sampled(
        seed in 0u64..10_000,
        shots in 64u64..4096,
    ) {
        let config = noisy_config(2, seed, NoiseModel::brisbane(), Some(shots));
        let ds = normalized_dataset(config.features_per_circuit(), 6, seed);
        let group = group_for(&config, ds.num_features(), 0);
        let density = DensityEngine.deviations(&group, &ds, &config, 1).unwrap();
        let again = DensityEngine.deviations(&group, &ds, &config, 1).unwrap();
        prop_assert_eq!(&density, &again);
        let circuit = CircuitEngine.deviations(&group, &ds, &config, 1).unwrap();
        for (c, d) in circuit.iter().zip(&density) {
            // Identical binomial draws up to knife-edge rounding of the
            // underlying probability (absent at these tolerances).
            prop_assert!((c - d).abs() <= 1.0 / shots as f64, "circuit {} vs density {}", c, d);
        }
    }

    /// The batched vec(ρ) GEMM path against the per-sample density oracle
    /// across widths, resets and noise models — the satellite pin for the
    /// PR 4 batching. Cheap per case (no circuit oracle), n ∈ {2, 3}.
    #[test]
    fn batched_density_matches_per_sample(
        seed in 0u64..10_000,
        group_index in 0usize..4,
    ) {
        for data_qubits in 2usize..=3 {
            check_batched_density_vs_per_sample(data_qubits, seed, group_index, 8);
        }
    }

    /// Shot-sampled draws through the batched path coincide with the
    /// per-sample path's: same (to machine precision) exact deviation,
    /// same per-measurement seeds, same sampler.
    #[test]
    fn batched_density_sampled_matches_per_sample_sampled(
        seed in 0u64..10_000,
        shots in 64u64..4096,
    ) {
        let config = noisy_config(3, seed, NoiseModel::brisbane(), Some(shots));
        let ds = normalized_dataset(config.features_per_circuit(), 6, seed);
        let group = group_for(&config, ds.num_features(), 1);
        let batched = DensityEngine.deviations(&group, &ds, &config, 1).unwrap();
        let per_sample = SampleDensityEngine.deviations(&group, &ds, &config, 1).unwrap();
        for (b, s) in batched.iter().zip(&per_sample) {
            prop_assert!(
                (b - s).abs() <= 1.0 / shots as f64,
                "batched {} vs per-sample {}", b, s
            );
        }
    }
}

/// The flagship width n=3 against the noisy circuit oracle on pinned
/// seeds — the oracle is a 7-qubit density simulation per sample, so the
/// seed list stays short here and the proptest sweep lives in the
/// `#[ignore]`d suite below.
#[test]
fn density_matches_circuit_n3_pinned_seeds() {
    for seed in [7u64, 5113] {
        check_density_vs_circuit(3, seed, seed as usize % 4, 3);
    }
}

/// Noisy deviations are probabilities: within `[0, 1]`, and squeezed away
/// from the extremes by at least the readout confusion under Brisbane.
#[test]
fn noisy_deviations_stay_in_readout_range() {
    let noise = NoiseModel::brisbane();
    let e = noise.readout_error;
    let config = noisy_config(3, 23, noise, None);
    let ds = normalized_dataset(config.features_per_circuit(), 10, 23);
    let group = group_for(&config, ds.num_features(), 1);
    for reset_count in 1..3 {
        for p in DensityEngine
            .deviations(&group, &ds, &config, reset_count)
            .unwrap()
        {
            assert!(
                (e - 1e-12..=1.0 - e + 1e-12).contains(&p),
                "deviation {p} escapes the readout-confined range"
            );
        }
    }
}

/// Channel law through the public cache API: every fused noisy
/// superoperator is trace-preserving — for each matrix-unit column the
/// output trace equals the input trace, across models and levels.
#[test]
fn fused_noisy_superops_preserve_trace_across_models_and_levels() {
    for data_qubits in 2usize..=3 {
        let config = noisy_config(data_qubits, 17, NoiseModel::brisbane(), None);
        let group = group_for(&config, config.features_per_circuit(), 0);
        let dim = 1usize << data_qubits;
        for noise in noise_models() {
            for reset_count in 1..data_qubits {
                let superop = group.fused_noisy_superop(&noise, reset_count).unwrap();
                for i in 0..dim {
                    for j in 0..dim {
                        let mut trace_re = 0.0;
                        let mut trace_im = 0.0;
                        for d in 0..dim {
                            let z = superop[(d * dim + d, i * dim + j)];
                            trace_re += z.re;
                            trace_im += z.im;
                        }
                        let expected = if i == j { 1.0 } else { 0.0 };
                        assert!(
                            (trace_re - expected).abs() < 1e-12 && trace_im.abs() < 1e-12,
                            "n={data_qubits} reset={reset_count} column ({i},{j}): \
                             trace {trace_re}+{trace_im}i"
                        );
                    }
                }
            }
        }
    }
}

proptest! {
    // Source default of 256 cases, overridable via PROPTEST_CASES (CI
    // bumps it only for the --ignored job).
    #![proptest_config(ProptestConfig::default())]

    /// Exhaustive ideal-density-vs-analytic pin. Cheap per case (no
    /// circuit simulation), so it can afford hundreds of cases.
    #[test]
    #[ignore = "slow exhaustive suite; run with `cargo test -- --ignored`"]
    fn exhaustive_ideal_density_matches_analytic(
        seed in 0u64..1_000_000,
        group_index in 0usize..8,
    ) {
        for data_qubits in 2usize..=3 {
            check_ideal_density_vs_analytic(data_qubits, seed, group_index);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exhaustive noisy equivalence including the n=3 circuit oracle. The
    /// oracle's 7-qubit noisy density simulation dominates, so the case
    /// count is pinned lower than the analytic-only suite (the PR 2
    /// pattern).
    #[test]
    #[ignore = "slow exhaustive suite; run with `cargo test -- --ignored`"]
    fn exhaustive_density_matches_circuit(
        seed in 0u64..1_000_000,
        group_index in 0usize..8,
    ) {
        for data_qubits in 2usize..=3 {
            check_density_vs_circuit(data_qubits, seed, group_index, 4);
        }
    }
}

proptest! {
    // Source default of 256 cases, overridable via PROPTEST_CASES.
    #![proptest_config(ProptestConfig::default())]

    /// Exhaustive batched-vs-per-sample density pin — no circuit oracle,
    /// so it can afford the full default case count in the CI ignored job.
    #[test]
    #[ignore = "slow exhaustive suite; run with `cargo test -- --ignored`"]
    fn exhaustive_batched_density_matches_per_sample(
        seed in 0u64..1_000_000,
        group_index in 0usize..8,
    ) {
        for data_qubits in 2usize..=3 {
            check_batched_density_vs_per_sample(data_qubits, seed, group_index, 6);
        }
    }
}
