//! Integration tests of the data layer: synthetic generators flowing
//! through CSV round-trips, preprocessing, and into the detector.

use quorum::core::{QuorumConfig, QuorumDetector};
use quorum::data::csv::{parse_csv, to_csv, CsvOptions};
use quorum::data::preprocess::RangeNormalizer;
use quorum::data::synth;

#[test]
fn synthetic_datasets_round_trip_through_csv() {
    for name in ["breast-cancer", "pen-global", "letter", "power-plant"] {
        let ds = synth::by_name(name, 11).unwrap();
        let text = to_csv(&ds);
        let back = parse_csv(
            &text,
            &CsvOptions {
                has_header: true,
                label_column: Some(ds.num_features()),
                name: name.into(),
            },
        )
        .unwrap();
        assert_eq!(back.num_samples(), ds.num_samples(), "{name}");
        assert_eq!(back.num_features(), ds.num_features(), "{name}");
        assert_eq!(back.labels(), ds.labels(), "{name}");
        // Feature values survive the text round trip.
        for (a, b) in ds.rows().iter().zip(back.rows()) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-9);
            }
        }
    }
}

#[test]
fn csv_ingested_data_is_scoreable() {
    // Simulates the real-data path: CSV in, Quorum out.
    let ds = synth::power_plant(3);
    let rows = ds.rows()[..40].to_vec();
    let labels = ds.labels().map(|l| l[..40].to_vec());
    let small = quorum::data::Dataset::from_rows("pp-small", rows, labels).unwrap();
    let text = to_csv(&small);
    let loaded = parse_csv(
        &text,
        &CsvOptions {
            has_header: true,
            label_column: Some(5),
            name: "pp-small".into(),
        },
    )
    .unwrap();
    let report = QuorumDetector::new(
        QuorumConfig::default()
            .with_ensemble_groups(4)
            .with_anomaly_rate_estimate(0.05)
            .with_seed(1),
    )
    .unwrap()
    .score(&loaded)
    .unwrap();
    assert_eq!(report.len(), 40);
}

#[test]
fn normalisation_composes_with_every_generator() {
    for seed in [1u64, 2] {
        for ds in synth::table1_suite(seed) {
            let normalized = RangeNormalizer::fit_transform(&ds.strip_labels());
            let m = normalized.num_features() as f64;
            for row in normalized.rows() {
                let mass: f64 = row.iter().map(|v| v * v).sum();
                assert!(mass <= 1.0 + 1e-9, "{}: mass {mass}", ds.name());
                for &v in row {
                    assert!(v.abs() <= 1.0 / m + 1e-12);
                }
            }
        }
    }
}

#[test]
fn generators_anomaly_structure_survives_scoring() {
    // A truncated letter dataset (the hardest case) still shows positive
    // separation after the full pipeline.
    let full = synth::letter(8);
    let labels_full = full.labels().unwrap();
    // Keep all anomalies plus 100 normals for a fast test.
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    let mut normals = 0;
    for (i, row) in full.rows().iter().enumerate() {
        if labels_full[i] || normals < 100 {
            rows.push(row.clone());
            labels.push(labels_full[i]);
            if !labels_full[i] {
                normals += 1;
            }
        }
    }
    let ds = quorum::data::Dataset::from_rows("letter-small", rows, Some(labels.clone())).unwrap();
    let report = QuorumDetector::new(
        QuorumConfig::default()
            .with_ensemble_groups(20)
            .with_bucket_probability(0.95)
            .with_anomaly_rate_estimate(0.2)
            .with_seed(4),
    )
    .unwrap()
    .score(&ds)
    .unwrap();
    let auc = quorum::metrics::roc_auc(report.scores(), &labels);
    assert!(auc > 0.55, "letter separation collapsed: AUC {auc}");
}
