//! Property-based tests of the quantum substrate, centred on the SWAP test
//! identity Quorum's scoring rests on: `P(ancilla = 1) = (1 − |⟨a|b⟩|²)/2`
//! for pure states.

use proptest::prelude::*;
use quorum::sim::circuit::{Circuit, Operation};
use quorum::sim::simulator::{Backend, StatevectorBackend};
use quorum::sim::stateprep::prepare_real_amplitudes;
use quorum::sim::statevector::Statevector;

/// Strategy: a non-degenerate vector of 8 non-negative amplitudes.
fn amplitude_vector() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..1.0, 8).prop_filter("non-zero norm", |v| {
        v.iter().map(|x| x * x).sum::<f64>() > 1e-3
    })
}

fn run_unitary(circ: &Circuit, sv: &mut Statevector) {
    for instr in circ.instructions() {
        if let Operation::Gate(g) = &instr.op {
            sv.apply_gate(*g, &instr.qubits).unwrap();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// State preparation reproduces arbitrary non-negative amplitude
    /// vectors exactly (after normalisation).
    #[test]
    fn stateprep_roundtrips(amps in amplitude_vector()) {
        let circ = prepare_real_amplitudes(3, &amps).unwrap();
        let mut sv = Statevector::new(3);
        run_unitary(&circ, &mut sv);
        let norm: f64 = amps.iter().map(|a| a * a).sum::<f64>().sqrt();
        for (i, &a) in amps.iter().enumerate() {
            let got = sv.amplitude(i);
            prop_assert!((got.re - a / norm).abs() < 1e-9, "index {}: {} vs {}", i, got.re, a / norm);
            prop_assert!(got.im.abs() < 1e-9);
        }
    }

    /// The SWAP test measures exactly (1 − |⟨a|b⟩|²)/2 for pure states.
    #[test]
    fn swap_test_measures_overlap(a in amplitude_vector(), b in amplitude_vector()) {
        // Prepare |a> on qubits 0..3 and |b> on 3..6, ancilla 6.
        let prep_a = prepare_real_amplitudes(3, &a).unwrap();
        let prep_b = prepare_real_amplitudes(3, &b).unwrap();
        let mut qc = Circuit::with_clbits(7, 1);
        qc.compose(&prep_a, 0).unwrap();
        qc.compose(&prep_b, 3).unwrap();
        qc.h(6);
        for q in 0..3 {
            qc.cswap(6, q, q + 3);
        }
        qc.h(6);
        qc.measure(6, 0);
        let p1 = StatevectorBackend::new().probabilities(&qc).unwrap().marginal_one(0);

        // Classical expectation.
        let sa = Statevector::from_real_amplitudes(&a).unwrap();
        let sb = Statevector::from_real_amplitudes(&b).unwrap();
        let overlap = sa.fidelity(&sb).unwrap();
        let expected = (1.0 - overlap) / 2.0;
        prop_assert!((p1 - expected).abs() < 1e-9, "P(1)={} expected {}", p1, expected);
    }

    /// Unitary evolution preserves the norm; inverse circuits undo it.
    #[test]
    fn random_rotation_circuits_invert(
        angles in proptest::collection::vec(0.0f64..std::f64::consts::TAU, 12)
    ) {
        let mut qc = Circuit::new(3);
        for (i, &theta) in angles.iter().enumerate() {
            let q = i % 3;
            match i % 4 {
                0 => { qc.rx(theta, q); }
                1 => { qc.ry(theta, q); }
                2 => { qc.rz(theta, q); }
                _ => { qc.cx(q, (q + 1) % 3); }
            }
        }
        let inv = qc.inverse().unwrap();
        let mut sv = Statevector::new(3);
        sv.apply_gate(quorum::sim::Gate::H, &[0]).unwrap();
        sv.apply_gate(quorum::sim::Gate::CX, &[0, 2]).unwrap();
        let original = sv.clone();
        run_unitary(&qc, &mut sv);
        prop_assert!((sv.norm_sqr() - 1.0).abs() < 1e-9);
        run_unitary(&inv, &mut sv);
        prop_assert!((sv.fidelity(&original).unwrap() - 1.0).abs() < 1e-9);
    }

    /// Lowering to the native gate set preserves measured distributions.
    #[test]
    fn transpile_preserves_distribution(
        angles in proptest::collection::vec(0.0f64..std::f64::consts::TAU, 6)
    ) {
        use quorum::sim::transpile::to_native;
        let mut qc = Circuit::with_clbits(3, 1);
        qc.ry(angles[0], 0).rx(angles[1], 1).h(2);
        qc.cswap(2, 0, 1);
        qc.rz(angles[2], 0).ry(angles[3], 1);
        qc.cz(0, 2);
        qc.rx(angles[4], 2).p(angles[5], 0);
        qc.measure(2, 0);
        let native = to_native(&qc);
        let backend = StatevectorBackend::new();
        let a = backend.probabilities(&qc).unwrap().marginal_one(0);
        let b = backend.probabilities(&native).unwrap().marginal_one(0);
        prop_assert!((a - b).abs() < 1e-9, "{} vs {}", a, b);
    }
}
