//! Property pins for the lockstep batched noisy state preparation: the
//! whole-batch skeleton evolution ([`DensityEngine::prepare_batch`] — one
//! per-column RY conjugation plus one fused shared superoperator GEMM per
//! rotation position) must reproduce the per-sample gate walk
//! ([`SampleDensityEngine::prepare_batch`]) entry for entry, across
//! register widths n ∈ {2, 3}, every noise model, and batch sizes
//! 1..=32 — and the full scoring pass built on top of it must keep its
//! sampled-draw determinism.
//!
//! The fast blocks run on every `cargo test`; the `#[ignore]`d blocks are
//! the slow exhaustive suite CI executes with `cargo test -- --ignored`
//! and a bumped `PROPTEST_CASES`.

use proptest::prelude::*;
use quorum::core::bucket::BucketPlan;
use quorum::core::engine::{DensityEngine, SampleDensityEngine, ScoringEngine};
use quorum::core::ensemble::EnsembleGroup;
use quorum::core::{ExecutionMode, QuorumConfig};
use quorum::data::Dataset;
use quorum::sim::NoiseModel;

/// The noise models every equivalence block sweeps: no noise at all, the
/// paper's Brisbane preset, and an ablation-style amplified copy.
fn noise_models() -> Vec<NoiseModel> {
    vec![
        NoiseModel::ideal(),
        NoiseModel::brisbane(),
        NoiseModel::brisbane().scaled(2.0),
    ]
}

/// A spread-out dataset with `features` columns in the embedded range,
/// salted with hard zeros so degenerate multiplexor angles (the pruning
/// trap the canonical skeleton closes) are exercised.
fn normalized_dataset(features: usize, samples: usize, salt: u64) -> Dataset {
    let m = features as f64;
    let rows: Vec<Vec<f64>> = (0..samples)
        .map(|i| {
            (0..features)
                .map(|j| {
                    let t = (i * features + j) as f64 + salt as f64 * 0.13;
                    let v = (t * 0.7182).sin();
                    if v.abs() < 0.25 {
                        0.0
                    } else {
                        v.abs() / m
                    }
                })
                .collect()
        })
        .collect();
    Dataset::from_rows("lockstep-props", rows, None).unwrap()
}

/// A group drawn from `config`'s seed (bucket plan sized independently of
/// the scored batch — state preparation never touches buckets).
fn group_for(config: &QuorumConfig, num_features: usize, index: usize) -> EnsembleGroup {
    let plan = BucketPlan::from_target(64, 0.1, config.bucket_probability);
    EnsembleGroup::generate(index, config, num_features, &plan)
}

fn noisy_config(data_qubits: usize, seed: u64, noise: NoiseModel) -> QuorumConfig {
    QuorumConfig::default()
        .with_data_qubits(data_qubits)
        .with_seed(seed)
        .with_execution(ExecutionMode::Noisy { noise, shots: None })
}

/// The core pin: lockstep-prepared vec(ρ) columns against the per-sample
/// gate walk, entrywise, for one (width, seed, group, batch-size) draw
/// across every noise model.
fn check_lockstep_vs_per_sample(data_qubits: usize, seed: u64, group_index: usize, samples: usize) {
    for noise in noise_models() {
        let config = noisy_config(data_qubits, seed, noise);
        let ds = normalized_dataset(config.features_per_circuit(), samples, seed);
        let group = group_for(&config, ds.num_features(), group_index);
        let lockstep = DensityEngine::prepare_batch(&group, &ds, &config).unwrap();
        let per_sample = SampleDensityEngine::prepare_batch(&group, &ds, &config).unwrap();
        assert_eq!(lockstep.rows(), per_sample.rows());
        assert_eq!(lockstep.cols(), samples);
        assert_eq!(per_sample.cols(), samples);
        for i in 0..lockstep.rows() {
            for j in 0..samples {
                let l = lockstep[(i, j)];
                let p = per_sample[(i, j)];
                assert!(
                    (l.re - p.re).abs() <= 1e-9 && (l.im - p.im).abs() <= 1e-9,
                    "n={data_qubits} seed={seed} entry ({i},{j}): lockstep {l} vs per-sample {p}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Lockstep vs per-sample prepared states across widths and every
    /// noise model, at mixed batch sizes (crossing the GEMM column-block
    /// boundary at 32 samples exercises multi-block stitching).
    #[test]
    fn lockstep_prep_matches_per_sample_walk(
        seed in 0u64..10_000,
        group_index in 0usize..4,
        samples in 1usize..=32,
    ) {
        for data_qubits in 2usize..=3 {
            check_lockstep_vs_per_sample(data_qubits, seed, group_index, samples);
        }
    }

    /// The scoring pass on top of the lockstep prep stays deterministic
    /// under shot sampling: repeated noisy+shots runs draw bit-identical
    /// statistics, and they coincide with the per-sample oracle's draws.
    #[test]
    fn lockstep_sampled_draws_are_reproducible(
        seed in 0u64..10_000,
        shots in 64u64..4096,
    ) {
        let config = QuorumConfig::default()
            .with_data_qubits(3)
            .with_seed(seed)
            .with_execution(ExecutionMode::Noisy {
                noise: NoiseModel::brisbane(),
                shots: Some(shots),
            });
        let ds = normalized_dataset(config.features_per_circuit(), 9, seed);
        let group = group_for(&config, ds.num_features(), 2);
        let a = DensityEngine.deviations(&group, &ds, &config, 1).unwrap();
        let b = DensityEngine.deviations(&group, &ds, &config, 1).unwrap();
        prop_assert_eq!(&a, &b);
        let oracle = SampleDensityEngine.deviations(&group, &ds, &config, 1).unwrap();
        for (x, y) in a.iter().zip(&oracle) {
            prop_assert!(
                (x - y).abs() <= 1.0 / shots as f64,
                "lockstep {} vs per-sample {}", x, y
            );
        }
    }
}

/// A batch exactly one sample wide (the degenerate block) and one crossing
/// several column blocks, pinned on fixed seeds.
#[test]
fn lockstep_prep_handles_block_edges() {
    for samples in [1usize, 2, 31, 32] {
        check_lockstep_vs_per_sample(3, 97, 1, samples);
    }
}

/// A wide register (n = 5, beyond every proptest width) through the same
/// lockstep pass: the panel kernels replicate the per-sample walk's
/// arithmetic exactly, so the packed batches are value-identical.
#[test]
fn wide_register_lockstep_matches_per_sample_exactly() {
    let config = noisy_config(5, 11, NoiseModel::brisbane());
    let ds = normalized_dataset(config.features_per_circuit(), 2, 11);
    let group = group_for(&config, ds.num_features(), 0);
    let lockstep = DensityEngine::prepare_batch(&group, &ds, &config).unwrap();
    let per_sample = SampleDensityEngine::prepare_batch(&group, &ds, &config).unwrap();
    assert_eq!(lockstep.rows(), 1 << 10);
    assert_eq!(lockstep.as_slice(), per_sample.as_slice());
}

/// Both packers are noise-only API surface: pure-state execution modes are
/// rejected up front.
#[test]
fn prepare_batch_rejects_pure_state_execution() {
    let config = QuorumConfig::default().with_seed(3);
    let ds = normalized_dataset(config.features_per_circuit(), 4, 3);
    let group = group_for(&config, ds.num_features(), 0);
    assert!(DensityEngine::prepare_batch(&group, &ds, &config).is_err());
    assert!(SampleDensityEngine::prepare_batch(&group, &ds, &config).is_err());
}

/// The lockstep panel really is the scoring input: scoring a prepared
/// batch through the public prep/score seam reproduces the engine's
/// one-call deviations exactly.
#[test]
fn prep_score_seam_matches_single_call_scoring() {
    let config = noisy_config(3, 29, NoiseModel::brisbane());
    let ds = normalized_dataset(config.features_per_circuit(), 12, 29);
    let group = group_for(&config, ds.num_features(), 1);
    let levels = [1usize, 2];
    let packed = DensityEngine::prepare_batch(&group, &ds, &config).unwrap();
    let via_seam = DensityEngine::score_prepared(&group, &packed, &config, &levels).unwrap();
    let one_call = DensityEngine
        .deviations_all_levels(&group, &ds, &config, &levels)
        .unwrap();
    assert_eq!(via_seam, one_call);
}

proptest! {
    // Source default of 256 cases, overridable via PROPTEST_CASES (CI
    // bumps it only for the --ignored job).
    #![proptest_config(ProptestConfig::default())]

    /// Exhaustive lockstep-vs-per-sample prep pin — no circuit oracle, so
    /// it can afford the full default case count in the CI ignored job.
    #[test]
    #[ignore = "slow exhaustive suite; run with `cargo test -- --ignored`"]
    fn exhaustive_lockstep_prep_matches_per_sample_walk(
        seed in 0u64..1_000_000,
        group_index in 0usize..8,
        samples in 1usize..=32,
    ) {
        for data_qubits in 2usize..=3 {
            check_lockstep_vs_per_sample(data_qubits, seed, group_index, samples);
        }
    }
}
