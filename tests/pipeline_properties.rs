//! Property-based tests of Quorum's classical pipeline pieces: embedding,
//! bucketing, feature selection and scoring invariants.

use proptest::prelude::*;
use quorum::core::bucket::BucketPlan;
use quorum::core::embed::amplitudes_with_overflow;
use quorum::core::features::FeatureSelection;
use quorum::data::preprocess::RangeNormalizer;
use quorum::data::Dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Embedding always produces a unit-mass amplitude vector with the
    /// overflow in the last slot.
    #[test]
    fn embedding_preserves_probability_mass(
        values in proptest::collection::vec(0.0f64..0.37, 1..=7)
    ) {
        let amps = amplitudes_with_overflow(&values, 3).unwrap();
        prop_assert_eq!(amps.len(), 8);
        let total: f64 = amps.iter().map(|a| a * a).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(amps[i], v);
        }
    }

    /// Bucket plans always cover every index exactly once, with no bucket
    /// smaller than 2.
    #[test]
    fn bucket_assignment_partitions(
        n in 4usize..400,
        rate in 0.01f64..0.5,
        p in 0.05f64..0.99,
        seed in 0u64..1000
    ) {
        let plan = BucketPlan::from_target(n, rate, p);
        let mut rng = StdRng::seed_from_u64(seed);
        let buckets = plan.assign(&mut rng);
        let mut seen = vec![false; n];
        for bucket in &buckets {
            prop_assert!(bucket.len() >= 2 || buckets.len() == 1);
            for &i in bucket {
                prop_assert!(!seen[i], "duplicate index {}", i);
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Bucket size achieves at least the requested anomaly probability
    /// (unless clamped by the dataset size).
    #[test]
    fn bucket_size_meets_target(
        n in 50usize..2000,
        rate in 0.01f64..0.3,
        p in 0.1f64..0.99
    ) {
        let plan = BucketPlan::from_target(n, rate, p);
        if plan.bucket_size() < n {
            prop_assert!(plan.actual_probability(rate) >= p - 1e-9);
        }
    }

    /// Feature selection never repeats a column and respects bounds.
    #[test]
    fn feature_selection_is_sane(
        num_features in 1usize..64,
        m in 1usize..16,
        seed in 0u64..500
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sel = FeatureSelection::random(num_features, m, &mut rng);
        prop_assert_eq!(sel.len(), m.min(num_features));
        let mut cols = sel.columns().to_vec();
        cols.sort_unstable();
        cols.dedup();
        prop_assert_eq!(cols.len(), sel.len());
        prop_assert!(cols.iter().all(|&c| c < num_features));
    }

    /// Range normalisation keeps every feature within [−1/M, 1/M] and the
    /// per-sample squared mass within 1.
    #[test]
    fn normalisation_bounds_hold(
        rows in proptest::collection::vec(
            proptest::collection::vec(-1e6f64..1e6, 5),
            2..40
        )
    ) {
        let ds = Dataset::from_rows("prop", rows, None).unwrap();
        let normalized = RangeNormalizer::fit_transform(&ds);
        let bound = 1.0 / 5.0 + 1e-12;
        for row in normalized.rows() {
            let mass: f64 = row.iter().map(|v| v * v).sum();
            prop_assert!(mass <= 1.0 + 1e-9);
            for &v in row {
                prop_assert!(v.abs() <= bound);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Anomaly scores are finite, non-negative, and permutation-consistent:
    /// shuffling the dataset permutes scores identically (same seed, same
    /// groups — bucketing depends only on index order, so we compare the
    /// score *multiset* instead of exact values).
    #[test]
    fn scores_are_finite_and_nonnegative(seed in 0u64..50) {
        use quorum::core::{QuorumConfig, QuorumDetector};
        let mut rows: Vec<Vec<f64>> = (0..16)
            .map(|i| vec![1.0 + 0.1 * (i as f64), 2.0, 3.0, 1.0])
            .collect();
        rows.push(vec![30.0, 0.1, 30.0, 0.1]);
        let ds = Dataset::from_rows("prop-scores", rows, None).unwrap();
        let report = QuorumDetector::new(
            QuorumConfig::default()
                .with_ensemble_groups(3)
                .with_anomaly_rate_estimate(0.1)
                .with_seed(seed),
        )
        .unwrap()
        .score(&ds)
        .unwrap();
        for &s in report.scores() {
            prop_assert!(s.is_finite() && s >= 0.0);
        }
        // The gross outlier lands in the top 3 for any seed.
        prop_assert!(report.ranking()[..3].contains(&16));
    }
}
