//! Property pins for the split-complex GEMM kernel layer: the dispatching
//! kernel (autovectorised SoA, AVX-recompiled SoA, or AVX2/FMA intrinsics
//! under `--features simd`) against the bit-exact scalar oracle on
//! [`CMatrix::matmul_scalar`], across non-square, odd and remainder-lane
//! shapes, ragged panels, structural zeros and thread counts.
//!
//! The fast blocks run on every `cargo test`; the `#[ignore]`d block is
//! the exhaustive suite CI executes with `cargo test -- --ignored` and a
//! bumped `PROPTEST_CASES` — under both the default and the `simd`
//! feature builds.

use proptest::prelude::*;
use quorum::sim::complex::C64;
use quorum::sim::matrix::{CMatrix, GEMM_COL_BLOCK};

/// Pseudo-random but deterministic dense matrix.
fn dense(rows: usize, cols: usize, salt: u64) -> CMatrix {
    let mut m = CMatrix::zeros(rows, cols);
    for i in 0..rows {
        for j in 0..cols {
            let t = (i * cols + j) as f64 + salt as f64 * 0.377;
            m[(i, j)] = C64::new((t * 0.7311).sin(), (t * 1.1931).cos());
        }
    }
    m
}

/// Like [`dense`], with a deterministic sprinkle of structural zeros so
/// the oracle's sparse-term skip and the branchless kernels disagree on
/// nothing but the sign of zero.
fn sparse(rows: usize, cols: usize, salt: u64) -> CMatrix {
    let mut m = dense(rows, cols, salt);
    for i in 0..rows {
        for j in 0..cols {
            if (i * 7 + j * 3 + salt as usize).is_multiple_of(5) {
                m[(i, j)] = C64::ZERO;
            }
        }
    }
    m
}

fn check_against_oracle(a: &CMatrix, b: &CMatrix) {
    let oracle = a.matmul_scalar(b).unwrap();
    let fast = a.matmul(b).unwrap();
    assert_eq!((fast.rows(), fast.cols()), (oracle.rows(), oracle.cols()));
    for (i, (f, o)) in fast.as_slice().iter().zip(oracle.as_slice()).enumerate() {
        assert!(
            f.approx_eq(*o, 1e-12),
            "{}x{}·{}x{} entry {i}: dispatched {f} vs oracle {o}",
            a.rows(),
            a.cols(),
            b.rows(),
            b.cols()
        );
    }
    // Thread-count invariance is bit-for-bit: panels are position-fixed
    // and every panel runs the same kernel.
    for threads in [2usize, 4] {
        let threaded = a.matmul_threaded(b, threads).unwrap();
        assert_eq!(fast.as_slice(), threaded.as_slice(), "threads {threads}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random shapes straddling the 4-row/4-lane register tiles and the
    /// panel boundary, dense and zero-sprinkled alike.
    #[test]
    fn dispatched_gemm_matches_scalar_oracle(
        rows in 1usize..24,
        inner in 1usize..24,
        cols in 1usize..90,
        salt in 0u64..10_000,
    ) {
        check_against_oracle(&dense(rows, inner, salt), &dense(inner, cols, salt + 1));
        check_against_oracle(&sparse(rows, inner, salt + 2), &sparse(inner, cols, salt + 3));
    }

    /// Unitary-shaped products (the batched engines' shapes): a square
    /// power-of-two operator times a wide batch.
    #[test]
    fn dispatched_gemm_matches_oracle_on_engine_shapes(
        log_dim in 1u32..7,
        batch in 1usize..100,
        salt in 0u64..10_000,
    ) {
        let dim = 1usize << log_dim;
        check_against_oracle(&dense(dim, dim, salt), &dense(dim, batch, salt + 1));
    }
}

#[test]
fn panel_boundary_shapes_are_exact() {
    // Widths around GEMM_COL_BLOCK exercise full panels, ragged tails and
    // the single-panel sequential fast path.
    for cols in [
        GEMM_COL_BLOCK - 1,
        GEMM_COL_BLOCK,
        GEMM_COL_BLOCK + 1,
        2 * GEMM_COL_BLOCK + 3,
    ] {
        check_against_oracle(&dense(16, 16, 5), &dense(16, cols, 6));
    }
}

#[test]
fn identity_and_zero_operands() {
    let m = dense(8, 40, 9);
    let id = CMatrix::identity(8);
    let through = id.matmul(&m).unwrap();
    assert!(through.approx_eq(&m, 1e-12));
    let z = CMatrix::zeros(8, 8);
    let zero = z.matmul(&m).unwrap();
    assert!(zero.approx_eq(&CMatrix::zeros(8, 40), 1e-12));
}

proptest! {
    // Source default of 256 cases, overridable via PROPTEST_CASES (CI
    // bumps it only for the --ignored job).
    #![proptest_config(ProptestConfig::default())]

    /// Exhaustive kernel-equivalence sweep — cheap per case, so it can
    /// afford hundreds of cases in the ignored CI job.
    #[test]
    #[ignore = "slow exhaustive suite; run with `cargo test -- --ignored`"]
    fn exhaustive_dispatched_gemm_matches_scalar_oracle(
        rows in 1usize..40,
        inner in 1usize..40,
        cols in 1usize..130,
        salt in 0u64..1_000_000,
    ) {
        check_against_oracle(&dense(rows, inner, salt), &dense(inner, cols, salt + 1));
        check_against_oracle(&sparse(rows, inner, salt + 2), &sparse(inner, cols, salt + 3));
    }
}
