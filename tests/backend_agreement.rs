//! Cross-backend integration tests: the exact branching statevector and
//! the density matrix must agree on every circuit class Quorum generates,
//! including non-unitary resets and mid-circuit measurement.

use quorum::sim::circuit::Circuit;
use quorum::sim::simulator::{Backend, DensityMatrixBackend, StatevectorBackend};
use quorum::sim::NoiseModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TOL: f64 = 1e-9;

/// Builds a random 4-qubit circuit with `resets` mid-circuit resets and a
/// final measurement.
fn random_circuit(seed: u64, resets: usize) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut qc = Circuit::with_clbits(4, 1);
    for _ in 0..12 {
        let q = rng.gen_range(0..4);
        match rng.gen_range(0..5) {
            0 => {
                qc.rx(rng.gen_range(0.0..std::f64::consts::TAU), q);
            }
            1 => {
                qc.ry(rng.gen_range(0.0..std::f64::consts::TAU), q);
            }
            2 => {
                qc.rz(rng.gen_range(0.0..std::f64::consts::TAU), q);
            }
            3 => {
                qc.h(q);
            }
            _ => {
                let t = (q + 1) % 4;
                qc.cx(q, t);
            }
        }
    }
    for r in 0..resets {
        qc.reset(r % 4);
        qc.ry(0.7 + r as f64, r % 4);
    }
    qc.measure(rng.gen_range(0..4), 0);
    qc
}

#[test]
fn branching_statevector_matches_density_matrix_without_resets() {
    for seed in 0..10 {
        let qc = random_circuit(seed, 0);
        let a = StatevectorBackend::new().probabilities(&qc).unwrap();
        let b = DensityMatrixBackend::new().probabilities(&qc).unwrap();
        assert!(
            (a.marginal_one(0) - b.marginal_one(0)).abs() < TOL,
            "seed {seed}: {} vs {}",
            a.marginal_one(0),
            b.marginal_one(0)
        );
    }
}

#[test]
fn branching_statevector_matches_density_matrix_with_resets() {
    for seed in 0..10 {
        for resets in 1..=3 {
            let qc = random_circuit(seed, resets);
            let a = StatevectorBackend::new().probabilities(&qc).unwrap();
            let b = DensityMatrixBackend::new().probabilities(&qc).unwrap();
            assert!(
                (a.marginal_one(0) - b.marginal_one(0)).abs() < TOL,
                "seed {seed}, {resets} resets: {} vs {}",
                a.marginal_one(0),
                b.marginal_one(0)
            );
        }
    }
}

#[test]
fn ideal_noise_model_changes_nothing() {
    for seed in 0..5 {
        let qc = random_circuit(seed, 1);
        let clean = DensityMatrixBackend::new().probabilities(&qc).unwrap();
        let ideal = DensityMatrixBackend::with_noise(NoiseModel::ideal())
            .probabilities(&qc)
            .unwrap();
        assert!((clean.marginal_one(0) - ideal.marginal_one(0)).abs() < TOL);
    }
}

#[test]
fn brisbane_noise_shifts_probabilities_mildly() {
    let mut clean_sum = 0.0;
    let mut noisy_sum = 0.0;
    for seed in 0..5 {
        let qc = random_circuit(seed, 1);
        let clean = DensityMatrixBackend::new()
            .probabilities(&qc)
            .unwrap()
            .marginal_one(0);
        let noisy = DensityMatrixBackend::with_noise(NoiseModel::brisbane())
            .probabilities(&qc)
            .unwrap()
            .marginal_one(0);
        clean_sum += clean;
        noisy_sum += noisy;
        // Probabilities remain valid and close (Brisbane error rates are
        // per-mille scale per gate; these circuits have ~20 gates).
        assert!((0.0..=1.0).contains(&noisy));
        assert!(
            (clean - noisy).abs() < 0.15,
            "seed {seed}: {clean} vs {noisy}"
        );
    }
    // Noise must do *something* in aggregate.
    assert!((clean_sum - noisy_sum).abs() > 1e-6);
}

#[test]
fn shot_sampling_converges_to_exact_distribution() {
    let qc = random_circuit(3, 2);
    let backend = StatevectorBackend::new();
    let exact = backend.probabilities(&qc).unwrap().marginal_one(0);
    let counts = backend.run(&qc, 100_000, 9).unwrap();
    assert!(
        (counts.marginal_one(0) - exact).abs() < 0.01,
        "sampled {} vs exact {exact}",
        counts.marginal_one(0)
    );
}

#[test]
fn transpiled_circuits_agree_across_backends() {
    // The noisy backend internally lowers circuits; verify the lowering
    // preserves outcome distributions by comparing a manually lowered
    // circuit on the statevector backend.
    use quorum::sim::transpile::decompose_multiqubit;
    let mut qc = Circuit::with_clbits(5, 1);
    qc.h(0)
        .ry(0.8, 1)
        .cswap(0, 1, 2)
        .ccx(1, 2, 3)
        .swap(3, 4)
        .cz(0, 4)
        .measure(4, 0);
    let lowered = decompose_multiqubit(&qc);
    let sv = StatevectorBackend::new();
    let a = sv.probabilities(&qc).unwrap().marginal_one(0);
    let b = sv.probabilities(&lowered).unwrap().marginal_one(0);
    assert!((a - b).abs() < TOL, "{a} vs {b}");
}
