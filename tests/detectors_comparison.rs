//! Integration tests comparing the three detector families on shared
//! planted data: Quorum (unsupervised quantum), the supervised QNN, and
//! the classical baselines.

use quorum::classical::{Detector, IsolationForest, KMeansDetector, LocalOutlierFactor};
use quorum::core::{QuorumConfig, QuorumDetector};
use quorum::data::Dataset;
use quorum::metrics::{flag_top_n, roc_auc, ConfusionMatrix};
use quorum::qnn::{train, TrainConfig};

/// Separable labelled data for all detector families.
fn shared_dataset() -> Dataset {
    let mut rows = Vec::new();
    for i in 0..56 {
        let t = i as f64 * 0.02;
        rows.push(vec![2.0 + t, 3.0 - t, 1.0 + t, 2.5, 4.0 - 0.5 * t]);
    }
    // Dispersed anomalies (not a cluster of their own, so centroid-based
    // detectors can't adopt them).
    rows.push(vec![9.0, 0.2, 8.0, 0.4, 0.1]);
    rows.push(vec![0.1, 9.5, 0.3, 8.8, 9.9]);
    rows.push(vec![8.8, 9.1, 0.2, 0.3, 9.4]);
    rows.push(vec![0.2, 0.1, 9.7, 9.2, 0.4]);
    let mut labels = vec![false; 56];
    labels.extend(vec![true; 4]);
    Dataset::from_rows("shared", rows, Some(labels)).unwrap()
}

#[test]
fn all_unsupervised_detectors_separate_planted_anomalies() {
    let ds = shared_dataset();
    let labels = ds.labels().unwrap().to_vec();
    let stripped = ds.strip_labels();

    let quorum = QuorumDetector::new(
        QuorumConfig::default()
            .with_ensemble_groups(10)
            .with_anomaly_rate_estimate(4.0 / 60.0)
            .with_seed(5),
    )
    .unwrap()
    .score(&stripped)
    .unwrap();

    let candidates: Vec<(&str, Vec<f64>)> = vec![
        ("quorum", quorum.scores().to_vec()),
        ("iforest", IsolationForest::default().score(&stripped)),
        ("lof", LocalOutlierFactor { k: 8 }.score(&stripped)),
        // k = 1: with only four anomalies, k-means++ would seed extra
        // centroids directly on them (scores of 0); a single centroid is
        // the robust configuration at this scale.
        (
            "kmeans",
            KMeansDetector {
                k: 1,
                ..KMeansDetector::default()
            }
            .score(&stripped),
        ),
    ];
    for (name, scores) in candidates {
        let auc = roc_auc(&scores, &labels);
        assert!(auc > 0.9, "{name} failed: AUC {auc}");
    }
}

#[test]
fn qnn_needs_labels_quorum_does_not() {
    let ds = shared_dataset();
    // Quorum runs on unlabelled data.
    let report = QuorumDetector::new(
        QuorumConfig::default()
            .with_ensemble_groups(6)
            .with_anomaly_rate_estimate(0.07)
            .with_seed(2),
    )
    .unwrap()
    .score(&ds.strip_labels())
    .unwrap();
    assert_eq!(report.len(), 60);

    // The QNN cannot: training without labels panics by design.
    let result = std::panic::catch_unwind(|| train(&ds.strip_labels(), &TrainConfig::default()));
    assert!(result.is_err(), "QNN trained without labels");
}

#[test]
fn quorum_matches_or_beats_qnn_f1_on_shared_data() {
    // The paper's flagship claim at miniature scale.
    let ds = shared_dataset();
    let labels = ds.labels().unwrap().to_vec();

    let quorum = QuorumDetector::new(
        QuorumConfig::default()
            .with_ensemble_groups(12)
            .with_anomaly_rate_estimate(4.0 / 60.0)
            .with_seed(5),
    )
    .unwrap()
    .score(&ds)
    .unwrap();
    let quorum_cm = quorum.evaluate_at_anomaly_count(&labels);

    let qnn = train(
        &ds,
        &TrainConfig {
            epochs: 8,
            seed: 5,
            ..TrainConfig::default()
        },
    );
    let qnn_flags = qnn.predict_dataset(&ds);
    let qnn_cm = ConfusionMatrix::from_predictions(&labels, &qnn_flags);

    assert!(
        quorum_cm.f1() >= qnn_cm.f1() - 1e-9,
        "Quorum F1 {} < QNN F1 {}",
        quorum_cm.f1(),
        qnn_cm.f1()
    );
    assert!(
        quorum_cm.f1() > 0.7,
        "Quorum absolute F1 too low: {quorum_cm}"
    );
}

#[test]
fn evaluation_protocol_is_consistent_across_detectors() {
    // flag_top_n + ConfusionMatrix must agree with
    // ScoreReport::evaluate_at_anomaly_count for identical scores.
    let ds = shared_dataset();
    let labels = ds.labels().unwrap().to_vec();
    let report = QuorumDetector::new(
        QuorumConfig::default()
            .with_ensemble_groups(4)
            .with_anomaly_rate_estimate(0.07)
            .with_seed(9),
    )
    .unwrap()
    .score(&ds)
    .unwrap();
    let via_report = report.evaluate_at_anomaly_count(&labels);
    let via_manual = ConfusionMatrix::from_predictions(&labels, &flag_top_n(report.scores(), 4));
    assert_eq!(via_report, via_manual);
}
