//! Property pins for the structured density noise engine: the per-gate
//! channel-program walk plus the bond-4 MPO SWAP-test readout must
//! reproduce the dense fused-superoperator engine — across random ansatz
//! draws, register widths n ∈ {2, 3}, reset counts, the
//! ideal/Brisbane/scaled noise models, and batch sizes straddling the
//! lockstep column-block boundary — and the new per-op column kernels
//! (reset, amplitude damping, phase damping, general 2q superoperator)
//! must satisfy their channel laws against the per-sample dense kernels.
//!
//! The dense engine is the bit-exact small-n oracle here; the structured
//! path reassociates floating-point products (per-qubit 1q-run fusion,
//! bond-sweep readout), so the equivalence tolerance is 1e-9 rather than
//! 1e-12.
//!
//! The fast blocks run on every `cargo test`; the `#[ignore]`d blocks
//! are the slow exhaustive suite CI executes with `cargo test --
//! --ignored` and a bumped `PROPTEST_CASES`.

use proptest::prelude::*;
use quorum::core::bucket::BucketPlan;
use quorum::core::engine::{DensityEngine, ScoringEngine, StructuredDensityEngine};
use quorum::core::ensemble::EnsembleGroup;
use quorum::core::{ExecutionMode, QuorumConfig};
use quorum::data::Dataset;
use quorum::sim::complex::C64;
use quorum::sim::density::{
    apply_amplitude_damping_columns, apply_phase_damping_columns, apply_reset_columns,
    apply_superop_2q_columns, superop_from_kraus, superop_to_array_2q, DensityMatrix,
};
use quorum::sim::matrix::{CMatrix, GEMM_COL_BLOCK};
use quorum::sim::NoiseModel;

/// The noise models every equivalence block sweeps: no noise at all, the
/// paper's Brisbane preset, and an ablation-style amplified copy.
fn noise_models() -> Vec<NoiseModel> {
    vec![
        NoiseModel::ideal(),
        NoiseModel::brisbane(),
        NoiseModel::brisbane().scaled(2.0),
    ]
}

/// A spread-out dataset with `features` columns in the embedded range.
fn normalized_dataset(features: usize, samples: usize, salt: u64) -> Dataset {
    let m = features as f64;
    let rows: Vec<Vec<f64>> = (0..samples)
        .map(|i| {
            (0..features)
                .map(|j| {
                    let t = (i * features + j) as f64 + salt as f64 * 0.29;
                    (t * 0.5417).sin().abs() / m
                })
                .collect()
        })
        .collect();
    Dataset::from_rows("structured-props", rows, None).unwrap()
}

/// A group drawn from `config`'s seed (bucket plan sized independently of
/// the scored batch — deviations never touch buckets).
fn group_for(config: &QuorumConfig, num_features: usize, index: usize) -> EnsembleGroup {
    let plan = BucketPlan::from_target(64, 0.1, config.bucket_probability);
    EnsembleGroup::generate(index, config, num_features, &plan)
}

fn noisy_config(
    data_qubits: usize,
    seed: u64,
    noise: NoiseModel,
    shots: Option<u64>,
) -> QuorumConfig {
    QuorumConfig::default()
        .with_data_qubits(data_qubits)
        .with_seed(seed)
        .with_execution(ExecutionMode::Noisy { noise, shots })
}

/// Runs the structured-vs-dense comparison for one (seed, group) draw at
/// one register width and batch size, over every noise model with the
/// full level sweep.
fn check_structured_vs_dense(data_qubits: usize, seed: u64, group_index: usize, samples: usize) {
    let levels: Vec<usize> = (1..data_qubits).collect();
    for noise in noise_models() {
        let config = noisy_config(data_qubits, seed, noise, None);
        let ds = normalized_dataset(config.features_per_circuit(), samples, seed);
        let group = group_for(&config, ds.num_features(), group_index);
        let dense = DensityEngine
            .deviations_all_levels(&group, &ds, &config, &levels)
            .unwrap();
        let structured = StructuredDensityEngine
            .deviations_all_levels(&group, &ds, &config, &levels)
            .unwrap();
        for (level, (d, s)) in dense.iter().zip(&structured).enumerate() {
            assert_eq!(s.len(), samples);
            for (i, (dv, sv)) in d.iter().zip(s).enumerate() {
                assert!(
                    (dv - sv).abs() <= 1e-9,
                    "n={data_qubits} level={} seed={seed} sample {i}: \
                     dense {dv} vs structured {sv}",
                    levels[level]
                );
            }
        }
    }
}

/// Deterministic trace-1 PSD matrix (a valid mixed state).
fn test_state(num_qubits: usize, salt: u64) -> CMatrix {
    let dim = 1usize << num_qubits;
    let mut a = CMatrix::zeros(dim, dim);
    for i in 0..dim {
        for j in 0..dim {
            let t = (i * dim + j) as f64 + salt as f64 * 0.83;
            a[(i, j)] = C64::new((t * 1.117).sin(), (t * 0.733).cos());
        }
    }
    let mut rho = &a.dagger() * &a;
    let tr: f64 = (0..dim).map(|i| rho[(i, i)].re).sum();
    for i in 0..dim {
        for j in 0..dim {
            rho[(i, j)] = rho[(i, j)].scale(1.0 / tr);
        }
    }
    rho
}

/// Packs `samples` deterministic mixed states into a row-major
/// `4^n × samples` vec(ρ) panel (plus the states themselves).
fn state_panel(num_qubits: usize, samples: usize, salt: u64) -> (Vec<CMatrix>, Vec<C64>) {
    let dim = 1usize << num_qubits;
    let states: Vec<CMatrix> = (0..samples)
        .map(|j| test_state(num_qubits, salt + j as u64))
        .collect();
    let mut panel = vec![C64::ZERO; dim * dim * samples];
    for (j, s) in states.iter().enumerate() {
        for r in 0..dim {
            for c in 0..dim {
                panel[(r * dim + c) * samples + j] = s[(r, c)];
            }
        }
    }
    (states, panel)
}

/// Asserts a panel column equals a dense per-sample result entrywise and
/// that its trace is exactly preserved (the CPTP law every channel
/// kernel must satisfy on valid states).
fn assert_column_matches(
    panel: &[C64],
    samples: usize,
    j: usize,
    dim: usize,
    expect: &DensityMatrix,
    label: &str,
) {
    let expect = expect.as_slice();
    for idx in 0..dim * dim {
        let got = panel[idx * samples + j];
        assert!(
            got.approx_eq(expect[idx], 1e-12),
            "{label} sample {j} entry {idx}: {got} vs {}",
            expect[idx]
        );
    }
    let mut trace = C64::ZERO;
    for r in 0..dim {
        trace += panel[(r * dim + r) * samples + j];
    }
    assert!(
        (trace.re - 1.0).abs() < 1e-12 && trace.im.abs() < 1e-12,
        "{label} sample {j}: trace {trace} not preserved"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The headline pin: structured vs dense across widths, resets and
    /// noise models, over random ansatz draws.
    #[test]
    fn structured_matches_dense(
        seed in 0u64..10_000,
        group_index in 0usize..4,
    ) {
        for data_qubits in 2usize..=3 {
            check_structured_vs_dense(data_qubits, seed, group_index, 6);
        }
    }

    /// Shot-sampled draws through the structured path coincide with the
    /// dense path's: same (to 1e-9) exact deviation, same
    /// per-measurement seeds, same sampler.
    #[test]
    fn structured_sampled_matches_dense_sampled(
        seed in 0u64..10_000,
        shots in 64u64..4096,
    ) {
        let config = noisy_config(3, seed, NoiseModel::brisbane(), Some(shots));
        let ds = normalized_dataset(config.features_per_circuit(), 6, seed);
        let group = group_for(&config, ds.num_features(), 1);
        let dense = DensityEngine.deviations(&group, &ds, &config, 1).unwrap();
        let structured = StructuredDensityEngine.deviations(&group, &ds, &config, 1).unwrap();
        let again = StructuredDensityEngine.deviations(&group, &ds, &config, 1).unwrap();
        prop_assert_eq!(&structured, &again);
        for (d, s) in dense.iter().zip(&structured) {
            // Identical binomial draws up to knife-edge rounding of the
            // underlying probability (absent at these tolerances).
            prop_assert!((d - s).abs() <= 1.0 / shots as f64, "dense {} vs structured {}", d, s);
        }
    }

    /// Amplitude damping as a column kernel against the per-sample Kraus
    /// oracle, across the whole parameter range, on every qubit of both
    /// widths — entrywise equality and exact trace preservation.
    #[test]
    fn amplitude_damping_columns_match_kraus_and_preserve_trace(
        gamma_ppm in 0u64..=1_000_000,
        salt in 0u64..10_000,
    ) {
        let gamma = gamma_ppm as f64 / 1e6;
        for num_qubits in 1usize..=2 {
            let dim = 1usize << num_qubits;
            let samples = 3;
            for qubit in 0..num_qubits {
                let (states, mut panel) = state_panel(num_qubits, samples, salt);
                apply_amplitude_damping_columns(&mut panel, dim, samples, qubit, gamma);
                for (j, s) in states.iter().enumerate() {
                    let mut rho = DensityMatrix::from_cmatrix(s).unwrap();
                    rho.apply_kraus(&quorum::sim::noise::amplitude_damping(gamma), &[qubit])
                        .unwrap();
                    assert_column_matches(&panel, samples, j, dim, &rho, "amp-damp");
                }
            }
        }
    }

    /// Phase damping as a column kernel against the per-sample Kraus
    /// oracle, across the whole parameter range.
    #[test]
    fn phase_damping_columns_match_kraus_and_preserve_trace(
        lambda_ppm in 0u64..=1_000_000,
        salt in 0u64..10_000,
    ) {
        let lambda = lambda_ppm as f64 / 1e6;
        for num_qubits in 1usize..=2 {
            let dim = 1usize << num_qubits;
            let samples = 3;
            for qubit in 0..num_qubits {
                let (states, mut panel) = state_panel(num_qubits, samples, salt);
                apply_phase_damping_columns(&mut panel, dim, samples, qubit, lambda);
                for (j, s) in states.iter().enumerate() {
                    let mut rho = DensityMatrix::from_cmatrix(s).unwrap();
                    rho.apply_kraus(&quorum::sim::noise::phase_damping(lambda), &[qubit])
                        .unwrap();
                    assert_column_matches(&panel, samples, j, dim, &rho, "phase-damp");
                }
            }
        }
    }
}

/// Reset as a column kernel against the per-sample oracle: the reset
/// qubit collapses to |0⟩, trace preserved, on every qubit position.
#[test]
fn reset_columns_match_per_sample_reset_and_preserve_trace() {
    for num_qubits in 1usize..=3 {
        let dim = 1usize << num_qubits;
        let samples = 4;
        for qubit in 0..num_qubits {
            let (states, mut panel) = state_panel(num_qubits, samples, 5 + qubit as u64);
            apply_reset_columns(&mut panel, dim, samples, qubit);
            for (j, s) in states.iter().enumerate() {
                let mut rho = DensityMatrix::from_cmatrix(s).unwrap();
                rho.reset(qubit).unwrap();
                assert_column_matches(&panel, samples, j, dim, &rho, "reset");
            }
        }
    }
}

/// The general 16×16 two-qubit superoperator column kernel against the
/// per-sample dense oracle, for a non-CX unitary conjugation (the op the
/// channel IR emits for 2q gates surviving lowering) on every ordered
/// qubit pair — including pairs where the sub-index order is reversed
/// relative to the register order.
#[test]
fn superop_2q_columns_match_per_sample_oracle() {
    use quorum::sim::gate::Gate;
    let s_mat = superop_from_kraus(&[Gate::Swap.matrix()]);
    let s = superop_to_array_2q(&s_mat);
    for num_qubits in 2usize..=3 {
        let dim = 1usize << num_qubits;
        let samples = 3;
        for qa in 0..num_qubits {
            for qb in 0..num_qubits {
                if qa == qb {
                    continue;
                }
                let (states, mut panel) = state_panel(num_qubits, samples, 11);
                apply_superop_2q_columns(&mut panel, dim, samples, qa, qb, &s);
                for (j, st) in states.iter().enumerate() {
                    let mut rho = DensityMatrix::from_cmatrix(st).unwrap();
                    rho.apply_superop_2q(qa, qb, &s_mat).unwrap();
                    assert_column_matches(&panel, samples, j, dim, &rho, "superop-2q");
                }
            }
        }
    }
}

/// Batch sizes straddling the lockstep column-block boundary: the
/// structured scorer walks fixed [`GEMM_COL_BLOCK`]-wide blocks, so
/// sizes around the edge (and a single-sample batch) must all agree
/// with the dense path.
#[test]
fn structured_matches_dense_at_block_edges() {
    for samples in [1, GEMM_COL_BLOCK - 1, GEMM_COL_BLOCK, GEMM_COL_BLOCK + 1] {
        check_structured_vs_dense(2, 31, 0, samples);
    }
}

/// Thread-count invariance: block boundaries never move with the worker
/// count, so the structured results are bit-identical across thread
/// counts (same guarantee the lockstep preparation gives).
#[test]
fn structured_results_are_thread_count_invariant() {
    let samples = GEMM_COL_BLOCK + 7;
    let base = noisy_config(3, 41, NoiseModel::brisbane(), None);
    let ds = normalized_dataset(base.features_per_circuit(), samples, 41);
    let group = group_for(&base, ds.num_features(), 2);
    let levels: Vec<usize> = (1..3).collect();
    let single = StructuredDensityEngine
        .deviations_all_levels(&group, &ds, &base.clone().with_threads(1), &levels)
        .unwrap();
    for threads in [2, 4] {
        let multi = StructuredDensityEngine
            .deviations_all_levels(&group, &ds, &base.clone().with_threads(threads), &levels)
            .unwrap();
        assert_eq!(single, multi, "{threads} threads diverged from 1");
    }
}

/// The structured engine is the only density path past the dense width
/// cap: a 7-qubit register scores end to end (no 15-qubit observable,
/// no 16^7 superoperator), and its deviations are valid probabilities.
#[test]
fn structured_scores_registers_past_the_dense_cap() {
    let config = noisy_config(7, 3, NoiseModel::brisbane(), None);
    let ds = normalized_dataset(config.features_per_circuit(), 2, 3);
    let group = group_for(&config, ds.num_features(), 0);
    assert!(
        DensityEngine.deviations(&group, &ds, &config, 1).is_err(),
        "the dense engine must reject n=7"
    );
    let devs = StructuredDensityEngine
        .deviations(&group, &ds, &config, 1)
        .unwrap();
    assert_eq!(devs.len(), 2);
    for d in devs {
        assert!(
            (0.0..=1.0).contains(&d),
            "deviation {d} is not a probability"
        );
    }
}

proptest! {
    // Source default of 256 cases, overridable via PROPTEST_CASES (CI
    // bumps it only for the --ignored job).
    #![proptest_config(ProptestConfig::default())]

    /// Exhaustive structured-vs-dense pin — no circuit oracle, so it can
    /// afford the full default case count in the CI ignored job.
    #[test]
    #[ignore = "slow exhaustive suite; run with `cargo test -- --ignored`"]
    fn exhaustive_structured_matches_dense(
        seed in 0u64..1_000_000,
        group_index in 0usize..8,
    ) {
        for data_qubits in 2usize..=3 {
            check_structured_vs_dense(data_qubits, seed, group_index, 6);
        }
    }

    /// Exhaustive block-edge sweep at randomized batch sizes around the
    /// column-block boundary.
    #[test]
    #[ignore = "slow exhaustive suite; run with `cargo test -- --ignored`"]
    fn exhaustive_structured_matches_dense_at_random_batch_sizes(
        seed in 0u64..1_000_000,
        samples in 1usize..=(2 * GEMM_COL_BLOCK),
    ) {
        check_structured_vs_dense(2, seed, seed as usize % 4, samples);
    }
}
