//! Property pins for the batched analytic scoring path: the batched GEMM
//! engine, the per-sample analytic engine and the paper-literal circuit
//! engine must agree on every deviation — across random ansatz draws,
//! register widths n ∈ {2, 3}, reset counts 1..n and batch sizes 1..=32
//! (including the degenerate single-sample batch).
//!
//! The fast blocks run on every `cargo test`; the `#[ignore]`d blocks are
//! the slow exhaustive suite CI executes with `cargo test -- --ignored`
//! and a bumped `PROPTEST_CASES`.

use proptest::prelude::*;
use quorum::core::bucket::BucketPlan;
use quorum::core::engine::{AnalyticEngine, BatchedAnalyticEngine, CircuitEngine, ScoringEngine};
use quorum::core::ensemble::EnsembleGroup;
use quorum::core::{ExecutionMode, QuorumConfig};
use quorum::data::Dataset;

/// A spread-out dataset with `features` columns and `samples` rows, in the
/// embedded range the engines expect (post range-normalisation).
fn normalized_dataset(features: usize, samples: usize, salt: u64) -> Dataset {
    let m = features as f64;
    let rows: Vec<Vec<f64>> = (0..samples)
        .map(|i| {
            (0..features)
                .map(|j| {
                    let t = (i * features + j) as f64 + salt as f64 * 0.13;
                    (t * 0.7182).sin().abs() / m
                })
                .collect()
        })
        .collect();
    Dataset::from_rows("batching-props", rows, None).unwrap()
}

/// A group drawn from `config`'s seed. The bucket plan is sized
/// independently of the scored batch: deviations never touch buckets, so
/// the same group can score batches of any size — including a single
/// sample, which no bucket plan could describe.
fn group_for(config: &QuorumConfig, num_features: usize, index: usize) -> EnsembleGroup {
    let plan = BucketPlan::from_target(64, 0.1, config.bucket_probability);
    EnsembleGroup::generate(index, config, num_features, &plan)
}

/// Asserts per-deviation agreement of `batched` against a reference
/// engine's output within `tol`.
fn assert_agree(reference: &[f64], batched: &[f64], tol: f64, label: &str) {
    assert_eq!(reference.len(), batched.len(), "{label}: length mismatch");
    for (i, (r, b)) in reference.iter().zip(batched).enumerate() {
        assert!(
            (r - b).abs() <= tol,
            "{label} sample {i}: reference {r} vs batched {b}"
        );
    }
}

/// Runs the three-engine comparison for one (seed, group, batch) draw.
fn check_three_way(seed: u64, group_index: usize, batch: usize, include_circuit: bool) {
    for data_qubits in 2usize..=3 {
        let config = QuorumConfig::default()
            .with_data_qubits(data_qubits)
            .with_seed(seed);
        let ds = normalized_dataset(config.features_per_circuit(), batch, seed);
        let group = group_for(&config, ds.num_features(), group_index);
        for reset_count in 1..data_qubits {
            let batched = BatchedAnalyticEngine
                .deviations(&group, &ds, &config, reset_count)
                .unwrap();
            let analytic = AnalyticEngine
                .deviations(&group, &ds, &config, reset_count)
                .unwrap();
            let label = format!("n={data_qubits} reset={reset_count} seed={seed} batch={batch}");
            assert_agree(&analytic, &batched, 1e-12, &format!("{label} vs analytic"));
            if include_circuit {
                let circuit = CircuitEngine
                    .deviations(&group, &ds, &config, reset_count)
                    .unwrap();
                assert_agree(&circuit, &batched, 1e-9, &format!("{label} vs circuit"));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Fast pin: batched vs per-sample vs circuit deviations agree across
    /// random ansatz draws, widths, resets and batch sizes.
    #[test]
    fn batched_matches_per_sample_and_circuit(
        seed in 0u64..10_000,
        group_index in 0usize..4,
        batch in 1usize..33,
    ) {
        check_three_way(seed, group_index, batch, true);
    }

    /// Sampled-mode draws through the batched path are bit-identical to
    /// the per-sample path: same exact deviation, same per-measurement
    /// seed, same cumulative sampler.
    #[test]
    fn batched_sampled_is_bit_identical_to_per_sample(
        seed in 0u64..10_000,
        batch in 1usize..33,
        shots in 64u64..4096,
    ) {
        let config = QuorumConfig::default()
            .with_seed(seed)
            .with_execution(ExecutionMode::Sampled { shots });
        let ds = normalized_dataset(config.features_per_circuit(), batch, seed);
        let group = group_for(&config, ds.num_features(), 0);
        for reset_count in 1..config.data_qubits {
            let batched = BatchedAnalyticEngine
                .deviations(&group, &ds, &config, reset_count)
                .unwrap();
            let per_sample = AnalyticEngine
                .deviations(&group, &ds, &config, reset_count)
                .unwrap();
            prop_assert_eq!(batched, per_sample);
        }
    }
}

proptest! {
    // The exhaustive suite: source default of 256 cases, overridable via
    // PROPTEST_CASES (CI bumps it only for the --ignored job).
    #![proptest_config(ProptestConfig::default())]

    /// Exhaustive batched-vs-per-sample pin. Cheap per case (no circuit
    /// simulation), so it can afford hundreds of cases.
    #[test]
    #[ignore = "slow exhaustive suite; run with `cargo test -- --ignored`"]
    fn exhaustive_batched_matches_per_sample(
        seed in 0u64..1_000_000,
        group_index in 0usize..8,
        batch in 1usize..33,
    ) {
        check_three_way(seed, group_index, batch, false);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Exhaustive three-way pin including the circuit oracle. Circuit
    /// simulation dominates, so the case count is pinned lower than the
    /// batched-only suite.
    #[test]
    #[ignore = "slow exhaustive suite; run with `cargo test -- --ignored`"]
    fn exhaustive_batched_matches_circuit(
        seed in 0u64..1_000_000,
        group_index in 0usize..8,
        batch in 1usize..17,
    ) {
        check_three_way(seed, group_index, batch, true);
    }
}

/// The degenerate single-sample batch agrees with the per-sample path
/// and with the circuit oracle at every width and reset count.
#[test]
fn single_sample_batch_is_not_special() {
    for seed in [3u64, 1414, 99_171] {
        check_three_way(seed, 1, 1, true);
    }
}

/// Batch size must not influence any individual deviation: scoring a
/// prefix of the batch yields the prefix of the scores.
#[test]
fn deviations_are_independent_of_batch_mates() {
    let config = QuorumConfig::default().with_seed(77);
    let full = normalized_dataset(config.features_per_circuit(), 32, 7);
    let prefix = Dataset::from_rows("prefix", full.rows()[..5].to_vec(), None).unwrap();
    let group = group_for(&config, full.num_features(), 2);
    for reset_count in 1..config.data_qubits {
        let all = BatchedAnalyticEngine
            .deviations(&group, &full, &config, reset_count)
            .unwrap();
        let head = BatchedAnalyticEngine
            .deviations(&group, &prefix, &config, reset_count)
            .unwrap();
        assert_eq!(&all[..5], &head[..], "reset {reset_count}");
    }
}
