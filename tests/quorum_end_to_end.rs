//! End-to-end integration tests of the full Quorum pipeline on planted
//! datasets, spanning qdata → quorum-core → qmetrics.

use quorum::core::{ExecutionMode, QuorumConfig, QuorumDetector};
use quorum::data::Dataset;
use quorum::metrics::roc_auc;
use quorum::sim::NoiseModel;

/// A structured dataset: two correlated clusters of normals plus
/// correlation-breaking anomalies.
fn planted_dataset(n_normal: usize, n_anomalies: usize) -> Dataset {
    let mut rows = Vec::new();
    for i in 0..n_normal {
        let t = (i as f64) / (n_normal as f64);
        let cluster = if i % 2 == 0 { 1.0 } else { 1.6 };
        rows.push(vec![
            cluster * (2.0 + t),
            cluster * (4.0 - t),
            cluster * (1.0 + 0.5 * t),
            cluster * (3.0 + 0.2 * t),
            cluster * (2.5 - 0.4 * t),
            cluster * (1.5 + t),
        ]);
    }
    for k in 0..n_anomalies {
        let s = 1.0 + 0.07 * k as f64;
        // In-range magnitudes but inverted correlations.
        rows.push(vec![6.4 * s, 0.8, 0.9, 6.1, 5.9 * s, 0.3]);
    }
    let mut labels = vec![false; n_normal];
    labels.extend(vec![true; n_anomalies]);
    Dataset::from_rows("planted-e2e", rows, Some(labels)).unwrap()
}

fn base_config() -> QuorumConfig {
    QuorumConfig::default()
        .with_ensemble_groups(16)
        .with_anomaly_rate_estimate(0.08)
        .with_seed(21)
}

#[test]
fn quorum_ranks_planted_anomalies_on_top() {
    let ds = planted_dataset(40, 3);
    let labels = ds.labels().unwrap().to_vec();
    let report = QuorumDetector::new(base_config())
        .unwrap()
        .score(&ds)
        .unwrap();
    let cm = report.evaluate_at_anomaly_count(&labels);
    assert!(cm.f1() >= 0.66, "F1 too low: {cm}");
    assert!(roc_auc(report.scores(), &labels) > 0.95);
}

#[test]
fn single_compression_level_still_works() {
    let ds = planted_dataset(30, 2);
    let labels = ds.labels().unwrap().to_vec();
    for level in [1usize, 2] {
        let report = QuorumDetector::new(base_config().with_compression_levels(vec![level]))
            .unwrap()
            .score(&ds)
            .unwrap();
        let auc = roc_auc(report.scores(), &labels);
        assert!(auc > 0.8, "level {level}: AUC {auc}");
    }
}

#[test]
fn more_groups_stabilise_scores() {
    // Relative score dispersion between two seeds should shrink as the
    // ensemble grows (the paper's "benefits diminish past a point").
    let ds = planted_dataset(24, 2);
    let spread = |groups: usize| -> f64 {
        let a = QuorumDetector::new(base_config().with_ensemble_groups(groups).with_seed(1))
            .unwrap()
            .score(&ds)
            .unwrap();
        let b = QuorumDetector::new(base_config().with_ensemble_groups(groups).with_seed(2))
            .unwrap()
            .score(&ds)
            .unwrap();
        // Mean absolute difference of per-sample normalised scores.
        let norm = |r: &quorum::core::ScoreReport| {
            let total: f64 = r.scores().iter().sum();
            r.scores().iter().map(|s| s / total).collect::<Vec<f64>>()
        };
        let na = norm(&a);
        let nb = norm(&b);
        na.iter().zip(&nb).map(|(x, y)| (x - y).abs()).sum::<f64>() / na.len() as f64
    };
    let small = spread(4);
    let large = spread(32);
    assert!(
        large < small,
        "scores did not stabilise: spread(4)={small}, spread(32)={large}"
    );
}

#[test]
fn four_qubit_encoding_works() {
    // The paper's scalability claim (§IV-F): n=4 => 9-qubit circuits,
    // 15 features per circuit, compression levels 1..=3.
    let ds = planted_dataset(24, 2);
    let labels = ds.labels().unwrap().to_vec();
    let report = QuorumDetector::new(base_config().with_data_qubits(4).with_ensemble_groups(8))
        .unwrap()
        .score(&ds)
        .unwrap();
    assert_eq!(report.compression_levels(), &[1, 2, 3]);
    assert!(roc_auc(report.scores(), &labels) > 0.8);
}

#[test]
fn sampled_and_exact_agree_at_high_shots() {
    let ds = planted_dataset(20, 2);
    let exact = QuorumDetector::new(base_config().with_ensemble_groups(6))
        .unwrap()
        .score(&ds)
        .unwrap();
    let sampled = QuorumDetector::new(
        base_config()
            .with_ensemble_groups(6)
            .with_execution(ExecutionMode::Sampled { shots: 50_000 }),
    )
    .unwrap()
    .score(&ds)
    .unwrap();
    // Rankings should agree at the top.
    assert_eq!(exact.ranking()[0], sampled.ranking()[0]);
    assert_eq!(exact.ranking()[1], sampled.ranking()[1]);
}

#[test]
fn noisy_execution_preserves_top_ranking() {
    let ds = planted_dataset(16, 2);
    let labels = ds.labels().unwrap().to_vec();
    let clean = QuorumDetector::new(base_config().with_ensemble_groups(5))
        .unwrap()
        .score(&ds)
        .unwrap();
    let noisy = QuorumDetector::new(base_config().with_ensemble_groups(5).with_execution(
        ExecutionMode::Noisy {
            noise: NoiseModel::brisbane(),
            shots: None,
        },
    ))
    .unwrap()
    .score(&ds)
    .unwrap();
    let auc_clean = roc_auc(clean.scores(), &labels);
    let auc_noisy = roc_auc(noisy.scores(), &labels);
    assert!(
        auc_noisy > auc_clean - 0.15,
        "noise destroyed detection: {auc_noisy} vs {auc_clean}"
    );
}

#[test]
fn report_survives_evaluation_workflows() {
    let ds = planted_dataset(30, 3);
    let labels = ds.labels().unwrap().to_vec();
    let report = QuorumDetector::new(base_config())
        .unwrap()
        .score(&ds)
        .unwrap();
    // Every public evaluation path runs without panicking and is
    // internally consistent.
    let curve = report.detection_curve(&labels);
    assert_eq!(curve.len(), ds.num_samples() + 1);
    let sorted = report.sorted_with_labels(&labels);
    assert_eq!(sorted.len(), ds.num_samples());
    let cm_full = report.evaluate_top_n(&labels, ds.num_samples());
    assert_eq!(cm_full.recall(), 1.0); // flagging everything finds all
    let flags = report.flag_top_fraction(0.1);
    assert_eq!(flags.iter().filter(|&&f| f).count(), 3); // 10% of 33
}
