//! The dataset container used across the reproduction.

use rand::seq::SliceRandom;
use rand::Rng;
use std::fmt;

/// A tabular dataset of `f64` features with optional anomaly labels.
///
/// Labels are kept *separate* from features and are only consulted at
/// evaluation time, mirroring the paper's protocol ("All datasets have
/// labels stripped for all operations until the evaluation is performed").
///
/// # Examples
///
/// ```
/// use qdata::dataset::Dataset;
///
/// let ds = Dataset::from_rows(
///     "toy",
///     vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![100.0, -3.0]],
///     Some(vec![false, false, true]),
/// ).unwrap();
/// assert_eq!(ds.num_samples(), 3);
/// assert_eq!(ds.num_features(), 2);
/// assert_eq!(ds.anomaly_count(), Some(1));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    name: String,
    /// Row-major samples: `features[sample][feature]`.
    features: Vec<Vec<f64>>,
    /// `true` marks an anomaly. `None` after label stripping.
    labels: Option<Vec<bool>>,
    feature_names: Vec<String>,
}

/// Errors from dataset construction and manipulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DataError {
    /// Rows had differing numbers of features.
    RaggedRows {
        /// Row where the mismatch was detected.
        row: usize,
        /// Expected width (from the first row).
        expected: usize,
        /// Actual width.
        actual: usize,
    },
    /// Label vector length differed from the number of samples.
    LabelLengthMismatch {
        /// Number of samples.
        samples: usize,
        /// Number of labels provided.
        labels: usize,
    },
    /// The dataset had no samples.
    Empty,
    /// A feature value was NaN or infinite.
    NonFiniteValue {
        /// Sample row.
        row: usize,
        /// Feature column.
        col: usize,
    },
    /// Parse failure in CSV input.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        message: String,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::RaggedRows {
                row,
                expected,
                actual,
            } => write!(f, "row {row} has {actual} features, expected {expected}"),
            DataError::LabelLengthMismatch { samples, labels } => {
                write!(f, "{labels} labels for {samples} samples")
            }
            DataError::Empty => write!(f, "dataset has no samples"),
            DataError::NonFiniteValue { row, col } => {
                write!(f, "non-finite value at row {row}, column {col}")
            }
            DataError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for DataError {}

/// A borrowed, flat row-major view of `samples × features` values — the
/// allocation-free counterpart of [`Dataset`] for streaming hot paths.
///
/// Serving runtimes decode wire rows into one pooled flat buffer and hand
/// engines a `SamplePanel` over it, instead of materialising a [`Dataset`]
/// (a `Vec<Vec<f64>>` plus name/feature-name strings) per request batch.
/// The view carries no labels and no names: streamed samples never have
/// either.
#[derive(Debug, Clone, Copy)]
pub struct SamplePanel<'a> {
    data: &'a [f64],
    features: usize,
}

impl<'a> SamplePanel<'a> {
    /// Wraps a flat row-major buffer holding `data.len() / features`
    /// samples of `features` values each.
    ///
    /// # Panics
    ///
    /// Panics if `features == 0` or `data.len()` is not a multiple of
    /// `features` — a panel cannot represent ragged or zero-width rows.
    pub fn new(data: &'a [f64], features: usize) -> Self {
        assert!(features > 0, "a sample panel needs at least one feature");
        assert_eq!(
            data.len() % features,
            0,
            "panel length must be a whole number of rows"
        );
        SamplePanel { data, features }
    }

    /// Number of samples (rows).
    pub fn num_samples(&self) -> usize {
        self.data.len() / self.features
    }

    /// Number of features (columns).
    pub fn num_features(&self) -> usize {
        self.features
    }

    /// One sample's feature slice.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.num_samples()`.
    pub fn row(&self, idx: usize) -> &'a [f64] {
        &self.data[idx * self.features..(idx + 1) * self.features]
    }

    /// Iterates the rows in order, each as one contiguous slice.
    pub fn rows(&self) -> std::slice::ChunksExact<'a, f64> {
        self.data.chunks_exact(self.features)
    }

    /// The flat row-major backing slice.
    pub fn as_slice(&self) -> &'a [f64] {
        self.data
    }

    /// Copies the view into an owned [`Dataset`] — the compatibility
    /// bridge for engines without a native panel path.
    ///
    /// # Errors
    ///
    /// Returns [`DataError`] for empty panels or non-finite values, same
    /// as [`Dataset::from_rows`].
    pub fn to_dataset(&self, name: &str) -> Result<Dataset, DataError> {
        Dataset::from_rows(name, self.rows().map(<[f64]>::to_vec).collect(), None)
    }
}

impl Dataset {
    /// Builds a dataset from row-major features and optional labels.
    ///
    /// # Errors
    ///
    /// Returns [`DataError`] on ragged rows, label-length mismatch, empty
    /// input, or non-finite values.
    pub fn from_rows(
        name: impl Into<String>,
        features: Vec<Vec<f64>>,
        labels: Option<Vec<bool>>,
    ) -> Result<Self, DataError> {
        if features.is_empty() {
            return Err(DataError::Empty);
        }
        let width = features[0].len();
        for (row, r) in features.iter().enumerate() {
            if r.len() != width {
                return Err(DataError::RaggedRows {
                    row,
                    expected: width,
                    actual: r.len(),
                });
            }
            for (col, v) in r.iter().enumerate() {
                if !v.is_finite() {
                    return Err(DataError::NonFiniteValue { row, col });
                }
            }
        }
        if let Some(l) = &labels {
            if l.len() != features.len() {
                return Err(DataError::LabelLengthMismatch {
                    samples: features.len(),
                    labels: l.len(),
                });
            }
        }
        let feature_names = (0..width).map(|i| format!("f{i}")).collect();
        Ok(Dataset {
            name: name.into(),
            features,
            labels,
            feature_names,
        })
    }

    /// Replaces the auto-generated feature names.
    ///
    /// # Panics
    ///
    /// Panics if `names.len() != self.num_features()`.
    pub fn with_feature_names(mut self, names: Vec<String>) -> Self {
        assert_eq!(names.len(), self.num_features(), "feature-name count");
        self.feature_names = names;
        self
    }

    /// Dataset name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of samples (rows).
    pub fn num_samples(&self) -> usize {
        self.features.len()
    }

    /// Number of features (columns).
    pub fn num_features(&self) -> usize {
        self.features.first().map_or(0, |r| r.len())
    }

    /// One sample's feature slice.
    pub fn sample(&self, idx: usize) -> &[f64] {
        &self.features[idx]
    }

    /// All rows.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.features
    }

    /// Feature names.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// The label vector, if labels are attached.
    pub fn labels(&self) -> Option<&[bool]> {
        self.labels.as_deref()
    }

    /// Number of labelled anomalies, if labels are attached.
    pub fn anomaly_count(&self) -> Option<usize> {
        self.labels
            .as_ref()
            .map(|l| l.iter().filter(|&&x| x).count())
    }

    /// Fraction of anomalies, if labels are attached.
    pub fn anomaly_rate(&self) -> Option<f64> {
        self.anomaly_count()
            .map(|c| c as f64 / self.num_samples() as f64)
    }

    /// Returns a copy with labels removed — the form handed to detectors.
    pub fn strip_labels(&self) -> Dataset {
        Dataset {
            name: self.name.clone(),
            features: self.features.clone(),
            labels: None,
            feature_names: self.feature_names.clone(),
        }
    }

    /// One feature column as a vector.
    ///
    /// # Panics
    ///
    /// Panics if `col >= self.num_features()`.
    pub fn column(&self, col: usize) -> Vec<f64> {
        assert!(col < self.num_features(), "column out of range");
        self.features.iter().map(|r| r[col]).collect()
    }

    /// Per-column maxima of absolute values (used by the paper's
    /// range normalisation).
    pub fn column_abs_max(&self) -> Vec<f64> {
        let m = self.num_features();
        let mut maxima = vec![0.0f64; m];
        for row in &self.features {
            for (j, &v) in row.iter().enumerate() {
                maxima[j] = maxima[j].max(v.abs());
            }
        }
        maxima
    }

    /// Shuffles samples (and labels) in place with the given RNG.
    pub fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let n = self.num_samples();
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(rng);
        let features = order.iter().map(|&i| self.features[i].clone()).collect();
        let labels = self
            .labels
            .as_ref()
            .map(|l| order.iter().map(|&i| l[i]).collect());
        self.features = features;
        self.labels = labels;
    }

    /// Splits into `(train, test)` with the first `train_fraction` of
    /// samples in train. Shuffle first for a random split.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < train_fraction < 1`.
    pub fn split(&self, train_fraction: f64) -> (Dataset, Dataset) {
        assert!(
            train_fraction > 0.0 && train_fraction < 1.0,
            "train fraction in (0,1)"
        );
        let n_train = ((self.num_samples() as f64) * train_fraction).round() as usize;
        let n_train = n_train.clamp(1, self.num_samples() - 1);
        let make = |range: std::ops::Range<usize>, suffix: &str| Dataset {
            name: format!("{}-{suffix}", self.name),
            features: self.features[range.clone()].to_vec(),
            labels: self.labels.as_ref().map(|l| l[range].to_vec()),
            feature_names: self.feature_names.clone(),
        };
        (
            make(0..n_train, "train"),
            make(n_train..self.num_samples(), "test"),
        )
    }

    /// Returns a copy containing only the selected feature columns, in the
    /// given order.
    ///
    /// # Panics
    ///
    /// Panics if any column index is out of range.
    pub fn select_columns(&self, cols: &[usize]) -> Dataset {
        for &c in cols {
            assert!(c < self.num_features(), "column {c} out of range");
        }
        Dataset {
            name: self.name.clone(),
            features: self
                .features
                .iter()
                .map(|r| cols.iter().map(|&c| r[c]).collect())
                .collect(),
            labels: self.labels.clone(),
            feature_names: cols
                .iter()
                .map(|&c| self.feature_names[c].clone())
                .collect(),
        }
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} samples × {} features",
            self.name,
            self.num_samples(),
            self.num_features()
        )?;
        if let Some(c) = self.anomaly_count() {
            write!(f, " ({c} anomalies)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> Dataset {
        Dataset::from_rows(
            "toy",
            vec![
                vec![1.0, -2.0],
                vec![3.0, 4.0],
                vec![5.0, 0.5],
                vec![-9.0, 1.0],
            ],
            Some(vec![false, false, false, true]),
        )
        .unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let ds = toy();
        assert_eq!(ds.num_samples(), 4);
        assert_eq!(ds.num_features(), 2);
        assert_eq!(ds.sample(1), &[3.0, 4.0]);
        assert_eq!(ds.anomaly_count(), Some(1));
        assert!((ds.anomaly_rate().unwrap() - 0.25).abs() < 1e-12);
        assert_eq!(ds.column(0), vec![1.0, 3.0, 5.0, -9.0]);
        assert_eq!(ds.feature_names(), &["f0", "f1"]);
    }

    #[test]
    fn validation_errors() {
        assert!(matches!(
            Dataset::from_rows("x", vec![], None),
            Err(DataError::Empty)
        ));
        assert!(matches!(
            Dataset::from_rows("x", vec![vec![1.0], vec![1.0, 2.0]], None),
            Err(DataError::RaggedRows { row: 1, .. })
        ));
        assert!(matches!(
            Dataset::from_rows("x", vec![vec![1.0]], Some(vec![true, false])),
            Err(DataError::LabelLengthMismatch { .. })
        ));
        assert!(matches!(
            Dataset::from_rows("x", vec![vec![f64::NAN]], None),
            Err(DataError::NonFiniteValue { row: 0, col: 0 })
        ));
    }

    #[test]
    fn strip_labels_removes_evaluation_data() {
        let ds = toy().strip_labels();
        assert!(ds.labels().is_none());
        assert!(ds.anomaly_count().is_none());
        assert_eq!(ds.num_samples(), 4);
    }

    #[test]
    fn column_abs_max() {
        let ds = toy();
        assert_eq!(ds.column_abs_max(), vec![9.0, 4.0]);
    }

    #[test]
    fn shuffle_permutes_consistently() {
        let mut ds = toy();
        let mut rng = StdRng::seed_from_u64(5);
        ds.shuffle(&mut rng);
        assert_eq!(ds.num_samples(), 4);
        // The anomalous sample [-9, 1] must keep its label through the
        // shuffle.
        let labels = ds.labels().unwrap();
        for (i, &label) in labels.iter().enumerate() {
            let is_anom_row = ds.sample(i)[0] == -9.0;
            assert_eq!(label, is_anom_row);
        }
    }

    #[test]
    fn split_partitions_rows_and_labels() {
        let ds = toy();
        let (train, test) = ds.split(0.5);
        assert_eq!(train.num_samples(), 2);
        assert_eq!(test.num_samples(), 2);
        assert_eq!(train.labels().unwrap(), &[false, false]);
        assert_eq!(test.labels().unwrap(), &[false, true]);
        assert!(train.name().ends_with("train"));
    }

    #[test]
    #[should_panic(expected = "train fraction")]
    fn split_rejects_bad_fraction() {
        toy().split(1.5);
    }

    #[test]
    fn select_columns_projects() {
        let ds = toy().with_feature_names(vec!["a".into(), "b".into()]);
        let sel = ds.select_columns(&[1]);
        assert_eq!(sel.num_features(), 1);
        assert_eq!(sel.sample(0), &[-2.0]);
        assert_eq!(sel.feature_names(), &["b"]);
        assert_eq!(sel.labels().unwrap().len(), 4);
    }

    #[test]
    fn display_summarises() {
        let text = toy().to_string();
        assert!(text.contains("4 samples"));
        assert!(text.contains("1 anomalies"));
    }
}
