//! Pen-Global-like generator (809 samples, 90 anomalies, 16 features).
//!
//! The Goldstein–Uchida "pen-global" task keeps all samples of one
//! handwritten digit (8) as the normal class and scatters samples of other
//! digits as global anomalies. A pen trace is 8 resampled `(x, y)` points
//! in a 0–100 tablet coordinate box → 16 features. We trace digits as
//! Lissajous-style parametric strokes with per-writer affine jitter.

use super::{assemble, gaussian};
use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::PI;

/// Number of resampled points per trace (8 points × 2 coords = 16 feats).
const POINTS: usize = 8;

/// Generates the pen-global-like dataset with Table I's shape.
pub fn pen_global(seed: u64) -> Dataset {
    generate(809, 90, seed)
}

/// Parameterised variant with custom sample/anomaly counts (for
/// ablations, scaling studies and tests).
///
/// # Panics
///
/// Panics if `num_anomalies >= num_samples`.
pub fn generate(num_samples: usize, num_anomalies: usize, seed: u64) -> Dataset {
    assert!(num_anomalies < num_samples, "more anomalies than samples");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e4610ba1);
    let num_normal = num_samples - num_anomalies;

    let normals: Vec<Vec<f64>> = (0..num_normal).map(|_| trace_digit(&mut rng, 8)).collect();
    // Anomalies: digits other than 8, drawn round-robin for variety.
    let other_digits = [0usize, 1, 2, 3, 5];
    let anomalies: Vec<Vec<f64>> = (0..num_anomalies)
        .map(|i| trace_digit(&mut rng, other_digits[i % other_digits.len()]))
        .collect();

    let mut names = Vec::with_capacity(16);
    for p in 0..POINTS {
        names.push(format!("x{p}"));
        names.push(format!("y{p}"));
    }
    assemble("pen-global", normals, anomalies, &mut rng).with_feature_names(names)
}

/// Traces one digit as 8 sampled points of a parametric stroke, with
/// per-sample affine jitter (writers differ in scale, placement and slant)
/// and point noise.
fn trace_digit<R: Rng + ?Sized>(rng: &mut R, digit: usize) -> Vec<f64> {
    let scale = 1.0 + gaussian(rng, 0.0, 0.08);
    let dx = gaussian(rng, 0.0, 4.0);
    let dy = gaussian(rng, 0.0, 4.0);
    let slant = gaussian(rng, 0.0, 0.06);
    let mut row = Vec::with_capacity(2 * POINTS);
    for p in 0..POINTS {
        let t = p as f64 / (POINTS - 1) as f64;
        let (x, y) = stroke(digit, t);
        let (x, y) = (
            50.0 + scale * (x - 50.0) + slant * (y - 50.0) + dx + gaussian(rng, 0.0, 1.8),
            50.0 + scale * (y - 50.0) + dy + gaussian(rng, 0.0, 1.8),
        );
        row.push(x.clamp(0.0, 100.0));
        row.push(y.clamp(0.0, 100.0));
    }
    row
}

/// Idealised pen strokes per digit in the 0–100 box, parameterised by
/// `t ∈ [0, 1]`.
fn stroke(digit: usize, t: f64) -> (f64, f64) {
    match digit {
        // Figure eight: x oscillates twice as fast as y completes a cycle.
        8 => (
            50.0 + 22.0 * (4.0 * PI * t).sin(),
            50.0 + 38.0 * (2.0 * PI * t).cos(),
        ),
        // Oval.
        0 => (
            50.0 + 28.0 * (2.0 * PI * t).sin(),
            50.0 + 40.0 * (2.0 * PI * t).cos(),
        ),
        // Vertical bar with a small flag.
        1 => (
            55.0 - 10.0 * (1.0 - t) * (t < 0.2) as u8 as f64,
            90.0 - 80.0 * t,
        ),
        // S-curve with a base bar.
        2 => (
            30.0 + 40.0 * t + 12.0 * (2.0 * PI * t).sin(),
            85.0 - 70.0 * t + 10.0 * (3.0 * PI * t).sin(),
        ),
        // Double bump on the right.
        3 => (55.0 + 20.0 * (2.0 * PI * t).sin().abs(), 88.0 - 76.0 * t),
        // Diagonal-and-loop.
        5 => (
            62.0 - 30.0 * t + 18.0 * (PI * t).sin(),
            88.0 - 70.0 * t + 8.0 * (2.0 * PI * t).cos(),
        ),
        _ => (
            50.0 + 25.0 * (2.0 * PI * t * (digit as f64 + 1.0) / 4.0).sin(),
            50.0 + 35.0 * (2.0 * PI * t).cos(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_table1() {
        let ds = pen_global(1);
        assert_eq!(ds.num_samples(), 809);
        assert_eq!(ds.num_features(), 16);
        assert_eq!(ds.anomaly_count(), Some(90));
    }

    #[test]
    fn coordinates_stay_in_tablet_box() {
        let ds = pen_global(2);
        for row in ds.rows() {
            for &v in row {
                assert!((0.0..=100.0).contains(&v), "coordinate {v}");
            }
        }
    }

    #[test]
    fn normals_cluster_tighter_than_anomalies() {
        let ds = pen_global(3);
        let labels = ds.labels().unwrap();
        // Centroid of normals.
        let normal_rows: Vec<&Vec<f64>> = ds
            .rows()
            .iter()
            .enumerate()
            .filter(|(i, _)| !labels[*i])
            .map(|(_, r)| r)
            .collect();
        let m = ds.num_features();
        let mut centroid = vec![0.0; m];
        for r in &normal_rows {
            for (c, v) in centroid.iter_mut().zip(r.iter()) {
                *c += v;
            }
        }
        for c in &mut centroid {
            *c /= normal_rows.len() as f64;
        }
        let dist = |r: &[f64]| -> f64 {
            r.iter()
                .zip(&centroid)
                .map(|(a, b)| (a - b).powi(2))
                .sum::<f64>()
                .sqrt()
        };
        let mean_normal: f64 =
            normal_rows.iter().map(|r| dist(r)).sum::<f64>() / normal_rows.len() as f64;
        let anom_rows: Vec<&Vec<f64>> = ds
            .rows()
            .iter()
            .enumerate()
            .filter(|(i, _)| labels[*i])
            .map(|(_, r)| r)
            .collect();
        let mean_anom: f64 =
            anom_rows.iter().map(|r| dist(r)).sum::<f64>() / anom_rows.len() as f64;
        assert!(
            mean_anom > mean_normal * 1.3,
            "anomaly distance {mean_anom} vs normal {mean_normal}"
        );
    }

    #[test]
    fn anomalies_use_multiple_digit_shapes() {
        // Anomalies from different digits should not all coincide: their
        // pairwise spread must exceed the normal cluster's.
        let ds = pen_global(4);
        let labels = ds.labels().unwrap();
        let anoms: Vec<&Vec<f64>> = ds
            .rows()
            .iter()
            .enumerate()
            .filter(|(i, _)| labels[*i])
            .map(|(_, r)| r)
            .collect();
        let d01: f64 = anoms[0]
            .iter()
            .zip(anoms[1].iter())
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!(d01 > 1.0, "anomalies are degenerate");
    }

    #[test]
    fn custom_sizes() {
        let ds = generate(100, 10, 6);
        assert_eq!(ds.num_samples(), 100);
        assert_eq!(ds.anomaly_count(), Some(10));
    }
}
