//! Letter-like generator (533 samples, 33 anomalies, 32 features).
//!
//! The Goldstein–Uchida "letter" benchmark takes three letter classes as
//! normal and injects samples of other letters as anomalies; features are
//! 32 shape statistics. The anomalies are *subtle* — other letters share
//! much of the same stroke statistics — which is why the paper reports the
//! lowest F1 scores here. We reproduce that character: normal data is a
//! three-cluster Gaussian mixture, anomalies are drawn from several other
//! cluster centres pulled toward the global mean.

use super::{assemble, gaussian};
use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const FEATURES: usize = 32;
const NORMAL_CLUSTERS: usize = 3;
const ANOMALY_CLUSTERS: usize = 5;

/// Generates the letter-like dataset with Table I's shape.
pub fn letter(seed: u64) -> Dataset {
    generate(533, 33, seed)
}

/// Parameterised variant with custom sample/anomaly counts (for
/// ablations, scaling studies and tests).
///
/// # Panics
///
/// Panics if `num_anomalies >= num_samples`.
pub fn generate(num_samples: usize, num_anomalies: usize, seed: u64) -> Dataset {
    assert!(num_anomalies < num_samples, "more anomalies than samples");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1e77e6);
    let num_normal = num_samples - num_anomalies;

    // Cluster centres live in a moderate shell around a shared base point,
    // mimicking letters that share global stroke statistics.
    let base: Vec<f64> = (0..FEATURES)
        .map(|_| gaussian(&mut rng, 7.5, 1.2))
        .collect();
    let make_centre = |rng: &mut StdRng, radius: f64| -> Vec<f64> {
        base.iter()
            .map(|&b| b + gaussian(rng, 0.0, radius))
            .collect()
    };
    let normal_centres: Vec<Vec<f64>> = (0..NORMAL_CLUSTERS)
        .map(|_| make_centre(&mut rng, 1.5))
        .collect();
    // Anomalous letters: distinct centres, but pulled back toward the base
    // point so they overlap the normal clusters — subtle anomalies.
    let anomaly_centres: Vec<Vec<f64>> = (0..ANOMALY_CLUSTERS)
        .map(|_| {
            let c = make_centre(&mut rng, 2.4);
            c.iter()
                .zip(&base)
                .map(|(&ci, &bi)| bi + 0.8 * (ci - bi))
                .collect()
        })
        .collect();

    let normals: Vec<Vec<f64>> = (0..num_normal)
        .map(|i| {
            let centre = &normal_centres[i % NORMAL_CLUSTERS];
            sample_around(&mut rng, centre, 0.9)
        })
        .collect();
    let anomalies: Vec<Vec<f64>> = (0..num_anomalies)
        .map(|i| {
            let centre = &anomaly_centres[i % ANOMALY_CLUSTERS];
            sample_around(&mut rng, centre, 1.1)
        })
        .collect();

    let names = (0..FEATURES).map(|i| format!("shape{i}")).collect();
    assemble("letter", normals, anomalies, &mut rng).with_feature_names(names)
}

/// Draws one sample around a cluster centre; values land in the 0–15
/// integer-ish range of the original letter data.
fn sample_around<R: Rng + ?Sized>(rng: &mut R, centre: &[f64], spread: f64) -> Vec<f64> {
    centre
        .iter()
        .map(|&c| (c + gaussian(rng, 0.0, spread)).clamp(0.0, 15.0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_table1() {
        let ds = letter(1);
        assert_eq!(ds.num_samples(), 533);
        assert_eq!(ds.num_features(), 32);
        assert_eq!(ds.anomaly_count(), Some(33));
    }

    #[test]
    fn values_stay_in_letter_range() {
        let ds = letter(2);
        for row in ds.rows() {
            for &v in row {
                assert!((0.0..=15.0).contains(&v));
            }
        }
    }

    #[test]
    fn anomalies_are_subtle_but_present() {
        // Anomaly mean distance to the nearest normal-cluster centroid
        // should exceed the normal's own, but by a modest factor (subtle).
        let ds = letter(3);
        let labels = ds.labels().unwrap();
        let m = ds.num_features();
        // Estimate the global normal centroid.
        let mut centroid = vec![0.0; m];
        let mut count = 0.0;
        for (i, r) in ds.rows().iter().enumerate() {
            if !labels[i] {
                for (c, v) in centroid.iter_mut().zip(r) {
                    *c += v;
                }
                count += 1.0;
            }
        }
        for c in &mut centroid {
            *c /= count;
        }
        let dist = |r: &[f64]| {
            r.iter()
                .zip(&centroid)
                .map(|(a, b)| (a - b).powi(2))
                .sum::<f64>()
                .sqrt()
        };
        let mut dn = 0.0;
        let mut nn = 0.0;
        let mut da = 0.0;
        let mut na = 0.0;
        for (i, r) in ds.rows().iter().enumerate() {
            if labels[i] {
                da += dist(r);
                na += 1.0;
            } else {
                dn += dist(r);
                nn += 1.0;
            }
        }
        let (mean_normal, mean_anom) = (dn / nn, da / na);
        assert!(
            mean_anom > mean_normal,
            "anomalies not separated at all: {mean_anom} vs {mean_normal}"
        );
        assert!(
            mean_anom < mean_normal * 2.5,
            "anomalies too obvious for the letter benchmark: {mean_anom} vs {mean_normal}"
        );
    }

    #[test]
    fn three_normal_clusters_exist() {
        // Samples from different normal clusters should be farther apart
        // than samples within one cluster (round-robin assignment means
        // rows i, i+3 share a cluster... after shuffling we can't use
        // position, so instead check overall variance is multi-modal-ish:
        // per-feature std should exceed the within-cluster spread of 0.9.
        let ds = letter(4);
        let labels = ds.labels().unwrap();
        let col: Vec<f64> = ds
            .rows()
            .iter()
            .enumerate()
            .filter(|(i, _)| !labels[*i])
            .map(|(_, r)| r[0])
            .collect();
        let mean = col.iter().sum::<f64>() / col.len() as f64;
        let std = (col.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / col.len() as f64).sqrt();
        assert!(std > 0.9, "std {std} suggests clusters collapsed");
    }

    #[test]
    fn custom_sizes() {
        let ds = generate(60, 6, 5);
        assert_eq!(ds.num_samples(), 60);
        assert_eq!(ds.anomaly_count(), Some(6));
    }
}
