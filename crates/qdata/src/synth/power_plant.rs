//! Combined-cycle-power-plant-like generator (1,000 samples, 30 anomalies,
//! 5 features).
//!
//! The UCI CCPP dataset records ambient temperature (AT), exhaust vacuum
//! (V), ambient pressure (AP), relative humidity (RH) and net energy
//! output (PE). PE is strongly (negatively) driven by AT and V — the
//! physical manifold. The paper *"inserted 'plausible' anomalies into the
//! dataset based on ranges of values that are possible for each feature"*:
//! every anomalous feature is individually plausible but jointly violates
//! the physics. We reproduce exactly that: anomalies sample each feature
//! uniformly within its real-world range, independently.

use super::{assemble, gaussian};
use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Real CCPP feature ranges: (name, min, max).
const RANGES: [(&str, f64, f64); 5] = [
    ("AT", 1.81, 37.11),
    ("V", 25.36, 81.56),
    ("AP", 992.89, 1033.30),
    ("RH", 25.56, 100.16),
    ("PE", 420.26, 495.76),
];

/// Generates the power-plant-like dataset with Table I's shape.
pub fn power_plant(seed: u64) -> Dataset {
    generate(1000, 30, seed)
}

/// Parameterised variant with custom sample/anomaly counts (for
/// ablations, scaling studies and tests).
///
/// # Panics
///
/// Panics if `num_anomalies >= num_samples`.
pub fn generate(num_samples: usize, num_anomalies: usize, seed: u64) -> Dataset {
    assert!(num_anomalies < num_samples, "more anomalies than samples");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x90_3e_12);
    let num_normal = num_samples - num_anomalies;

    let normals: Vec<Vec<f64>> = (0..num_normal).map(|_| physical_row(&mut rng)).collect();
    let anomalies: Vec<Vec<f64>> = (0..num_anomalies)
        .map(|_| plausible_row(&mut rng))
        .collect();

    let names = RANGES.iter().map(|(n, ..)| (*n).to_string()).collect();
    assemble("power-plant", normals, anomalies, &mut rng).with_feature_names(names)
}

/// A normal operating point following the plant physics:
/// hotter intake air → more exhaust vacuum, less power.
fn physical_row<R: Rng + ?Sized>(rng: &mut R) -> Vec<f64> {
    // Ambient temperature drives everything.
    let at = (gaussian(rng, 19.6, 7.4)).clamp(RANGES[0].1, RANGES[0].2);
    // Vacuum rises with temperature (turbine back-pressure).
    let v = (25.36 + 1.35 * (at - 1.81) + gaussian(rng, 0.0, 5.0)).clamp(RANGES[1].1, RANGES[1].2);
    let ap = gaussian(rng, 1013.0, 5.9).clamp(RANGES[2].1, RANGES[2].2);
    // Humidity is mildly anti-correlated with temperature.
    let rh = (73.0 - 0.8 * (at - 19.6) + gaussian(rng, 0.0, 11.0)).clamp(RANGES[3].1, RANGES[3].2);
    // The well-known CCPP regression: PE falls ~1.7 MW per °C and ~0.3 MW
    // per cm Hg of vacuum.
    let pe = (497.0 - 1.70 * at - 0.30 * (v - 25.36) + 0.06 * (ap - 1013.0)
        - 0.11 * (rh - 73.0) / 10.0
        + gaussian(rng, 0.0, 3.2))
    .clamp(RANGES[4].1, RANGES[4].2);
    vec![at, v, ap, rh, pe]
}

/// A "plausible" anomaly: every feature uniform within its legal range,
/// drawn independently — individually believable, jointly unphysical.
fn plausible_row<R: Rng + ?Sized>(rng: &mut R) -> Vec<f64> {
    RANGES
        .iter()
        .map(|&(_, lo, hi)| rng.gen_range(lo..hi))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_table1() {
        let ds = power_plant(1);
        assert_eq!(ds.num_samples(), 1000);
        assert_eq!(ds.num_features(), 5);
        assert_eq!(ds.anomaly_count(), Some(30));
        assert_eq!(ds.feature_names(), &["AT", "V", "AP", "RH", "PE"]);
    }

    #[test]
    fn all_values_in_feature_ranges() {
        let ds = power_plant(2);
        for row in ds.rows() {
            for (j, &v) in row.iter().enumerate() {
                let (_, lo, hi) = RANGES[j];
                assert!(v >= lo && v <= hi, "feature {j} value {v}");
            }
        }
    }

    #[test]
    fn normals_follow_the_physics() {
        // Within normals, AT and PE must be strongly negatively correlated;
        // among anomalies the correlation should be near zero.
        let ds = power_plant(3);
        let labels = ds.labels().unwrap();
        let corr = |rows: Vec<(&Vec<f64>, ())>| -> f64 {
            let n = rows.len() as f64;
            let mx = rows.iter().map(|(r, _)| r[0]).sum::<f64>() / n;
            let my = rows.iter().map(|(r, _)| r[4]).sum::<f64>() / n;
            let cov = rows
                .iter()
                .map(|(r, _)| (r[0] - mx) * (r[4] - my))
                .sum::<f64>()
                / n;
            let sx = (rows.iter().map(|(r, _)| (r[0] - mx).powi(2)).sum::<f64>() / n).sqrt();
            let sy = (rows.iter().map(|(r, _)| (r[4] - my).powi(2)).sum::<f64>() / n).sqrt();
            cov / (sx * sy)
        };
        let normals: Vec<(&Vec<f64>, ())> = ds
            .rows()
            .iter()
            .enumerate()
            .filter(|(i, _)| !labels[*i])
            .map(|(_, r)| (r, ()))
            .collect();
        let anoms: Vec<(&Vec<f64>, ())> = ds
            .rows()
            .iter()
            .enumerate()
            .filter(|(i, _)| labels[*i])
            .map(|(_, r)| (r, ()))
            .collect();
        let c_norm = corr(normals);
        let c_anom = corr(anoms);
        assert!(c_norm < -0.85, "normal AT-PE correlation {c_norm}");
        assert!(c_anom.abs() < 0.5, "anomaly AT-PE correlation {c_anom}");
    }

    #[test]
    fn anomalies_individually_plausible() {
        // Anomalous AT values must lie within the same range normals use —
        // per-feature thresholds cannot find them.
        let ds = power_plant(4);
        let labels = ds.labels().unwrap();
        for (i, row) in ds.rows().iter().enumerate() {
            if labels[i] {
                assert!(row[0] >= RANGES[0].1 && row[0] <= RANGES[0].2);
            }
        }
    }

    #[test]
    fn custom_sizes() {
        let ds = generate(200, 7, 5);
        assert_eq!(ds.num_samples(), 200);
        assert_eq!(ds.anomaly_count(), Some(7));
    }
}
