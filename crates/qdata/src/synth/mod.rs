//! Seeded synthetic generators reproducing the shape of the paper's four
//! evaluation datasets (Table I).
//!
//! The originals (three Goldstein–Uchida benchmark exports plus the UCI
//! combined-cycle power plant with injected anomalies) are not shipped with
//! this repository; these generators create datasets with the **same sample
//! counts, feature counts, anomaly counts and qualitative structure** — a
//! dominant normal manifold with correlated features plus a small
//! off-manifold anomaly population. Real CSVs can be substituted through
//! [`crate::csv`].
//!
//! | Dataset | Samples | Anomalies | Features | Pr\[anomaly ∈ bucket\] |
//! |---|---|---|---|---|
//! | Breast Cancer | 367 | 10 | 30 | 0.75 |
//! | Pen-Global | 809 | 90 | 16 | 0.6 |
//! | Letter | 533 | 33 | 32 | 0.95 |
//! | Power Plant | 1,000 | 30 | 5 | 0.75 |

mod breast_cancer;
mod letter;
mod pen_global;
mod power_plant;

pub use breast_cancer::breast_cancer;
pub use breast_cancer::generate as breast_cancer_with;
pub use letter::generate as letter_with;
pub use letter::letter;
pub use pen_global::generate as pen_global_with;
pub use pen_global::pen_global;
pub use power_plant::generate as power_plant_with;
pub use power_plant::power_plant;

use crate::dataset::Dataset;
use rand::Rng;

/// Standard normal sample via Box–Muller (the sanctioned `rand` crate does
/// not bundle `rand_distr`).
pub(crate) fn gaussian<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    // Avoid log(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    mean + std * z
}

/// Interleaves anomalies uniformly through the normal rows with a seeded
/// shuffle so anomaly positions carry no information.
pub(crate) fn assemble<R: Rng + ?Sized>(
    name: &str,
    normals: Vec<Vec<f64>>,
    anomalies: Vec<Vec<f64>>,
    rng: &mut R,
) -> Dataset {
    let mut rows: Vec<(Vec<f64>, bool)> = normals
        .into_iter()
        .map(|r| (r, false))
        .chain(anomalies.into_iter().map(|r| (r, true)))
        .collect();
    use rand::seq::SliceRandom;
    rows.shuffle(rng);
    let labels = rows.iter().map(|(_, l)| *l).collect();
    let features = rows.into_iter().map(|(r, _)| r).collect();
    Dataset::from_rows(name, features, Some(labels)).expect("generator produces valid rows")
}

/// The per-dataset bucket-probability targets from Table I.
pub fn table1_bucket_probability(name: &str) -> Option<f64> {
    match name {
        "breast-cancer" => Some(0.75),
        "pen-global" => Some(0.6),
        "letter" => Some(0.95),
        "power-plant" => Some(0.75),
        _ => None,
    }
}

/// Generates the full Table I suite with one seed.
pub fn table1_suite(seed: u64) -> Vec<Dataset> {
    vec![
        breast_cancer(seed),
        pen_global(seed.wrapping_add(1)),
        letter(seed.wrapping_add(2)),
        power_plant(seed.wrapping_add(3)),
    ]
}

/// Looks a generator up by its Table I name.
pub fn by_name(name: &str, seed: u64) -> Option<Dataset> {
    match name {
        "breast-cancer" => Some(breast_cancer(seed)),
        "pen-global" => Some(pen_global(seed)),
        "letter" => Some(letter(seed)),
        "power-plant" => Some(power_plant(seed)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_table1_shapes() {
        let suite = table1_suite(7);
        let expected = [
            ("breast-cancer", 367, 10, 30),
            ("pen-global", 809, 90, 16),
            ("letter", 533, 33, 32),
            ("power-plant", 1000, 30, 5),
        ];
        assert_eq!(suite.len(), expected.len());
        for (ds, (name, n, a, m)) in suite.iter().zip(expected) {
            assert_eq!(ds.name(), name);
            assert_eq!(ds.num_samples(), n, "{name} samples");
            assert_eq!(ds.anomaly_count(), Some(a), "{name} anomalies");
            assert_eq!(ds.num_features(), m, "{name} features");
        }
    }

    #[test]
    fn generators_are_seed_deterministic() {
        for name in ["breast-cancer", "pen-global", "letter", "power-plant"] {
            let a = by_name(name, 42).unwrap();
            let b = by_name(name, 42).unwrap();
            assert_eq!(a, b, "{name} not deterministic");
            let c = by_name(name, 43).unwrap();
            assert_ne!(a.rows(), c.rows(), "{name} ignores seed");
        }
    }

    #[test]
    fn bucket_probabilities_match_table1() {
        assert_eq!(table1_bucket_probability("breast-cancer"), Some(0.75));
        assert_eq!(table1_bucket_probability("pen-global"), Some(0.6));
        assert_eq!(table1_bucket_probability("letter"), Some(0.95));
        assert_eq!(table1_bucket_probability("power-plant"), Some(0.75));
        assert_eq!(table1_bucket_probability("nope"), None);
    }

    #[test]
    fn by_name_rejects_unknown() {
        assert!(by_name("unknown", 1).is_none());
    }

    #[test]
    fn gaussian_moments_are_sane() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..20_000).map(|_| gaussian(&mut rng, 3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn anomaly_positions_are_shuffled() {
        // Labels must not be clustered at the end of the dataset.
        let ds = breast_cancer(3);
        let labels = ds.labels().unwrap();
        let tail_anoms = labels[labels.len() - 10..].iter().filter(|&&x| x).count();
        assert!(tail_anoms < 10, "anomalies appear unshuffled");
    }
}
