//! Breast-cancer-like generator (367 samples, 10 anomalies, 30 features).
//!
//! Mirrors the Wisconsin Diagnostic structure used by Goldstein–Uchida:
//! ten cell-nucleus measurements, each reported as (mean, standard error,
//! worst) → 30 features. Benign tissue (normal) concentrates around a
//! healthy morphology; malignant samples (anomalies) shift most
//! measurements up by several standard deviations with heavier spread —
//! which is why the paper finds this the most separable dataset.

use super::{assemble, gaussian};
use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Ten base measurements: (name, benign mean, benign std, malignant shift
/// in stds). Scales intentionally span orders of magnitude (area vs
/// fractal dimension) to exercise the paper's range normalisation.
const MEASUREMENTS: [(&str, f64, f64, f64); 10] = [
    ("radius", 12.1, 1.8, 3.0),
    ("texture", 17.9, 4.0, 1.4),
    ("perimeter", 78.1, 11.8, 3.1),
    ("area", 462.8, 134.0, 3.4),
    ("smoothness", 0.0925, 0.0134, 1.1),
    ("compactness", 0.080, 0.034, 2.2),
    ("concavity", 0.046, 0.044, 2.7),
    ("concave-points", 0.0257, 0.0159, 3.2),
    ("symmetry", 0.174, 0.025, 1.0),
    ("fractal-dim", 0.0629, 0.0072, 0.4),
];

/// Generates the breast-cancer-like dataset with Table I's shape.
pub fn breast_cancer(seed: u64) -> Dataset {
    generate(367, 10, seed)
}

/// Parameterised variant with custom sample/anomaly counts (for
/// ablations, scaling studies and tests).
///
/// # Panics
///
/// Panics if `num_anomalies >= num_samples`.
pub fn generate(num_samples: usize, num_anomalies: usize, seed: u64) -> Dataset {
    assert!(num_anomalies < num_samples, "more anomalies than samples");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xb5ea57);
    let num_normal = num_samples - num_anomalies;

    let normals: Vec<Vec<f64>> = (0..num_normal)
        .map(|_| sample_row(&mut rng, false))
        .collect();
    let anomalies: Vec<Vec<f64>> = (0..num_anomalies)
        .map(|_| sample_row(&mut rng, true))
        .collect();

    let mut names = Vec::with_capacity(30);
    for stat in ["mean", "se", "worst"] {
        for (base, ..) in MEASUREMENTS {
            names.push(format!("{base}-{stat}"));
        }
    }
    assemble("breast-cancer", normals, anomalies, &mut rng).with_feature_names(names)
}

/// One tissue sample. A shared latent "cell size" factor correlates the
/// geometric measurements, as in the real data where radius, perimeter and
/// area are nearly collinear.
fn sample_row<R: Rng + ?Sized>(rng: &mut R, malignant: bool) -> Vec<f64> {
    let latent = gaussian(rng, 0.0, 1.0);
    // Malignant latent factor is shifted and noisier.
    let (latent, spread) = if malignant {
        (latent * 1.6 + 1.0, 1.5)
    } else {
        (latent, 1.0)
    };
    let mut row = Vec::with_capacity(30);
    // means
    let mut means = [0.0f64; 10];
    for (i, &(_, mu, sigma, shift)) in MEASUREMENTS.iter().enumerate() {
        let class_shift = if malignant { shift * sigma } else { 0.0 };
        // Geometric features (first four) load strongly on the latent
        // factor; the rest weakly.
        let loading = if i < 4 { 0.8 } else { 0.3 };
        let v = mu
            + class_shift
            + loading * sigma * latent
            + gaussian(rng, 0.0, sigma * spread * (1.0 - loading * loading).sqrt());
        means[i] = v.max(mu * 0.1);
        row.push(means[i]);
    }
    // standard errors: proportional to the mean value with noise
    for (i, &(_, mu, sigma, _)) in MEASUREMENTS.iter().enumerate() {
        let se = (means[i] / mu) * sigma * 0.12 * (1.0 + 0.3 * gaussian(rng, 0.0, 1.0)).abs();
        row.push(se.max(1e-6));
    }
    // worst: mean plus a positive excursion, larger for malignant
    for (i, &(_, _, sigma, _)) in MEASUREMENTS.iter().enumerate() {
        let excess = if malignant { 2.2 } else { 1.2 };
        let worst = means[i] + sigma * excess * rng.gen::<f64>();
        row.push(worst);
    }
    row
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_table1() {
        let ds = breast_cancer(1);
        assert_eq!(ds.num_samples(), 367);
        assert_eq!(ds.num_features(), 30);
        assert_eq!(ds.anomaly_count(), Some(10));
        assert_eq!(ds.feature_names()[0], "radius-mean");
        assert_eq!(ds.feature_names()[29], "fractal-dim-worst");
    }

    #[test]
    fn anomalies_are_shifted_up_in_geometric_features() {
        let ds = breast_cancer(5);
        let labels = ds.labels().unwrap();
        // Compare mean radius-mean between classes.
        let mut normal_sum = 0.0;
        let mut normal_n = 0.0;
        let mut anom_sum = 0.0;
        let mut anom_n = 0.0;
        for (i, row) in ds.rows().iter().enumerate() {
            if labels[i] {
                anom_sum += row[0];
                anom_n += 1.0;
            } else {
                normal_sum += row[0];
                normal_n += 1.0;
            }
        }
        let normal_mean = normal_sum / normal_n;
        let anom_mean = anom_sum / anom_n;
        assert!(
            anom_mean > normal_mean + 2.0,
            "malignant radius {anom_mean} vs benign {normal_mean}"
        );
    }

    #[test]
    fn geometric_features_are_correlated() {
        // radius-mean and perimeter-mean should correlate strongly within
        // normals (latent factor model).
        let ds = breast_cancer(9);
        let labels = ds.labels().unwrap();
        let pairs: Vec<(f64, f64)> = ds
            .rows()
            .iter()
            .enumerate()
            .filter(|(i, _)| !labels[*i])
            .map(|(_, r)| (r[0], r[2]))
            .collect();
        let n = pairs.len() as f64;
        let mx = pairs.iter().map(|p| p.0).sum::<f64>() / n;
        let my = pairs.iter().map(|p| p.1).sum::<f64>() / n;
        let cov = pairs.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum::<f64>() / n;
        let sx = (pairs.iter().map(|p| (p.0 - mx).powi(2)).sum::<f64>() / n).sqrt();
        let sy = (pairs.iter().map(|p| (p.1 - my).powi(2)).sum::<f64>() / n).sqrt();
        let corr = cov / (sx * sy);
        assert!(corr > 0.35, "correlation {corr}");
    }

    #[test]
    fn values_are_positive_and_finite() {
        let ds = breast_cancer(11);
        for row in ds.rows() {
            for &v in row {
                assert!(v.is_finite() && v > 0.0);
            }
        }
    }

    #[test]
    fn custom_sizes() {
        let ds = generate(50, 5, 2);
        assert_eq!(ds.num_samples(), 50);
        assert_eq!(ds.anomaly_count(), Some(5));
    }

    #[test]
    #[should_panic(expected = "more anomalies")]
    fn rejects_all_anomalies() {
        generate(5, 5, 1);
    }
}
