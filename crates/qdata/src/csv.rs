//! Minimal CSV ingestion so the real evaluation datasets (Goldstein–Uchida
//! exports, the UCI CCPP spreadsheet) can be dropped in when available.
//!
//! The parser handles the subset of RFC 4180 these files use: comma
//! separation, optional double-quoting with `""` escapes, an optional
//! header row, and CRLF/LF line endings. Non-numeric fields are hashed to
//! floats via [`crate::preprocess::hash_to_unit`], matching the paper's
//! preprocessing.

use crate::dataset::{DataError, Dataset};
use crate::preprocess::hash_to_unit;

/// Options controlling CSV ingestion.
#[derive(Debug, Clone, PartialEq)]
pub struct CsvOptions {
    /// Treat the first row as a header with feature names.
    pub has_header: bool,
    /// Zero-based column holding the anomaly label, removed from features.
    /// Accepted truthy labels: `1`, `true`, `yes`, `anomaly`, `o`
    /// (Goldstein–Uchida's "o" = outlier).
    pub label_column: Option<usize>,
    /// Dataset name to attach.
    pub name: String,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            has_header: true,
            label_column: None,
            name: "csv".into(),
        }
    }
}

/// Parses CSV text into a [`Dataset`].
///
/// # Errors
///
/// Returns [`DataError::Parse`] on malformed quoting,
/// [`DataError::RaggedRows`] on inconsistent widths, and [`DataError::Empty`]
/// when no data rows are present.
///
/// # Examples
///
/// ```
/// use qdata::csv::{parse_csv, CsvOptions};
///
/// let text = "a,b,label\n1.0,2.0,0\n3.0,4.0,1\n";
/// let ds = parse_csv(text, &CsvOptions {
///     has_header: true,
///     label_column: Some(2),
///     name: "demo".into(),
/// }).unwrap();
/// assert_eq!(ds.num_samples(), 2);
/// assert_eq!(ds.num_features(), 2);
/// assert_eq!(ds.anomaly_count(), Some(1));
/// ```
pub fn parse_csv(text: &str, options: &CsvOptions) -> Result<Dataset, DataError> {
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (line_no, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        rows.push(split_record(line, line_no + 1)?);
    }
    if rows.is_empty() {
        return Err(DataError::Empty);
    }

    let header: Option<Vec<String>> = if options.has_header {
        Some(rows.remove(0))
    } else {
        None
    };
    if rows.is_empty() {
        return Err(DataError::Empty);
    }

    let width = rows[0].len();
    let mut features = Vec::with_capacity(rows.len());
    let mut labels: Vec<bool> = Vec::new();
    for (i, record) in rows.iter().enumerate() {
        if record.len() != width {
            return Err(DataError::RaggedRows {
                row: i,
                expected: width,
                actual: record.len(),
            });
        }
        let mut row = Vec::with_capacity(width);
        for (j, field) in record.iter().enumerate() {
            if Some(j) == options.label_column {
                labels.push(is_truthy(field));
            } else {
                row.push(parse_field(field));
            }
        }
        features.push(row);
    }

    let label_vec = options.label_column.map(|_| labels);
    let mut ds = Dataset::from_rows(options.name.clone(), features, label_vec)?;
    if let Some(h) = header {
        let names: Vec<String> = h
            .into_iter()
            .enumerate()
            .filter(|(j, _)| Some(*j) != options.label_column)
            .map(|(_, n)| n)
            .collect();
        if names.len() == ds.num_features() {
            ds = ds.with_feature_names(names);
        }
    }
    Ok(ds)
}

/// Serialises a dataset back to CSV (header + optional trailing `label`
/// column), for exporting generated data.
pub fn to_csv(ds: &Dataset) -> String {
    let mut out = String::new();
    out.push_str(&ds.feature_names().join(","));
    if ds.labels().is_some() {
        out.push_str(",label");
    }
    out.push('\n');
    for (i, row) in ds.rows().iter().enumerate() {
        let fields: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        out.push_str(&fields.join(","));
        if let Some(l) = ds.labels() {
            out.push_str(if l[i] { ",1" } else { ",0" });
        }
        out.push('\n');
    }
    out
}

fn parse_field(field: &str) -> f64 {
    let t = field.trim();
    t.parse::<f64>().unwrap_or_else(|_| hash_to_unit(t))
}

fn is_truthy(field: &str) -> bool {
    matches!(
        field.trim().to_ascii_lowercase().as_str(),
        "1" | "true" | "yes" | "anomaly" | "o" | "outlier"
    )
}

/// Splits one CSV record handling double-quoted fields with `""` escapes.
fn split_record(line: &str, line_no: usize) -> Result<Vec<String>, DataError> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' if field.is_empty() => in_quotes = true,
            '"' => {
                return Err(DataError::Parse {
                    line: line_no,
                    message: "unexpected quote inside unquoted field".into(),
                })
            }
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut field));
            }
            c => field.push(c),
        }
    }
    if in_quotes {
        return Err(DataError::Parse {
            line: line_no,
            message: "unterminated quoted field".into(),
        });
    }
    fields.push(field);
    Ok(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_numeric_csv_with_header() {
        let ds = parse_csv("x,y\n1,2\n3,4\n", &CsvOptions::default()).unwrap();
        assert_eq!(ds.num_samples(), 2);
        assert_eq!(ds.feature_names(), &["x", "y"]);
        assert_eq!(ds.sample(1), &[3.0, 4.0]);
        assert!(ds.labels().is_none());
    }

    #[test]
    fn parses_headerless_csv() {
        let opts = CsvOptions {
            has_header: false,
            ..CsvOptions::default()
        };
        let ds = parse_csv("1,2\n3,4\n", &opts).unwrap();
        assert_eq!(ds.num_samples(), 2);
    }

    #[test]
    fn extracts_label_column() {
        let opts = CsvOptions {
            has_header: false,
            label_column: Some(0),
            name: "lab".into(),
        };
        let ds = parse_csv("o,5\nn,6\n1,7\n", &opts).unwrap();
        assert_eq!(ds.num_features(), 1);
        assert_eq!(ds.labels().unwrap(), &[true, false, true]);
    }

    #[test]
    fn hashes_non_numeric_fields() {
        let opts = CsvOptions {
            has_header: false,
            ..CsvOptions::default()
        };
        let ds = parse_csv("red,1\nblue,2\nred,3\n", &opts).unwrap();
        let a = ds.sample(0)[0];
        let b = ds.sample(1)[0];
        let c = ds.sample(2)[0];
        assert!((0.0..1.0).contains(&a));
        assert_ne!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn handles_quoted_fields() {
        let opts = CsvOptions {
            has_header: false,
            ..CsvOptions::default()
        };
        let ds = parse_csv("\"1.5\",\"a,b\"\n2.5,\"say \"\"hi\"\"\"\n", &opts).unwrap();
        assert_eq!(ds.sample(0)[0], 1.5);
        // "a,b" and `say "hi"` both hash; just check they parsed as one
        // field each.
        assert_eq!(ds.num_features(), 2);
    }

    #[test]
    fn rejects_bad_quoting() {
        let opts = CsvOptions {
            has_header: false,
            ..CsvOptions::default()
        };
        assert!(matches!(
            parse_csv("\"unterminated\n", &opts),
            Err(DataError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            parse_csv("ab\"cd\n", &opts),
            Err(DataError::Parse { .. })
        ));
    }

    #[test]
    fn rejects_ragged_and_empty() {
        let opts = CsvOptions {
            has_header: false,
            ..CsvOptions::default()
        };
        assert!(matches!(
            parse_csv("1,2\n3\n", &opts),
            Err(DataError::RaggedRows { .. })
        ));
        assert!(matches!(parse_csv("", &opts), Err(DataError::Empty)));
        assert!(matches!(
            parse_csv("a,b\n", &CsvOptions::default()),
            Err(DataError::Empty)
        ));
    }

    #[test]
    fn skips_blank_lines() {
        let opts = CsvOptions {
            has_header: false,
            ..CsvOptions::default()
        };
        let ds = parse_csv("1,2\n\n3,4\n\n", &opts).unwrap();
        assert_eq!(ds.num_samples(), 2);
    }

    #[test]
    fn round_trips_through_to_csv() {
        let ds = Dataset::from_rows(
            "rt",
            vec![vec![1.0, 2.5], vec![3.0, -4.0]],
            Some(vec![false, true]),
        )
        .unwrap();
        let text = to_csv(&ds);
        let opts = CsvOptions {
            has_header: true,
            label_column: Some(2),
            name: "rt".into(),
        };
        let back = parse_csv(&text, &opts).unwrap();
        assert_eq!(back.num_samples(), 2);
        assert_eq!(back.sample(0), ds.sample(0));
        assert_eq!(back.labels().unwrap(), ds.labels().unwrap());
    }
}
