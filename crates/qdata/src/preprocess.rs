//! Preprocessing: the paper's range normalisation and non-numeric hashing.
//!
//! §IV-A: *"Given a dataset with M features, Quorum normalizes each feature
//! so that its maximum possible value is 1/M"*, i.e.
//!
//! ```text
//! normalized = raw / (max_feature_value × M)
//! ```
//!
//! which guarantees `Σ_j normalized_j² ≤ Σ_j (1/M)² · M = 1/M ≤ 1` for any
//! sample, so the squared values are valid probability masses with room for
//! the overflow state.

use crate::dataset::Dataset;

/// A fitted range normaliser: stores per-feature absolute maxima so that
/// held-out samples can be transformed consistently.
///
/// # Examples
///
/// ```
/// use qdata::dataset::Dataset;
/// use qdata::preprocess::RangeNormalizer;
///
/// let ds = Dataset::from_rows("d", vec![vec![2.0, 10.0], vec![4.0, -20.0]], None).unwrap();
/// let norm = RangeNormalizer::fit(&ds);
/// let out = norm.transform(&ds);
/// // M = 2 features: max of |f0| is 4 => 2.0 -> 2/(4*2) = 0.25
/// assert!((out.sample(0)[0] - 0.25).abs() < 1e-12);
/// // every value is within [-1/M, 1/M]
/// assert!(out.rows().iter().flatten().all(|v| v.abs() <= 0.5 + 1e-12));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RangeNormalizer {
    maxima: Vec<f64>,
}

impl RangeNormalizer {
    /// Learns per-feature absolute maxima from `ds`.
    pub fn fit(ds: &Dataset) -> Self {
        RangeNormalizer {
            maxima: ds.column_abs_max(),
        }
    }

    /// Rebuilds a fitted normaliser from stored per-feature maxima
    /// (e.g. thawed from a frozen-detector artifact).
    pub fn from_maxima(maxima: Vec<f64>) -> Self {
        RangeNormalizer { maxima }
    }

    /// The stored per-feature maxima.
    pub fn maxima(&self) -> &[f64] {
        &self.maxima
    }

    /// Applies `raw / (max × M)` per feature. Constant-zero features map to
    /// zero. Values larger than the fitted maxima (possible on held-out
    /// data) are clamped into `[-1/M, 1/M]`.
    ///
    /// # Panics
    ///
    /// Panics if `ds` has a different feature count than the fitted data.
    pub fn transform(&self, ds: &Dataset) -> Dataset {
        let m = self.maxima.len();
        assert_eq!(ds.num_features(), m, "feature count mismatch");
        let bound = 1.0 / m as f64;
        let rows = ds
            .rows()
            .iter()
            .map(|row| {
                row.iter()
                    .zip(&self.maxima)
                    .map(|(&v, &mx)| {
                        if mx == 0.0 {
                            0.0
                        } else {
                            (v / (mx * m as f64)).clamp(-bound, bound)
                        }
                    })
                    .collect()
            })
            .collect();
        Dataset::from_rows(
            format!("{}-normalized", ds.name()),
            rows,
            ds.labels().map(<[bool]>::to_vec),
        )
        .expect("normalising preserves shape")
        .with_feature_names(ds.feature_names().to_vec())
    }

    /// Convenience: fit on `ds` and transform it.
    pub fn fit_transform(ds: &Dataset) -> Dataset {
        Self::fit(ds).transform(ds)
    }
}

/// A min–max normaliser mapping each feature into `[0, 1/M]` via
/// `(v − min) / ((max − min) · M)`.
///
/// This is **not** the paper's formula (see [`RangeNormalizer`]) but an
/// extension this reproduction evaluates: the paper's `raw / (max · M)`
/// compresses offset-heavy features (e.g. ambient pressure ~1000 mbar
/// varying by ±2%) into nearly constant amplitudes, hiding their anomaly
/// signal. Min–max rescaling restores per-feature contrast while keeping
/// the `Σ v² ≤ 1` embedding guarantee.
#[derive(Debug, Clone, PartialEq)]
pub struct MinMaxNormalizer {
    mins: Vec<f64>,
    ranges: Vec<f64>,
}

impl MinMaxNormalizer {
    /// Learns per-feature minima and ranges from `ds`.
    pub fn fit(ds: &Dataset) -> Self {
        let m = ds.num_features();
        let mut mins = vec![f64::INFINITY; m];
        let mut maxs = vec![f64::NEG_INFINITY; m];
        for row in ds.rows() {
            for (j, &v) in row.iter().enumerate() {
                mins[j] = mins[j].min(v);
                maxs[j] = maxs[j].max(v);
            }
        }
        let ranges = mins.iter().zip(&maxs).map(|(lo, hi)| hi - lo).collect();
        MinMaxNormalizer { mins, ranges }
    }

    /// Rebuilds a fitted normaliser from stored per-feature minima and
    /// ranges (e.g. thawed from a frozen-detector artifact).
    ///
    /// # Panics
    ///
    /// Panics if `mins` and `ranges` have different lengths.
    pub fn from_parts(mins: Vec<f64>, ranges: Vec<f64>) -> Self {
        assert_eq!(mins.len(), ranges.len(), "mins/ranges length mismatch");
        MinMaxNormalizer { mins, ranges }
    }

    /// The stored per-feature minima.
    pub fn mins(&self) -> &[f64] {
        &self.mins
    }

    /// The stored per-feature ranges (`max − min`).
    pub fn ranges(&self) -> &[f64] {
        &self.ranges
    }

    /// Applies `(v − min) / (range · M)` per feature, clamping held-out
    /// values into `[0, 1/M]`. Constant features map to zero.
    ///
    /// # Panics
    ///
    /// Panics if `ds` has a different feature count than the fitted data.
    pub fn transform(&self, ds: &Dataset) -> Dataset {
        let m = self.mins.len();
        assert_eq!(ds.num_features(), m, "feature count mismatch");
        let bound = 1.0 / m as f64;
        let rows = ds
            .rows()
            .iter()
            .map(|row| {
                row.iter()
                    .zip(self.mins.iter().zip(&self.ranges))
                    .map(|(&v, (&lo, &range))| {
                        if range <= 0.0 {
                            0.0
                        } else {
                            ((v - lo) / (range * m as f64)).clamp(0.0, bound)
                        }
                    })
                    .collect()
            })
            .collect();
        Dataset::from_rows(
            format!("{}-minmax", ds.name()),
            rows,
            ds.labels().map(<[bool]>::to_vec),
        )
        .expect("normalising preserves shape")
        .with_feature_names(ds.feature_names().to_vec())
    }

    /// Convenience: fit on `ds` and transform it.
    pub fn fit_transform(ds: &Dataset) -> Dataset {
        Self::fit(ds).transform(ds)
    }
}

/// Hashes an arbitrary string into a stable float in `[0, 1)` (FNV-1a),
/// the paper's strategy for "transforming all non-numeric features into
/// float values (e.g., via hashing)".
///
/// # Examples
///
/// ```
/// use qdata::preprocess::hash_to_unit;
///
/// let a = hash_to_unit("category-a");
/// assert!((0.0..1.0).contains(&a));
/// assert_eq!(a, hash_to_unit("category-a")); // stable
/// assert_ne!(a, hash_to_unit("category-b"));
/// ```
pub fn hash_to_unit(text: &str) -> f64 {
    const FNV_OFFSET: u64 = 0xcbf29ce484222325;
    const FNV_PRIME: u64 = 0x100000001b3;
    let mut hash = FNV_OFFSET;
    for byte in text.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    // Use the top 53 bits for a uniform double in [0,1).
    (hash >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::from_rows(
            "toy",
            vec![
                vec![1.0, 100.0, 0.0],
                vec![2.0, -50.0, 0.0],
                vec![4.0, 25.0, 0.0],
            ],
            Some(vec![false, false, true]),
        )
        .unwrap()
    }

    #[test]
    fn normalisation_bounds_every_feature_by_one_over_m() {
        let out = RangeNormalizer::fit_transform(&toy());
        let m = 3.0;
        for row in out.rows() {
            for v in row {
                assert!(v.abs() <= 1.0 / m + 1e-12);
            }
        }
    }

    #[test]
    fn normalisation_matches_formula() {
        let ds = toy();
        let out = RangeNormalizer::fit_transform(&ds);
        // f0 max is 4, M=3: 1.0 -> 1/(4*3)
        assert!((out.sample(0)[0] - 1.0 / 12.0).abs() < 1e-12);
        // f1 max |.|=100: -50 -> -50/(100*3)
        assert!((out.sample(1)[1] + 50.0 / 300.0).abs() < 1e-12);
    }

    #[test]
    fn sum_of_squares_is_at_most_one() {
        let out = RangeNormalizer::fit_transform(&toy());
        for row in out.rows() {
            let s: f64 = row.iter().map(|v| v * v).sum();
            assert!(s <= 1.0 + 1e-12, "sum of squares {s}");
        }
    }

    #[test]
    fn zero_columns_stay_zero() {
        let out = RangeNormalizer::fit_transform(&toy());
        assert!(out.rows().iter().all(|r| r[2] == 0.0));
    }

    #[test]
    fn labels_survive_normalisation() {
        let out = RangeNormalizer::fit_transform(&toy());
        assert_eq!(out.labels().unwrap(), &[false, false, true]);
    }

    #[test]
    fn held_out_values_are_clamped() {
        let ds = toy();
        let norm = RangeNormalizer::fit(&ds);
        let bigger = Dataset::from_rows("big", vec![vec![8.0, 300.0, 1.0]], None).unwrap();
        let out = norm.transform(&bigger);
        assert!((out.sample(0)[0] - 1.0 / 3.0).abs() < 1e-12); // clamped to 1/M
        assert!((out.sample(0)[1] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "feature count")]
    fn transform_rejects_width_mismatch() {
        let norm = RangeNormalizer::fit(&toy());
        let other = Dataset::from_rows("w", vec![vec![1.0]], None).unwrap();
        norm.transform(&other);
    }

    #[test]
    fn minmax_restores_contrast_on_offset_features() {
        // An "ambient pressure"-like feature: large offset, small range.
        let ds =
            Dataset::from_rows("ap", vec![vec![995.0], vec![1015.0], vec![1035.0]], None).unwrap();
        let range_max = RangeNormalizer::fit_transform(&ds);
        let min_max = MinMaxNormalizer::fit_transform(&ds);
        // raw/max collapses the spread to ~4%; min-max spans the full
        // [0, 1/M] interval.
        let spread = |d: &Dataset| {
            d.column(0).iter().cloned().fold(f64::MIN, f64::max)
                - d.column(0).iter().cloned().fold(f64::MAX, f64::min)
        };
        assert!(spread(&range_max) < 0.05);
        assert!((spread(&min_max) - 1.0).abs() < 1e-12); // M = 1 here
    }

    #[test]
    fn minmax_bounds_and_embedding_guarantee() {
        let ds = toy();
        let out = MinMaxNormalizer::fit_transform(&ds);
        let m = 3.0;
        for row in out.rows() {
            let mass: f64 = row.iter().map(|v| v * v).sum();
            assert!(mass <= 1.0 + 1e-12);
            for &v in row {
                assert!((0.0..=1.0 / m + 1e-12).contains(&v));
            }
        }
        // Constant column stays zero.
        assert!(out.rows().iter().all(|r| r[2] == 0.0));
    }

    #[test]
    fn minmax_clamps_held_out_values() {
        let ds = toy();
        let norm = MinMaxNormalizer::fit(&ds);
        let outlier = Dataset::from_rows("big", vec![vec![99.0, -999.0, 5.0]], None).unwrap();
        let out = norm.transform(&outlier);
        assert!((out.sample(0)[0] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(out.sample(0)[1], 0.0);
    }

    #[test]
    fn hashing_is_stable_and_spread() {
        let values: Vec<f64> = ["red", "green", "blue", "mauve", "teal"]
            .iter()
            .map(|s| hash_to_unit(s))
            .collect();
        for v in &values {
            assert!((0.0..1.0).contains(v));
        }
        // All distinct (FNV-1a collisions on 5 short strings would be
        // astronomically unlikely).
        for i in 0..values.len() {
            for j in (i + 1)..values.len() {
                assert_ne!(values[i], values[j]);
            }
        }
        assert_eq!(hash_to_unit(""), hash_to_unit(""));
    }
}
