//! # qdata — dataset substrate for the Quorum reproduction
//!
//! Provides the tabular [`dataset::Dataset`] container, the paper's
//! preprocessing (range normalisation to `1/M`, string hashing), CSV
//! ingestion for the real benchmark files, and seeded synthetic generators
//! reproducing the shape of the paper's Table I evaluation datasets.
//!
//! ```
//! use qdata::synth;
//! use qdata::preprocess::RangeNormalizer;
//!
//! let ds = synth::breast_cancer(42);
//! assert_eq!(ds.num_samples(), 367);
//! let normalized = RangeNormalizer::fit_transform(&ds.strip_labels());
//! let m = normalized.num_features() as f64;
//! assert!(normalized.rows().iter().flatten().all(|v| v.abs() <= 1.0 / m + 1e-12));
//! ```

#![warn(missing_docs)]

pub mod csv;
pub mod dataset;
pub mod preprocess;
pub mod synth;

pub use dataset::{DataError, Dataset, SamplePanel};
pub use preprocess::{MinMaxNormalizer, RangeNormalizer};
