//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of proptest's API the workspace property tests use: the
//! [`Strategy`] trait with `prop_filter`, range and
//! [`collection::vec`] strategies, [`ProptestConfig`], and the
//! `proptest!`/`prop_assert!`/`prop_assert_eq!` macros. Cases are drawn
//! from a generator seeded deterministically per test name and case index,
//! so failures are reproducible; there is **no shrinking** — the failing
//! input is printed as-is.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Test-case generator handed to strategies.
pub type TestRng = StdRng;

/// A value generator for property tests.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Draws one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Restricts the strategy to values satisfying `predicate`; rejected
    /// draws are retried (up to an internal cap).
    fn prop_filter<F>(self, whence: &'static str, predicate: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            predicate,
        }
    }
}

/// Strategy adaptor created by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    predicate: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.gen_value(rng);
            if (self.predicate)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 consecutive draws",
            self.whence
        );
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                // The rand shim samples inclusive ranges directly
                // (overflow-safe even at the type's maximum).
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`]: a fixed size or a range.
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy generating `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    /// 256 cases, overridable through the `PROPTEST_CASES` environment
    /// variable — the same knob real proptest reads, used by CI to bump
    /// the slow equivalence suites without touching the source default.
    fn default() -> Self {
        ProptestConfig {
            cases: env_cases().unwrap_or(256),
        }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property. Explicit counts are
    /// pinned: `PROPTEST_CASES` does not override them.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Parses `PROPTEST_CASES` when set to a positive integer.
fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
}

/// Runs `body` for every case with a deterministic per-case generator.
/// Called by the `proptest!` macro; not public API in real proptest.
pub fn run_cases(
    test_name: &str,
    config: &ProptestConfig,
    mut body: impl FnMut(u64, &mut TestRng),
) {
    // FNV-1a over the test name gives a stable per-test stream.
    let mut name_hash: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        name_hash ^= b as u64;
        name_hash = name_hash.wrapping_mul(0x100000001b3);
    }
    for case in 0..config.cases as u64 {
        let mut rng = TestRng::seed_from_u64(name_hash ^ case.wrapping_mul(0x9E3779B97F4A7C15));
        body(case, &mut rng);
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Asserts a condition inside a property, reporting the case on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*); };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*); };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                $crate::run_cases(stringify!($name), &config, |__case, __rng| {
                    $(let $arg = $crate::Strategy::gen_value(&($strat), __rng);)+
                    $body
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_generate_in_bounds(x in 0.0f64..1.0, n in 3usize..9) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((3..9).contains(&n));
        }

        #[test]
        fn vec_lengths_respect_spec(
            fixed in collection::vec(0u64..10, 4),
            ranged in collection::vec(0.0f64..1.0, 1..=7)
        ) {
            prop_assert_eq!(fixed.len(), 4);
            prop_assert!((1..=7).contains(&ranged.len()));
        }

        #[test]
        fn filter_applies(v in (0usize..100).prop_filter("even", |v| v % 2 == 0)) {
            prop_assert_eq!(v % 2, 0);
        }
    }

    #[test]
    fn env_var_overrides_default_cases_only() {
        // Serial within this test: no other test in the crate touches the
        // variable.
        std::env::set_var("PROPTEST_CASES", "17");
        assert_eq!(ProptestConfig::default().cases, 17);
        assert_eq!(ProptestConfig::with_cases(4).cases, 4);
        std::env::set_var("PROPTEST_CASES", "not-a-number");
        assert_eq!(ProptestConfig::default().cases, 256);
        std::env::remove_var("PROPTEST_CASES");
        assert_eq!(ProptestConfig::default().cases, 256);
    }

    #[test]
    fn cases_are_deterministic() {
        use super::{run_cases, ProptestConfig, Strategy};
        let mut first: Vec<f64> = Vec::new();
        run_cases("det", &ProptestConfig::with_cases(8), |_, rng| {
            first.push((0.0f64..1.0).gen_value(rng));
        });
        let mut second: Vec<f64> = Vec::new();
        run_cases("det", &ProptestConfig::with_cases(8), |_, rng| {
            second.push((0.0f64..1.0).gen_value(rng));
        });
        assert_eq!(first, second);
        assert!(first.windows(2).any(|w| w[0] != w[1]));
    }
}
