//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the small API subset it actually uses: [`Rng`], [`SeedableRng`],
//! [`rngs::StdRng`] and [`seq::SliceRandom`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic, `Clone`, and
//! statistically solid for simulation workloads. Streams are **not**
//! bit-compatible with the real `rand` crate; everything in this workspace
//! only relies on determinism and distribution quality, never on exact
//! stream values.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next raw 64-bit word.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be drawn uniformly from an [`RngCore`] (the `Standard`
/// distribution in real `rand`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality bits mapped to [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = f64::sample(rng);
        let v = self.start + (self.end - self.start) * unit;
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded sampling (Lemire); bias is
                // negligible for the span sizes used here.
                let hi = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (self.start as i128 + hi as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let hi = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (start as i128 + hi as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable deterministic generators.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng;

/// Slice sampling helpers.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.5..4.5);
            assert!((-2.5..4.5).contains(&f));
            let i = rng.gen_range(0..=3usize);
            assert!(i <= 3);
        }
    }

    #[test]
    fn int_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice ordered");
    }

    #[test]
    fn works_through_unsized_references() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(6);
        let v = draw(&mut rng);
        assert!((0.0..1.0).contains(&v));
    }
}
