//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of Criterion's API the workspace benches use —
//! [`Criterion`], benchmark groups, [`BenchmarkId`], `b.iter(..)`,
//! [`black_box`] and the `criterion_group!`/`criterion_main!` macros —
//! backed by a simple wall-clock timer. Numbers are printed as
//! `name ... time: [median] (n samples)`; there is no statistical
//! regression analysis, but medians over auto-sized batches are stable
//! enough for the ≥5× comparisons this workspace cares about.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting benched
/// work.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    last_median: Duration,
}

impl Bencher {
    /// Times `f`, auto-sizing batches so each sample lasts ≥ ~5 ms, and
    /// records the median per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch sizing.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(5);
        let batch = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as usize;

        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            per_iter.push(start.elapsed() / batch as u32);
        }
        per_iter.sort_unstable();
        self.last_median = per_iter[per_iter.len() / 2];
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let sample_size = self.sample_size;
        run_one(&id.into().0, sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().0);
        run_one(&label, self.sample_size, f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.0);
        run_one(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (report flushing is a no-op here).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        samples,
        last_median: Duration::ZERO,
    };
    f(&mut bencher);
    println!(
        "{label:<56} time: [{}] ({samples} samples)",
        format_duration(bencher.last_median)
    );
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0usize;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn groups_run_inputs() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut total = 0u64;
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| {
                total += n;
                black_box(total)
            })
        });
        group.finish();
        assert!(total > 0);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert!(format_duration(Duration::from_micros(12)).contains("µs"));
        assert!(format_duration(Duration::from_millis(12)).contains("ms"));
        assert!(format_duration(Duration::from_secs(2)).contains("s"));
    }
}
