//! Chaos suite: deterministic fault injection against the supervised
//! serving runtime.
//!
//! Compiled only under the `failpoints` feature (`cargo test -p
//! quorum-serve --features failpoints --test chaos`). Every test arms a
//! deterministic schedule in `quorum_serve::fault`, drives the runtime
//! through crash → restart → re-plan, and asserts the one property that
//! matters: **scores stay bit-identical to an uninterrupted run**. The
//! additive per-group merge in ascending group order makes any
//! group→worker placement equivalent, so fault recovery is pure
//! re-planning — these tests pin that no recovery path forgets it.
//!
//! The failpoint registry is process-global, so every test serialises
//! on `fault::tests_serialized()` and resets the registry when done.

#![cfg(feature = "failpoints")]

use qdata::Dataset;
use qsim::NoiseModel;
use quorum_core::config::{EngineKind, ExecutionMode};
use quorum_core::QuorumConfig;
use quorum_serve::fault::{self, FaultAction, FaultSpec};
use quorum_serve::{
    CoalescePolicy, FrozenDetector, OverloadPolicy, QuorumServer, RetryPolicy, ScoreClient,
    ServeError, ShardLiveness, ShardPolicy, SupervisedScorer, SupervisorPolicy,
};
use std::sync::Arc;
use std::time::Duration;

/// A deterministic 12×7 reference set (same recipe as the serving suite).
fn reference() -> Dataset {
    let rows: Vec<Vec<f64>> = (0..12)
        .map(|i| {
            (0..7)
                .map(|j| {
                    let x = (i * 7 + j) as f64;
                    (x * 0.37).sin() * (1.0 + 0.1 * j as f64) + 0.01 * x
                })
                .collect()
        })
        .collect();
    Dataset::from_rows("chaos-ref", rows, None).unwrap()
}

fn stream_rows(count: usize) -> Vec<Vec<f64>> {
    (0..count)
        .map(|i| {
            (0..7)
                .map(|j| ((i * 13 + j * 5) as f64 * 0.23).cos() * 0.8 + 0.05 * j as f64)
                .collect()
        })
        .collect()
}

fn base_config() -> QuorumConfig {
    QuorumConfig::default()
        .with_data_qubits(3)
        .with_ensemble_groups(5)
        .with_ansatz_layers(2)
        .with_threads(2)
        .with_seed(0x5EEF_1E55)
}

/// A supervisor policy tuned for tests: fast backoff, generous budgets.
fn fast_supervisor() -> SupervisorPolicy {
    SupervisorPolicy {
        max_restarts: 5,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(10),
        request_retries: 3,
    }
}

/// A worker killed mid-stream restarts and the stream's scores stay
/// bit-identical to an uninterrupted run — the fast always-on version
/// of the kill-worker soak.
#[test]
fn killed_worker_restarts_and_scores_stay_bit_identical() {
    let _serial = fault::tests_serialized();
    fault::reset();
    let frozen = Arc::new(FrozenDetector::freeze(base_config(), &reference()).unwrap());
    let rows = stream_rows(4);
    let direct = frozen.score_samples(&rows, 0).unwrap();
    let scorer = SupervisedScorer::new(
        Arc::clone(&frozen),
        &ShardPolicy::Workers(3),
        fast_supervisor(),
    )
    .unwrap();
    // Panel 1 fans out one job per worker (hits 1..=3); exactly one of
    // them — whichever worker draws hit 2 — panics mid-panel. Which
    // worker dies is scheduling-dependent; the scores must not be.
    fault::arm(
        "supervisor::worker",
        FaultSpec::on_hit(FaultAction::Panic, 2),
    );
    for _ in 0..3 {
        let survived = scorer.score_samples(&rows, 0).unwrap();
        assert_eq!(survived, direct, "fault recovery must not move a bit");
        // Let the crashed worker's 1ms backoff lapse so a later panel
        // exercises the restart path, not just the transient fold.
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(
        scorer.restarts_total(),
        1,
        "exactly one worker death, exactly one restart"
    );
    assert_eq!(scorer.refolds_total(), 0);
    let health = scorer.shard_health();
    assert!(health.iter().all(|s| s.liveness == ShardLiveness::Live));
    assert_eq!(health.iter().map(|s| s.restarts).sum::<u64>(), 1);
    assert_eq!(
        health.iter().map(|s| s.groups).sum::<usize>(),
        frozen.groups().len()
    );
    fault::reset();
}

/// Past its restart budget a shard is retired and its groups re-fold
/// into the survivors — service continues, scores unchanged.
#[test]
fn retired_shard_refolds_groups_into_survivors_bit_identically() {
    let _serial = fault::tests_serialized();
    fault::reset();
    let frozen = Arc::new(FrozenDetector::freeze(base_config(), &reference()).unwrap());
    let rows = stream_rows(3);
    let direct = frozen.score_samples(&rows, 0).unwrap();
    let policy = SupervisorPolicy {
        max_restarts: 0, // first death retires the shard
        ..fast_supervisor()
    };
    let scorer =
        SupervisedScorer::new(Arc::clone(&frozen), &ShardPolicy::Workers(2), policy).unwrap();
    // One job of the first panel panics; with a zero restart budget the
    // dead shard retires immediately and its groups move to the
    // survivor for good.
    fault::arm(
        "supervisor::worker",
        FaultSpec::on_hit(FaultAction::Panic, 1),
    );
    assert_eq!(scorer.score_samples(&rows, 0).unwrap(), direct);
    assert_eq!(scorer.refolds_total(), 1, "retirement must re-fold once");
    let health = scorer.shard_health();
    let retired: Vec<_> = health
        .iter()
        .filter(|s| s.liveness == ShardLiveness::Retired)
        .collect();
    assert_eq!(retired.len(), 1);
    assert_eq!(retired[0].groups, 0, "a retired shard owns nothing");
    assert_eq!(
        health.iter().map(|s| s.groups).sum::<usize>(),
        frozen.groups().len(),
        "every group must land on a survivor"
    );
    // The shrunken fleet keeps serving bit-identically.
    assert_eq!(scorer.score_samples(&rows, 7).unwrap(), direct);
    fault::reset();
}

/// Delayed shard replies reorder completion but never change a score.
#[test]
fn delayed_shard_replies_do_not_change_scores() {
    let _serial = fault::tests_serialized();
    fault::reset();
    let frozen = Arc::new(FrozenDetector::freeze(base_config(), &reference()).unwrap());
    let rows = stream_rows(4);
    let direct = frozen.score_samples(&rows, 0).unwrap();
    let scorer = SupervisedScorer::new(
        Arc::clone(&frozen),
        &ShardPolicy::Workers(3),
        fast_supervisor(),
    )
    .unwrap();
    // Every third worker job answers slow — partial vectors arrive out
    // of shard order, and the ascending-group merge must not care.
    fault::arm(
        "supervisor::worker",
        FaultSpec::every(FaultAction::Delay(Duration::from_millis(20)), 3, 0),
    );
    for first_id in [0u64, 4, 8] {
        assert_eq!(scorer.score_samples(&rows, first_id).unwrap(), direct);
    }
    assert_eq!(scorer.restarts_total(), 0, "delays are not deaths");
    fault::reset();
}

/// A crashed lock holder poisons the per-group derived caches; the
/// byte-bounded caches recover the poisoned mutexes and scoring —
/// including the noisy fused-superoperator path — stays bit-identical.
#[test]
fn poisoned_caches_are_absorbed_bit_identically() {
    let _serial = fault::tests_serialized();
    fault::reset();
    let config = base_config()
        .with_ensemble_groups(3)
        .with_engine(EngineKind::Density)
        .with_execution(ExecutionMode::Noisy {
            noise: NoiseModel::brisbane(),
            shots: None,
        });
    let frozen = Arc::new(FrozenDetector::freeze(config, &reference()).unwrap());
    let rows = stream_rows(2);
    let direct = frozen.score_samples(&rows, 0).unwrap();
    let scorer = SupervisedScorer::new(
        Arc::clone(&frozen),
        &ShardPolicy::Workers(2),
        fast_supervisor(),
    )
    .unwrap();
    fault::arm(
        "supervisor::worker",
        FaultSpec::on_hits(FaultAction::PoisonCaches, &[1, 2]),
    );
    assert_eq!(scorer.score_samples(&rows, 0).unwrap(), direct);
    assert_eq!(
        scorer.restarts_total(),
        0,
        "poison must be absorbed, not fatal"
    );
    // And again with warm (recovered) caches.
    assert_eq!(scorer.score_samples(&rows, 0).unwrap(), direct);
    fault::reset();
}

/// When every worker dies faster than the supervisor can bring one
/// back, the request fails with a typed `Faulted` error — not a hang,
/// not a panic, not a wrong partial sum.
#[test]
fn exhausted_retry_budget_is_a_typed_faulted_error() {
    let _serial = fault::tests_serialized();
    fault::reset();
    let frozen = Arc::new(FrozenDetector::freeze(base_config(), &reference()).unwrap());
    let rows = stream_rows(2);
    let policy = SupervisorPolicy {
        max_restarts: 50, // never retire: every round meets freshly doomed workers
        backoff_base: Duration::from_micros(100),
        backoff_cap: Duration::from_micros(200),
        request_retries: 2,
    };
    let scorer =
        SupervisedScorer::new(Arc::clone(&frozen), &ShardPolicy::Workers(2), policy).unwrap();
    // Every job panics: each dispatch round kills whatever workers it
    // reaches until the per-request retry budget runs out.
    fault::arm(
        "supervisor::worker",
        FaultSpec::every(FaultAction::Panic, 1, 0),
    );
    let err = scorer.score_samples(&rows, 0).unwrap_err();
    assert!(matches!(err, ServeError::Faulted(_)), "got {err:?}");
    // Disarm, let a backoff lapse, and the fleet heals on its own.
    fault::disarm("supervisor::worker");
    std::thread::sleep(Duration::from_millis(2));
    let direct = frozen.score_samples(&rows, 0).unwrap();
    assert_eq!(scorer.score_samples(&rows, 0).unwrap(), direct);
    fault::reset();
}

/// Load shedding under a wedged backend: shed requests get the typed
/// status-2 frame while the requests that made it into the bounded
/// queue still score correctly.
#[test]
fn overloaded_server_sheds_typed_while_cobatched_requests_score() {
    let _serial = fault::tests_serialized();
    fault::reset();
    let frozen = Arc::new(FrozenDetector::freeze(base_config(), &reference()).unwrap());
    let rows = stream_rows(3);
    let direct = frozen.score_samples(&rows, 0).unwrap();
    // Every panel crawls (every worker job sleeps), the queue holds one
    // sample, and panels never coalesce — so three concurrent requests
    // must produce at least one typed shed.
    fault::arm(
        "supervisor::worker",
        FaultSpec::every(FaultAction::Delay(Duration::from_millis(150)), 1, 0),
    );
    let mut server = QuorumServer::bind_supervised(
        "127.0.0.1:0",
        Arc::clone(&frozen),
        CoalescePolicy {
            max_batch: 1,
            max_wait: Duration::from_micros(1),
        },
        OverloadPolicy {
            queue_capacity: 1,
            request_deadline: None,
        },
        &ShardPolicy::Workers(1),
        fast_supervisor(),
    )
    .unwrap();
    let addr = server.local_addr();
    let results: Vec<(usize, Result<f64, ServeError>)> = std::thread::scope(|s| {
        let handles: Vec<_> = rows
            .iter()
            .enumerate()
            .map(|(i, row)| {
                let row = row.clone();
                s.spawn(move || {
                    let mut client = ScoreClient::connect(addr).unwrap();
                    (i, client.score(&row))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut scored = 0usize;
    let mut shed = 0usize;
    for (i, result) in results {
        match result {
            Ok(score) => {
                assert_eq!(score, direct[i], "a scored request must be exact");
                scored += 1;
            }
            Err(ServeError::Overloaded(_)) => shed += 1,
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }
    assert!(scored >= 1, "the in-flight request must still score");
    assert!(shed >= 1, "a full queue must shed at least one request");
    assert_eq!(server.shed_total(), shed as u64);
    fault::reset();
    server.shutdown();
}

/// A torn response frame (server crashes mid-write) surfaces as a
/// transport error without retry, and `score_with_retry` survives it by
/// reconnecting and resending — bit-identically, because scoring is
/// stateless and a resent row is idempotent.
#[test]
fn torn_response_frame_is_survived_by_client_retry() {
    let _serial = fault::tests_serialized();
    fault::reset();
    let frozen = Arc::new(FrozenDetector::freeze(base_config(), &reference()).unwrap());
    let row = &stream_rows(1)[0];
    let direct = frozen.score_samples(std::slice::from_ref(row), 0).unwrap()[0];
    let mut server = QuorumServer::bind(
        "127.0.0.1:0",
        Arc::clone(&frozen),
        CoalescePolicy::default(),
    )
    .unwrap();
    // Without retries a torn frame is a typed transport error.
    fault::arm(
        "server::write_frame",
        FaultSpec::on_hit(FaultAction::TornWrite { keep_bytes: 3 }, 1),
    );
    let mut plain = ScoreClient::connect(server.local_addr()).unwrap();
    plain
        .set_timeouts(Some(Duration::from_secs(5)), Some(Duration::from_secs(5)))
        .unwrap();
    let err = plain.score(row).unwrap_err();
    assert!(matches!(err, ServeError::Io(_)), "got {err:?}");
    // With retries the client reconnects, resends and gets the exact
    // score the untorn run produces.
    fault::arm(
        "server::write_frame",
        FaultSpec::on_hit(FaultAction::TornWrite { keep_bytes: 3 }, 1),
    );
    let mut retrying = ScoreClient::connect(server.local_addr()).unwrap();
    retrying.set_retry(RetryPolicy {
        max_retries: 3,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(5),
        jitter: 0.5,
        seed: 7,
    });
    assert_eq!(retrying.score_with_retry(row).unwrap(), direct);
    fault::reset();
    server.shutdown();
}

/// The exhaustive kill-worker-mid-stream soak: a seeded pseudo-random
/// quarter of all worker jobs panic across a 40-panel stream while the
/// supervisor restarts and re-folds around them — every panel must stay
/// bit-identical to the uninterrupted run. Run with `--ignored` (the
/// ignored-suite CI job does).
#[test]
#[ignore = "exhaustive chaos soak; run with --ignored"]
fn kill_worker_soak_is_bit_identical_over_a_long_stream() {
    let _serial = fault::tests_serialized();
    fault::reset();
    let frozen = Arc::new(FrozenDetector::freeze(base_config(), &reference()).unwrap());
    let rows = stream_rows(6);
    let direct = frozen.score_samples(&rows, 0).unwrap();
    let policy = SupervisorPolicy {
        max_restarts: 10,
        backoff_base: Duration::from_micros(200),
        backoff_cap: Duration::from_millis(2),
        request_retries: 8,
    };
    let scorer =
        SupervisedScorer::new(Arc::clone(&frozen), &ShardPolicy::Workers(3), policy).unwrap();
    // A quarter of all jobs die, chosen by a seeded hash — a different
    // crash pattern than any fixed schedule, replayed exactly on every
    // run of this test.
    fault::arm(
        "supervisor::worker",
        FaultSpec::seeded(FaultAction::Panic, 0xC4A05, 1, 4),
    );
    for panel in 0..40 {
        let scores = scorer.score_samples(&rows, 0).unwrap();
        assert_eq!(scores, direct, "panel {panel} diverged under chaos");
    }
    assert!(
        scorer.restarts_total() > 0,
        "a quarter of jobs panicking must have killed at least one worker"
    );
    let health = scorer.shard_health();
    assert_eq!(
        health.iter().map(|s| s.groups).sum::<usize>(),
        frozen.groups().len(),
        "group ownership must stay a partition under churn"
    );
    fault::reset();
}
