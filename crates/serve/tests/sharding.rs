//! Shard-plan invariance suite: a sharded detector must be
//! bit-identical to the single-process one for every shard count,
//! execution mode and per-shard engine assignment — scores are invariant
//! to the shard plan the same way they are invariant to coalescing.

use qdata::Dataset;
use qsim::NoiseModel;
use quorum_core::config::{EngineKind, ExecutionMode};
use quorum_core::QuorumConfig;
use quorum_serve::{
    CoalescePolicy, FrozenDetector, QuorumServer, ScoreClient, ServeError, ShardPlan, ShardPolicy,
    ShardedScorer,
};
use std::sync::Arc;
use std::time::Duration;

const GROUPS: usize = 5;

/// A deterministic 12×7 dataset with enough spread for stable buckets.
fn reference() -> Dataset {
    let rows: Vec<Vec<f64>> = (0..12)
        .map(|i| {
            (0..7)
                .map(|j| {
                    let x = (i * 7 + j) as f64;
                    (x * 0.37).sin() * (1.0 + 0.1 * j as f64) + 0.01 * x
                })
                .collect()
        })
        .collect();
    Dataset::from_rows("shard-ref", rows, None).unwrap()
}

/// Streamed rows distinct from the reference set.
fn stream_rows(count: usize) -> Vec<Vec<f64>> {
    (0..count)
        .map(|i| {
            (0..7)
                .map(|j| ((i * 13 + j * 5) as f64 * 0.23).cos() * 0.8 + 0.05 * j as f64)
                .collect()
        })
        .collect()
}

fn base_config() -> QuorumConfig {
    QuorumConfig::default()
        .with_data_qubits(3)
        .with_ensemble_groups(GROUPS)
        .with_ansatz_layers(2)
        .with_threads(2)
        .with_seed(0x5EEF_1E55)
}

fn noisy_config(engine: EngineKind) -> QuorumConfig {
    base_config()
        .with_engine(engine)
        .with_execution(ExecutionMode::Noisy {
            noise: NoiseModel::brisbane(),
            shots: Some(128),
        })
}

/// Pins the core invariance: for every worker count, the sharded scores
/// equal the single-process streamed scores bit for bit.
fn assert_shard_invariant(config: QuorumConfig, shard_counts: &[usize]) {
    let frozen = Arc::new(FrozenDetector::freeze(config, &reference()).unwrap());
    let rows = stream_rows(9);
    let single = frozen.score_samples(&rows, 7).unwrap();
    for &k in shard_counts {
        let sharded = ShardedScorer::new(Arc::clone(&frozen), &ShardPolicy::Workers(k)).unwrap();
        let scores = sharded.score_samples(&rows, 7).unwrap();
        assert_eq!(
            scores, single,
            "K={k} sharded scores must be bit-identical to the single process"
        );
        // Still identical on a second panel (workers are resident, ids
        // advance) and for the empty panel.
        let single_next = frozen.score_samples(&rows[..3], 16).unwrap();
        assert_eq!(sharded.score_samples(&rows[..3], 16).unwrap(), single_next);
        assert!(sharded.score_samples(&[], 0).unwrap().is_empty());
    }
}

#[test]
fn sharded_is_bit_identical_exact() {
    assert_shard_invariant(base_config(), &[1, 2, 3, GROUPS]);
}

#[test]
fn sharded_is_bit_identical_sampled() {
    assert_shard_invariant(
        base_config().with_execution(ExecutionMode::Sampled { shots: 256 }),
        &[1, 2, 3, GROUPS],
    );
}

#[test]
fn sharded_is_bit_identical_noisy() {
    assert_shard_invariant(noisy_config(EngineKind::Density), &[1, 2, GROUPS]);
}

/// Exhaustive variant for CI's `--ignored` pass: every worker count from
/// 1 to the group count, across execution modes, plus more shards than
/// groups (some shards idle, scores unchanged).
#[test]
#[ignore = "exhaustive; run explicitly or in CI's --ignored pass"]
fn sharded_is_bit_identical_exhaustive() {
    let all: Vec<usize> = (1..=GROUPS).chain([GROUPS + 3]).collect();
    assert_shard_invariant(base_config(), &all);
    assert_shard_invariant(base_config().with_engine(EngineKind::Analytic), &all);
    assert_shard_invariant(
        base_config().with_execution(ExecutionMode::Sampled { shots: 64 }),
        &all,
    );
    assert_shard_invariant(noisy_config(EngineKind::Density), &all);
    assert_shard_invariant(noisy_config(EngineKind::DensityStructured), &all);
}

/// Mixed per-shard engines: a noisy detector splitting its groups
/// between a dense-density shard and a structured-channel shard must be
/// bit-identical to a single process that evaluates each group with the
/// same assigned engine — and must agree with the plain single-engine
/// run to numerical tolerance (the two density representations agree to
/// ~1e-12 relative, not bit-exactly).
#[test]
fn mixed_engine_shards_match_the_same_assignment_reference() {
    let frozen =
        Arc::new(FrozenDetector::freeze(noisy_config(EngineKind::Density), &reference()).unwrap());
    let rows = stream_rows(6);
    let policy = ShardPolicy::Mixed(vec![
        Some(EngineKind::Density),
        Some(EngineKind::DensityStructured),
    ]);
    let sharded = ShardedScorer::new(Arc::clone(&frozen), &policy).unwrap();
    let scores = sharded.score_samples(&rows, 0).unwrap();

    // Single-process reference with the identical group→engine map,
    // summed in ascending group order exactly like the scorer.
    let mut engine_for_group = [None; GROUPS];
    for shard in sharded.plan().shards() {
        for &g in shard.groups() {
            engine_for_group[g] = shard.engine();
        }
    }
    let mut reference_scores = vec![0.0; rows.len()];
    for (g, &engine) in engine_for_group.iter().enumerate() {
        let partial = frozen.stream_group_scores(g, &rows, 0, engine).unwrap();
        for (t, p) in reference_scores.iter_mut().zip(partial) {
            *t += p;
        }
    }
    assert_eq!(
        scores, reference_scores,
        "mixed-engine sharding must match the same-assignment single process bit for bit"
    );

    let plain = frozen.score_samples(&rows, 0).unwrap();
    for (s, p) in scores.iter().zip(&plain) {
        assert!(
            (s - p).abs() <= 1e-9 * p.abs().max(1.0),
            "mixed-engine scores must agree with the uniform run numerically ({s} vs {p})"
        );
    }
}

/// The TCP protocol is unchanged under sharding: a `bind_sharded` server
/// answers with scores bit-identical to the in-process single-worker
/// path (exact mode, so arrival-order id assignment is immaterial).
#[test]
fn sharded_tcp_server_matches_the_single_process() {
    let frozen = Arc::new(FrozenDetector::freeze(base_config(), &reference()).unwrap());
    let rows = stream_rows(5);
    let direct = frozen.score_samples(&rows, 0).unwrap();
    let mut server = QuorumServer::bind_sharded(
        "127.0.0.1:0",
        Arc::clone(&frozen),
        CoalescePolicy {
            max_batch: 4,
            max_wait: Duration::from_millis(2),
        },
        &ShardPolicy::Workers(2),
    )
    .unwrap();
    let mut client = ScoreClient::connect_with_timeouts(
        server.local_addr(),
        Some(Duration::from_secs(30)),
        Some(Duration::from_secs(30)),
    )
    .unwrap();
    for (row, want) in rows.iter().zip(&direct) {
        let got = client.score(row).unwrap();
        assert_eq!(got, *want);
    }
    drop(client);
    server.shutdown();
}

/// `ShardPolicy::Single` through `bind_sharded` serves the plain frozen
/// detector — same answers, no worker fleet.
#[test]
fn bind_sharded_single_policy_degrades_to_plain_serving() {
    let frozen = Arc::new(FrozenDetector::freeze(base_config(), &reference()).unwrap());
    let rows = stream_rows(3);
    let direct = frozen.score_samples(&rows, 0).unwrap();
    let mut server = QuorumServer::bind_sharded(
        "127.0.0.1:0",
        Arc::clone(&frozen),
        CoalescePolicy::default(),
        &ShardPolicy::Single,
    )
    .unwrap();
    let mut client = ScoreClient::connect(server.local_addr()).unwrap();
    for (row, want) in rows.iter().zip(&direct) {
        assert_eq!(client.score(row).unwrap(), *want);
    }
    drop(client);
    server.shutdown();
}

/// Plans derived from a detector cover every group exactly once and
/// spread them across the requested workers.
#[test]
fn detector_plans_cover_every_group() {
    let frozen = FrozenDetector::freeze(base_config(), &reference()).unwrap();
    for k in [1, 2, 3, GROUPS, GROUPS + 2] {
        let plan = ShardPlan::for_detector(&frozen, &ShardPolicy::Workers(k)).unwrap();
        assert_eq!(plan.num_shards(), k);
        let mut seen = [0usize; GROUPS];
        for shard in plan.shards() {
            for &g in shard.groups() {
                seen[g] += 1;
            }
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "K={k} plan must cover every group once"
        );
        // Near-uniform group costs: no shard hoards more than its share.
        let max = plan
            .shards()
            .iter()
            .map(|s| s.groups().len())
            .max()
            .unwrap();
        assert!(
            max <= GROUPS.div_ceil(k),
            "K={k} plan must balance ({max} groups on one shard)"
        );
    }
}

/// Hand-built plans that miss or duplicate groups are rejected, as are
/// engine overrides the frozen execution mode cannot run.
#[test]
fn invalid_plans_and_overrides_are_rejected() {
    let frozen = Arc::new(FrozenDetector::freeze(base_config(), &reference()).unwrap());
    // Zero workers / empty mixed policies.
    assert!(matches!(
        ShardedScorer::new(Arc::clone(&frozen), &ShardPolicy::Workers(0)),
        Err(ServeError::Request(_))
    ));
    assert!(matches!(
        ShardedScorer::new(Arc::clone(&frozen), &ShardPolicy::Mixed(Vec::new())),
        Err(ServeError::Request(_))
    ));
    // Degenerate plans are typed errors, not panics.
    assert!(matches!(
        ShardPlan::balanced(&[1.0; GROUPS], &[], &[]),
        Err(ServeError::Request(_))
    ));
    // A plan that drops group 4 (costs only cover 4 groups).
    let partial = ShardPlan::balanced(&[1.0; GROUPS - 1], &[1.0, 1.0], &[None, None]).unwrap();
    assert!(matches!(
        ShardedScorer::with_plan(Arc::clone(&frozen), partial),
        Err(ServeError::Request(_))
    ));
    // A density engine override on an exact-mode detector.
    let bad = ShardPolicy::Mixed(vec![None, Some(EngineKind::Density)]);
    assert!(ShardedScorer::new(Arc::clone(&frozen), &bad).is_err());
    // And a pure-state override on a noisy detector.
    let noisy =
        Arc::new(FrozenDetector::freeze(noisy_config(EngineKind::Density), &reference()).unwrap());
    let bad = ShardPolicy::Mixed(vec![Some(EngineKind::Batched), None]);
    assert!(ShardedScorer::new(noisy, &bad).is_err());
}

/// Request validation still happens once, up front: a wrong-width panel
/// errors identically to the single-process path and empty panels are
/// free.
#[test]
fn sharded_request_validation_matches_single_process() {
    let frozen = Arc::new(FrozenDetector::freeze(base_config(), &reference()).unwrap());
    let sharded = ShardedScorer::new(Arc::clone(&frozen), &ShardPolicy::Workers(2)).unwrap();
    let bad = vec![vec![0.5; 3]];
    let sharded_err = sharded.score_samples(&bad, 0).unwrap_err().to_string();
    let single_err = frozen.score_samples(&bad, 0).unwrap_err().to_string();
    assert_eq!(sharded_err, single_err);
    assert!(sharded_err.contains("expected 7 features, got 3"));
}
