//! End-to-end serving-runtime tests: freeze/thaw bit-identity across
//! execution modes and engines, coalescing invariance, sampled-draw
//! reproducibility, and the TCP server under concurrent clients.

use qdata::Dataset;
use qsim::NoiseModel;
use quorum_core::config::{EngineKind, ExecutionMode, Normalization};
use quorum_core::{QuorumConfig, QuorumDetector};
use quorum_serve::{
    BatchScorer, CoalescePolicy, FrozenArtifact, FrozenDetector, OverloadPolicy, QuorumServer,
    ScoreClient, ServeError, ShardLiveness, ShardPolicy, SupervisorPolicy,
};
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// A deterministic 12×7 dataset with enough spread for stable buckets.
fn reference() -> Dataset {
    let rows: Vec<Vec<f64>> = (0..12)
        .map(|i| {
            (0..7)
                .map(|j| {
                    let x = (i * 7 + j) as f64;
                    (x * 0.37).sin() * (1.0 + 0.1 * j as f64) + 0.01 * x
                })
                .collect()
        })
        .collect();
    Dataset::from_rows("serve-ref", rows, None).unwrap()
}

/// Streamed rows distinct from the reference set.
fn stream_rows(count: usize) -> Vec<Vec<f64>> {
    (0..count)
        .map(|i| {
            (0..7)
                .map(|j| ((i * 13 + j * 5) as f64 * 0.23).cos() * 0.8 + 0.05 * j as f64)
                .collect()
        })
        .collect()
}

fn base_config() -> QuorumConfig {
    QuorumConfig::default()
        .with_data_qubits(3)
        .with_ensemble_groups(5)
        .with_ansatz_layers(2)
        .with_threads(2)
        .with_seed(0x5EEF_1E55)
}

/// Freeze → serialize → deserialize → thaw must reproduce the
/// in-process pipeline bit-for-bit on the reference dataset.
fn assert_round_trip_bit_identical(config: QuorumConfig) {
    let ds = reference();
    let in_process = QuorumDetector::new(config.clone())
        .unwrap()
        .score(&ds)
        .unwrap();
    let frozen = FrozenDetector::freeze(config, &ds).unwrap();
    let bytes = frozen.to_bytes().unwrap();
    let thawed = FrozenDetector::from_bytes(&bytes).unwrap();
    let served = thawed.score_dataset(&ds).unwrap();
    assert_eq!(
        in_process.scores(),
        served.scores(),
        "thawed scores must be bit-identical to the in-process run"
    );
}

#[test]
fn round_trip_is_bit_identical_exact_default_engine() {
    assert_round_trip_bit_identical(base_config());
}

#[test]
fn round_trip_is_bit_identical_exact_across_engines() {
    for engine in [
        EngineKind::Analytic,
        EngineKind::Batched,
        EngineKind::Circuit,
    ] {
        assert_round_trip_bit_identical(base_config().with_engine(engine));
    }
}

#[test]
fn round_trip_is_bit_identical_sampled() {
    assert_round_trip_bit_identical(
        base_config().with_execution(ExecutionMode::Sampled { shots: 256 }),
    );
}

#[test]
fn round_trip_is_bit_identical_noisy_across_engines() {
    let noise = NoiseModel::brisbane();
    for engine in [
        EngineKind::Density,
        EngineKind::DensityStructured,
        EngineKind::DensitySample,
    ] {
        assert_round_trip_bit_identical(base_config().with_engine(engine).with_execution(
            ExecutionMode::Noisy {
                noise: noise.clone(),
                shots: Some(128),
            },
        ));
    }
}

#[test]
fn round_trip_is_bit_identical_minmax_normalization() {
    assert_round_trip_bit_identical(base_config().with_normalization(Normalization::MinMax));
}

/// Thawing pre-fuses: a full reference replay on a thawed noisy detector
/// must not trigger any new superoperator fusions.
#[test]
fn thaw_prewarms_the_noisy_caches() {
    let config = base_config().with_execution(ExecutionMode::Noisy {
        noise: NoiseModel::brisbane(),
        shots: None,
    });
    let ds = reference();
    let frozen = FrozenDetector::freeze(config, &ds).unwrap();
    let thawed = FrozenDetector::from_bytes(&frozen.to_bytes().unwrap()).unwrap();
    let fusions_after_thaw: Vec<usize> = thawed
        .groups()
        .iter()
        .map(|g| g.noisy_superop_fusions())
        .collect();
    assert!(
        fusions_after_thaw.iter().all(|&f| f > 0),
        "thaw must pre-warm every group's superoperator cache"
    );
    thawed.score_dataset(&ds).unwrap();
    let fusions_after_score: Vec<usize> = thawed
        .groups()
        .iter()
        .map(|g| g.noisy_superop_fusions())
        .collect();
    assert_eq!(
        fusions_after_thaw, fusions_after_score,
        "scoring after thaw must hit only warm caches"
    );
}

/// Streamed scoring is batch-invariant: one coalesced panel must give
/// bit-identical scores to scoring each sample alone under its id.
fn assert_coalescing_invariant(config: QuorumConfig) {
    let frozen = FrozenDetector::freeze(config, &reference()).unwrap();
    let rows = stream_rows(6);
    let batched = frozen.score_samples(&rows, 100).unwrap();
    for (j, row) in rows.iter().enumerate() {
        let alone = frozen
            .score_samples(std::slice::from_ref(row), 100 + j as u64)
            .unwrap();
        assert_eq!(
            alone[0], batched[j],
            "sample {j} must score identically alone and in a panel"
        );
    }
}

#[test]
fn coalescing_is_invariant_exact() {
    assert_coalescing_invariant(base_config());
}

#[test]
fn coalescing_is_invariant_with_shots() {
    assert_coalescing_invariant(
        base_config().with_execution(ExecutionMode::Sampled { shots: 512 }),
    );
}

#[test]
fn coalescing_is_invariant_noisy_with_shots() {
    assert_coalescing_invariant(base_config().with_execution(ExecutionMode::Noisy {
        noise: NoiseModel::brisbane(),
        shots: Some(256),
    }));
}

/// Sampled draws are a pure function of (config, group, level, id): the
/// same rows under the same ids score identically across calls, and a
/// different id changes the draw.
#[test]
fn sampled_draws_are_reproducible_and_id_dependent() {
    let config = base_config().with_execution(ExecutionMode::Sampled { shots: 64 });
    let frozen = FrozenDetector::freeze(config, &reference()).unwrap();
    let rows = stream_rows(3);
    let first = frozen.score_samples(&rows, 7).unwrap();
    let second = frozen.score_samples(&rows, 7).unwrap();
    assert_eq!(first, second, "same ids must reproduce the same draws");
    let shifted = frozen.score_samples(&rows, 8).unwrap();
    assert_ne!(
        first, shifted,
        "shifting the ids must change the shot noise"
    );
}

/// Exact-mode streamed scores do not depend on the id at all.
#[test]
fn exact_streamed_scores_ignore_the_sample_id() {
    let frozen = FrozenDetector::freeze(base_config(), &reference()).unwrap();
    let rows = stream_rows(4);
    assert_eq!(
        frozen.score_samples(&rows, 0).unwrap(),
        frozen.score_samples(&rows, 9999).unwrap()
    );
}

#[test]
fn score_samples_rejects_bad_rows() {
    let frozen = FrozenDetector::freeze(base_config(), &reference()).unwrap();
    assert!(matches!(
        frozen.score_samples(&[vec![1.0; 3]], 0),
        Err(ServeError::Request(_))
    ));
    assert!(matches!(
        frozen.score_samples(&[vec![f64::NAN; 7]], 0),
        Err(ServeError::Request(_))
    ));
    assert!(frozen.score_samples(&[], 0).unwrap().is_empty());
}

#[test]
fn tampered_artifacts_thaw_to_typed_errors() {
    let frozen = FrozenDetector::freeze(base_config(), &reference()).unwrap();
    let artifact = frozen.to_artifact().unwrap();
    // Duplicate feature columns would otherwise panic inside the core
    // feature-selection constructor.
    let mut bad = artifact_clone(&artifact);
    let first = bad.groups[0].feature_columns[0];
    *bad.groups[0].feature_columns.last_mut().unwrap() = first;
    let rebuilt = FrozenArtifact::from_bytes(&bad.to_bytes().unwrap()).unwrap();
    assert!(matches!(
        FrozenDetector::thaw(rebuilt),
        Err(ServeError::Artifact(_))
    ));
    // A bucket index beyond the reference set.
    let mut bad = artifact_clone(&artifact);
    bad.groups[0].buckets[0][0] = bad.reference_samples + 1;
    let rebuilt = FrozenArtifact::from_bytes(&bad.to_bytes().unwrap()).unwrap();
    assert!(matches!(
        FrozenDetector::thaw(rebuilt),
        Err(ServeError::Artifact(_))
    ));
}

/// Round-trips an artifact through bytes to get an owned copy to mutate.
fn artifact_clone(artifact: &FrozenArtifact) -> FrozenArtifact {
    FrozenArtifact::from_bytes(&artifact.to_bytes().unwrap()).unwrap()
}

/// Concurrent submissions through the batcher coalesce into fewer panels
/// than samples, and every score matches the direct path.
#[test]
fn batch_scorer_coalesces_concurrent_requests() {
    let frozen = Arc::new(FrozenDetector::freeze(base_config(), &reference()).unwrap());
    let rows = stream_rows(8);
    let direct = frozen.score_samples(&rows, 0).unwrap();
    let scorer = BatchScorer::start(
        Arc::clone(&frozen),
        CoalescePolicy {
            max_batch: 8,
            max_wait: Duration::from_millis(200),
        },
    )
    .unwrap();
    let barrier = Arc::new(Barrier::new(rows.len()));
    let scores: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = rows
            .iter()
            .map(|row| {
                let handle = scorer.handle();
                let barrier = Arc::clone(&barrier);
                let row = row.clone();
                s.spawn(move || {
                    barrier.wait();
                    handle.score(row).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(scorer.samples_scored(), rows.len() as u64);
    assert!(
        scorer.batches_dispatched() < rows.len() as u64,
        "concurrent requests must coalesce into fewer panels ({} batches for {} samples)",
        scorer.batches_dispatched(),
        rows.len()
    );
    // Exact mode: scores are id-independent, so coalescing order cannot
    // matter and every score must equal the direct path's.
    for (got, want) in scores.iter().zip(&direct) {
        assert_eq!(got, want);
    }
}

/// Full TCP path: concurrent clients against a live server, every score
/// bit-identical to the direct in-process streamed path (exact mode, so
/// arrival-order id assignment is immaterial).
#[test]
fn tcp_server_scores_concurrent_clients_correctly() {
    let frozen = Arc::new(FrozenDetector::freeze(base_config(), &reference()).unwrap());
    let rows = stream_rows(6);
    let direct = frozen.score_samples(&rows, 0).unwrap();
    let mut server = QuorumServer::bind(
        "127.0.0.1:0",
        Arc::clone(&frozen),
        CoalescePolicy {
            max_batch: 4,
            max_wait: Duration::from_millis(5),
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let scores: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = rows
            .iter()
            .map(|row| {
                let row = row.clone();
                s.spawn(move || {
                    let mut client = ScoreClient::connect(addr).unwrap();
                    client.score(&row).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(scores, direct);
    assert_eq!(server.samples_scored(), rows.len() as u64);
    server.shutdown();
}

/// A malformed request gets an error frame and the connection stays
/// usable for the next request.
#[test]
fn tcp_server_answers_width_mismatch_and_keeps_the_connection() {
    let frozen = Arc::new(FrozenDetector::freeze(base_config(), &reference()).unwrap());
    let mut server = QuorumServer::bind(
        "127.0.0.1:0",
        Arc::clone(&frozen),
        CoalescePolicy::default(),
    )
    .unwrap();
    let mut client = ScoreClient::connect(server.local_addr()).unwrap();
    let err = client.score(&[1.0, 2.0]).unwrap_err();
    assert!(matches!(err, ServeError::Request(_)), "got {err:?}");
    let row = &stream_rows(1)[0];
    let direct = frozen.score_samples(std::slice::from_ref(row), 0).unwrap();
    assert_eq!(client.score(row).unwrap(), direct[0]);
    server.shutdown();
}

/// One client streaming many samples sequentially: the server must hold
/// up over a long-lived connection and agree with the direct path.
#[test]
fn tcp_server_sustains_a_long_lived_connection() {
    let frozen = Arc::new(FrozenDetector::freeze(base_config(), &reference()).unwrap());
    let rows = stream_rows(20);
    let direct = frozen.score_samples(&rows, 0).unwrap();
    let mut server = QuorumServer::bind(
        "127.0.0.1:0",
        Arc::clone(&frozen),
        CoalescePolicy {
            max_batch: 4,
            max_wait: Duration::from_micros(100),
        },
    )
    .unwrap();
    let mut client = ScoreClient::connect(server.local_addr()).unwrap();
    for (row, want) in rows.iter().zip(&direct) {
        assert_eq!(client.score(row).unwrap(), *want);
    }
    assert_eq!(server.samples_scored(), rows.len() as u64);
    server.shutdown();
}

/// Failure isolation through the public batching API: a wrong-width row
/// is rejected at enqueue and a width-valid-but-unscorable row (NaNs)
/// fails its panel — in both cases every concurrently enqueued good row
/// still gets its exact score.
#[test]
fn bad_rows_do_not_fail_their_panel_company() {
    let frozen = Arc::new(FrozenDetector::freeze(base_config(), &reference()).unwrap());
    let good = stream_rows(6);
    let direct = frozen.score_samples(&good, 0).unwrap();
    let scorer = BatchScorer::start(
        Arc::clone(&frozen),
        CoalescePolicy {
            max_batch: 8,
            max_wait: Duration::from_millis(200),
        },
    )
    .unwrap();
    // Round 1: a short row rides along with six good ones. Width is
    // validated at enqueue, so the bad submission never occupies a
    // panel slot and the good rows coalesce undisturbed.
    let (scores, width_err) = std::thread::scope(|s| {
        let barrier = Arc::new(Barrier::new(good.len() + 1));
        let goods: Vec<_> = good
            .iter()
            .map(|row| {
                let handle = scorer.handle();
                let barrier = Arc::clone(&barrier);
                let row = row.clone();
                s.spawn(move || {
                    barrier.wait();
                    handle.score(row)
                })
            })
            .collect();
        let bad = {
            let handle = scorer.handle();
            let barrier = Arc::clone(&barrier);
            s.spawn(move || {
                barrier.wait();
                handle.score(vec![1.0, 2.0])
            })
        };
        (
            goods
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<_>>(),
            bad.join().unwrap(),
        )
    });
    let err = width_err.unwrap_err();
    assert!(matches!(err, ServeError::Request(_)), "got {err:?}");
    assert!(err.to_string().contains("expected 7 features, got 2"));
    for (got, want) in scores.iter().zip(&direct) {
        assert_eq!(got.as_ref().unwrap(), want);
    }
    // Round 2: a NaN row has the right width, so it passes enqueue and
    // poisons its coalesced panel. The batcher rescores each row alone —
    // only the NaN submission errors, and coalescing invariance keeps
    // the good rows' scores exact.
    let (scores, nan_err) = std::thread::scope(|s| {
        let barrier = Arc::new(Barrier::new(good.len() + 1));
        let goods: Vec<_> = good
            .iter()
            .map(|row| {
                let handle = scorer.handle();
                let barrier = Arc::clone(&barrier);
                let row = row.clone();
                s.spawn(move || {
                    barrier.wait();
                    handle.score(row)
                })
            })
            .collect();
        let bad = {
            let handle = scorer.handle();
            let barrier = Arc::clone(&barrier);
            s.spawn(move || {
                barrier.wait();
                handle.score(vec![f64::NAN; 7])
            })
        };
        (
            goods
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<_>>(),
            bad.join().unwrap(),
        )
    });
    assert!(nan_err.is_err(), "a NaN row must fail its own request");
    for (got, want) in scores.iter().zip(&direct) {
        assert_eq!(
            got.as_ref().unwrap(),
            want,
            "good rows must survive a poisoned panel with exact scores"
        );
    }
}

/// A connect/score/disconnect soak must not accumulate connection state:
/// handlers reap their slab entry (closing the server-side fd clone) as
/// they exit, so the live-connection count returns to zero.
#[test]
fn connection_soak_leaves_no_tracked_connections() {
    let frozen = Arc::new(FrozenDetector::freeze(base_config(), &reference()).unwrap());
    let mut server = QuorumServer::bind(
        "127.0.0.1:0",
        Arc::clone(&frozen),
        CoalescePolicy::default(),
    )
    .unwrap();
    let row = &stream_rows(1)[0];
    for _ in 0..20 {
        let mut client = ScoreClient::connect(server.local_addr()).unwrap();
        client.score(row).unwrap();
        drop(client);
    }
    // Handlers observe the disconnect asynchronously; poll briefly.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.open_connections() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        server.open_connections(),
        0,
        "disconnected clients must not leave tracked connections behind"
    );
    server.shutdown();
}

/// A wedged server must not hang the client forever: with a read
/// deadline set, `score` surfaces a transport error instead of blocking.
#[test]
fn client_read_timeout_fires_against_a_stalled_server() {
    // A bound listener that accepts and then never answers.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stall = std::thread::spawn(move || {
        // Hold the accepted socket open without reading or writing until
        // the client has timed out.
        let conn = listener.accept().map(|(conn, _)| conn);
        std::thread::sleep(Duration::from_millis(500));
        drop(conn);
    });
    let mut client = ScoreClient::connect_with_timeouts(
        addr,
        Some(Duration::from_millis(50)),
        Some(Duration::from_millis(50)),
    )
    .unwrap();
    let started = std::time::Instant::now();
    let err = client.score(&stream_rows(1)[0]).unwrap_err();
    assert!(matches!(err, ServeError::Io(_)), "got {err:?}");
    assert!(
        started.elapsed() < Duration::from_millis(450),
        "the deadline must fire well before the server unwedges"
    );
    stall.join().unwrap();
}

/// An implausible declared feature count is answered with an error frame
/// and then the connection closes: the declared length is the stream's
/// only framing, so an untrustworthy one cannot be resynchronised.
#[test]
fn implausible_feature_count_is_answered_then_closed() {
    use std::io::{Read, Write};
    let frozen = Arc::new(FrozenDetector::freeze(base_config(), &reference()).unwrap());
    let mut server = QuorumServer::bind(
        "127.0.0.1:0",
        Arc::clone(&frozen),
        CoalescePolicy::default(),
    )
    .unwrap();
    let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    // u32::MAX is the protocol-v2 health sentinel, so the largest
    // *hostile* count is one below it — still far over the feature cap.
    raw.write_all(&(u32::MAX - 1).to_le_bytes()).unwrap();
    let mut status = [0u8; 1];
    raw.read_exact(&mut status).unwrap();
    assert_eq!(status[0], 1, "the hostile frame still gets an error frame");
    let mut len_buf = [0u8; 4];
    raw.read_exact(&mut len_buf).unwrap();
    let mut msg = vec![0u8; u32::from_le_bytes(len_buf) as usize];
    raw.read_exact(&mut msg).unwrap();
    assert!(String::from_utf8_lossy(&msg).contains("implausible feature count"));
    // ... and then EOF: the server closed rather than trying to drain an
    // attacker-sized payload.
    let mut probe = [0u8; 1];
    assert_eq!(
        raw.read(&mut probe).unwrap(),
        0,
        "connection must be closed"
    );
    server.shutdown();
}

/// A health probe (protocol v2) answers batcher statistics without
/// disturbing scoring, and the connection stays usable for both kinds
/// of request interleaved.
#[test]
fn health_probe_reports_server_liveness() {
    let frozen = Arc::new(FrozenDetector::freeze(base_config(), &reference()).unwrap());
    let rows = stream_rows(3);
    let direct = frozen.score_samples(&rows, 0).unwrap();
    let mut server = QuorumServer::bind(
        "127.0.0.1:0",
        Arc::clone(&frozen),
        CoalescePolicy::default(),
    )
    .unwrap();
    let mut client = ScoreClient::connect(server.local_addr()).unwrap();
    let fresh = client.health().unwrap();
    assert_eq!(fresh.protocol_version, 2);
    assert_eq!(fresh.samples_scored, 0);
    assert!(
        fresh.shards.is_empty(),
        "an unsharded backend reports no shard liveness"
    );
    for (row, want) in rows.iter().zip(&direct) {
        assert_eq!(client.score(row).unwrap(), *want);
    }
    let after = client.health().unwrap();
    assert_eq!(after.samples_scored, rows.len() as u64);
    assert_eq!(after.shed_total, 0);
    // The probe is answered outside the batching queue, so it never
    // shows up in the sample counters.
    assert_eq!(server.samples_scored(), rows.len() as u64);
    server.shutdown();
}

/// With a zero-capacity queue every request is shed with the typed
/// status-2 frame: the client surfaces `ServeError::Overloaded`, the
/// connection stays usable, and the shed totals show up in both the
/// server accessors and the health report.
#[test]
fn shed_requests_get_typed_overloaded_frames() {
    let frozen = Arc::new(FrozenDetector::freeze(base_config(), &reference()).unwrap());
    let mut server = QuorumServer::bind_with(
        "127.0.0.1:0",
        Arc::clone(&frozen),
        CoalescePolicy::default(),
        OverloadPolicy {
            queue_capacity: 0,
            request_deadline: None,
        },
    )
    .unwrap();
    let mut client = ScoreClient::connect(server.local_addr()).unwrap();
    let row = &stream_rows(1)[0];
    for _ in 0..3 {
        let err = client.score(row).unwrap_err();
        assert!(matches!(err, ServeError::Overloaded(_)), "got {err:?}");
    }
    assert_eq!(server.shed_total(), 3);
    let health = client.health().unwrap();
    assert_eq!(health.shed_total, 3);
    assert_eq!(health.samples_scored, 0);
    server.shutdown();
}

/// Supervised serving end-to-end without faults: scores are
/// bit-identical to the direct path and the health report carries one
/// live entry per shard worker.
#[test]
fn supervised_server_scores_bit_identical_and_reports_shards() {
    let frozen = Arc::new(FrozenDetector::freeze(base_config(), &reference()).unwrap());
    let rows = stream_rows(6);
    let direct = frozen.score_samples(&rows, 0).unwrap();
    let mut server = QuorumServer::bind_supervised(
        "127.0.0.1:0",
        Arc::clone(&frozen),
        CoalescePolicy {
            max_batch: 4,
            max_wait: Duration::from_millis(5),
        },
        OverloadPolicy::default(),
        &ShardPolicy::Workers(3),
        SupervisorPolicy::default(),
    )
    .unwrap();
    let mut client = ScoreClient::connect(server.local_addr()).unwrap();
    for (row, want) in rows.iter().zip(&direct) {
        assert_eq!(client.score(row).unwrap(), *want);
    }
    let health = client.health().unwrap();
    assert_eq!(health.shards.len(), 3);
    assert!(health
        .shards
        .iter()
        .all(|s| s.liveness == ShardLiveness::Live && s.restarts == 0));
    assert_eq!(
        health.shards.iter().map(|s| s.groups).sum::<usize>(),
        frozen.groups().len(),
        "every group stays owned by exactly one shard"
    );
    server.shutdown();
}

/// `score_with_retry` is a straight pass-through on a healthy server
/// and refuses to retry deterministic request errors.
#[test]
fn client_retry_passes_through_on_a_healthy_server() {
    let frozen = Arc::new(FrozenDetector::freeze(base_config(), &reference()).unwrap());
    let rows = stream_rows(4);
    let direct = frozen.score_samples(&rows, 0).unwrap();
    let mut server = QuorumServer::bind(
        "127.0.0.1:0",
        Arc::clone(&frozen),
        CoalescePolicy::default(),
    )
    .unwrap();
    let mut client = ScoreClient::connect(server.local_addr()).unwrap();
    for (row, want) in rows.iter().zip(&direct) {
        assert_eq!(client.score_with_retry(row).unwrap(), *want);
    }
    // A malformed row is a deterministic failure: no retry, immediate
    // typed error (retries would just repeat it).
    let started = std::time::Instant::now();
    let err = client.score_with_retry(&[1.0, 2.0]).unwrap_err();
    assert!(matches!(err, ServeError::Request(_)), "got {err:?}");
    assert!(
        started.elapsed() < Duration::from_millis(500),
        "request errors must not burn the backoff schedule"
    );
    server.shutdown();
}
