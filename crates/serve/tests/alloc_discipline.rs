//! Allocation discipline for the pooled serving hot path.
//!
//! Wraps the system allocator in a counter and asserts that steady-state
//! [`FrozenDetector::score_samples`] — after a warm-up that sizes the
//! thread-local panel, scratch, and GEMM buffers — performs **zero**
//! heap allocations of 1 KiB or more. Small per-call vectors (the
//! per-sample score totals, 256 B at batch 32) stay under the threshold
//! by design; anything panel- or matrix-shaped that slips back onto the
//! allocator trips the counter.
//!
//! This test owns its binary so no sibling test's allocations can leak
//! into the tracked window.

use qdata::Dataset;
use qsim::NoiseModel;
use quorum_core::config::{EngineKind, ExecutionMode};
use quorum_core::QuorumConfig;
use quorum_serve::FrozenDetector;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Allocations at or above this size are counted while tracking is on.
/// The pooled buffers (panel, packed state, GEMM scratch) are all well
/// above it; legitimate per-call vectors at batch 32 are well below.
const LARGE: usize = 1024;

static TRACKING: AtomicBool = AtomicBool::new(false);
static LARGE_ALLOCS: AtomicUsize = AtomicUsize::new(0);

struct CountingAlloc;

// SAFETY: delegates every operation to `System`; the counter is a pure
// observer with no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if layout.size() >= LARGE && TRACKING.load(Ordering::Relaxed) {
            LARGE_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if layout.size() >= LARGE && TRACKING.load(Ordering::Relaxed) {
            LARGE_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if new_size >= LARGE && TRACKING.load(Ordering::Relaxed) {
            LARGE_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Deterministic reference dataset (same shape as the serving suite).
fn reference() -> Dataset {
    let rows: Vec<Vec<f64>> = (0..12)
        .map(|i| {
            (0..7)
                .map(|j| {
                    let x = (i * 7 + j) as f64;
                    (x * 0.37).sin() * (1.0 + 0.1 * j as f64) + 0.01 * x
                })
                .collect()
        })
        .collect();
    Dataset::from_rows("alloc-ref", rows, None).unwrap()
}

/// A batch of 32 streamed rows distinct from the reference set.
fn batch32() -> Vec<Vec<f64>> {
    (0..32)
        .map(|i| {
            (0..7)
                .map(|j| ((i * 13 + j * 5) as f64 * 0.23).cos() * 0.8 + 0.05 * j as f64)
                .collect()
        })
        .collect()
}

/// The flagship serving configuration: noisy density scoring,
/// single-threaded GEMM (the serving sweet spot on one core).
fn serving_config() -> QuorumConfig {
    QuorumConfig::default()
        .with_data_qubits(3)
        .with_ensemble_groups(4)
        .with_ansatz_layers(2)
        .with_threads(1)
        .with_seed(0x5EEF_1E55)
        .with_engine(EngineKind::Density)
        .with_execution(ExecutionMode::Noisy {
            noise: NoiseModel::brisbane(),
            shots: None,
        })
}

#[test]
fn steady_state_score_samples_makes_no_large_allocations() {
    let frozen = FrozenDetector::freeze(serving_config(), &reference()).unwrap();
    let rows = batch32();

    // Warm-up: size the pooled panel, the thread-local density scratch,
    // and every noise/skeleton cache. Three rounds so second-order
    // lazy-init (fused superoperators, GEMM scratch growth) settles.
    let warm = frozen.score_samples(&rows, 0).unwrap();
    for i in 1..3u64 {
        let again = frozen.score_samples(&rows, 0).unwrap();
        assert_eq!(warm, again, "warm-up round {i} must be bit-identical");
    }

    LARGE_ALLOCS.store(0, Ordering::SeqCst);
    TRACKING.store(true, Ordering::SeqCst);
    for _ in 0..5 {
        let scores = frozen.score_samples(&rows, 0).unwrap();
        assert_eq!(scores, warm, "steady-state scores must stay bit-identical");
    }
    TRACKING.store(false, Ordering::SeqCst);

    let count = LARGE_ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        count, 0,
        "steady-state score_samples performed {count} allocation(s) of >= {LARGE} bytes; \
         the pooled request path must not touch the allocator for panel- or matrix-sized \
         buffers after warm-up"
    );
}
