//! Frozen-detector serving runtime for Quorum.
//!
//! Quorum's detectors need no training, but a long-lived service should
//! not redraw and refuse its ensemble per request either. This crate
//! freezes a generated detector — ensemble draws, fused encoders, bucket
//! partitions and pooled reference deviation statistics — into a
//! versioned, checksummed artifact, thaws it back into a resident
//! [`FrozenDetector`], and serves scores from a std-only threadpool TCP
//! server that coalesces concurrently arriving samples into one batched
//! engine panel (N samples or T µs, whichever comes first).
//!
//! Data flow:
//!
//! ```text
//! QuorumConfig + reference Dataset
//!         │ FrozenDetector::freeze
//!         ▼
//! FrozenArtifact bytes  (QUORUMFZ | version | length | checksum | payload)
//!         │ FrozenDetector::from_bytes (thaw + cache pre-warm)
//!         ▼
//! FrozenDetector ── score_dataset (reference replay, bit-identical)
//!         │
//!         └─ QuorumServer ── per-connection handlers ──► BatchScorer
//!                              coalesced 2^n×S panel ──► PanelScorer
//!                                      │
//!                      ┌───────────────┴───────────────┐
//!                      ▼ (bind)                        ▼ (bind_sharded)
//!              FrozenDetector                   ShardedScorer
//!              score_samples                    ShardPlan over groups
//!                                               shard 0 ── groups {0,3,…}
//!                                               shard 1 ── groups {1,2,…}
//!                                               Σ partials (ascending g)
//! ```
//!
//! Coalescing is invisible in the results: every per-sample score
//! depends only on the sample's row and its stable id, so batch
//! composition can never change an individual answer. Sharding is
//! invisible the same way: the ensemble score is an additive sum over
//! independent groups, so partitioning groups across shard workers and
//! summing their partial vectors in ascending group order reproduces the
//! single-process scores bit for bit, for every shard count and engine
//! assignment.
//!
//! Fault tolerance builds on the same invariant. A
//! [`SupervisedScorer`] runs each shard worker under `catch_unwind`,
//! restarts crashed workers with bounded exponential backoff, and past
//! a restart budget retires the shard and re-folds its groups into the
//! survivors — all bit-identical, because re-planning never changes a
//! group's engine assignment or the ascending merge order. The server
//! side sheds load with typed [`ServeError::Overloaded`] frames when
//! the batching queue fills, answers `Health` probes with per-shard
//! liveness, and [`ScoreClient`] retries transient failures with
//! seeded exponential backoff. A deterministic failpoint registry
//! ([`mod@fault`], compiled only under the `failpoints` feature or
//! `cfg(test)`) drives the chaos suite that pins these guarantees.

#![warn(missing_docs)]

pub mod artifact;
pub mod batch;
mod error;
#[cfg(any(test, feature = "failpoints"))]
pub mod fault;
pub mod frozen;
pub mod server;
pub mod shard;
pub mod supervisor;
mod wire;

pub use artifact::{FrozenArtifact, FrozenGroup, FrozenNormalizer, LevelStats};
pub use batch::{BatchHandle, BatchScorer, CoalescePolicy, OverloadPolicy, PanelScorer};
pub use error::ServeError;
pub use frozen::FrozenDetector;
pub use server::{HealthReport, QuorumServer, RetryPolicy, ScoreClient};
pub use shard::{BaselineCosts, Shard, ShardPlan, ShardPolicy, ShardedScorer};
pub use supervisor::{ShardHealth, ShardLiveness, SupervisedScorer, SupervisorPolicy};
