//! Error type for the serving runtime.

use quorum_core::QuorumError;
use std::error::Error;
use std::fmt;
use std::io;

/// Errors produced by freezing, thawing or serving a detector.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// The artifact bytes are malformed, truncated, corrupt or of an
    /// unsupported version.
    Artifact(String),
    /// A scoring request is unusable (wrong feature width, empty batch).
    Request(String),
    /// The underlying pipeline failed while scoring or freezing.
    Quorum(QuorumError),
    /// A transport-level failure on the TCP server or client.
    Io(io::Error),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Artifact(msg) => write!(f, "invalid artifact: {msg}"),
            ServeError::Request(msg) => write!(f, "invalid request: {msg}"),
            ServeError::Quorum(e) => write!(f, "scoring failed: {e}"),
            ServeError::Io(e) => write!(f, "transport failed: {e}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Quorum(e) => Some(e),
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QuorumError> for ServeError {
    fn from(e: QuorumError) -> Self {
        ServeError::Quorum(e)
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ServeError::Artifact("bad magic".into());
        assert!(e.to_string().contains("bad magic"));
        assert!(Error::source(&e).is_none());
        let e: ServeError = QuorumError::InvalidData("too small".into()).into();
        assert!(e.to_string().contains("too small"));
        assert!(Error::source(&e).is_some());
        let e: ServeError = io::Error::new(io::ErrorKind::UnexpectedEof, "eof").into();
        assert!(matches!(e, ServeError::Io(_)));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<ServeError>();
    }
}
