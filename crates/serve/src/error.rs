//! Error type for the serving runtime.

use quorum_core::QuorumError;
use std::error::Error;
use std::fmt;
use std::io;

/// Errors produced by freezing, thawing or serving a detector.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// The artifact bytes are malformed, truncated, corrupt or of an
    /// unsupported version.
    Artifact(String),
    /// A scoring request is unusable (wrong feature width, empty batch).
    Request(String),
    /// The underlying pipeline failed while scoring or freezing.
    Quorum(QuorumError),
    /// A transport-level failure on the TCP server or client.
    Io(io::Error),
    /// The server shed this request to protect itself: the submission
    /// queue was full or the per-request deadline expired. The request
    /// was *not* scored; retrying after a backoff is safe.
    Overloaded(String),
    /// The runtime could not spawn a worker thread — resource
    /// exhaustion surfacing as a typed error instead of a panic.
    Spawn {
        /// What the thread would have been (e.g. `"quorum-batcher"`).
        thread: String,
        /// The OS-level spawn failure.
        source: io::Error,
    },
    /// Serving capacity was lost faster than the supervisor could
    /// recover it: every shard worker is retired or the per-request
    /// retry budget ran out mid-panel.
    Faulted(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Artifact(msg) => write!(f, "invalid artifact: {msg}"),
            ServeError::Request(msg) => write!(f, "invalid request: {msg}"),
            ServeError::Quorum(e) => write!(f, "scoring failed: {e}"),
            ServeError::Io(e) => write!(f, "transport failed: {e}"),
            ServeError::Overloaded(msg) => write!(f, "overloaded: {msg}"),
            ServeError::Spawn { thread, source } => {
                write!(f, "could not spawn thread {thread:?}: {source}")
            }
            ServeError::Faulted(msg) => write!(f, "serving capacity lost: {msg}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Quorum(e) => Some(e),
            ServeError::Io(e) => Some(e),
            ServeError::Spawn { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl ServeError {
    /// Wraps a thread-spawn failure for the named thread.
    pub(crate) fn spawn(thread: &str, source: io::Error) -> Self {
        ServeError::Spawn {
            thread: thread.to_string(),
            source,
        }
    }
}

impl From<QuorumError> for ServeError {
    fn from(e: QuorumError) -> Self {
        ServeError::Quorum(e)
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ServeError::Artifact("bad magic".into());
        assert!(e.to_string().contains("bad magic"));
        assert!(Error::source(&e).is_none());
        let e: ServeError = QuorumError::InvalidData("too small".into()).into();
        assert!(e.to_string().contains("too small"));
        assert!(Error::source(&e).is_some());
        let e: ServeError = io::Error::new(io::ErrorKind::UnexpectedEof, "eof").into();
        assert!(matches!(e, ServeError::Io(_)));
        let e = ServeError::Overloaded("queue full".into());
        assert!(e.to_string().contains("overloaded"));
        assert!(Error::source(&e).is_none());
        let e = ServeError::spawn(
            "quorum-batcher",
            io::Error::new(io::ErrorKind::OutOfMemory, "no threads left"),
        );
        assert!(e.to_string().contains("quorum-batcher"));
        assert!(Error::source(&e).is_some());
        let e = ServeError::Faulted("every shard is retired".into());
        assert!(e.to_string().contains("capacity lost"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<ServeError>();
    }
}
