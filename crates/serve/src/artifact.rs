//! The frozen-detector artifact: a versioned, checksummed, fully
//! self-describing binary encoding of everything a server needs to score
//! requests — configuration, fitted normaliser, every ensemble group's
//! random draw and fused encoder, and the reference deviation statistics.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic   8 B   b"QUORUMFZ"
//! version 4 B   u32, currently 1
//! length  8 B   u64 payload byte count
//! check   8 B   u64 FNV-1a of the payload
//! payload …     see the field-by-field encoders below
//! ```
//!
//! The payload is pure data — no pointers, no platform-dependent sizes,
//! `f64`s stored by bit pattern — so a thawed detector reproduces the
//! freezing process's scores bit for bit on any machine.

use crate::error::ServeError;
use crate::wire::{fnv1a64, Reader, Writer};
use qdata::preprocess::{MinMaxNormalizer, RangeNormalizer};
use qdata::Dataset;
use qsim::complex::C64;
use qsim::matrix::CMatrix;
use qsim::NoiseModel;
use quorum_core::config::{EngineKind, ExecutionMode, Normalization};
use quorum_core::QuorumConfig;

/// The artifact's leading magic bytes.
pub const MAGIC: [u8; 8] = *b"QUORUMFZ";

/// The artifact format version this build writes and reads.
pub const VERSION: u32 = 1;

/// The fitted feature normaliser frozen alongside the detector, so
/// streamed samples are mapped into amplitude space by the **reference**
/// data's statistics rather than their own batch's — the property that
/// makes served scores independent of how requests are coalesced.
#[derive(Debug, Clone, PartialEq)]
pub enum FrozenNormalizer {
    /// The paper's `raw / (max · M)` arm; scoring also folds features to
    /// absolute values (see [`quorum_core::detector::normalize_for_scoring`]).
    RangeMax(RangeNormalizer),
    /// The min–max extension arm.
    MinMax(MinMaxNormalizer),
}

impl FrozenNormalizer {
    /// Fits the arm matching `normalization` on (label-stripped)
    /// reference data.
    pub fn fit(normalization: Normalization, unlabeled: &Dataset) -> Result<Self, ServeError> {
        match normalization {
            Normalization::RangeMax => {
                Ok(FrozenNormalizer::RangeMax(RangeNormalizer::fit(unlabeled)))
            }
            Normalization::MinMax => Ok(FrozenNormalizer::MinMax(MinMaxNormalizer::fit(unlabeled))),
            other => Err(ServeError::Artifact(format!(
                "normalization {other:?} is not freezable by this version"
            ))),
        }
    }

    /// Applies the frozen transform exactly as the in-process pipeline
    /// would: range-max additionally folds to absolute values, because
    /// amplitude embedding needs non-negative reals.
    pub fn apply(&self, unlabeled: &Dataset) -> Dataset {
        match self {
            FrozenNormalizer::RangeMax(norm) => {
                quorum_core::detector::absolute_features(&norm.transform(unlabeled))
            }
            FrozenNormalizer::MinMax(norm) => norm.transform(unlabeled),
        }
    }

    /// The feature width the normaliser was fitted on.
    pub fn num_features(&self) -> usize {
        match self {
            FrozenNormalizer::RangeMax(norm) => norm.maxima().len(),
            FrozenNormalizer::MinMax(norm) => norm.mins().len(),
        }
    }

    fn encode(&self, w: &mut Writer) {
        match self {
            FrozenNormalizer::RangeMax(norm) => {
                w.u8(0);
                w.f64s(norm.maxima());
            }
            FrozenNormalizer::MinMax(norm) => {
                w.u8(1);
                w.f64s(norm.mins());
                w.f64s(norm.ranges());
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, ServeError> {
        match r.u8()? {
            0 => Ok(FrozenNormalizer::RangeMax(RangeNormalizer::from_maxima(
                r.f64s()?,
            ))),
            1 => {
                let mins = r.f64s()?;
                let ranges = r.f64s()?;
                if mins.len() != ranges.len() {
                    return Err(ServeError::Artifact(
                        "min-max normaliser mins/ranges length mismatch".into(),
                    ));
                }
                Ok(FrozenNormalizer::MinMax(MinMaxNormalizer::from_parts(
                    mins, ranges,
                )))
            }
            tag => Err(ServeError::Artifact(format!(
                "unknown normaliser tag {tag}"
            ))),
        }
    }
}

/// Pooled reference deviation statistics for one `(group, level)` pair:
/// the population mean and standard deviation of every reference
/// sample's SWAP-test deviation. Streamed samples are z-scored against
/// these frozen moments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelStats {
    /// Mean reference deviation.
    pub mean: f64,
    /// Population standard deviation of the reference deviations.
    pub std: f64,
}

/// One ensemble group's complete random draw, plus its fused encoder so
/// a thawed server never re-fuses what the freezer already paid for.
#[derive(Debug, Clone, PartialEq)]
pub struct FrozenGroup {
    /// The group's index within the ensemble (feeds the shot-seed
    /// derivation, so it must survive the round trip).
    pub index: usize,
    /// Data-register width of the ansatz.
    pub num_qubits: usize,
    /// Per-layer `(rx_angles, rz_angles)` of the random ansatz.
    pub layers: Vec<(Vec<f64>, Vec<f64>)>,
    /// The group's random feature-column subset.
    pub feature_columns: Vec<usize>,
    /// The group's bucket partition over reference sample indices.
    pub buckets: Vec<Vec<usize>>,
    /// The encoder circuit fused to a dense `2^n × 2^n` unitary.
    pub encoder: CMatrix,
}

/// The full frozen detector, as plain data.
///
/// [`crate::FrozenDetector::thaw`] turns this into a resident, scoring
/// detector; [`crate::FrozenDetector::freeze`] produces it from a
/// configuration plus reference dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct FrozenArtifact {
    /// The exact configuration the detector was frozen under.
    pub config: QuorumConfig,
    /// The normaliser fitted on the reference data.
    pub normalizer: FrozenNormalizer,
    /// Feature width every request must match.
    pub num_features: usize,
    /// Reference sample count (bucket indices point into it).
    pub reference_samples: usize,
    /// Every ensemble group's frozen draw.
    pub groups: Vec<FrozenGroup>,
    /// `stats[g][l]`: pooled reference statistics of group `g` at the
    /// `l`-th effective compression level.
    pub stats: Vec<Vec<LevelStats>>,
}

impl FrozenArtifact {
    /// Encodes the artifact: header, checksum, payload.
    pub fn to_bytes(&self) -> Result<Vec<u8>, ServeError> {
        let mut p = Writer::new();
        encode_config(&self.config, &mut p)?;
        self.normalizer.encode(&mut p);
        p.usize(self.num_features);
        p.usize(self.reference_samples);
        p.usize(self.groups.len());
        for g in &self.groups {
            encode_group(g, &mut p);
        }
        p.usize(self.stats.len());
        for per_level in &self.stats {
            p.usize(per_level.len());
            for s in per_level {
                p.f64(s.mean);
                p.f64(s.std);
            }
        }
        let payload = p.into_bytes();
        let mut w = Writer::new();
        for b in MAGIC {
            w.u8(b);
        }
        w.u32(VERSION);
        w.u64(payload.len() as u64);
        w.u64(fnv1a64(&payload));
        let mut bytes = w.into_bytes();
        bytes.extend_from_slice(&payload);
        Ok(bytes)
    }

    /// Decodes and integrity-checks an artifact.
    ///
    /// # Errors
    ///
    /// [`ServeError::Artifact`] on bad magic, unsupported version,
    /// length/checksum mismatch, or any malformed field.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ServeError> {
        let mut r = Reader::new(bytes);
        let mut magic = [0u8; 8];
        for b in &mut magic {
            *b = r.u8()?;
        }
        if magic != MAGIC {
            return Err(ServeError::Artifact("bad magic bytes".into()));
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(ServeError::Artifact(format!(
                "unsupported artifact version {version} (this build reads {VERSION})"
            )));
        }
        let length = r.usize()?;
        let checksum = r.u64()?;
        let header = 8 + 4 + 8 + 8;
        let payload = bytes
            .get(header..)
            .filter(|p| p.len() == length)
            .ok_or_else(|| {
                ServeError::Artifact(format!(
                    "payload length mismatch: header says {length}, got {}",
                    bytes.len().saturating_sub(header)
                ))
            })?;
        if fnv1a64(payload) != checksum {
            return Err(ServeError::Artifact("checksum mismatch".into()));
        }
        let mut r = Reader::new(payload);
        let config = decode_config(&mut r)?;
        let normalizer = FrozenNormalizer::decode(&mut r)?;
        let num_features = r.usize()?;
        let reference_samples = r.usize()?;
        let num_groups = r.len_prefix(1)?;
        let groups = (0..num_groups)
            .map(|_| decode_group(&mut r))
            .collect::<Result<Vec<_>, _>>()?;
        let num_stats = r.len_prefix(1)?;
        let mut stats = Vec::with_capacity(num_stats);
        for _ in 0..num_stats {
            let levels = r.len_prefix(16)?;
            let mut per_level = Vec::with_capacity(levels);
            for _ in 0..levels {
                per_level.push(LevelStats {
                    mean: r.f64()?,
                    std: r.f64()?,
                });
            }
            stats.push(per_level);
        }
        if !r.is_exhausted() {
            return Err(ServeError::Artifact("trailing bytes after payload".into()));
        }
        Ok(FrozenArtifact {
            config,
            normalizer,
            num_features,
            reference_samples,
            groups,
            stats,
        })
    }
}

fn encode_config(config: &QuorumConfig, w: &mut Writer) -> Result<(), ServeError> {
    w.usize(config.data_qubits);
    w.usize(config.ensemble_groups);
    w.usize(config.ansatz_layers);
    w.usizes(&config.compression_levels);
    w.f64(config.bucket_probability);
    match config.anomaly_rate_estimate {
        Some(r) => {
            w.u8(1);
            w.f64(r);
        }
        None => w.u8(0),
    }
    match &config.execution {
        ExecutionMode::Exact => w.u8(0),
        ExecutionMode::Sampled { shots } => {
            w.u8(1);
            w.u64(*shots);
        }
        ExecutionMode::Noisy { noise, shots } => {
            w.u8(2);
            encode_noise(noise, w);
            match shots {
                Some(s) => {
                    w.u8(1);
                    w.u64(*s);
                }
                None => w.u8(0),
            }
        }
        other => {
            return Err(ServeError::Artifact(format!(
                "execution mode {other:?} is not freezable by this version"
            )))
        }
    }
    let engine_tag = match config.engine {
        EngineKind::Auto => 0u8,
        EngineKind::Batched => 1,
        EngineKind::Analytic => 2,
        EngineKind::Density => 3,
        EngineKind::DensityStructured => 4,
        EngineKind::DensitySample => 5,
        EngineKind::Circuit => 6,
        other => {
            return Err(ServeError::Artifact(format!(
                "engine kind {other:?} is not freezable by this version"
            )))
        }
    };
    w.u8(engine_tag);
    let norm_tag = match config.normalization {
        Normalization::RangeMax => 0u8,
        Normalization::MinMax => 1,
        other => {
            return Err(ServeError::Artifact(format!(
                "normalization {other:?} is not freezable by this version"
            )))
        }
    };
    w.u8(norm_tag);
    w.u64(config.seed);
    w.usize(config.threads);
    Ok(())
}

fn decode_config(r: &mut Reader<'_>) -> Result<QuorumConfig, ServeError> {
    let data_qubits = r.usize()?;
    let ensemble_groups = r.usize()?;
    let ansatz_layers = r.usize()?;
    let compression_levels = r.usizes()?;
    let bucket_probability = r.f64()?;
    let anomaly_rate_estimate = match r.u8()? {
        0 => None,
        1 => Some(r.f64()?),
        tag => return Err(ServeError::Artifact(format!("unknown rate tag {tag}"))),
    };
    let execution = match r.u8()? {
        0 => ExecutionMode::Exact,
        1 => ExecutionMode::Sampled { shots: r.u64()? },
        2 => {
            let noise = decode_noise(r)?;
            let shots = match r.u8()? {
                0 => None,
                1 => Some(r.u64()?),
                tag => return Err(ServeError::Artifact(format!("unknown shots tag {tag}"))),
            };
            ExecutionMode::Noisy { noise, shots }
        }
        tag => return Err(ServeError::Artifact(format!("unknown execution tag {tag}"))),
    };
    let engine = match r.u8()? {
        0 => EngineKind::Auto,
        1 => EngineKind::Batched,
        2 => EngineKind::Analytic,
        3 => EngineKind::Density,
        4 => EngineKind::DensityStructured,
        5 => EngineKind::DensitySample,
        6 => EngineKind::Circuit,
        tag => return Err(ServeError::Artifact(format!("unknown engine tag {tag}"))),
    };
    let normalization = match r.u8()? {
        0 => Normalization::RangeMax,
        1 => Normalization::MinMax,
        tag => {
            return Err(ServeError::Artifact(format!(
                "unknown normalization tag {tag}"
            )))
        }
    };
    let seed = r.u64()?;
    let threads = r.usize()?;
    Ok(QuorumConfig {
        data_qubits,
        ensemble_groups,
        ansatz_layers,
        compression_levels,
        bucket_probability,
        anomaly_rate_estimate,
        execution,
        engine,
        normalization,
        seed,
        threads,
    })
}

fn encode_noise(noise: &NoiseModel, w: &mut Writer) {
    w.f64(noise.t1);
    w.f64(noise.t2);
    w.f64(noise.error_1q);
    w.f64(noise.error_2q);
    w.f64(noise.gate_time_1q);
    w.f64(noise.gate_time_2q);
    w.f64(noise.readout_error);
}

fn decode_noise(r: &mut Reader<'_>) -> Result<NoiseModel, ServeError> {
    Ok(NoiseModel {
        t1: r.f64()?,
        t2: r.f64()?,
        error_1q: r.f64()?,
        error_2q: r.f64()?,
        gate_time_1q: r.f64()?,
        gate_time_2q: r.f64()?,
        readout_error: r.f64()?,
    })
}

fn encode_group(g: &FrozenGroup, w: &mut Writer) {
    w.usize(g.index);
    w.usize(g.num_qubits);
    w.usize(g.layers.len());
    for (rx, rz) in &g.layers {
        w.f64s(rx);
        w.f64s(rz);
    }
    w.usizes(&g.feature_columns);
    w.usize(g.buckets.len());
    for bucket in &g.buckets {
        w.usizes(bucket);
    }
    w.usize(g.encoder.rows());
    for v in g.encoder.as_slice() {
        w.f64(v.re);
        w.f64(v.im);
    }
}

fn decode_group(r: &mut Reader<'_>) -> Result<FrozenGroup, ServeError> {
    let index = r.usize()?;
    let num_qubits = r.usize()?;
    let num_layers = r.len_prefix(16)?;
    let mut layers = Vec::with_capacity(num_layers);
    for _ in 0..num_layers {
        let rx = r.f64s()?;
        let rz = r.f64s()?;
        if rx.len() != num_qubits || rz.len() != num_qubits {
            return Err(ServeError::Artifact(
                "ansatz layer angle count does not match the register width".into(),
            ));
        }
        layers.push((rx, rz));
    }
    let feature_columns = r.usizes()?;
    let num_buckets = r.len_prefix(8)?;
    let buckets = (0..num_buckets)
        .map(|_| r.usizes())
        .collect::<Result<Vec<_>, _>>()?;
    let dim = r.usize()?;
    if num_qubits >= usize::BITS as usize || dim != 1usize << num_qubits {
        return Err(ServeError::Artifact(format!(
            "encoder dimension {dim} does not match {num_qubits} qubits"
        )));
    }
    let mut flat = Vec::with_capacity(dim * dim);
    for _ in 0..dim * dim {
        let re = r.f64()?;
        let im = r.f64()?;
        flat.push(C64 { re, im });
    }
    let encoder = CMatrix::from_flat(&flat)
        .map_err(|e| ServeError::Artifact(format!("encoder matrix: {e}")))?;
    Ok(FrozenGroup {
        index,
        num_qubits,
        layers,
        feature_columns,
        buckets,
        encoder,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_artifact() -> FrozenArtifact {
        let config = QuorumConfig::default()
            .with_ensemble_groups(2)
            .with_execution(ExecutionMode::Noisy {
                noise: NoiseModel::brisbane(),
                shots: Some(1024),
            })
            .with_seed(99);
        let encoder = CMatrix::identity(8);
        let group = FrozenGroup {
            index: 1,
            num_qubits: 3,
            layers: vec![(vec![0.1, 0.2, 0.3], vec![0.4, 0.5, 0.6])],
            feature_columns: vec![0, 2, 4, 1, 6, 5, 3],
            buckets: vec![vec![0, 3], vec![1, 2, 4]],
            encoder,
        };
        FrozenArtifact {
            config,
            normalizer: FrozenNormalizer::RangeMax(RangeNormalizer::from_maxima(vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0,
            ])),
            num_features: 7,
            reference_samples: 5,
            groups: vec![group.clone(), FrozenGroup { index: 0, ..group }],
            stats: vec![
                vec![
                    LevelStats {
                        mean: 0.1,
                        std: 0.01
                    };
                    2
                ],
                vec![
                    LevelStats {
                        mean: 0.2,
                        std: 0.02
                    };
                    2
                ],
            ],
        }
    }

    #[test]
    fn round_trips_bit_exactly() {
        let artifact = sample_artifact();
        let bytes = artifact.to_bytes().unwrap();
        let thawed = FrozenArtifact::from_bytes(&bytes).unwrap();
        assert_eq!(thawed, artifact);
    }

    #[test]
    fn rejects_bad_magic_version_and_corruption() {
        let bytes = sample_artifact().to_bytes().unwrap();
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            FrozenArtifact::from_bytes(&bad),
            Err(ServeError::Artifact(msg)) if msg.contains("magic")
        ));
        let mut bad = bytes.clone();
        bad[8] = 0xFE; // version field
        assert!(matches!(
            FrozenArtifact::from_bytes(&bad),
            Err(ServeError::Artifact(msg)) if msg.contains("version")
        ));
        // Flip one payload byte: the checksum must catch it.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert!(matches!(
            FrozenArtifact::from_bytes(&bad),
            Err(ServeError::Artifact(msg)) if msg.contains("checksum")
        ));
        // Truncation is a length mismatch, not a panic.
        assert!(FrozenArtifact::from_bytes(&bytes[..bytes.len() - 3]).is_err());
        assert!(FrozenArtifact::from_bytes(&[]).is_err());
    }

    #[test]
    fn normalizer_applies_like_the_pipeline() {
        let ds = Dataset::from_rows("t", vec![vec![-2.0, 4.0], vec![2.0, -4.0]], None).unwrap();
        let frozen = FrozenNormalizer::fit(Normalization::RangeMax, &ds).unwrap();
        let out = frozen.apply(&ds);
        // Range-max folds to absolute values after normalising.
        assert!(out.rows().iter().flatten().all(|&v| v >= 0.0));
        assert_eq!(frozen.num_features(), 2);
        let frozen = FrozenNormalizer::fit(Normalization::MinMax, &ds).unwrap();
        assert_eq!(frozen.num_features(), 2);
    }
}
