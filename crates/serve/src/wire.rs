//! Little-endian wire primitives shared by the artifact codec and the
//! TCP protocol: a growable writer, a bounds-checked reader and the
//! FNV-1a checksum guarding frozen payloads.
//!
//! The TCP scoring protocol built on these primitives is versioned;
//! [`crate::server::PROTOCOL_VERSION`] is currently 2. Version 2 is a
//! strict superset of version 1: it adds the `u32::MAX` health-probe
//! request sentinel and two response statuses (2 = overloaded,
//! 3 = health report) on top of v1's 0 = score / 1 = error. A v1
//! client talking to a v2 server only sees the new statuses if the
//! server sheds load, and never sees status 3 unless it sends the
//! probe. See the `server` module docs for the full frame layout.

use crate::error::ServeError;

/// FNV-1a over the whole byte slice — the artifact's integrity check.
/// Not cryptographic; it guards against truncation and bit rot, not
/// adversaries.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf29ce484222325;
    const FNV_PRIME: u64 = 0x100000001b3;
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Append-only little-endian encoder.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as `u64` (artifacts are machine-independent).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `f64` by bit pattern — round trips exactly, including
    /// negative zero and NaN payloads.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a length-prefixed `f64` slice.
    pub fn f64s(&mut self, vs: &[f64]) {
        self.usize(vs.len());
        for &v in vs {
            self.f64(v);
        }
    }

    /// Appends a length-prefixed `usize` slice.
    pub fn usizes(&mut self, vs: &[usize]) {
        self.usize(vs.len());
        for &v in vs {
            self.usize(v);
        }
    }
}

/// Bounds-checked little-endian decoder over a borrowed payload. Every
/// read fails with [`ServeError::Artifact`] instead of panicking, so a
/// truncated or corrupt artifact is always a typed error.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Whether every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ServeError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let slice = &self.buf[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(ServeError::Artifact(format!(
                "truncated: wanted {n} bytes at offset {} of {}",
                self.pos,
                self.buf.len()
            ))),
        }
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, ServeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, ServeError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, ServeError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a `usize`, rejecting values beyond this platform's range and
    /// implausible lengths (anything longer than the remaining payload).
    pub fn usize(&mut self) -> Result<usize, ServeError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| ServeError::Artifact(format!("length {v} overflows usize")))
    }

    /// Reads a length prefix that counts items of at least `item_bytes`
    /// bytes each, rejecting counts the remaining payload cannot hold —
    /// the guard that keeps corrupt artifacts from provoking huge
    /// allocations.
    pub fn len_prefix(&mut self, item_bytes: usize) -> Result<usize, ServeError> {
        let n = self.usize()?;
        let remaining = self.buf.len() - self.pos;
        if n.checked_mul(item_bytes.max(1))
            .is_none_or(|b| b > remaining)
        {
            return Err(ServeError::Artifact(format!(
                "implausible length {n} (only {remaining} bytes remain)"
            )));
        }
        Ok(n)
    }

    /// Reads an `f64` by bit pattern.
    pub fn f64(&mut self) -> Result<f64, ServeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed `f64` vector.
    pub fn f64s(&mut self) -> Result<Vec<f64>, ServeError> {
        let n = self.len_prefix(8)?;
        (0..n).map(|_| self.f64()).collect()
    }

    /// Reads a length-prefixed `usize` vector.
    pub fn usizes(&mut self) -> Result<Vec<usize>, ServeError> {
        let n = self.len_prefix(8)?;
        (0..n).map(|_| self.usize()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX);
        w.f64(-0.0);
        w.f64s(&[1.5, f64::MIN_POSITIVE]);
        w.usizes(&[3, 0, 9]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f64s().unwrap(), vec![1.5, f64::MIN_POSITIVE]);
        assert_eq!(r.usizes().unwrap(), vec![3, 0, 9]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let mut w = Writer::new();
        w.u64(42);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..5]);
        assert!(matches!(r.u64(), Err(ServeError::Artifact(_))));
    }

    #[test]
    fn implausible_lengths_are_rejected_before_allocating() {
        let mut w = Writer::new();
        w.usize(usize::MAX / 2);
        let bytes = w.into_bytes();
        assert!(matches!(
            Reader::new(&bytes).f64s(),
            Err(ServeError::Artifact(_))
        ));
    }

    #[test]
    fn fnv_is_stable_and_sensitive() {
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_ne!(fnv1a64(b"quorum"), fnv1a64(b"quoruM"));
    }
}
