//! The resident frozen detector: freeze a generated ensemble into an
//! artifact, thaw it into a long-lived scorer, and score either full
//! reference datasets (bit-identical to the in-process pipeline) or
//! streamed sample batches (the serving path).

use crate::artifact::{FrozenArtifact, FrozenGroup, FrozenNormalizer, LevelStats};
use crate::error::ServeError;
use qdata::{Dataset, SamplePanel};
use qmetrics::stats;
use qsim::parallel::map_indexed;
use quorum_core::ansatz::AnsatzParams;
use quorum_core::bucket::BucketPlan;
use quorum_core::config::{EngineKind, ExecutionMode};
use quorum_core::engine::{self, sampled_deviation, shot_seed, ScoringEngine};
use quorum_core::ensemble::EnsembleGroup;
use quorum_core::features::FeatureSelection;
use quorum_core::{QuorumConfig, QuorumError, ScoreReport};
use std::cell::RefCell;

/// Sample ids contribute their low 32 bits to the per-measurement shot
/// seed (see [`quorum_core::engine::shot_seed`]); a server that outlives
/// 2^32 samples recycles measurement randomness, never data.
const SAMPLE_ID_MASK: u64 = 0xFFFF_FFFF;

/// One normalized streamed panel in pooled flat storage: row-major
/// `samples × features`, reused across batches so the steady-state
/// request path never allocates per-row vectors. Borrow it as a
/// [`SamplePanel`] to hand to the engines.
#[derive(Debug, Default)]
pub(crate) struct NormalizedPanel {
    data: Vec<f64>,
    features: usize,
}

impl NormalizedPanel {
    /// Borrows the flat storage as an engine-facing panel view.
    ///
    /// # Panics
    ///
    /// Panics on an unfilled panel (zero feature width) — callers fill
    /// via [`FrozenDetector::normalize_rows_into`] first.
    pub(crate) fn as_panel(&self) -> SamplePanel<'_> {
        SamplePanel::new(&self.data, self.features)
    }
}

thread_local! {
    /// Per-thread pooled panel for the streaming entry points. Each
    /// serving thread normalises into its own resident buffer; the
    /// engine pass borrows it read-only for the duration of the batch.
    static STREAM_PANEL: RefCell<NormalizedPanel> = RefCell::default();
}

/// A detector frozen against one reference dataset and held resident for
/// serving.
///
/// Two scoring entry points with different semantics:
///
/// * [`FrozenDetector::score_dataset`] replays the full in-process
///   pipeline over the (whole) reference-shaped dataset — per-bucket
///   z-scores, bit-identical to [`quorum_core::QuorumDetector::score`]
///   under the same configuration.
/// * [`FrozenDetector::score_samples`] scores **streamed** samples that
///   were never part of the reference set: each sample's deviations are
///   z-scored against the frozen pooled reference statistics, so every
///   sample is scored independently and coalescing requests into bigger
///   panels can never change any individual result.
pub struct FrozenDetector {
    config: QuorumConfig,
    normalizer: FrozenNormalizer,
    num_features: usize,
    reference_samples: usize,
    groups: Vec<EnsembleGroup>,
    stats: Vec<Vec<LevelStats>>,
    /// The engine for full-config scoring (freeze statistics and
    /// [`FrozenDetector::score_dataset`]).
    engine: &'static dyn ScoringEngine,
    /// The same configuration with shot sampling stripped — the
    /// streaming path scores exactly, then re-applies the binomial draw
    /// per sample under its request-assigned id.
    exact_config: QuorumConfig,
    stream_engine: &'static dyn ScoringEngine,
    stream_shots: Option<u64>,
}

impl std::fmt::Debug for FrozenDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrozenDetector")
            .field("num_features", &self.num_features)
            .field("reference_samples", &self.reference_samples)
            .field("groups", &self.groups.len())
            .field("engine", &self.engine.name())
            .field("stream_engine", &self.stream_engine.name())
            .field("stream_shots", &self.stream_shots)
            .finish_non_exhaustive()
    }
}

impl FrozenDetector {
    /// Freezes a detector: fits the normaliser on `reference`, draws
    /// every ensemble group, fuses their encoders, and pools the
    /// per-(group, level) reference deviation statistics the streaming
    /// path z-scores against.
    ///
    /// # Errors
    ///
    /// Invalid configurations and unusable datasets surface as
    /// [`ServeError::Quorum`]; simulation failures propagate.
    pub fn freeze(config: QuorumConfig, reference: &Dataset) -> Result<Self, ServeError> {
        config.validate().map_err(ServeError::Quorum)?;
        if reference.num_samples() < 4 {
            return Err(ServeError::Quorum(QuorumError::InvalidData(
                "need at least 4 reference samples to form deviation statistics".into(),
            )));
        }
        if reference.num_features() == 0 {
            return Err(ServeError::Quorum(QuorumError::InvalidData(
                "reference dataset has no features".into(),
            )));
        }
        let unlabeled = reference.strip_labels();
        let normalizer = FrozenNormalizer::fit(config.normalization, &unlabeled)?;
        let normalized = normalizer.apply(&unlabeled);
        let rate = config.anomaly_rate_estimate.unwrap_or(0.05);
        let plan =
            BucketPlan::from_target(normalized.num_samples(), rate, config.bucket_probability);
        let engine = engine::resolve(&config)?;
        let levels = config.effective_compression_levels();
        let threads = config.effective_threads();
        let config_ref = &config;
        let normalized_ref = &normalized;
        let levels_ref = &levels;
        let results: Vec<Result<(EnsembleGroup, Vec<LevelStats>), QuorumError>> =
            map_indexed(config.ensemble_groups, threads, move |g| {
                let group =
                    EnsembleGroup::generate(g, config_ref, normalized_ref.num_features(), &plan);
                let per_level =
                    engine.deviations_all_levels(&group, normalized_ref, config_ref, levels_ref)?;
                let group_stats = per_level
                    .iter()
                    .map(|devs| LevelStats {
                        mean: stats::mean(devs),
                        std: stats::population_std(devs),
                    })
                    .collect();
                // Fuse now so the frozen artifact carries the encoder and
                // a thawed server never pays the fusion at request time.
                group.fused_encoder()?;
                Ok((group, group_stats))
            });
        let mut groups = Vec::with_capacity(results.len());
        let mut frozen_stats = Vec::with_capacity(results.len());
        for result in results {
            let (group, group_stats) = result?;
            groups.push(group);
            frozen_stats.push(group_stats);
        }
        Self::assemble(
            config,
            normalizer,
            reference.num_features(),
            reference.num_samples(),
            groups,
            frozen_stats,
        )
    }

    /// Thaws an artifact back into a resident detector: reassembles every
    /// group from its stored draw, seats the stored fused encoders, and
    /// pre-warms the noisy per-(noise, level) caches so the first request
    /// pays no fusion or lowering.
    ///
    /// # Errors
    ///
    /// [`ServeError::Artifact`] for internally inconsistent artifacts;
    /// [`ServeError::Quorum`] for invalid configurations.
    pub fn thaw(artifact: FrozenArtifact) -> Result<Self, ServeError> {
        let FrozenArtifact {
            config,
            normalizer,
            num_features,
            reference_samples,
            groups: frozen_groups,
            stats: frozen_stats,
        } = artifact;
        config.validate().map_err(ServeError::Quorum)?;
        if frozen_groups.len() != config.ensemble_groups {
            return Err(ServeError::Artifact(format!(
                "artifact holds {} groups but the configuration expects {}",
                frozen_groups.len(),
                config.ensemble_groups
            )));
        }
        if frozen_stats.len() != frozen_groups.len() {
            return Err(ServeError::Artifact(
                "per-group statistics count does not match the group count".into(),
            ));
        }
        if normalizer.num_features() != num_features {
            return Err(ServeError::Artifact(
                "normaliser width does not match the declared feature count".into(),
            ));
        }
        let levels = config.effective_compression_levels();
        if frozen_stats.iter().any(|s| s.len() != levels.len()) {
            return Err(ServeError::Artifact(format!(
                "statistics must cover all {} compression levels",
                levels.len()
            )));
        }
        let mut groups = Vec::with_capacity(frozen_groups.len());
        for frozen in frozen_groups {
            groups.push(thaw_group(
                frozen,
                &config,
                num_features,
                reference_samples,
            )?);
        }
        Self::assemble(
            config,
            normalizer,
            num_features,
            reference_samples,
            groups,
            frozen_stats,
        )
    }

    /// Serializes via [`FrozenDetector::to_artifact`].
    ///
    /// # Errors
    ///
    /// Propagates artifact-encoding failures.
    pub fn to_bytes(&self) -> Result<Vec<u8>, ServeError> {
        self.to_artifact()?.to_bytes()
    }

    /// Deserializes and thaws in one step.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FrozenArtifact::from_bytes`] and
    /// [`FrozenDetector::thaw`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ServeError> {
        Self::thaw(FrozenArtifact::from_bytes(bytes)?)
    }

    /// Extracts the plain-data artifact (fusing any encoder not yet
    /// fused).
    ///
    /// # Errors
    ///
    /// Propagates encoder-fusion failures (effectively infallible).
    pub fn to_artifact(&self) -> Result<FrozenArtifact, ServeError> {
        let mut frozen_groups = Vec::with_capacity(self.groups.len());
        for group in &self.groups {
            frozen_groups.push(FrozenGroup {
                index: group.index(),
                num_qubits: group.ansatz().num_qubits(),
                layers: group.ansatz().layers().to_vec(),
                feature_columns: group.features().columns().to_vec(),
                buckets: group.buckets().to_vec(),
                encoder: group.fused_encoder().map_err(ServeError::Quorum)?.clone(),
            });
        }
        Ok(FrozenArtifact {
            config: self.config.clone(),
            normalizer: self.normalizer.clone(),
            num_features: self.num_features,
            reference_samples: self.reference_samples,
            groups: frozen_groups,
            stats: self.stats.clone(),
        })
    }

    /// The configuration the detector was frozen under.
    pub fn config(&self) -> &QuorumConfig {
        &self.config
    }

    /// Feature width every scored row must match.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Number of samples in the frozen reference set.
    pub fn reference_samples(&self) -> usize {
        self.reference_samples
    }

    /// The resident ensemble groups (cache counters included — the
    /// pre-warming regression tests read their fusion counts).
    pub fn groups(&self) -> &[EnsembleGroup] {
        &self.groups
    }

    /// Scores a full reference-shaped dataset with the in-process
    /// semantics: per-bucket z-scores over the frozen bucket partitions.
    /// Bit-identical to [`quorum_core::QuorumDetector::score`] on the
    /// reference data under the frozen configuration.
    ///
    /// # Errors
    ///
    /// [`ServeError::Request`] when the dataset's shape does not match
    /// the frozen reference (buckets index reference positions);
    /// simulation failures propagate.
    pub fn score_dataset(&self, data: &Dataset) -> Result<ScoreReport, ServeError> {
        if data.num_samples() != self.reference_samples {
            return Err(ServeError::Request(format!(
                "bucket partitions index {} reference samples, got {}; use score_samples for streamed data",
                self.reference_samples,
                data.num_samples()
            )));
        }
        if data.num_features() != self.num_features {
            return Err(ServeError::Request(format!(
                "expected {} features, got {}",
                self.num_features,
                data.num_features()
            )));
        }
        let normalized = self.normalizer.apply(&data.strip_labels());
        let threads = self.config.effective_threads();
        let normalized_ref = &normalized;
        let partials: Vec<Result<Vec<f64>, QuorumError>> =
            map_indexed(self.groups.len(), threads, move |g| {
                self.groups[g].run_with(self.engine, normalized_ref, &self.config)
            });
        let mut totals = vec![0.0; normalized.num_samples()];
        for partial in partials {
            let partial = partial?;
            for (t, p) in totals.iter_mut().zip(partial) {
                *t += p;
            }
        }
        Ok(ScoreReport::new(
            data.name(),
            totals,
            self.groups.len(),
            self.config.effective_compression_levels(),
        ))
    }

    /// Scores streamed samples — the serving path. Rows are normalised by
    /// the **frozen** reference statistics, deviations are evaluated
    /// exactly (shots stripped) over the whole coalesced panel in one
    /// engine pass per group, shot sampling is re-applied per sample
    /// under its stable id `first_sample_id + position`, and each
    /// deviation is z-scored against the frozen pooled reference moments.
    ///
    /// Every per-sample quantity depends only on the sample's row and its
    /// id — never on what else shares the panel — so any coalescing of
    /// concurrent requests returns bit-identical scores to scoring each
    /// sample alone.
    ///
    /// # Errors
    ///
    /// [`ServeError::Request`] for rows of the wrong width or with
    /// non-finite values; simulation failures propagate.
    pub fn score_samples(
        &self,
        rows: &[Vec<f64>],
        first_sample_id: u64,
    ) -> Result<Vec<f64>, ServeError> {
        if rows.is_empty() {
            return Ok(Vec::new());
        }
        STREAM_PANEL.with(|cell| {
            let pooled = &mut *cell.borrow_mut();
            self.normalize_rows_into(rows, pooled)?;
            let levels = self.config.effective_compression_levels();
            let threads = self.config.effective_threads();
            let panel = pooled.as_panel();
            let panel_ref = &panel;
            let levels_ref = &levels;
            let partials: Vec<Result<Vec<f64>, QuorumError>> =
                map_indexed(self.groups.len(), threads, move |g| {
                    self.stream_scores_for_group(g, panel_ref, levels_ref, first_sample_id)
                });
            let mut totals = vec![0.0; rows.len()];
            for partial in partials {
                let partial = partial?;
                for (t, p) in totals.iter_mut().zip(partial) {
                    *t += p;
                }
            }
            Ok(totals)
        })
    }

    /// One group's additive streamed-score contribution — the public
    /// group-subset seam behind the sharded scorer. `engine` overrides
    /// the engine that evaluates this group's deviations (`None` runs
    /// the configuration's streaming engine); the override must honour
    /// the frozen execution mode. Summing every group's vector in
    /// ascending group-index order reproduces
    /// [`FrozenDetector::score_samples`] bit for bit.
    ///
    /// # Errors
    ///
    /// [`ServeError::Request`] for out-of-range groups or unusable rows;
    /// [`ServeError::Quorum`] for an engine override incompatible with
    /// the frozen execution mode; simulation failures propagate.
    pub fn stream_group_scores(
        &self,
        group: usize,
        rows: &[Vec<f64>],
        first_sample_id: u64,
        engine: Option<EngineKind>,
    ) -> Result<Vec<f64>, ServeError> {
        if group >= self.groups.len() {
            return Err(ServeError::Request(format!(
                "group {group} is out of range (detector holds {})",
                self.groups.len()
            )));
        }
        if rows.is_empty() {
            return Ok(Vec::new());
        }
        STREAM_PANEL.with(|cell| {
            let pooled = &mut *cell.borrow_mut();
            self.normalize_rows_into(rows, pooled)?;
            let levels = self.config.effective_compression_levels();
            let (engine, exact_config) = self.resolve_stream_engine(engine)?;
            self.stream_scores_for_group_with(
                engine,
                &exact_config,
                group,
                &pooled.as_panel(),
                &levels,
                first_sample_id,
            )
            .map_err(ServeError::Quorum)
        })
    }

    /// Validates streamed rows (width, finiteness) and applies the frozen
    /// normaliser directly into pooled flat storage — the shared head of
    /// every streaming entry point. The per-element arithmetic is the
    /// normaliser's own `transform` (plus `absolute_features` for the
    /// range-max scheme) fused into the pack loop, so the result is
    /// bit-identical to materialising an intermediate [`Dataset`] while
    /// allocating nothing per batch in steady state. Error precedence and
    /// texts match the previous dataset-backed validation exactly.
    pub(crate) fn normalize_rows_into(
        &self,
        rows: &[Vec<f64>],
        panel: &mut NormalizedPanel,
    ) -> Result<(), ServeError> {
        if let Some(bad) = rows.iter().find(|r| r.len() != self.num_features) {
            return Err(ServeError::Request(format!(
                "expected {} features, got {}",
                self.num_features,
                bad.len()
            )));
        }
        if rows.is_empty() {
            return Err(ServeError::Request(format!(
                "unusable rows: {}",
                qdata::DataError::Empty
            )));
        }
        for (row, r) in rows.iter().enumerate() {
            for (col, &v) in r.iter().enumerate() {
                if !v.is_finite() {
                    return Err(ServeError::Request(format!(
                        "unusable rows: {}",
                        qdata::DataError::NonFiniteValue { row, col }
                    )));
                }
            }
        }
        let m = self.num_features as f64;
        let bound = 1.0 / m;
        panel.features = self.num_features;
        panel.data.clear();
        panel.data.reserve(rows.len() * self.num_features);
        match &self.normalizer {
            FrozenNormalizer::RangeMax(norm) => {
                let maxima = norm.maxima();
                for r in rows {
                    panel.data.extend(r.iter().zip(maxima).map(|(&v, &mx)| {
                        let t = if mx == 0.0 {
                            0.0
                        } else {
                            (v / (mx * m)).clamp(-bound, bound)
                        };
                        t.abs()
                    }));
                }
            }
            FrozenNormalizer::MinMax(norm) => {
                let mins = norm.mins();
                let ranges = norm.ranges();
                for r in rows {
                    panel.data.extend(r.iter().zip(mins.iter().zip(ranges)).map(
                        |(&v, (&lo, &range))| {
                            if range <= 0.0 {
                                0.0
                            } else {
                                ((v - lo) / (range * m)).clamp(0.0, bound)
                            }
                        },
                    ));
                }
            }
        }
        Ok(())
    }

    /// Allocating convenience over [`FrozenDetector::normalize_rows_into`]
    /// for callers that share one normalized panel across threads (the
    /// sharded scorer wraps the result in an `Arc`).
    pub(crate) fn normalize_stream_panel(
        &self,
        rows: &[Vec<f64>],
    ) -> Result<NormalizedPanel, ServeError> {
        let mut panel = NormalizedPanel::default();
        self.normalize_rows_into(rows, &mut panel)?;
        Ok(panel)
    }

    /// Resolves a per-shard engine override against the shot-stripped
    /// streaming configuration. `None` returns the detector's own
    /// streaming engine; `Some(kind)` must be compatible with the frozen
    /// execution mode (e.g. a pure-state engine cannot serve a noisy
    /// detector) and surfaces the same typed error the in-process
    /// configuration validation would.
    pub(crate) fn resolve_stream_engine(
        &self,
        kind: Option<EngineKind>,
    ) -> Result<(&'static dyn ScoringEngine, QuorumConfig), ServeError> {
        match kind {
            None => Ok((self.stream_engine, self.exact_config.clone())),
            Some(kind) => {
                let config = self.exact_config.clone().with_engine(kind);
                let engine = engine::resolve(&config).map_err(ServeError::Quorum)?;
                Ok((engine, config))
            }
        }
    }

    /// The compression levels the streaming path sweeps.
    pub(crate) fn stream_levels(&self) -> Vec<usize> {
        self.config.effective_compression_levels()
    }

    /// One group's additive streamed-score contribution under the
    /// detector's own streaming engine.
    fn stream_scores_for_group(
        &self,
        g: usize,
        panel: &SamplePanel<'_>,
        levels: &[usize],
        first_sample_id: u64,
    ) -> Result<Vec<f64>, QuorumError> {
        self.stream_scores_for_group_with(
            self.stream_engine,
            &self.exact_config,
            g,
            panel,
            levels,
            first_sample_id,
        )
    }

    /// One group's additive streamed-score contribution through an
    /// explicit engine — the shard workers' inner loop. The engine only
    /// changes *how* the exact deviations are evaluated; shot sampling
    /// and z-scoring still run off the frozen configuration, so every
    /// engine that honours the execution mode produces the same additive
    /// semantics.
    pub(crate) fn stream_scores_for_group_with(
        &self,
        engine: &dyn ScoringEngine,
        exact_config: &QuorumConfig,
        g: usize,
        panel: &SamplePanel<'_>,
        levels: &[usize],
        first_sample_id: u64,
    ) -> Result<Vec<f64>, QuorumError> {
        let mut scores = vec![0.0; panel.num_samples()];
        self.stream_scores_for_group_with_into(
            engine,
            exact_config,
            g,
            panel,
            levels,
            first_sample_id,
            &mut scores,
        )?;
        Ok(scores)
    }

    /// [`FrozenDetector::stream_scores_for_group_with`] writing into a
    /// caller-owned slice — the sharded scorer points this at the group's
    /// pre-sliced row of its resident partial-sum slab, so steady-state
    /// shard scoring allocates no per-group vectors. `out` must hold
    /// exactly one slot per panel sample; it is zeroed before
    /// accumulation.
    #[allow(clippy::too_many_arguments)] // mirror of the Vec-returning seam
    pub(crate) fn stream_scores_for_group_with_into(
        &self,
        engine: &dyn ScoringEngine,
        exact_config: &QuorumConfig,
        g: usize,
        panel: &SamplePanel<'_>,
        levels: &[usize],
        first_sample_id: u64,
        out: &mut [f64],
    ) -> Result<(), QuorumError> {
        debug_assert_eq!(out.len(), panel.num_samples());
        let group = &self.groups[g];
        let per_level = engine.deviations_all_levels_panel(group, panel, exact_config, levels)?;
        out.fill(0.0);
        for ((deviations, &level), level_stats) in per_level.iter().zip(levels).zip(&self.stats[g])
        {
            for (j, &exact) in deviations.iter().enumerate() {
                let deviation = match self.stream_shots {
                    Some(shots) => {
                        let id = (first_sample_id.wrapping_add(j as u64) & SAMPLE_ID_MASK) as usize;
                        let seed = shot_seed(&self.config, group.index(), level, id);
                        sampled_deviation(exact, shots, seed)
                    }
                    None => exact,
                };
                out[j] += stats::zscore(deviation, level_stats.mean, level_stats.std).abs();
            }
        }
        Ok(())
    }

    /// Shared tail of freeze and thaw: derives the shot-stripped
    /// streaming configuration, resolves both engines and pre-warms the
    /// noisy caches.
    fn assemble(
        config: QuorumConfig,
        normalizer: FrozenNormalizer,
        num_features: usize,
        reference_samples: usize,
        groups: Vec<EnsembleGroup>,
        stats: Vec<Vec<LevelStats>>,
    ) -> Result<Self, ServeError> {
        let engine = engine::resolve(&config)?;
        let (stripped_execution, stream_shots) = match &config.execution {
            ExecutionMode::Exact => (ExecutionMode::Exact, None),
            ExecutionMode::Sampled { shots } => (ExecutionMode::Exact, Some(*shots)),
            ExecutionMode::Noisy { noise, shots } => (
                ExecutionMode::Noisy {
                    noise: noise.clone(),
                    shots: None,
                },
                *shots,
            ),
            other => {
                return Err(ServeError::Artifact(format!(
                    "execution mode {other:?} is not servable by this version"
                )))
            }
        };
        let exact_config = config.clone().with_execution(stripped_execution);
        let stream_engine = engine::resolve(&exact_config)?;
        let detector = FrozenDetector {
            config,
            normalizer,
            num_features,
            reference_samples,
            groups,
            stats,
            engine,
            exact_config,
            stream_engine,
            stream_shots,
        };
        detector.prewarm()?;
        Ok(detector)
    }

    /// Builds every per-(noise, level) derived object the configured
    /// engine will need, so a thawed server's first request hits only
    /// warm caches. No-op for pure-state configurations and for the
    /// per-sample circuit oracle (which builds circuits per request).
    fn prewarm(&self) -> Result<(), ServeError> {
        let all: Vec<usize> = (0..self.groups.len()).collect();
        self.prewarm_groups(self.config.effective_engine(), &all)
    }

    /// [`FrozenDetector::prewarm`] for one engine kind over a subset of
    /// groups — the sharded scorer warms each shard's groups for the
    /// engine that shard will actually run, so a per-shard engine
    /// override never pays fusion or lowering at request time.
    pub(crate) fn prewarm_groups(
        &self,
        kind: EngineKind,
        groups: &[usize],
    ) -> Result<(), ServeError> {
        let ExecutionMode::Noisy { noise, .. } = &self.config.execution else {
            return Ok(());
        };
        let levels = self.config.effective_compression_levels();
        for &g in groups {
            let group = &self.groups[g];
            for &level in &levels {
                match kind {
                    EngineKind::Density | EngineKind::DensitySample => {
                        group
                            .fused_noisy_superop(noise, level)
                            .map_err(ServeError::Quorum)?;
                    }
                    EngineKind::DensityStructured => {
                        group
                            .channel_program(noise, level)
                            .map_err(ServeError::Quorum)?;
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }
}

/// Validates and reassembles one frozen group.
fn thaw_group(
    frozen: FrozenGroup,
    config: &QuorumConfig,
    num_features: usize,
    reference_samples: usize,
) -> Result<EnsembleGroup, ServeError> {
    if frozen.num_qubits != config.data_qubits {
        return Err(ServeError::Artifact(format!(
            "group {} was drawn for {} data qubits, configuration says {}",
            frozen.index, frozen.num_qubits, config.data_qubits
        )));
    }
    if frozen.layers.len() != config.ansatz_layers {
        return Err(ServeError::Artifact(format!(
            "group {} has {} ansatz layers, configuration says {}",
            frozen.index,
            frozen.layers.len(),
            config.ansatz_layers
        )));
    }
    if frozen.feature_columns.len() != config.features_per_circuit() {
        return Err(ServeError::Artifact(format!(
            "group {} selects {} feature columns, expected {}",
            frozen.index,
            frozen.feature_columns.len(),
            config.features_per_circuit()
        )));
    }
    for (i, &c) in frozen.feature_columns.iter().enumerate() {
        if c >= num_features || frozen.feature_columns[..i].contains(&c) {
            return Err(ServeError::Artifact(format!(
                "group {} has an out-of-range or duplicate feature column {c}",
                frozen.index
            )));
        }
    }
    if frozen
        .buckets
        .iter()
        .flatten()
        .any(|&i| i >= reference_samples)
    {
        return Err(ServeError::Artifact(format!(
            "group {} has a bucket index beyond the {} reference samples",
            frozen.index, reference_samples
        )));
    }
    let ansatz = AnsatzParams::from_layers(frozen.num_qubits, frozen.layers);
    let features = FeatureSelection::from_columns(frozen.feature_columns);
    let group = EnsembleGroup::from_parts(frozen.index, ansatz, features, frozen.buckets);
    group.prime_fused_encoder(frozen.encoder);
    Ok(group)
}
