//! Sharded multi-worker serving: partition the ensemble groups across
//! scoring workers and vector-sum their additive partial scores.
//!
//! Quorum's score is a plain sum over independent ensemble groups, which
//! makes group sharding the natural scale-out seam: a [`ShardPlan`]
//! assigns every group to one of K shards, a [`ShardedScorer`] fans each
//! coalesced panel out to K resident worker threads (one per shard, each
//! with its own engine and — because group subsets are disjoint — its own
//! per-group caches), and the partial score vectors are summed back in
//! **ascending group-index order**, exactly the accumulation order the
//! single-process [`FrozenDetector::score_samples`] uses. Scores are
//! therefore invariant to the shard plan the same way they are invariant
//! to request coalescing: bit-identical for every K, engine assignment
//! and execution mode.
//!
//! Plans balance groups by *cost*, not count: per-group weights come from
//! the committed `BENCH_baseline.json` measurements when one is readable
//! (`QUORUM_BENCH_BASELINE` overrides the path), falling back to a
//! gate-count × engine-kind cost model, and a longest-processing-time
//! pass assigns each group to the shard it finishes earliest on — which
//! also handles heterogeneous shards, e.g. a noisy detector splitting
//! groups between a dense-density shard and a structured-channel shard.

use crate::batch::PanelScorer;
use crate::error::ServeError;
use crate::frozen::FrozenDetector;
use qdata::Dataset;
use quorum_core::config::EngineKind;
use quorum_core::QuorumError;
use std::collections::BTreeMap;
use std::sync::mpsc::{self, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// How a serving runtime splits its ensemble groups across workers.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum ShardPolicy {
    /// No sharding: one in-process scorer runs every group (the
    /// single-worker runtime). Default.
    #[default]
    Single,
    /// K worker shards, all running the frozen configuration's engine,
    /// with groups cost-balanced across them.
    Workers(usize),
    /// One worker shard per entry, each optionally overriding the engine
    /// that evaluates its groups' deviations (`None` = the frozen
    /// configuration's engine). Overrides must honour the frozen
    /// execution mode — e.g. a noisy detector may mix
    /// [`EngineKind::Density`] and [`EngineKind::DensityStructured`]
    /// shards, but not a pure-state engine.
    Mixed(Vec<Option<EngineKind>>),
}

impl ShardPolicy {
    /// The per-shard engine assignments this policy asks for, or an error
    /// for a degenerate policy. `Single` is the empty assignment — the
    /// caller serves without a sharded scorer at all.
    fn shard_engines(&self) -> Result<Vec<Option<EngineKind>>, ServeError> {
        match self {
            ShardPolicy::Single => Ok(Vec::new()),
            ShardPolicy::Workers(0) => Err(ServeError::Request(
                "a sharded scorer needs at least one worker shard".into(),
            )),
            ShardPolicy::Workers(k) => Ok(vec![None; *k]),
            ShardPolicy::Mixed(engines) if engines.is_empty() => Err(ServeError::Request(
                "a mixed shard policy needs at least one shard".into(),
            )),
            ShardPolicy::Mixed(engines) => Ok(engines.clone()),
        }
    }
}

/// One shard of a [`ShardPlan`]: the groups it scores (ascending) and the
/// engine override it scores them with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shard {
    groups: Vec<usize>,
    engine: Option<EngineKind>,
}

impl Shard {
    /// The group indices this shard owns, in ascending order.
    pub fn groups(&self) -> &[usize] {
        &self.groups
    }

    /// The engine override this shard scores with (`None` = the frozen
    /// configuration's engine).
    pub fn engine(&self) -> Option<EngineKind> {
        self.engine
    }
}

/// A cost-balanced assignment of every ensemble group to one shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    shards: Vec<Shard>,
}

impl ShardPlan {
    /// Plans the given policy over a frozen detector: derives per-group
    /// cost weights (measured baseline metrics when available, gate-count
    /// model otherwise) and balances groups across the policy's shards.
    ///
    /// # Errors
    ///
    /// [`ServeError::Request`] for degenerate policies (zero shards).
    pub fn for_detector(
        frozen: &FrozenDetector,
        policy: &ShardPolicy,
    ) -> Result<ShardPlan, ServeError> {
        let engines = policy.shard_engines()?;
        if engines.is_empty() {
            // `Single` still yields a valid one-shard plan so callers can
            // treat every policy uniformly when they want to.
            return ShardPlan::balanced(&group_costs(frozen), &[1.0], &[None]);
        }
        let noisy = matches!(
            frozen.config().execution,
            quorum_core::config::ExecutionMode::Noisy { .. }
        );
        let default_kind = frozen.config().effective_engine();
        let baseline = BaselineCosts::load();
        let speeds: Vec<f64> = engines
            .iter()
            .map(|e| engine_cost_weight(e.unwrap_or(default_kind), noisy, baseline.as_ref()))
            .collect();
        ShardPlan::balanced(&group_costs(frozen), &speeds, &engines)
    }

    /// Cost-balanced assignment: a longest-processing-time pass places
    /// each group (heaviest first, ties broken by ascending index) on the
    /// shard whose load-after-assignment is smallest, where a group's
    /// cost on shard `s` is `group_cost × shard_weight[s]` — so a slower
    /// engine's shard receives proportionally fewer groups. Deterministic
    /// for fixed inputs; each shard's group list comes back ascending.
    ///
    /// # Errors
    ///
    /// [`ServeError::Request`] when `shard_weights` is empty (a plan
    /// needs at least one shard to put groups on) or its length differs
    /// from `shard_engines`.
    pub fn balanced(
        group_costs: &[f64],
        shard_weights: &[f64],
        shard_engines: &[Option<EngineKind>],
    ) -> Result<ShardPlan, ServeError> {
        if shard_weights.len() != shard_engines.len() {
            return Err(ServeError::Request(format!(
                "shard weights ({}) and engine assignments ({}) disagree on the shard count",
                shard_weights.len(),
                shard_engines.len()
            )));
        }
        if shard_weights.is_empty() {
            return Err(ServeError::Request(
                "a shard plan needs at least one shard".into(),
            ));
        }
        let mut order: Vec<usize> = (0..group_costs.len()).collect();
        order.sort_by(|&a, &b| {
            group_costs[b]
                .partial_cmp(&group_costs[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut loads = vec![0.0f64; shard_weights.len()];
        let mut shards: Vec<Shard> = shard_engines
            .iter()
            .map(|&engine| Shard {
                groups: Vec::new(),
                engine,
            })
            .collect();
        for g in order {
            let cost = group_costs[g].max(0.0);
            // The emptiness check above guarantees a minimum exists.
            let mut best = 0usize;
            let mut best_load = f64::INFINITY;
            for (s, &load) in loads.iter().enumerate() {
                let would_be = load + cost * shard_weights[s].max(f64::MIN_POSITIVE);
                if would_be < best_load {
                    best = s;
                    best_load = would_be;
                }
            }
            loads[best] = best_load;
            shards[best].groups.push(g);
        }
        for shard in &mut shards {
            shard.groups.sort_unstable();
        }
        Ok(ShardPlan { shards })
    }

    /// The plan's shards.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Total number of worker shards (including empty ones).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }
}

/// Per-group cost weights from the gate-count model: every group pays for
/// its encoder twice (encoder + mirrored decoder) per compression level,
/// plus the level's reset channels. Groups drawn from one configuration
/// share a gate skeleton, so this is near-uniform today — the seam exists
/// for heterogeneous ensembles (e.g. trained encoders of varying depth).
fn group_costs(frozen: &FrozenDetector) -> Vec<f64> {
    let levels = frozen.config().effective_compression_levels();
    frozen
        .groups()
        .iter()
        .map(|group| {
            let encoder_ops: usize = group
                .ansatz()
                .encoder()
                .count_ops()
                .iter()
                .map(|(_, n)| n)
                .sum();
            let resets: usize = levels.iter().sum();
            (2 * encoder_ops * levels.len() + resets).max(1) as f64
        })
        .collect()
}

/// Relative per-sample cost of one engine kind, preferring measured
/// baseline metrics and falling back to constants taken from the same
/// measurement history. Only ratios between kinds matter: they decide how
/// many groups a slower shard can afford.
fn engine_cost_weight(kind: EngineKind, noisy: bool, baseline: Option<&BaselineCosts>) -> f64 {
    let measured = baseline.and_then(|b| b.engine_ns_per_sample(kind, noisy));
    measured.unwrap_or(match kind {
        EngineKind::Batched => 5_100.0,
        EngineKind::Analytic => 13_400.0,
        EngineKind::Density => 7_800.0,
        EngineKind::DensityStructured => 16_000.0,
        EngineKind::DensitySample => 28_800.0,
        EngineKind::Circuit => {
            if noisy {
                813_000_000.0
            } else {
                1_710_000.0
            }
        }
        // `Auto` never reaches here (callers resolve it first), and new
        // kinds default to parity until measured.
        _ => 10_000.0,
    })
}

/// The flat `"key": value` metric map of a `BENCH_baseline.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineCosts {
    metrics: BTreeMap<String, f64>,
}

impl BaselineCosts {
    /// Reads the baseline the environment points at: the
    /// `QUORUM_BENCH_BASELINE` path when set, else `BENCH_baseline.json`
    /// in the working directory. Any read or parse failure degrades to
    /// `None` — the cost model falls back to its constants, never errors.
    pub fn load() -> Option<BaselineCosts> {
        let path = std::env::var("QUORUM_BENCH_BASELINE")
            .unwrap_or_else(|_| "BENCH_baseline.json".to_string());
        Self::parse(&std::fs::read_to_string(path).ok()?)
    }

    /// Parses the flat `"key": value` lines of the bench JSON's `metrics`
    /// object (the exact format `engine_comparison.rs` emits). Returns
    /// `None` when no metric parses.
    pub fn parse(text: &str) -> Option<BaselineCosts> {
        let mut metrics = BTreeMap::new();
        let mut in_metrics = false;
        for line in text.lines() {
            let line = line.trim();
            if line.starts_with("\"metrics\"") {
                in_metrics = true;
                continue;
            }
            if !in_metrics {
                continue;
            }
            if line.starts_with('}') {
                break;
            }
            let Some((key, value)) = line.split_once(':') else {
                continue;
            };
            if let Ok(v) = value.trim().trim_end_matches(',').parse::<f64>() {
                metrics.insert(key.trim().trim_matches('"').to_string(), v);
            }
        }
        if metrics.is_empty() {
            None
        } else {
            Some(BaselineCosts { metrics })
        }
    }

    /// The measured ns/sample for one engine kind, when the baseline
    /// carries the matching column. The structured and per-sample density
    /// kinds are derived from their measured ratios against the batched
    /// density column, since the baseline benches them on different
    /// shapes.
    pub fn engine_ns_per_sample(&self, kind: EngineKind, noisy: bool) -> Option<f64> {
        let get = |k: &str| self.metrics.get(k).copied().filter(|v| *v > 0.0);
        match kind {
            EngineKind::Batched => get("batched_ns_per_sample"),
            EngineKind::Analytic => get("analytic_ns_per_sample"),
            EngineKind::Density => {
                get("density_batched_ns_per_sample").or_else(|| get("density_ns_per_sample"))
            }
            EngineKind::DensityStructured => {
                let dense = self.engine_ns_per_sample(EngineKind::Density, noisy)?;
                let ratio = get("structured_n5_ns_per_sample")? / get("dense_n5_ns_per_sample")?;
                Some(dense * ratio)
            }
            EngineKind::DensitySample => get("density_per_sample_ns_per_sample"),
            EngineKind::Circuit => {
                if noisy {
                    get("noisy_circuit_ns_per_sample")
                } else {
                    get("circuit_ns_per_sample")
                }
            }
            _ => None,
        }
    }
}

/// One panel job fanned out to a shard worker.
struct ShardJob {
    normalized: Arc<Dataset>,
    first_sample_id: u64,
    reply: Sender<ShardReply>,
}

/// A worker's answer: its shard index plus each owned group's additive
/// partial vector (or that group's failure), in ascending group order.
struct ShardReply {
    shard: usize,
    partials: Vec<(usize, Result<Vec<f64>, QuorumError>)>,
}

/// K resident shard workers over one frozen detector, scoring coalesced
/// panels as the vector sum of per-shard partial scores.
///
/// Bit-identity contract: for any plan produced by any [`ShardPolicy`]
/// whose shards all run the frozen configuration's engine,
/// [`ShardedScorer::score_samples`] equals
/// [`FrozenDetector::score_samples`] bit for bit — per-group partials are
/// computed identically and merged in ascending group-index order, the
/// single-process accumulation order. With per-shard engine overrides the
/// same holds against a single process that evaluates each group with the
/// same assigned engine.
pub struct ShardedScorer {
    frozen: Arc<FrozenDetector>,
    plan: ShardPlan,
    workers: Vec<ShardWorker>,
}

struct ShardWorker {
    tx: Option<Sender<ShardJob>>,
    join: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ShardedScorer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedScorer")
            .field("shards", &self.plan.num_shards())
            .field("plan", &self.plan)
            .finish_non_exhaustive()
    }
}

impl ShardedScorer {
    /// Plans `policy` over `frozen` and starts one resident worker thread
    /// per shard. Engine overrides are validated against the frozen
    /// execution mode up front, and every shard's noisy caches are
    /// pre-warmed for the engine that shard will actually run, so the
    /// first request pays no fusion or lowering.
    ///
    /// # Errors
    ///
    /// [`ServeError::Request`] for degenerate policies;
    /// [`ServeError::Quorum`] for engine overrides the execution mode
    /// rejects.
    pub fn new(frozen: Arc<FrozenDetector>, policy: &ShardPolicy) -> Result<Self, ServeError> {
        let plan = ShardPlan::for_detector(&frozen, policy)?;
        Self::with_plan(frozen, plan)
    }

    /// Starts workers for an explicit plan (the equivalence suite uses
    /// this to pin score invariance across hand-built plans).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ShardedScorer::new`].
    pub fn with_plan(frozen: Arc<FrozenDetector>, plan: ShardPlan) -> Result<Self, ServeError> {
        let mut seen = vec![false; frozen.groups().len()];
        for shard in plan.shards() {
            for &g in shard.groups() {
                if g >= seen.len() || seen[g] {
                    return Err(ServeError::Request(format!(
                        "shard plan assigns group {g} out of range or twice"
                    )));
                }
                seen[g] = true;
            }
        }
        if !seen.iter().all(|&s| s) {
            return Err(ServeError::Request(
                "shard plan leaves at least one group unassigned".into(),
            ));
        }
        let mut workers = Vec::with_capacity(plan.num_shards());
        for (s, shard) in plan.shards().iter().enumerate() {
            // Validate the override and pre-warm this shard's groups for
            // the engine the shard will run, before any worker spawns.
            let (engine, exact_config) = frozen.resolve_stream_engine(shard.engine())?;
            if let Some(kind) = shard.engine() {
                frozen.prewarm_groups(kind, shard.groups())?;
            }
            let (tx, rx) = mpsc::channel::<ShardJob>();
            let frozen_w = Arc::clone(&frozen);
            let groups = shard.groups().to_vec();
            let levels = frozen.stream_levels();
            let join = std::thread::Builder::new()
                .name(format!("quorum-shard-{s}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        let partials = groups
                            .iter()
                            .map(|&g| {
                                (
                                    g,
                                    frozen_w.stream_scores_for_group_with(
                                        engine,
                                        &exact_config,
                                        g,
                                        &job.normalized,
                                        &levels,
                                        job.first_sample_id,
                                    ),
                                )
                            })
                            .collect();
                        let _ = job.reply.send(ShardReply { shard: s, partials });
                    }
                })
                .map_err(|e| ServeError::spawn(&format!("quorum-shard-{s}"), e))?;
            workers.push(ShardWorker {
                tx: Some(tx),
                join: Some(join),
            });
        }
        Ok(ShardedScorer {
            frozen,
            plan,
            workers,
        })
    }

    /// The plan this scorer executes.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The underlying frozen detector.
    pub fn frozen(&self) -> &Arc<FrozenDetector> {
        &self.frozen
    }

    /// Scores a panel of streamed rows: normalises once, fans the shared
    /// panel out to every shard worker, and sums the per-group partial
    /// vectors in ascending group-index order — bit-identical to
    /// [`FrozenDetector::score_samples`] under the same per-group engine
    /// assignment, for every shard plan.
    ///
    /// # Errors
    ///
    /// Row validation and scoring failures as in
    /// [`FrozenDetector::score_samples`]; [`ServeError::Io`] when a shard
    /// worker has died. When several groups fail, the lowest-indexed
    /// group's error is reported (the single-process order).
    pub fn score_samples(
        &self,
        rows: &[Vec<f64>],
        first_sample_id: u64,
    ) -> Result<Vec<f64>, ServeError> {
        if rows.is_empty() {
            return Ok(Vec::new());
        }
        let normalized = Arc::new(self.frozen.normalize_stream_rows(rows)?);
        let (reply_tx, reply_rx) = mpsc::channel::<ShardReply>();
        let mut live = 0usize;
        for worker in &self.workers {
            let tx = worker.tx.as_ref().expect("workers live until drop");
            tx.send(ShardJob {
                normalized: Arc::clone(&normalized),
                first_sample_id,
                reply: reply_tx.clone(),
            })
            .map_err(|_| worker_gone())?;
            live += 1;
        }
        drop(reply_tx);
        let mut per_group: Vec<Option<Result<Vec<f64>, QuorumError>>> =
            (0..self.frozen.groups().len()).map(|_| None).collect();
        for _ in 0..live {
            let reply = reply_rx.recv().map_err(|_| worker_gone())?;
            debug_assert!(reply.shard < self.workers.len());
            for (g, partial) in reply.partials {
                per_group[g] = Some(partial);
            }
        }
        let mut totals = vec![0.0; rows.len()];
        for slot in per_group {
            let partial = slot.ok_or_else(worker_gone)?.map_err(ServeError::Quorum)?;
            for (t, p) in totals.iter_mut().zip(partial) {
                *t += p;
            }
        }
        Ok(totals)
    }
}

impl Drop for ShardedScorer {
    fn drop(&mut self) {
        for worker in &mut self.workers {
            drop(worker.tx.take());
        }
        for worker in &mut self.workers {
            if let Some(join) = worker.join.take() {
                let _ = join.join();
            }
        }
    }
}

impl PanelScorer for ShardedScorer {
    fn num_features(&self) -> usize {
        self.frozen.num_features()
    }

    fn score_panel(&self, rows: &[Vec<f64>], first_sample_id: u64) -> Result<Vec<f64>, ServeError> {
        self.score_samples(rows, first_sample_id)
    }
}

fn worker_gone() -> ServeError {
    ServeError::Io(std::io::Error::new(
        std::io::ErrorKind::BrokenPipe,
        "a shard worker has shut down",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_covers_every_group_exactly_once() {
        let costs = vec![1.0; 10];
        let plan = ShardPlan::balanced(&costs, &[1.0, 1.0, 1.0], &[None, None, None]).unwrap();
        let mut seen = vec![0usize; costs.len()];
        for shard in plan.shards() {
            assert!(shard.groups().windows(2).all(|w| w[0] < w[1]));
            for &g in shard.groups() {
                seen[g] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
        // Uniform costs: balanced counts (10 over 3 ⇒ 4/3/3).
        let mut sizes: Vec<usize> = plan.shards().iter().map(|s| s.groups().len()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![3, 3, 4]);
    }

    #[test]
    fn balanced_is_cost_aware_not_count_aware() {
        // One heavyweight group must travel alone: LPT puts the 10.0
        // group on its own shard and packs the six light groups opposite.
        let costs = vec![10.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let plan = ShardPlan::balanced(&costs, &[1.0, 1.0], &[None, None]).unwrap();
        let with_heavy = plan
            .shards()
            .iter()
            .find(|s| s.groups().contains(&0))
            .unwrap();
        assert_eq!(with_heavy.groups(), &[0]);
        let other = plan.shards().iter().find(|s| !s.groups().contains(&0));
        assert_eq!(other.unwrap().groups().len(), 6);
    }

    #[test]
    fn balanced_respects_shard_speed_weights() {
        // A shard whose engine is 4× slower should receive ~1/4 the work
        // of a fast shard under uniform group costs.
        let costs = vec![1.0; 10];
        let plan = ShardPlan::balanced(&costs, &[1.0, 4.0], &[None, None]).unwrap();
        assert_eq!(plan.shards()[0].groups().len(), 8);
        assert_eq!(plan.shards()[1].groups().len(), 2);
    }

    #[test]
    fn balanced_is_deterministic_and_tolerates_empty_shards() {
        let costs = vec![3.0, 1.0, 2.0];
        let a = ShardPlan::balanced(&costs, &[1.0; 5], &[None; 5]).unwrap();
        let b = ShardPlan::balanced(&costs, &[1.0; 5], &[None; 5]).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.num_shards(), 5);
        let assigned: usize = a.shards().iter().map(|s| s.groups().len()).sum();
        assert_eq!(assigned, costs.len());
        assert!(a.shards().iter().any(|s| s.groups().is_empty()));
    }

    #[test]
    fn baseline_costs_parse_the_bench_format() {
        let text = r#"{
  "config": { "data_qubits": 3 },
  "metrics": {
    "batched_ns_per_sample": 5126.021,
    "analytic_ns_per_sample": 13425.125,
    "density_batched_ns_per_sample": 7811.594,
    "density_per_sample_ns_per_sample": 28760.021,
    "dense_n5_ns_per_sample": 1387566.208,
    "structured_n5_ns_per_sample": 1068530.833,
    "noisy_circuit_ns_per_sample": 813516036.750
  }
}"#;
        let costs = BaselineCosts::parse(text).unwrap();
        assert_eq!(
            costs.engine_ns_per_sample(EngineKind::Batched, false),
            Some(5126.021)
        );
        let structured = costs
            .engine_ns_per_sample(EngineKind::DensityStructured, true)
            .unwrap();
        // Derived: dense column × measured structured/dense ratio.
        assert!((structured - 7811.594 * (1068530.833 / 1387566.208)).abs() < 1e-6);
        assert_eq!(
            costs.engine_ns_per_sample(EngineKind::Circuit, true),
            Some(813516036.750)
        );
        assert!(BaselineCosts::parse("not json at all").is_none());
        assert!(BaselineCosts::parse("{\"metrics\": {}}").is_none());
    }

    #[test]
    fn policy_rejects_degenerate_shapes() {
        assert!(ShardPolicy::Workers(0).shard_engines().is_err());
        assert!(ShardPolicy::Mixed(Vec::new()).shard_engines().is_err());
        assert_eq!(
            ShardPolicy::Workers(3).shard_engines().unwrap(),
            vec![None; 3]
        );
        assert!(ShardPolicy::Single.shard_engines().unwrap().is_empty());
    }

    #[test]
    fn balanced_rejects_degenerate_plans_with_typed_errors() {
        // Zero shards and mismatched shard lists must come back as
        // request errors, never panics.
        let empty = ShardPlan::balanced(&[1.0, 2.0], &[], &[]);
        assert!(matches!(empty, Err(ServeError::Request(_))), "{empty:?}");
        let mismatched = ShardPlan::balanced(&[1.0], &[1.0, 1.0], &[None]);
        assert!(
            matches!(mismatched, Err(ServeError::Request(_))),
            "{mismatched:?}"
        );
        // No groups is fine: every shard simply comes back empty.
        let no_groups = ShardPlan::balanced(&[], &[1.0, 1.0], &[None, None]).unwrap();
        assert!(no_groups.shards().iter().all(|s| s.groups().is_empty()));
    }
}
