//! Sharded multi-worker serving: partition the ensemble groups across
//! scoring workers and vector-sum their additive partial scores.
//!
//! Quorum's score is a plain sum over independent ensemble groups, which
//! makes group sharding the natural scale-out seam: a [`ShardPlan`]
//! assigns every group to one of K shards, a [`ShardedScorer`] fans each
//! coalesced panel out to K resident worker threads (one per shard, each
//! with its own engine and — because group subsets are disjoint — its own
//! per-group caches), and the partial score vectors are summed back in
//! **ascending group-index order**, exactly the accumulation order the
//! single-process [`FrozenDetector::score_samples`] uses. Scores are
//! therefore invariant to the shard plan the same way they are invariant
//! to request coalescing: bit-identical for every K, engine assignment
//! and execution mode.
//!
//! Plans balance groups by *cost*, not count: per-group weights come from
//! the committed `BENCH_baseline.json` measurements when one is readable
//! (`QUORUM_BENCH_BASELINE` overrides the path), falling back to a
//! gate-count × engine-kind cost model, and a longest-processing-time
//! pass assigns each group to the shard it finishes earliest on — which
//! also handles heterogeneous shards, e.g. a noisy detector splitting
//! groups between a dense-density shard and a structured-channel shard.

use crate::batch::PanelScorer;
use crate::error::ServeError;
use crate::frozen::{FrozenDetector, NormalizedPanel};
use quorum_core::config::EngineKind;
use quorum_core::engine::ScoringEngine;
use quorum_core::{QuorumConfig, QuorumError};
use std::cell::UnsafeCell;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// How a serving runtime splits its ensemble groups across workers.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum ShardPolicy {
    /// No sharding: one in-process scorer runs every group (the
    /// single-worker runtime). Default.
    #[default]
    Single,
    /// K worker shards, all running the frozen configuration's engine,
    /// with groups cost-balanced across them.
    Workers(usize),
    /// One worker shard per entry, each optionally overriding the engine
    /// that evaluates its groups' deviations (`None` = the frozen
    /// configuration's engine). Overrides must honour the frozen
    /// execution mode — e.g. a noisy detector may mix
    /// [`EngineKind::Density`] and [`EngineKind::DensityStructured`]
    /// shards, but not a pure-state engine.
    Mixed(Vec<Option<EngineKind>>),
}

impl ShardPolicy {
    /// The per-shard engine assignments this policy asks for, or an error
    /// for a degenerate policy. `Single` is the empty assignment — the
    /// caller serves without a sharded scorer at all.
    fn shard_engines(&self) -> Result<Vec<Option<EngineKind>>, ServeError> {
        match self {
            ShardPolicy::Single => Ok(Vec::new()),
            ShardPolicy::Workers(0) => Err(ServeError::Request(
                "a sharded scorer needs at least one worker shard".into(),
            )),
            ShardPolicy::Workers(k) => Ok(vec![None; *k]),
            ShardPolicy::Mixed(engines) if engines.is_empty() => Err(ServeError::Request(
                "a mixed shard policy needs at least one shard".into(),
            )),
            ShardPolicy::Mixed(engines) => Ok(engines.clone()),
        }
    }
}

/// One shard of a [`ShardPlan`]: the groups it scores (ascending) and the
/// engine override it scores them with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shard {
    groups: Vec<usize>,
    engine: Option<EngineKind>,
}

impl Shard {
    /// The group indices this shard owns, in ascending order.
    pub fn groups(&self) -> &[usize] {
        &self.groups
    }

    /// The engine override this shard scores with (`None` = the frozen
    /// configuration's engine).
    pub fn engine(&self) -> Option<EngineKind> {
        self.engine
    }
}

/// A cost-balanced assignment of every ensemble group to one shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    shards: Vec<Shard>,
}

impl ShardPlan {
    /// Plans the given policy over a frozen detector: derives per-group
    /// cost weights (measured baseline metrics when available, gate-count
    /// model otherwise) and balances groups across the policy's shards.
    ///
    /// # Errors
    ///
    /// [`ServeError::Request`] for degenerate policies (zero shards).
    pub fn for_detector(
        frozen: &FrozenDetector,
        policy: &ShardPolicy,
    ) -> Result<ShardPlan, ServeError> {
        let engines = policy.shard_engines()?;
        if engines.is_empty() {
            // `Single` still yields a valid one-shard plan so callers can
            // treat every policy uniformly when they want to.
            return ShardPlan::balanced(&group_costs(frozen), &[1.0], &[None]);
        }
        let noisy = matches!(
            frozen.config().execution,
            quorum_core::config::ExecutionMode::Noisy { .. }
        );
        let default_kind = frozen.config().effective_engine();
        let baseline = BaselineCosts::load();
        let speeds: Vec<f64> = engines
            .iter()
            .map(|e| engine_cost_weight(e.unwrap_or(default_kind), noisy, baseline.as_ref()))
            .collect();
        ShardPlan::balanced(&group_costs(frozen), &speeds, &engines)
    }

    /// Cost-balanced assignment: a longest-processing-time pass places
    /// each group (heaviest first, ties broken by ascending index) on the
    /// shard whose load-after-assignment is smallest, where a group's
    /// cost on shard `s` is `group_cost × shard_weight[s]` — so a slower
    /// engine's shard receives proportionally fewer groups. Deterministic
    /// for fixed inputs; each shard's group list comes back ascending.
    ///
    /// # Errors
    ///
    /// [`ServeError::Request`] when `shard_weights` is empty (a plan
    /// needs at least one shard to put groups on) or its length differs
    /// from `shard_engines`.
    pub fn balanced(
        group_costs: &[f64],
        shard_weights: &[f64],
        shard_engines: &[Option<EngineKind>],
    ) -> Result<ShardPlan, ServeError> {
        if shard_weights.len() != shard_engines.len() {
            return Err(ServeError::Request(format!(
                "shard weights ({}) and engine assignments ({}) disagree on the shard count",
                shard_weights.len(),
                shard_engines.len()
            )));
        }
        if shard_weights.is_empty() {
            return Err(ServeError::Request(
                "a shard plan needs at least one shard".into(),
            ));
        }
        let mut order: Vec<usize> = (0..group_costs.len()).collect();
        order.sort_by(|&a, &b| {
            group_costs[b]
                .partial_cmp(&group_costs[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut loads = vec![0.0f64; shard_weights.len()];
        let mut shards: Vec<Shard> = shard_engines
            .iter()
            .map(|&engine| Shard {
                groups: Vec::new(),
                engine,
            })
            .collect();
        for g in order {
            let cost = group_costs[g].max(0.0);
            // The emptiness check above guarantees a minimum exists.
            let mut best = 0usize;
            let mut best_load = f64::INFINITY;
            for (s, &load) in loads.iter().enumerate() {
                let would_be = load + cost * shard_weights[s].max(f64::MIN_POSITIVE);
                if would_be < best_load {
                    best = s;
                    best_load = would_be;
                }
            }
            loads[best] = best_load;
            shards[best].groups.push(g);
        }
        for shard in &mut shards {
            shard.groups.sort_unstable();
        }
        Ok(ShardPlan { shards })
    }

    /// The plan's shards.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Total number of worker shards (including empty ones).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }
}

/// Per-group cost weights from the gate-count model: every group pays for
/// its encoder twice (encoder + mirrored decoder) per compression level,
/// plus the level's reset channels. Groups drawn from one configuration
/// share a gate skeleton, so this is near-uniform today — the seam exists
/// for heterogeneous ensembles (e.g. trained encoders of varying depth).
fn group_costs(frozen: &FrozenDetector) -> Vec<f64> {
    let levels = frozen.config().effective_compression_levels();
    frozen
        .groups()
        .iter()
        .map(|group| {
            let encoder_ops: usize = group
                .ansatz()
                .encoder()
                .count_ops()
                .iter()
                .map(|(_, n)| n)
                .sum();
            let resets: usize = levels.iter().sum();
            (2 * encoder_ops * levels.len() + resets).max(1) as f64
        })
        .collect()
}

/// Relative per-sample cost of one engine kind, preferring measured
/// baseline metrics and falling back to constants taken from the same
/// measurement history. Only ratios between kinds matter: they decide how
/// many groups a slower shard can afford.
fn engine_cost_weight(kind: EngineKind, noisy: bool, baseline: Option<&BaselineCosts>) -> f64 {
    let measured = baseline.and_then(|b| b.engine_ns_per_sample(kind, noisy));
    measured.unwrap_or(match kind {
        EngineKind::Batched => 5_100.0,
        EngineKind::Analytic => 13_400.0,
        EngineKind::Density => 7_800.0,
        EngineKind::DensityStructured => 16_000.0,
        EngineKind::DensitySample => 28_800.0,
        EngineKind::Circuit => {
            if noisy {
                813_000_000.0
            } else {
                1_710_000.0
            }
        }
        // `Auto` never reaches here (callers resolve it first), and new
        // kinds default to parity until measured.
        _ => 10_000.0,
    })
}

/// The flat `"key": value` metric map of a `BENCH_baseline.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineCosts {
    metrics: BTreeMap<String, f64>,
}

impl BaselineCosts {
    /// Reads the baseline the environment points at: the
    /// `QUORUM_BENCH_BASELINE` path when set, else `BENCH_baseline.json`
    /// in the working directory. Any read or parse failure degrades to
    /// `None` — the cost model falls back to its constants, never errors.
    pub fn load() -> Option<BaselineCosts> {
        let path = std::env::var("QUORUM_BENCH_BASELINE")
            .unwrap_or_else(|_| "BENCH_baseline.json".to_string());
        Self::parse(&std::fs::read_to_string(path).ok()?)
    }

    /// Parses the flat `"key": value` lines of the bench JSON's `metrics`
    /// object (the exact format `engine_comparison.rs` emits). Returns
    /// `None` when no metric parses.
    pub fn parse(text: &str) -> Option<BaselineCosts> {
        let mut metrics = BTreeMap::new();
        let mut in_metrics = false;
        for line in text.lines() {
            let line = line.trim();
            if line.starts_with("\"metrics\"") {
                in_metrics = true;
                continue;
            }
            if !in_metrics {
                continue;
            }
            if line.starts_with('}') {
                break;
            }
            let Some((key, value)) = line.split_once(':') else {
                continue;
            };
            if let Ok(v) = value.trim().trim_end_matches(',').parse::<f64>() {
                metrics.insert(key.trim().trim_matches('"').to_string(), v);
            }
        }
        if metrics.is_empty() {
            None
        } else {
            Some(BaselineCosts { metrics })
        }
    }

    /// The measured ns/sample for one engine kind, when the baseline
    /// carries the matching column. The structured and per-sample density
    /// kinds are derived from their measured ratios against the batched
    /// density column, since the baseline benches them on different
    /// shapes.
    pub fn engine_ns_per_sample(&self, kind: EngineKind, noisy: bool) -> Option<f64> {
        let get = |k: &str| self.metrics.get(k).copied().filter(|v| *v > 0.0);
        match kind {
            EngineKind::Batched => get("batched_ns_per_sample"),
            EngineKind::Analytic => get("analytic_ns_per_sample"),
            EngineKind::Density => {
                get("density_batched_ns_per_sample").or_else(|| get("density_ns_per_sample"))
            }
            EngineKind::DensityStructured => {
                let dense = self.engine_ns_per_sample(EngineKind::Density, noisy)?;
                let ratio = get("structured_n5_ns_per_sample")? / get("dense_n5_ns_per_sample")?;
                Some(dense * ratio)
            }
            EngineKind::DensitySample => get("density_per_sample_ns_per_sample"),
            EngineKind::Circuit => {
                if noisy {
                    get("noisy_circuit_ns_per_sample")
                } else {
                    get("circuit_ns_per_sample")
                }
            }
            _ => None,
        }
    }
}

/// Interior-mutable buffer shared between the coordinator and the shard
/// workers. Access is epoch-fenced, never locked during the hot section:
/// the coordinator writes only while no panel is in flight (publish
/// happens under the state mutex, which establishes the happens-before
/// edge), and workers touch disjoint regions — the panel read-only, and
/// each group's slab row exclusively (the plan assigns every group to
/// exactly one shard).
struct ShardCell<T>(UnsafeCell<T>);

// Safety: see the access protocol on [`ShardShared`] — every access is
// ordered by the state mutex, and concurrent writers never alias.
unsafe impl<T: Send> Sync for ShardCell<T> {}

impl<T> ShardCell<T> {
    fn get(&self) -> *mut T {
        self.0.get()
    }
}

/// Coordinator/worker rendezvous state for one [`ShardedScorer`].
struct ShardState {
    /// Bumped once per published panel; workers score each epoch once.
    epoch: u64,
    /// Samples in the in-flight panel (slab rows are this wide).
    samples: usize,
    first_sample_id: u64,
    /// Workers that have not yet finished the in-flight epoch.
    remaining: usize,
    /// Worker threads still alive (a panicked worker leaves for good).
    live: usize,
    /// Set when a worker dies mid-panel; the scorer is then permanently
    /// degraded (same contract as a closed worker channel before).
    died: bool,
    shutdown: bool,
    /// Per-group scoring failures of the in-flight epoch.
    errors: Vec<(usize, QuorumError)>,
}

/// Everything the resident shard workers share with the coordinator: the
/// rendezvous state, the normalized panel (written by the coordinator
/// between epochs, read by every worker during one), and the per-group
/// partial-sum slab (`num_groups × samples`, each group's row written by
/// exactly one worker).
struct ShardShared {
    state: Mutex<ShardState>,
    /// Workers wait here for the next epoch (or shutdown).
    job_cv: Condvar,
    /// The coordinator waits here for `remaining == 0`.
    done_cv: Condvar,
    panel: ShardCell<NormalizedPanel>,
    slab: ShardCell<Vec<f64>>,
    num_groups: usize,
}

/// K resident shard workers over one frozen detector, scoring coalesced
/// panels as the vector sum of per-shard partial scores.
///
/// Dispatch is a shared-memory rendezvous, not a per-panel channel
/// round-trip: the coordinator normalises into a resident panel buffer,
/// bumps an epoch under the state mutex, and parked workers score their
/// groups straight into pre-sliced rows of a resident partial-sum slab —
/// no per-panel allocations, sends, or reply receivers on the steady
/// path. Concurrent `score_samples` calls serialise on the coordinator
/// lock (they time-share the same worker fleet either way).
///
/// Bit-identity contract: for any plan produced by any [`ShardPolicy`]
/// whose shards all run the frozen configuration's engine,
/// [`ShardedScorer::score_samples`] equals
/// [`FrozenDetector::score_samples`] bit for bit — per-group partials are
/// computed identically and merged in ascending group-index order, the
/// single-process accumulation order. With per-shard engine overrides the
/// same holds against a single process that evaluates each group with the
/// same assigned engine.
pub struct ShardedScorer {
    frozen: Arc<FrozenDetector>,
    plan: ShardPlan,
    shared: Arc<ShardShared>,
    /// Serialises panel publication (one panel in flight at a time).
    coordinator: Mutex<()>,
    workers: Vec<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for ShardedScorer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedScorer")
            .field("shards", &self.plan.num_shards())
            .field("plan", &self.plan)
            .finish_non_exhaustive()
    }
}

impl ShardedScorer {
    /// Plans `policy` over `frozen` and starts one resident worker thread
    /// per shard. Engine overrides are validated against the frozen
    /// execution mode up front, and every shard's noisy caches are
    /// pre-warmed for the engine that shard will actually run, so the
    /// first request pays no fusion or lowering.
    ///
    /// # Errors
    ///
    /// [`ServeError::Request`] for degenerate policies;
    /// [`ServeError::Quorum`] for engine overrides the execution mode
    /// rejects.
    pub fn new(frozen: Arc<FrozenDetector>, policy: &ShardPolicy) -> Result<Self, ServeError> {
        let plan = ShardPlan::for_detector(&frozen, policy)?;
        Self::with_plan(frozen, plan)
    }

    /// Starts workers for an explicit plan (the equivalence suite uses
    /// this to pin score invariance across hand-built plans).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ShardedScorer::new`].
    pub fn with_plan(frozen: Arc<FrozenDetector>, plan: ShardPlan) -> Result<Self, ServeError> {
        let mut seen = vec![false; frozen.groups().len()];
        for shard in plan.shards() {
            for &g in shard.groups() {
                if g >= seen.len() || seen[g] {
                    return Err(ServeError::Request(format!(
                        "shard plan assigns group {g} out of range or twice"
                    )));
                }
                seen[g] = true;
            }
        }
        if !seen.iter().all(|&s| s) {
            return Err(ServeError::Request(
                "shard plan leaves at least one group unassigned".into(),
            ));
        }
        let shared = Arc::new(ShardShared {
            state: Mutex::new(ShardState {
                epoch: 0,
                samples: 0,
                first_sample_id: 0,
                remaining: 0,
                live: plan.num_shards(),
                died: false,
                shutdown: false,
                errors: Vec::new(),
            }),
            job_cv: Condvar::new(),
            done_cv: Condvar::new(),
            panel: ShardCell(UnsafeCell::new(NormalizedPanel::default())),
            slab: ShardCell(UnsafeCell::new(Vec::new())),
            num_groups: frozen.groups().len(),
        });
        let mut workers = Vec::with_capacity(plan.num_shards());
        for (s, shard) in plan.shards().iter().enumerate() {
            // Validate the override and pre-warm this shard's groups for
            // the engine the shard will run, before any worker spawns.
            let (engine, exact_config) = frozen.resolve_stream_engine(shard.engine())?;
            if let Some(kind) = shard.engine() {
                frozen.prewarm_groups(kind, shard.groups())?;
            }
            let frozen_w = Arc::clone(&frozen);
            let shared_w = Arc::clone(&shared);
            let groups = shard.groups().to_vec();
            let levels = frozen.stream_levels();
            let join = std::thread::Builder::new()
                .name(format!("quorum-shard-{s}"))
                .spawn(move || {
                    shard_worker_loop(
                        &frozen_w,
                        &shared_w,
                        &groups,
                        engine,
                        &exact_config,
                        &levels,
                    )
                })
                .map_err(|e| ServeError::spawn(&format!("quorum-shard-{s}"), e))?;
            workers.push(Some(join));
        }
        Ok(ShardedScorer {
            frozen,
            plan,
            shared,
            coordinator: Mutex::new(()),
            workers,
        })
    }

    /// The plan this scorer executes.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The underlying frozen detector.
    pub fn frozen(&self) -> &Arc<FrozenDetector> {
        &self.frozen
    }

    /// Scores a panel of streamed rows: normalises once into the resident
    /// shared panel, publishes one epoch to the parked workers, and sums
    /// the per-group slab rows in ascending group-index order —
    /// bit-identical to [`FrozenDetector::score_samples`] under the same
    /// per-group engine assignment, for every shard plan.
    ///
    /// # Errors
    ///
    /// Row validation and scoring failures as in
    /// [`FrozenDetector::score_samples`]; [`ServeError::Io`] when a shard
    /// worker has died. When several groups fail, the lowest-indexed
    /// group's error is reported (the single-process order).
    pub fn score_samples(
        &self,
        rows: &[Vec<f64>],
        first_sample_id: u64,
    ) -> Result<Vec<f64>, ServeError> {
        if rows.is_empty() {
            return Ok(Vec::new());
        }
        let _turn = self
            .coordinator
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        {
            let state = self
                .shared
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if state.died || state.live < self.workers.len() {
                return Err(worker_gone());
            }
        }
        // No epoch is in flight (the coordinator lock is held and the
        // previous epoch drained), so the panel and slab are exclusively
        // ours to write.
        let samples = rows.len();
        {
            let panel = unsafe { &mut *self.shared.panel.get() };
            self.frozen.normalize_rows_into(rows, panel)?;
            let slab = unsafe { &mut *self.shared.slab.get() };
            slab.clear();
            slab.resize(self.shared.num_groups * samples, 0.0);
        }
        let errors = {
            let mut state = self
                .shared
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            state.epoch += 1;
            state.samples = samples;
            state.first_sample_id = first_sample_id;
            state.remaining = state.live;
            state.errors.clear();
            self.shared.job_cv.notify_all();
            while state.remaining > 0 {
                state = self
                    .shared
                    .done_cv
                    .wait(state)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            if state.died {
                return Err(worker_gone());
            }
            std::mem::take(&mut state.errors)
        };
        if let Some((_, e)) = errors.into_iter().min_by_key(|&(g, _)| g) {
            return Err(ServeError::Quorum(e));
        }
        // Every worker has finished (observed under the state mutex), so
        // the slab is quiescent and fully written: merge ascending.
        let slab = unsafe { &*self.shared.slab.get() };
        let mut totals = vec![0.0; samples];
        for g in 0..self.shared.num_groups {
            let row = &slab[g * samples..(g + 1) * samples];
            for (t, &p) in totals.iter_mut().zip(row) {
                *t += p;
            }
        }
        Ok(totals)
    }
}

impl Drop for ShardedScorer {
    fn drop(&mut self) {
        {
            let mut state = self
                .shared
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            state.shutdown = true;
            self.shared.job_cv.notify_all();
        }
        for worker in &mut self.workers {
            if let Some(join) = worker.take() {
                let _ = join.join();
            }
        }
    }
}

/// The resident shard worker body: park on the epoch condvar, score the
/// owned groups of each published panel straight into their slab rows,
/// report completion, repeat. A panicking panel marks the scorer dead
/// (after decrementing `remaining` so the coordinator never hangs) and
/// exits the thread.
fn shard_worker_loop(
    frozen: &FrozenDetector,
    shared: &ShardShared,
    groups: &[usize],
    engine: &'static dyn ScoringEngine,
    exact_config: &QuorumConfig,
    levels: &[usize],
) {
    let mut last_epoch = 0u64;
    loop {
        let (samples, first_sample_id) = {
            let mut state = shared
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            loop {
                if state.shutdown {
                    return;
                }
                if state.epoch != last_epoch {
                    break;
                }
                state = shared
                    .job_cv
                    .wait(state)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            last_epoch = state.epoch;
            (state.samples, state.first_sample_id)
        };
        // Outside the lock: read the shared panel, write this shard's
        // disjoint slab rows. The epoch handshake above orders these
        // accesses against the coordinator's writes.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let panel_buf = unsafe { &*shared.panel.get() };
            let panel = panel_buf.as_panel();
            let slab = shared.slab.get();
            let mut failures: Vec<(usize, QuorumError)> = Vec::new();
            for &g in groups {
                // Safety: the plan assigns each group to exactly one
                // shard, so this row is ours alone for this epoch.
                let row = unsafe {
                    std::slice::from_raw_parts_mut((*slab).as_mut_ptr().add(g * samples), samples)
                };
                if let Err(e) = frozen.stream_scores_for_group_with_into(
                    engine,
                    exact_config,
                    g,
                    &panel,
                    levels,
                    first_sample_id,
                    row,
                ) {
                    failures.push((g, e));
                }
            }
            failures
        }));
        let mut state = shared
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let dying = match outcome {
            Ok(failures) => {
                state.errors.extend(failures);
                false
            }
            Err(_) => {
                state.died = true;
                state.live -= 1;
                true
            }
        };
        state.remaining -= 1;
        if state.remaining == 0 {
            shared.done_cv.notify_all();
        }
        if dying {
            return;
        }
    }
}

impl PanelScorer for ShardedScorer {
    fn num_features(&self) -> usize {
        self.frozen.num_features()
    }

    fn score_panel(&self, rows: &[Vec<f64>], first_sample_id: u64) -> Result<Vec<f64>, ServeError> {
        self.score_samples(rows, first_sample_id)
    }
}

fn worker_gone() -> ServeError {
    ServeError::Io(std::io::Error::new(
        std::io::ErrorKind::BrokenPipe,
        "a shard worker has shut down",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_covers_every_group_exactly_once() {
        let costs = vec![1.0; 10];
        let plan = ShardPlan::balanced(&costs, &[1.0, 1.0, 1.0], &[None, None, None]).unwrap();
        let mut seen = vec![0usize; costs.len()];
        for shard in plan.shards() {
            assert!(shard.groups().windows(2).all(|w| w[0] < w[1]));
            for &g in shard.groups() {
                seen[g] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
        // Uniform costs: balanced counts (10 over 3 ⇒ 4/3/3).
        let mut sizes: Vec<usize> = plan.shards().iter().map(|s| s.groups().len()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![3, 3, 4]);
    }

    #[test]
    fn balanced_is_cost_aware_not_count_aware() {
        // One heavyweight group must travel alone: LPT puts the 10.0
        // group on its own shard and packs the six light groups opposite.
        let costs = vec![10.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let plan = ShardPlan::balanced(&costs, &[1.0, 1.0], &[None, None]).unwrap();
        let with_heavy = plan
            .shards()
            .iter()
            .find(|s| s.groups().contains(&0))
            .unwrap();
        assert_eq!(with_heavy.groups(), &[0]);
        let other = plan.shards().iter().find(|s| !s.groups().contains(&0));
        assert_eq!(other.unwrap().groups().len(), 6);
    }

    #[test]
    fn balanced_respects_shard_speed_weights() {
        // A shard whose engine is 4× slower should receive ~1/4 the work
        // of a fast shard under uniform group costs.
        let costs = vec![1.0; 10];
        let plan = ShardPlan::balanced(&costs, &[1.0, 4.0], &[None, None]).unwrap();
        assert_eq!(plan.shards()[0].groups().len(), 8);
        assert_eq!(plan.shards()[1].groups().len(), 2);
    }

    #[test]
    fn balanced_is_deterministic_and_tolerates_empty_shards() {
        let costs = vec![3.0, 1.0, 2.0];
        let a = ShardPlan::balanced(&costs, &[1.0; 5], &[None; 5]).unwrap();
        let b = ShardPlan::balanced(&costs, &[1.0; 5], &[None; 5]).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.num_shards(), 5);
        let assigned: usize = a.shards().iter().map(|s| s.groups().len()).sum();
        assert_eq!(assigned, costs.len());
        assert!(a.shards().iter().any(|s| s.groups().is_empty()));
    }

    #[test]
    fn baseline_costs_parse_the_bench_format() {
        let text = r#"{
  "config": { "data_qubits": 3 },
  "metrics": {
    "batched_ns_per_sample": 5126.021,
    "analytic_ns_per_sample": 13425.125,
    "density_batched_ns_per_sample": 7811.594,
    "density_per_sample_ns_per_sample": 28760.021,
    "dense_n5_ns_per_sample": 1387566.208,
    "structured_n5_ns_per_sample": 1068530.833,
    "noisy_circuit_ns_per_sample": 813516036.750
  }
}"#;
        let costs = BaselineCosts::parse(text).unwrap();
        assert_eq!(
            costs.engine_ns_per_sample(EngineKind::Batched, false),
            Some(5126.021)
        );
        let structured = costs
            .engine_ns_per_sample(EngineKind::DensityStructured, true)
            .unwrap();
        // Derived: dense column × measured structured/dense ratio.
        assert!((structured - 7811.594 * (1068530.833 / 1387566.208)).abs() < 1e-6);
        assert_eq!(
            costs.engine_ns_per_sample(EngineKind::Circuit, true),
            Some(813516036.750)
        );
        assert!(BaselineCosts::parse("not json at all").is_none());
        assert!(BaselineCosts::parse("{\"metrics\": {}}").is_none());
    }

    #[test]
    fn policy_rejects_degenerate_shapes() {
        assert!(ShardPolicy::Workers(0).shard_engines().is_err());
        assert!(ShardPolicy::Mixed(Vec::new()).shard_engines().is_err());
        assert_eq!(
            ShardPolicy::Workers(3).shard_engines().unwrap(),
            vec![None; 3]
        );
        assert!(ShardPolicy::Single.shard_engines().unwrap().is_empty());
    }

    #[test]
    fn balanced_rejects_degenerate_plans_with_typed_errors() {
        // Zero shards and mismatched shard lists must come back as
        // request errors, never panics.
        let empty = ShardPlan::balanced(&[1.0, 2.0], &[], &[]);
        assert!(matches!(empty, Err(ServeError::Request(_))), "{empty:?}");
        let mismatched = ShardPlan::balanced(&[1.0], &[1.0, 1.0], &[None]);
        assert!(
            matches!(mismatched, Err(ServeError::Request(_))),
            "{mismatched:?}"
        );
        // No groups is fine: every shard simply comes back empty.
        let no_groups = ShardPlan::balanced(&[], &[1.0, 1.0], &[None, None]).unwrap();
        assert!(no_groups.shards().iter().all(|s| s.groups().is_empty()));
    }
}
