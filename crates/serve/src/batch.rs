//! Cross-request batching: concurrently arriving samples coalesce into
//! one panel through a bounded window (N samples or T µs, whichever
//! fills first) and run through the engine's batched seams in a single
//! pass.
//!
//! Correctness rests on the per-column batch invariance of
//! [`crate::FrozenDetector::score_samples`]: a sample's score depends
//! only on its row and its stable id, never on what else shares the
//! panel, so coalescing changes throughput and nothing else. The same
//! invariance powers failure isolation: when a panel fails, each row is
//! rescored alone under its original sample id — innocent rows get the
//! exact score they would have received in the batch, and only the
//! offending request sees the error.
//!
//! Overload protection: the submission queue is **bounded**
//! ([`OverloadPolicy::queue_capacity`]). When a slow or wedged backend
//! lets the queue fill, further submissions are *shed* with a typed
//! [`ServeError::Overloaded`] instead of growing the queue without
//! bound — co-batched requests that made it into the queue still score
//! normally. An optional per-request deadline
//! ([`OverloadPolicy::request_deadline`]) bounds how long a submitter
//! waits for its batch to complete; an expired deadline also surfaces
//! as [`ServeError::Overloaded`] (the request may still be scored by
//! the worker, but nobody is waiting — scoring is stateless, so a
//! dropped reply leaks nothing).

use crate::error::ServeError;
use crate::frozen::FrozenDetector;
use crate::supervisor::ShardHealth;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Anything that can score a coalesced panel of rows under stable sample
/// ids. The batcher and TCP server are generic over this seam so the
/// same runtime serves a single-process [`FrozenDetector`], a
/// [`crate::ShardedScorer`] fanning groups across worker shards, or a
/// [`crate::SupervisedScorer`] that additionally survives worker
/// crashes.
///
/// Implementations must be coalescing-invariant: a row's score depends
/// only on the row and its id, never on panel company. The batcher's
/// failure-isolation rescore relies on this.
pub trait PanelScorer: Send + Sync + std::fmt::Debug {
    /// The feature width every row must have.
    fn num_features(&self) -> usize;

    /// Scores `rows` as one panel; row `j` is sample `first_sample_id + j`.
    ///
    /// # Errors
    ///
    /// Row validation and scoring failures, as [`ServeError`].
    fn score_panel(&self, rows: &[Vec<f64>], first_sample_id: u64) -> Result<Vec<f64>, ServeError>;

    /// Per-shard liveness for the `Health` wire message. Backends
    /// without worker shards report an empty list.
    fn shard_health(&self) -> Vec<ShardHealth> {
        Vec::new()
    }
}

impl PanelScorer for FrozenDetector {
    fn num_features(&self) -> usize {
        FrozenDetector::num_features(self)
    }

    fn score_panel(&self, rows: &[Vec<f64>], first_sample_id: u64) -> Result<Vec<f64>, ServeError> {
        self.score_samples(rows, first_sample_id)
    }
}

/// How aggressively concurrent requests coalesce into one panel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoalescePolicy {
    /// Dispatch as soon as this many samples are pending.
    pub max_batch: usize,
    /// Dispatch a partial batch after waiting this long for company.
    pub max_wait: Duration,
}

impl Default for CoalescePolicy {
    fn default() -> Self {
        CoalescePolicy {
            max_batch: 32,
            max_wait: Duration::from_micros(500),
        }
    }
}

/// Load-shedding limits for the batching queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverloadPolicy {
    /// Maximum samples waiting in the submission queue; a submission
    /// beyond this is shed with [`ServeError::Overloaded`] instead of
    /// growing the queue. Zero means "shed everything" (useful in
    /// tests); there is no unbounded setting — a queue nobody bounds is
    /// how a slow consumer takes the process down.
    pub queue_capacity: usize,
    /// How long a submitter waits for its coalesced batch to complete
    /// before giving up with [`ServeError::Overloaded`]. `None` waits
    /// indefinitely.
    pub request_deadline: Option<Duration>,
}

impl Default for OverloadPolicy {
    fn default() -> Self {
        OverloadPolicy {
            // Deep enough that shedding only starts when the backend is
            // genuinely behind (128 max-size panels), small enough that
            // the queue can never hold more than a few MiB of rows.
            queue_capacity: 4096,
            request_deadline: None,
        }
    }
}

/// The channel a scored sample's result travels back on.
type ReplySender = Sender<Result<f64, ServeError>>;

/// One enqueued sample and the channel its score goes back on.
struct Request {
    row: Vec<f64>,
    reply: ReplySender,
}

/// The batching worker: owns the submission queue, coalesces pending
/// requests into panels, scores each panel once and fans results back
/// out. Dropping the scorer drains the queue and joins the worker.
#[derive(Debug)]
pub struct BatchScorer {
    tx: Option<Sender<Request>>,
    worker: Option<JoinHandle<()>>,
    num_features: usize,
    overload: OverloadPolicy,
    batches: Arc<AtomicU64>,
    samples: Arc<AtomicU64>,
    /// Samples enqueued but not yet pulled into a panel.
    depth: Arc<AtomicUsize>,
    /// Submissions shed because the queue was full.
    shed: Arc<AtomicU64>,
}

impl BatchScorer {
    /// Starts the batching worker over any panel scorer — a frozen
    /// detector (`Arc<FrozenDetector>`), a sharded or supervised scorer,
    /// or an already-erased `Arc<dyn PanelScorer>` — with default
    /// overload limits.
    ///
    /// # Errors
    ///
    /// [`ServeError::Spawn`] when the worker thread cannot be spawned.
    pub fn start<S: PanelScorer + ?Sized + 'static>(
        scorer: Arc<S>,
        policy: CoalescePolicy,
    ) -> Result<Self, ServeError> {
        Self::start_with(scorer, policy, OverloadPolicy::default())
    }

    /// [`BatchScorer::start`] with explicit overload limits.
    ///
    /// # Errors
    ///
    /// [`ServeError::Spawn`] when the worker thread cannot be spawned.
    pub fn start_with<S: PanelScorer + ?Sized + 'static>(
        scorer: Arc<S>,
        policy: CoalescePolicy,
        overload: OverloadPolicy,
    ) -> Result<Self, ServeError> {
        let (tx, rx) = mpsc::channel::<Request>();
        let num_features = scorer.num_features();
        let batches = Arc::new(AtomicU64::new(0));
        let samples = Arc::new(AtomicU64::new(0));
        let depth = Arc::new(AtomicUsize::new(0));
        let shed = Arc::new(AtomicU64::new(0));
        let batches_in = Arc::clone(&batches);
        let samples_in = Arc::clone(&samples);
        let depth_in = Arc::clone(&depth);
        let worker = std::thread::Builder::new()
            .name("quorum-batcher".into())
            .spawn(move || {
                batcher_loop(&*scorer, &policy, &rx, &batches_in, &samples_in, &depth_in)
            })
            .map_err(|e| ServeError::spawn("quorum-batcher", e))?;
        Ok(BatchScorer {
            tx: Some(tx),
            worker: Some(worker),
            num_features,
            overload,
            batches,
            samples,
            depth,
            shed,
        })
    }

    /// A cloneable submission handle for connection threads.
    pub fn handle(&self) -> BatchHandle {
        BatchHandle {
            tx: self.tx.as_ref().expect("queue lives until drop").clone(),
            num_features: self.num_features,
            overload: self.overload,
            depth: Arc::clone(&self.depth),
            shed: Arc::clone(&self.shed),
        }
    }

    /// Scores one sample through the coalescing queue, blocking until
    /// its batch completes (or the configured deadline expires).
    ///
    /// # Errors
    ///
    /// [`ServeError::Request`] for a wrong-width row (rejected at
    /// enqueue, before it can occupy a panel slot);
    /// [`ServeError::Overloaded`] when the queue is full or the
    /// deadline expires; request and scoring failures from the worker;
    /// [`ServeError::Io`] if the worker is gone.
    pub fn score(&self, row: Vec<f64>) -> Result<f64, ServeError> {
        self.handle().score(row)
    }

    /// Panels dispatched so far — the coalescing regression tests assert
    /// this grows slower than the sample count.
    pub fn batches_dispatched(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Samples scored so far.
    pub fn samples_scored(&self) -> u64 {
        self.samples.load(Ordering::Relaxed)
    }

    /// Samples currently waiting in the submission queue.
    pub fn queue_depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Submissions shed so far because the queue was at capacity.
    pub fn shed_total(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }
}

impl Drop for BatchScorer {
    fn drop(&mut self) {
        // Closing the queue lets the worker drain pending requests and
        // exit its recv loop.
        drop(self.tx.take());
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// A cheap cloneable handle for submitting samples to the batcher.
#[derive(Debug, Clone)]
pub struct BatchHandle {
    tx: Sender<Request>,
    num_features: usize,
    overload: OverloadPolicy,
    depth: Arc<AtomicUsize>,
    shed: Arc<AtomicU64>,
}

impl BatchHandle {
    /// The feature width the scorer expects.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Scores one sample through the coalescing queue, blocking until
    /// its batch completes (or the configured deadline expires).
    ///
    /// # Errors
    ///
    /// [`ServeError::Request`] for a wrong-width row (rejected here, at
    /// enqueue — a malformed submission must never occupy a slot in a
    /// coalesced panel); [`ServeError::Overloaded`] when the submission
    /// queue is at capacity (the request is shed, not queued) or when
    /// the per-request deadline expires before the batch completes;
    /// request and scoring failures from the worker; [`ServeError::Io`]
    /// if the worker is gone.
    pub fn score(&self, row: Vec<f64>) -> Result<f64, ServeError> {
        if row.len() != self.num_features {
            return Err(ServeError::Request(format!(
                "expected {} features, got {}",
                self.num_features,
                row.len()
            )));
        }
        // Load shedding: claim a queue slot or bounce. The counter is
        // decremented by the worker as it pulls requests into a panel,
        // so `depth` bounds memory held by not-yet-scored submissions.
        let occupied = self.depth.fetch_add(1, Ordering::AcqRel);
        if occupied >= self.overload.queue_capacity {
            self.depth.fetch_sub(1, Ordering::AcqRel);
            self.shed.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Overloaded(format!(
                "submission queue is full ({} pending samples); retry after a backoff",
                self.overload.queue_capacity
            )));
        }
        let (reply_tx, reply_rx) = mpsc::channel();
        if self
            .tx
            .send(Request {
                row,
                reply: reply_tx,
            })
            .is_err()
        {
            self.depth.fetch_sub(1, Ordering::AcqRel);
            return Err(worker_gone());
        }
        match self.overload.request_deadline {
            None => reply_rx.recv().map_err(|_| worker_gone())?,
            Some(deadline) => match reply_rx.recv_timeout(deadline) {
                Ok(result) => result,
                Err(RecvTimeoutError::Timeout) => Err(ServeError::Overloaded(format!(
                    "request deadline {deadline:?} expired before its batch completed"
                ))),
                Err(RecvTimeoutError::Disconnected) => Err(worker_gone()),
            },
        }
    }
}

fn worker_gone() -> ServeError {
    ServeError::Io(std::io::Error::new(
        std::io::ErrorKind::BrokenPipe,
        "the batching worker has shut down",
    ))
}

/// The worker body: block for the first request, then top the batch up
/// until it is full or the window closes, score the panel once, fan out.
fn batcher_loop<S: PanelScorer + ?Sized>(
    scorer: &S,
    policy: &CoalescePolicy,
    rx: &Receiver<Request>,
    batches: &AtomicU64,
    samples: &AtomicU64,
    depth: &AtomicUsize,
) {
    let max_batch = policy.max_batch.max(1);
    let mut next_id: u64 = 0;
    while let Ok(first) = rx.recv() {
        depth.fetch_sub(1, Ordering::AcqRel);
        let mut batch = vec![first];
        let deadline = Instant::now() + policy.max_wait;
        while batch.len() < max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(request) => {
                    depth.fetch_sub(1, Ordering::AcqRel);
                    batch.push(request);
                }
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        // Rows move into the panel; replies fan back out by index.
        let (rows, replies): (Vec<Vec<f64>>, Vec<ReplySender>) =
            batch.into_iter().map(|r| (r.row, r.reply)).unzip();
        let first_id = next_id;
        next_id = next_id.wrapping_add(rows.len() as u64);
        batches.fetch_add(1, Ordering::Relaxed);
        samples.fetch_add(rows.len() as u64, Ordering::Relaxed);
        match scorer.score_panel(&rows, first_id) {
            Ok(scores) => {
                for (reply, score) in replies.iter().zip(scores) {
                    let _ = reply.send(Ok(score));
                }
            }
            Err(_) => {
                // Failure isolation: one bad row must not fail its panel
                // company. Rescore each row alone under its original id —
                // coalescing invariance guarantees good rows get the exact
                // score the batch would have produced, and only offending
                // rows carry an error back.
                for (j, (row, reply)) in rows.into_iter().zip(replies).enumerate() {
                    let solo = scorer
                        .score_panel(std::slice::from_ref(&row), first_id.wrapping_add(j as u64));
                    let _ = reply.send(solo.map(|scores| scores[0]));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A panel scorer that blocks on a gate, so tests can hold a batch
    /// in flight while the queue fills behind it. `panels_started`
    /// counts panels that reached the scorer — once it ticks, the
    /// in-flight request is definitively out of the queue.
    #[derive(Debug)]
    struct GatedScorer {
        gate: std::sync::Mutex<()>,
        panels_started: AtomicUsize,
    }

    impl GatedScorer {
        fn new() -> Arc<Self> {
            Arc::new(GatedScorer {
                gate: std::sync::Mutex::new(()),
                panels_started: AtomicUsize::new(0),
            })
        }
    }

    impl PanelScorer for GatedScorer {
        fn num_features(&self) -> usize {
            2
        }

        fn score_panel(
            &self,
            rows: &[Vec<f64>],
            first_sample_id: u64,
        ) -> Result<Vec<f64>, ServeError> {
            self.panels_started.fetch_add(1, Ordering::SeqCst);
            let _held = self.gate.lock().unwrap_or_else(|e| e.into_inner());
            Ok(rows
                .iter()
                .enumerate()
                .map(|(j, row)| row.iter().sum::<f64>() + (first_sample_id + j as u64) as f64 * 0.0)
                .collect())
        }
    }

    fn wait_until(deadline_secs: u64, mut done: impl FnMut() -> bool) {
        let deadline = Instant::now() + Duration::from_secs(deadline_secs);
        while !done() {
            assert!(Instant::now() < deadline, "condition never became true");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn full_queue_sheds_with_a_typed_overloaded_error() {
        let scorer = GatedScorer::new();
        let batcher = BatchScorer::start_with(
            Arc::clone(&scorer),
            CoalescePolicy {
                max_batch: 1,
                max_wait: Duration::from_micros(1),
            },
            OverloadPolicy {
                queue_capacity: 1,
                request_deadline: None,
            },
        )
        .unwrap();
        // Hold the backend so the first submission blocks mid-panel and
        // later ones pile into the bounded queue.
        let gate = scorer.gate.lock().unwrap();
        let in_flight = {
            let handle = batcher.handle();
            std::thread::spawn(move || handle.score(vec![1.0, 2.0]))
        };
        // Wait until the worker has pulled the first request into a
        // panel (it is now blocked on the gate, the queue is empty).
        wait_until(5, || scorer.panels_started.load(Ordering::SeqCst) >= 1);
        let queued = {
            let handle = batcher.handle();
            std::thread::spawn(move || handle.score(vec![3.0, 4.0]))
        };
        // Wait for the queued submission to claim the only queue slot.
        wait_until(5, || batcher.queue_depth() >= 1);
        // The queue is full: this submission must shed, typed.
        let shed = batcher.score(vec![5.0, 6.0]);
        assert!(
            matches!(shed, Err(ServeError::Overloaded(_))),
            "got {shed:?}"
        );
        assert_eq!(batcher.shed_total(), 1);
        drop(gate);
        assert_eq!(in_flight.join().unwrap().unwrap(), 3.0);
        assert_eq!(queued.join().unwrap().unwrap(), 7.0);
        assert_eq!(batcher.queue_depth(), 0);
    }

    #[test]
    fn expired_deadline_is_a_typed_overloaded_error() {
        let scorer = GatedScorer::new();
        let batcher = BatchScorer::start_with(
            Arc::clone(&scorer),
            CoalescePolicy {
                max_batch: 1,
                max_wait: Duration::from_micros(1),
            },
            OverloadPolicy {
                queue_capacity: 16,
                request_deadline: Some(Duration::from_millis(20)),
            },
        )
        .unwrap();
        let gate = scorer.gate.lock().unwrap();
        let err = batcher.score(vec![1.0, 1.0]).unwrap_err();
        assert!(matches!(err, ServeError::Overloaded(_)), "got {err:?}");
        assert!(err.to_string().contains("deadline"));
        drop(gate);
        // The backend recovers: a fresh request scores normally.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match batcher.score(vec![2.0, 3.0]) {
                Ok(score) => {
                    assert_eq!(score, 5.0);
                    break;
                }
                Err(ServeError::Overloaded(_)) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => panic!("unexpected error {e:?}"),
            }
        }
    }

    #[test]
    fn zero_capacity_sheds_everything() {
        let scorer = GatedScorer::new();
        let batcher = BatchScorer::start_with(
            scorer,
            CoalescePolicy::default(),
            OverloadPolicy {
                queue_capacity: 0,
                request_deadline: None,
            },
        )
        .unwrap();
        assert!(matches!(
            batcher.score(vec![1.0, 2.0]),
            Err(ServeError::Overloaded(_))
        ));
        assert_eq!(batcher.shed_total(), 1);
    }
}
