//! Cross-request batching: concurrently arriving samples coalesce into
//! one panel through a bounded window (N samples or T µs, whichever
//! fills first) and run through the engine's batched seams in a single
//! pass.
//!
//! Correctness rests on the per-column batch invariance of
//! [`crate::FrozenDetector::score_samples`]: a sample's score depends
//! only on its row and its stable id, never on what else shares the
//! panel, so coalescing changes throughput and nothing else.

use crate::error::ServeError;
use crate::frozen::FrozenDetector;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How aggressively concurrent requests coalesce into one panel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoalescePolicy {
    /// Dispatch as soon as this many samples are pending.
    pub max_batch: usize,
    /// Dispatch a partial batch after waiting this long for company.
    pub max_wait: Duration,
}

impl Default for CoalescePolicy {
    fn default() -> Self {
        CoalescePolicy {
            max_batch: 32,
            max_wait: Duration::from_micros(500),
        }
    }
}

/// One enqueued sample and the channel its score goes back on.
struct Request {
    row: Vec<f64>,
    reply: Sender<Result<f64, ServeError>>,
}

/// The batching worker: owns the submission queue, coalesces pending
/// requests into panels, scores each panel once and fans results back
/// out. Dropping the scorer drains the queue and joins the worker.
#[derive(Debug)]
pub struct BatchScorer {
    tx: Option<Sender<Request>>,
    worker: Option<JoinHandle<()>>,
    batches: Arc<AtomicU64>,
    samples: Arc<AtomicU64>,
}

impl BatchScorer {
    /// Starts the batching worker over a frozen detector.
    pub fn start(frozen: Arc<FrozenDetector>, policy: CoalescePolicy) -> Self {
        let (tx, rx) = mpsc::channel::<Request>();
        let batches = Arc::new(AtomicU64::new(0));
        let samples = Arc::new(AtomicU64::new(0));
        let batches_in = Arc::clone(&batches);
        let samples_in = Arc::clone(&samples);
        let worker = std::thread::Builder::new()
            .name("quorum-batcher".into())
            .spawn(move || batcher_loop(&frozen, &policy, &rx, &batches_in, &samples_in))
            .expect("spawning the batcher thread");
        BatchScorer {
            tx: Some(tx),
            worker: Some(worker),
            batches,
            samples,
        }
    }

    /// A cloneable submission handle for connection threads.
    pub fn handle(&self) -> BatchHandle {
        BatchHandle {
            tx: self.tx.as_ref().expect("queue lives until drop").clone(),
        }
    }

    /// Scores one sample through the coalescing queue, blocking until
    /// its batch completes.
    ///
    /// # Errors
    ///
    /// Request and scoring failures from the worker; [`ServeError::Io`]
    /// if the worker is gone.
    pub fn score(&self, row: Vec<f64>) -> Result<f64, ServeError> {
        self.handle().score(row)
    }

    /// Panels dispatched so far — the coalescing regression tests assert
    /// this grows slower than the sample count.
    pub fn batches_dispatched(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Samples scored so far.
    pub fn samples_scored(&self) -> u64 {
        self.samples.load(Ordering::Relaxed)
    }
}

impl Drop for BatchScorer {
    fn drop(&mut self) {
        // Closing the queue lets the worker drain pending requests and
        // exit its recv loop.
        drop(self.tx.take());
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// A cheap cloneable handle for submitting samples to the batcher.
#[derive(Debug, Clone)]
pub struct BatchHandle {
    tx: Sender<Request>,
}

impl BatchHandle {
    /// Scores one sample through the coalescing queue, blocking until
    /// its batch completes.
    ///
    /// # Errors
    ///
    /// Request and scoring failures from the worker; [`ServeError::Io`]
    /// if the worker is gone.
    pub fn score(&self, row: Vec<f64>) -> Result<f64, ServeError> {
        let (reply_tx, reply_rx) = mpsc::channel();
        self.tx
            .send(Request {
                row,
                reply: reply_tx,
            })
            .map_err(|_| worker_gone())?;
        reply_rx.recv().map_err(|_| worker_gone())?
    }
}

fn worker_gone() -> ServeError {
    ServeError::Io(std::io::Error::new(
        std::io::ErrorKind::BrokenPipe,
        "the batching worker has shut down",
    ))
}

/// The worker body: block for the first request, then top the batch up
/// until it is full or the window closes, score the panel once, fan out.
fn batcher_loop(
    frozen: &FrozenDetector,
    policy: &CoalescePolicy,
    rx: &Receiver<Request>,
    batches: &AtomicU64,
    samples: &AtomicU64,
) {
    let max_batch = policy.max_batch.max(1);
    let mut next_id: u64 = 0;
    while let Ok(first) = rx.recv() {
        let mut batch = vec![first];
        let deadline = Instant::now() + policy.max_wait;
        while batch.len() < max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(request) => batch.push(request),
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        let rows: Vec<Vec<f64>> = batch.iter().map(|r| r.row.clone()).collect();
        let first_id = next_id;
        next_id = next_id.wrapping_add(rows.len() as u64);
        batches.fetch_add(1, Ordering::Relaxed);
        samples.fetch_add(rows.len() as u64, Ordering::Relaxed);
        match frozen.score_samples(&rows, first_id) {
            Ok(scores) => {
                for (request, score) in batch.into_iter().zip(scores) {
                    let _ = request.reply.send(Ok(score));
                }
            }
            Err(e) => {
                for request in batch {
                    let _ = request.reply.send(Err(e.duplicate()));
                }
            }
        }
    }
}
