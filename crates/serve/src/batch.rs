//! Cross-request batching: concurrently arriving samples coalesce into
//! one panel through a bounded window (N samples or T µs, whichever
//! fills first) and run through the engine's batched seams in a single
//! pass.
//!
//! Correctness rests on the per-column batch invariance of
//! [`crate::FrozenDetector::score_samples`]: a sample's score depends
//! only on its row and its stable id, never on what else shares the
//! panel, so coalescing changes throughput and nothing else. The same
//! invariance powers failure isolation: when a panel fails, each row is
//! rescored alone under its original sample id — innocent rows get the
//! exact score they would have received in the batch, and only the
//! offending request sees the error.

use crate::error::ServeError;
use crate::frozen::FrozenDetector;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Anything that can score a coalesced panel of rows under stable sample
/// ids. The batcher and TCP server are generic over this seam so the
/// same runtime serves a single-process [`FrozenDetector`] or a
/// [`crate::ShardedScorer`] fanning groups across worker shards.
///
/// Implementations must be coalescing-invariant: a row's score depends
/// only on the row and its id, never on panel company. The batcher's
/// failure-isolation rescore relies on this.
pub trait PanelScorer: Send + Sync + std::fmt::Debug {
    /// The feature width every row must have.
    fn num_features(&self) -> usize;

    /// Scores `rows` as one panel; row `j` is sample `first_sample_id + j`.
    ///
    /// # Errors
    ///
    /// Row validation and scoring failures, as [`ServeError`].
    fn score_panel(&self, rows: &[Vec<f64>], first_sample_id: u64) -> Result<Vec<f64>, ServeError>;
}

impl PanelScorer for FrozenDetector {
    fn num_features(&self) -> usize {
        FrozenDetector::num_features(self)
    }

    fn score_panel(&self, rows: &[Vec<f64>], first_sample_id: u64) -> Result<Vec<f64>, ServeError> {
        self.score_samples(rows, first_sample_id)
    }
}

/// How aggressively concurrent requests coalesce into one panel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoalescePolicy {
    /// Dispatch as soon as this many samples are pending.
    pub max_batch: usize,
    /// Dispatch a partial batch after waiting this long for company.
    pub max_wait: Duration,
}

impl Default for CoalescePolicy {
    fn default() -> Self {
        CoalescePolicy {
            max_batch: 32,
            max_wait: Duration::from_micros(500),
        }
    }
}

/// The channel a scored sample's result travels back on.
type ReplySender = Sender<Result<f64, ServeError>>;

/// One enqueued sample and the channel its score goes back on.
struct Request {
    row: Vec<f64>,
    reply: ReplySender,
}

/// The batching worker: owns the submission queue, coalesces pending
/// requests into panels, scores each panel once and fans results back
/// out. Dropping the scorer drains the queue and joins the worker.
#[derive(Debug)]
pub struct BatchScorer {
    tx: Option<Sender<Request>>,
    worker: Option<JoinHandle<()>>,
    num_features: usize,
    batches: Arc<AtomicU64>,
    samples: Arc<AtomicU64>,
}

impl BatchScorer {
    /// Starts the batching worker over any panel scorer — a frozen
    /// detector (`Arc<FrozenDetector>`), a sharded scorer, or an
    /// already-erased `Arc<dyn PanelScorer>`.
    pub fn start<S: PanelScorer + ?Sized + 'static>(
        scorer: Arc<S>,
        policy: CoalescePolicy,
    ) -> Self {
        let (tx, rx) = mpsc::channel::<Request>();
        let num_features = scorer.num_features();
        let batches = Arc::new(AtomicU64::new(0));
        let samples = Arc::new(AtomicU64::new(0));
        let batches_in = Arc::clone(&batches);
        let samples_in = Arc::clone(&samples);
        let worker = std::thread::Builder::new()
            .name("quorum-batcher".into())
            .spawn(move || batcher_loop(&*scorer, &policy, &rx, &batches_in, &samples_in))
            .expect("spawning the batcher thread");
        BatchScorer {
            tx: Some(tx),
            worker: Some(worker),
            num_features,
            batches,
            samples,
        }
    }

    /// A cloneable submission handle for connection threads.
    pub fn handle(&self) -> BatchHandle {
        BatchHandle {
            tx: self.tx.as_ref().expect("queue lives until drop").clone(),
            num_features: self.num_features,
        }
    }

    /// Scores one sample through the coalescing queue, blocking until
    /// its batch completes.
    ///
    /// # Errors
    ///
    /// [`ServeError::Request`] for a wrong-width row (rejected at
    /// enqueue, before it can occupy a panel slot); request and scoring
    /// failures from the worker; [`ServeError::Io`] if the worker is
    /// gone.
    pub fn score(&self, row: Vec<f64>) -> Result<f64, ServeError> {
        self.handle().score(row)
    }

    /// Panels dispatched so far — the coalescing regression tests assert
    /// this grows slower than the sample count.
    pub fn batches_dispatched(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Samples scored so far.
    pub fn samples_scored(&self) -> u64 {
        self.samples.load(Ordering::Relaxed)
    }
}

impl Drop for BatchScorer {
    fn drop(&mut self) {
        // Closing the queue lets the worker drain pending requests and
        // exit its recv loop.
        drop(self.tx.take());
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// A cheap cloneable handle for submitting samples to the batcher.
#[derive(Debug, Clone)]
pub struct BatchHandle {
    tx: Sender<Request>,
    num_features: usize,
}

impl BatchHandle {
    /// The feature width the scorer expects.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Scores one sample through the coalescing queue, blocking until
    /// its batch completes.
    ///
    /// # Errors
    ///
    /// [`ServeError::Request`] for a wrong-width row (rejected here, at
    /// enqueue — a malformed submission must never occupy a slot in a
    /// coalesced panel); request and scoring failures from the worker;
    /// [`ServeError::Io`] if the worker is gone.
    pub fn score(&self, row: Vec<f64>) -> Result<f64, ServeError> {
        if row.len() != self.num_features {
            return Err(ServeError::Request(format!(
                "expected {} features, got {}",
                self.num_features,
                row.len()
            )));
        }
        let (reply_tx, reply_rx) = mpsc::channel();
        self.tx
            .send(Request {
                row,
                reply: reply_tx,
            })
            .map_err(|_| worker_gone())?;
        reply_rx.recv().map_err(|_| worker_gone())?
    }
}

fn worker_gone() -> ServeError {
    ServeError::Io(std::io::Error::new(
        std::io::ErrorKind::BrokenPipe,
        "the batching worker has shut down",
    ))
}

/// The worker body: block for the first request, then top the batch up
/// until it is full or the window closes, score the panel once, fan out.
fn batcher_loop<S: PanelScorer + ?Sized>(
    scorer: &S,
    policy: &CoalescePolicy,
    rx: &Receiver<Request>,
    batches: &AtomicU64,
    samples: &AtomicU64,
) {
    let max_batch = policy.max_batch.max(1);
    let mut next_id: u64 = 0;
    while let Ok(first) = rx.recv() {
        let mut batch = vec![first];
        let deadline = Instant::now() + policy.max_wait;
        while batch.len() < max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(request) => batch.push(request),
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        // Rows move into the panel; replies fan back out by index.
        let (rows, replies): (Vec<Vec<f64>>, Vec<ReplySender>) =
            batch.into_iter().map(|r| (r.row, r.reply)).unzip();
        let first_id = next_id;
        next_id = next_id.wrapping_add(rows.len() as u64);
        batches.fetch_add(1, Ordering::Relaxed);
        samples.fetch_add(rows.len() as u64, Ordering::Relaxed);
        match scorer.score_panel(&rows, first_id) {
            Ok(scores) => {
                for (reply, score) in replies.iter().zip(scores) {
                    let _ = reply.send(Ok(score));
                }
            }
            Err(_) => {
                // Failure isolation: one bad row must not fail its panel
                // company. Rescore each row alone under its original id —
                // coalescing invariance guarantees good rows get the exact
                // score the batch would have produced, and only offending
                // rows carry an error back.
                for (j, (row, reply)) in rows.into_iter().zip(replies).enumerate() {
                    let solo = scorer
                        .score_panel(std::slice::from_ref(&row), first_id.wrapping_add(j as u64));
                    let _ = reply.send(solo.map(|scores| scores[0]));
                }
            }
        }
    }
}
