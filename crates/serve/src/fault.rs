//! Deterministic, seeded failpoint registry for chaos testing the
//! serving runtime.
//!
//! Compiled only under `#[cfg(any(test, feature = "failpoints"))]` —
//! a production build without the `failpoints` feature carries none of
//! this code, and even a failpoints build runs nothing unless a fault
//! is explicitly [`arm`]ed.
//!
//! Every failpoint is a named **site** in the serving code (e.g.
//! `"supervisor::worker"` in the shard-worker panel loop,
//! `"server::write_frame"` in the TCP response writer). A site counts
//! its hits; an armed [`FaultSpec`] decides *deterministically* — from
//! the hit number alone, optionally through a seeded hash — whether a
//! given hit fires its [`FaultAction`]. Determinism is the point: the
//! chaos suite pins that scores stay **bit-identical** through
//! crash → restart → re-plan, which requires replaying the exact same
//! fault schedule on every run.
//!
//! Faults a site can inject:
//!
//! * [`FaultAction::Panic`] — the worker panics mid-panel (caught by the
//!   supervisor's `catch_unwind`, driving restart/re-plan);
//! * [`FaultAction::Delay`] — a shard reply is delayed (slow consumer);
//! * [`FaultAction::TornWrite`] — a TCP response frame is cut short and
//!   the socket closed (torn frame on the wire);
//! * [`FaultAction::PoisonCaches`] — the worker's per-group derived
//!   caches get their mutexes poisoned before scoring (a crashed lock
//!   holder), which the byte-bounded caches must absorb.
//!
//! The registry is process-global (sites live in library code, far from
//! any test handle), so chaos tests that arm faults must serialise on
//! [`tests_serialized`] and [`reset`] the registry when done.

use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultAction {
    /// Panic at the site (a crashing worker).
    Panic,
    /// Sleep this long at the site (a delayed shard reply).
    Delay(Duration),
    /// Write only the first `keep_bytes` of the response frame, then
    /// close the socket (a torn TCP frame). Interpreted by the server's
    /// frame writer; other sites ignore it.
    TornWrite {
        /// How many bytes of the frame still reach the wire.
        keep_bytes: usize,
    },
    /// Poison the per-group derived-object cache mutexes before scoring
    /// (a lock holder that crashed). Interpreted by the supervisor's
    /// worker loop; other sites ignore it.
    PoisonCaches,
}

/// Which hits of a site fire the action — all three forms are pure
/// functions of the hit number, so a fault schedule replays exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Trigger {
    /// Fire on exactly these 1-based hit numbers.
    OnHits(Vec<u64>),
    /// Fire on every hit `h` with `h % period == offset % period`.
    Every { period: u64, offset: u64 },
    /// Fire on hit `h` iff `splitmix64(seed ^ h) % den < num` — a
    /// reproducible pseudo-random subset of hits.
    Seeded { seed: u64, num: u64, den: u64 },
}

/// A deterministic fault schedule: an action plus the set of hits that
/// fire it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    action: FaultAction,
    trigger: Trigger,
}

impl FaultSpec {
    /// Fires `action` on exactly the `hit`-th time the site is reached
    /// (1-based).
    pub fn on_hit(action: FaultAction, hit: u64) -> Self {
        Self::on_hits(action, &[hit])
    }

    /// Fires `action` on exactly the listed 1-based hit numbers.
    pub fn on_hits(action: FaultAction, hits: &[u64]) -> Self {
        FaultSpec {
            action,
            trigger: Trigger::OnHits(hits.to_vec()),
        }
    }

    /// Fires `action` on every `period`-th hit, phase-shifted by
    /// `offset`. A zero period never fires.
    pub fn every(action: FaultAction, period: u64, offset: u64) -> Self {
        FaultSpec {
            action,
            trigger: Trigger::Every { period, offset },
        }
    }

    /// Fires `action` on a seeded pseudo-random `num/den` fraction of
    /// hits — different hits, same hits every run.
    pub fn seeded(action: FaultAction, seed: u64, num: u64, den: u64) -> Self {
        FaultSpec {
            action,
            trigger: Trigger::Seeded { seed, num, den },
        }
    }

    /// Whether the `hit`-th reach of the site (1-based) fires.
    fn fires(&self, hit: u64) -> bool {
        match &self.trigger {
            Trigger::OnHits(hits) => hits.contains(&hit),
            Trigger::Every { period: 0, .. } => false,
            Trigger::Every { period, offset } => hit % period == offset % period,
            Trigger::Seeded { den: 0, .. } => false,
            Trigger::Seeded { seed, num, den } => splitmix64(seed ^ hit) % den < *num,
        }
    }
}

/// SplitMix64 — the standard 64-bit finalizer; good avalanche, no state.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One site's registry entry: the armed schedule (if any) plus the hit
/// counter, which keeps counting even while disarmed so schedules can be
/// armed relative to process history.
#[derive(Debug, Default)]
struct SiteState {
    spec: Option<FaultSpec>,
    hits: u64,
}

fn registry() -> MutexGuard<'static, HashMap<String, SiteState>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, SiteState>>> = OnceLock::new();
    REGISTRY
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        // A panic-injecting registry must itself shrug off poisoning.
        .unwrap_or_else(PoisonError::into_inner)
}

/// The lock chaos tests hold while armed faults are live, so two suites
/// cannot interleave schedules on the process-global registry.
pub fn tests_serialized() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Arms `spec` at the named site, resetting the site's hit counter so
/// 1-based schedules mean "the Nth hit from now".
pub fn arm(site: &str, spec: FaultSpec) {
    let mut reg = registry();
    let state = reg.entry(site.to_string()).or_default();
    state.spec = Some(spec);
    state.hits = 0;
}

/// Disarms the named site (the counter keeps counting).
pub fn disarm(site: &str) {
    if let Some(state) = registry().get_mut(site) {
        state.spec = None;
    }
}

/// Disarms every site and zeroes every counter.
pub fn reset() {
    registry().clear();
}

/// How many times the named site has been reached since it was last
/// armed (or since process start, if never armed).
pub fn hits(site: &str) -> u64 {
    registry().get(site).map_or(0, |s| s.hits)
}

/// Counts a hit at the site and returns the action to inject, if the
/// armed schedule fires on this hit.
pub fn check(site: &str) -> Option<FaultAction> {
    let mut reg = registry();
    let state = reg.entry(site.to_string()).or_default();
    state.hits += 1;
    let hit = state.hits;
    state
        .spec
        .as_ref()
        .filter(|spec| spec.fires(hit))
        .map(|spec| spec.action.clone())
}

/// [`check`] for sites whose only meaningful injections act in place:
/// panics panic, delays sleep, and structural actions (torn writes,
/// cache poisoning) are ignored — use [`check`] at sites that interpret
/// those.
pub fn act(site: &str) {
    match check(site) {
        Some(FaultAction::Panic) => panic!("failpoint {site:?} injected a panic"),
        Some(FaultAction::Delay(d)) => std::thread::sleep(d),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic() {
        let _guard = tests_serialized();
        reset();
        arm(
            "t::on_hits",
            FaultSpec::on_hits(FaultAction::Panic, &[2, 4]),
        );
        let fired: Vec<bool> = (0..5).map(|_| check("t::on_hits").is_some()).collect();
        assert_eq!(fired, vec![false, true, false, true, false]);
        assert_eq!(hits("t::on_hits"), 5);

        arm(
            "t::every",
            FaultSpec::every(FaultAction::Delay(Duration::from_millis(1)), 3, 0),
        );
        let fired: Vec<bool> = (0..6).map(|_| check("t::every").is_some()).collect();
        assert_eq!(fired, vec![false, false, true, false, false, true]);

        // Seeded subsets replay exactly and move with the seed.
        arm("t::seeded", FaultSpec::seeded(FaultAction::Panic, 7, 1, 3));
        let a: Vec<bool> = (0..32).map(|_| check("t::seeded").is_some()).collect();
        arm("t::seeded", FaultSpec::seeded(FaultAction::Panic, 7, 1, 3));
        let b: Vec<bool> = (0..32).map(|_| check("t::seeded").is_some()).collect();
        assert_eq!(a, b, "same seed must replay the same schedule");
        assert!(a.iter().any(|&f| f), "a 1/3 fraction of 32 hits must fire");
        assert!(!a.iter().all(|&f| f), "…but not all of them");
        arm("t::seeded", FaultSpec::seeded(FaultAction::Panic, 8, 1, 3));
        let c: Vec<bool> = (0..32).map(|_| check("t::seeded").is_some()).collect();
        assert_ne!(a, c, "a different seed must fire different hits");
        reset();
    }

    #[test]
    fn unarmed_sites_count_but_never_fire() {
        let _guard = tests_serialized();
        reset();
        for _ in 0..3 {
            assert!(check("t::unarmed").is_none());
            act("t::unarmed");
        }
        // act() counts too: 3 checks + 3 acts.
        assert_eq!(hits("t::unarmed"), 6);
        disarm("t::unarmed");
        assert!(check("t::unarmed").is_none());
        reset();
        assert_eq!(hits("t::unarmed"), 0);
    }

    #[test]
    fn act_panics_on_a_armed_panic_hit() {
        let _guard = tests_serialized();
        reset();
        arm("t::act", FaultSpec::on_hit(FaultAction::Panic, 1));
        let caught = std::panic::catch_unwind(|| act("t::act"));
        assert!(caught.is_err(), "the armed panic must fire");
        assert!(
            std::panic::catch_unwind(|| act("t::act")).is_ok(),
            "hit 2 is past the schedule"
        );
        reset();
    }
}
