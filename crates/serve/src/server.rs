//! A long-lived TCP scoring server over a frozen detector, plus the
//! matching blocking client.
//!
//! Wire protocol **version 2** (all little-endian):
//!
//! * score request — `u32` feature count `n`, then `n` `f64` values;
//! * health probe — the sentinel feature count `u32::MAX`
//!   ([`HEALTH_PROBE`]) with no payload;
//! * response — one status byte:
//!   * `0` followed by the `f64` score;
//!   * `1` followed by a `u32` length and a UTF-8 error message;
//!   * `2` followed by a `u32` length and a UTF-8 message — the server
//!     **shed** this request to protect itself (queue full or deadline
//!     expired). The sample was not scored; retrying after a backoff is
//!     safe and the connection stays usable;
//!   * `3` followed by a `u32` payload length and an encoded
//!     [`HealthReport`] (the answer to a health probe).
//!
//! Version 1 of the protocol had only statuses `0` and `1` and no
//! health probe. Version 2 is a superset: v1 clients never see the new
//! statuses unless the server sheds (in which case a v1 client reads
//! status `2` as unknown and drops the connection — a safe failure),
//! and a v2 client probing a v1 server gets an error frame followed by
//! a close (v1 treats the sentinel as an implausible feature count),
//! which the client surfaces as a typed error.
//!
//! Error semantics: a *well-framed* bad request (wrong feature width,
//! unscorable values) is answered with an error frame and the connection
//! stays usable for the next request. A frame that cannot be trusted —
//! a declared feature count over [`MAX_REQUEST_FEATURES`] — is answered
//! with an error frame and then the connection is **closed**: the
//! declared length is the only framing information the protocol carries,
//! so once it is implausible the stream can never be resynchronised and
//! draining it would mean reading up to 32 GiB of attacker-controlled
//! payload.
//!
//! Each connection gets its own handler thread; every handler submits
//! through the shared [`BatchScorer`], so samples arriving concurrently
//! on different connections coalesce into one panel. The backend behind
//! the batcher is any [`PanelScorer`] — the single-process
//! [`FrozenDetector`] via [`QuorumServer::bind`], a [`ShardedScorer`]
//! fanning ensemble groups across worker shards via
//! [`QuorumServer::bind_sharded`], or a fault-tolerant
//! [`SupervisedScorer`] via [`QuorumServer::bind_supervised`]; the wire
//! protocol is identical either way.

use crate::batch::{BatchScorer, CoalescePolicy, OverloadPolicy, PanelScorer};
use crate::error::ServeError;
use crate::frozen::FrozenDetector;
use crate::shard::{ShardPolicy, ShardedScorer};
use crate::supervisor::{ShardHealth, ShardLiveness, SupervisedScorer, SupervisorPolicy};
use crate::wire::{Reader, Writer};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Upper bound on a request's declared feature count; anything larger is
/// a corrupt or hostile frame, not a plausible sample.
const MAX_REQUEST_FEATURES: u32 = 1 << 20;

/// Sentinel feature count marking a health probe instead of a score
/// request (protocol v2).
pub const HEALTH_PROBE: u32 = u32::MAX;

/// The version this server speaks (reported in [`HealthReport`]).
pub const PROTOCOL_VERSION: u32 = 2;

/// Live connections keyed by connection id, shared between the acceptor
/// (insert), handlers (remove-on-exit) and shutdown (sever all).
type ConnSlab = Arc<Mutex<HashMap<u64, TcpStream>>>;

/// A server liveness snapshot, answered to a [`HEALTH_PROBE`]: batcher
/// queue pressure, load-shedding totals and — for supervised backends —
/// per-shard worker liveness and restart counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReport {
    /// The wire protocol version the server speaks.
    pub protocol_version: u32,
    /// Samples currently waiting in the batching queue.
    pub queue_depth: u64,
    /// Requests shed so far because the queue was at capacity.
    pub shed_total: u64,
    /// Panels dispatched by the shared batcher.
    pub batches_dispatched: u64,
    /// Samples scored by the shared batcher.
    pub samples_scored: u64,
    /// Per-shard liveness (empty for unsharded backends).
    pub shards: Vec<ShardHealth>,
}

impl HealthReport {
    fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u32(self.protocol_version);
        w.u64(self.queue_depth);
        w.u64(self.shed_total);
        w.u64(self.batches_dispatched);
        w.u64(self.samples_scored);
        w.u32(self.shards.len() as u32);
        for shard in &self.shards {
            w.u32(shard.shard as u32);
            w.u8(match shard.liveness {
                ShardLiveness::Live => 0,
                ShardLiveness::BackingOff => 1,
                ShardLiveness::Retired => 2,
            });
            w.u64(shard.restarts);
            w.u32(shard.groups as u32);
        }
        w.into_bytes()
    }

    fn decode(payload: &[u8]) -> Result<Self, ServeError> {
        let mut r = Reader::new(payload);
        let protocol_version = r.u32()?;
        let queue_depth = r.u64()?;
        let shed_total = r.u64()?;
        let batches_dispatched = r.u64()?;
        let samples_scored = r.u64()?;
        let n = r.u32()?;
        let mut shards = Vec::with_capacity(n.min(1024) as usize);
        for _ in 0..n {
            let shard = r.u32()? as usize;
            let liveness = match r.u8()? {
                0 => ShardLiveness::Live,
                1 => ShardLiveness::BackingOff,
                2 => ShardLiveness::Retired,
                other => {
                    return Err(ServeError::Artifact(format!(
                        "unknown shard liveness {other}"
                    )))
                }
            };
            let restarts = r.u64()?;
            let groups = r.u32()? as usize;
            shards.push(ShardHealth {
                shard,
                liveness,
                restarts,
                groups,
            });
        }
        Ok(HealthReport {
            protocol_version,
            queue_depth,
            shed_total,
            batches_dispatched,
            samples_scored,
            shards,
        })
    }
}

/// The serving runtime: an acceptor thread, one handler thread per
/// connection, and a shared batching worker coalescing across all of
/// them. Shuts down cleanly on [`QuorumServer::shutdown`] or drop.
#[derive(Debug)]
pub struct QuorumServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    scorer: Arc<BatchScorer>,
    panel: Arc<dyn PanelScorer>,
    conns: ConnSlab,
}

impl QuorumServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving `frozen` under the given coalescing policy and default
    /// overload limits.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if binding fails; [`ServeError::Spawn`] if
    /// the batcher or acceptor thread cannot be spawned.
    pub fn bind(
        addr: impl ToSocketAddrs,
        frozen: Arc<FrozenDetector>,
        policy: CoalescePolicy,
    ) -> Result<Self, ServeError> {
        Self::serve(addr, frozen, policy, OverloadPolicy::default())
    }

    /// [`QuorumServer::bind`] with explicit overload limits (queue
    /// capacity and per-request deadline).
    ///
    /// # Errors
    ///
    /// Same conditions as [`QuorumServer::bind`].
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        frozen: Arc<FrozenDetector>,
        policy: CoalescePolicy,
        overload: OverloadPolicy,
    ) -> Result<Self, ServeError> {
        Self::serve(addr, frozen, policy, overload)
    }

    /// Binds `addr` and serves `frozen` through a [`ShardedScorer`]
    /// planned from `shards`. The wire protocol is unchanged — clients
    /// cannot tell a sharded server from a single-process one, scores
    /// included (they are bit-identical by the sharding invariance).
    /// [`ShardPolicy::Single`] degrades to [`QuorumServer::bind`].
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if binding fails; plan and engine-override
    /// validation failures from [`ShardedScorer::new`].
    pub fn bind_sharded(
        addr: impl ToSocketAddrs,
        frozen: Arc<FrozenDetector>,
        policy: CoalescePolicy,
        shards: &ShardPolicy,
    ) -> Result<Self, ServeError> {
        match shards {
            ShardPolicy::Single => Self::serve(addr, frozen, policy, OverloadPolicy::default()),
            _ => {
                let sharded = Arc::new(ShardedScorer::new(frozen, shards)?);
                Self::serve(addr, sharded, policy, OverloadPolicy::default())
            }
        }
    }

    /// Binds `addr` and serves `frozen` through a fault-tolerant
    /// [`SupervisedScorer`]: shard workers run under a supervisor that
    /// restarts crashes with bounded backoff and re-folds chronically
    /// failing shards into the survivors, bit-identically. The `Health`
    /// message reports the per-shard liveness this backend maintains.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if binding fails; plan and engine-override
    /// validation failures from [`SupervisedScorer::new`];
    /// [`ServeError::Spawn`] for thread-spawn failures.
    pub fn bind_supervised(
        addr: impl ToSocketAddrs,
        frozen: Arc<FrozenDetector>,
        policy: CoalescePolicy,
        overload: OverloadPolicy,
        shards: &ShardPolicy,
        supervisor: SupervisorPolicy,
    ) -> Result<Self, ServeError> {
        let shards = match shards {
            // A supervised single backend is one worker shard.
            ShardPolicy::Single => ShardPolicy::Workers(1),
            other => other.clone(),
        };
        let supervised = Arc::new(SupervisedScorer::new(frozen, &shards, supervisor)?);
        Self::serve(addr, supervised, policy, overload)
    }

    fn serve(
        addr: impl ToSocketAddrs,
        panel: Arc<dyn PanelScorer>,
        policy: CoalescePolicy,
        overload: OverloadPolicy,
    ) -> Result<Self, ServeError> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let scorer = Arc::new(BatchScorer::start_with(
            Arc::clone(&panel),
            policy,
            overload,
        )?);
        let conns: ConnSlab = Arc::new(Mutex::new(HashMap::new()));
        let acceptor = {
            let stop = Arc::clone(&stop);
            let scorer = Arc::clone(&scorer);
            let panel = Arc::clone(&panel);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("quorum-acceptor".into())
                .spawn(move || {
                    accept_loop(&listener, &scorer, &panel, &conns, &stop);
                })
                .map_err(|e| ServeError::spawn("quorum-acceptor", e))?
        };
        Ok(QuorumServer {
            local_addr,
            stop,
            acceptor: Some(acceptor),
            scorer,
            panel,
            conns,
        })
    }

    /// The bound address — connect clients here.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Panels dispatched by the shared batcher (throughput diagnostics).
    pub fn batches_dispatched(&self) -> u64 {
        self.scorer.batches_dispatched()
    }

    /// Samples scored by the shared batcher.
    pub fn samples_scored(&self) -> u64 {
        self.scorer.samples_scored()
    }

    /// Requests shed so far because the batching queue was at capacity.
    pub fn shed_total(&self) -> u64 {
        self.scorer.shed_total()
    }

    /// The liveness snapshot a [`HEALTH_PROBE`] would answer right now.
    pub fn health_report(&self) -> HealthReport {
        health_report(&self.scorer, self.panel.as_ref())
    }

    /// Connections currently tracked as live. Handlers remove their
    /// entry (closing the server's cloned fd) as they exit, so this
    /// returns to zero once disconnected clients' handlers have wound
    /// down — the connection-reaping regression test asserts exactly
    /// that after a connect/score/disconnect soak.
    pub fn open_connections(&self) -> usize {
        self.conns
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Stops accepting, severs live connections so handler threads exit,
    /// and joins the acceptor. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the acceptor's blocking accept() with a throwaway
        // connection; it observes the flag and returns.
        let _ = TcpStream::connect(self.local_addr);
        let conns = self.conns.lock().unwrap_or_else(PoisonError::into_inner);
        for conn in conns.values() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        drop(conns);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

impl Drop for QuorumServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn health_report(scorer: &BatchScorer, panel: &dyn PanelScorer) -> HealthReport {
    HealthReport {
        protocol_version: PROTOCOL_VERSION,
        queue_depth: scorer.queue_depth() as u64,
        shed_total: scorer.shed_total(),
        batches_dispatched: scorer.batches_dispatched(),
        samples_scored: scorer.samples_scored(),
        shards: panel.shard_health(),
    }
}

fn accept_loop(
    listener: &TcpListener,
    scorer: &Arc<BatchScorer>,
    panel: &Arc<dyn PanelScorer>,
    conns: &ConnSlab,
    stop: &Arc<AtomicBool>,
) {
    // Handler JoinHandles live here, keyed by connection id; exiting
    // handlers queue their id on `finished` and the acceptor reaps the
    // handle (join + remove) on its next wakeup, so neither the conn
    // slab nor this map grows with the lifetime total of connections —
    // only with the number currently live.
    let mut handlers: HashMap<u64, JoinHandle<()>> = HashMap::new();
    let finished: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let mut next_id: u64 = 0;
    while let Ok((stream, _)) = listener.accept() {
        for id in finished
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
        {
            if let Some(join) = handlers.remove(&id) {
                let _ = join.join();
            }
        }
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let id = next_id;
        next_id = next_id.wrapping_add(1);
        // Score replies are single small frames on a request/response
        // protocol: disable Nagle so each one leaves immediately instead
        // of waiting out a delayed-ACK round trip. Best-effort — a
        // socket that dies here just fails in the handler.
        let _ = stream.set_nodelay(true);
        if let Ok(clone) = stream.try_clone() {
            conns
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .insert(id, clone);
        }
        let handle = scorer.handle();
        let scorer_h = Arc::clone(scorer);
        let panel_h = Arc::clone(panel);
        let conns_h = Arc::clone(conns);
        let finished_h = Arc::clone(&finished);
        match std::thread::Builder::new()
            .name("quorum-conn".into())
            .spawn(move || {
                handle_connection(stream, &handle, &scorer_h, panel_h.as_ref());
                // Reap this connection's slab entry (dropping the cloned
                // fd) and mark the JoinHandle collectable.
                conns_h
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .remove(&id);
                finished_h
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(id);
            }) {
            Ok(join) => {
                handlers.insert(id, join);
            }
            Err(_) => {
                conns
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .remove(&id);
            }
        }
    }
    for handler in handlers.into_values() {
        let _ = handler.join();
    }
}

/// One connection's request loop: read frames until EOF or a transport
/// error, answering each with a score or a typed error message.
/// Well-framed protocol errors (wrong width, unscorable rows) are
/// answered and keep the connection usable; transport errors end the
/// loop. A [`HEALTH_PROBE`] sentinel is answered with a status-3 health
/// frame. An implausible declared feature count (over
/// [`MAX_REQUEST_FEATURES`]) is answered with an error frame and then
/// **closes** the connection — the declared length is the stream's only
/// framing, so an untrustworthy one leaves no way to find the next
/// frame boundary, and draining it would read gigabytes on the
/// attacker's say-so.
fn handle_connection(
    mut stream: TcpStream,
    handle: &crate::batch::BatchHandle,
    scorer: &BatchScorer,
    panel: &dyn PanelScorer,
) {
    // Per-connection pooled buffers: the request payload lands in one
    // bulk read (one syscall for all `n` values instead of one per
    // `f64`), and every length-prefixed reply frame is assembled in a
    // reused buffer — steady-state request handling allocates only the
    // row the batching queue takes ownership of.
    let mut payload: Vec<u8> = Vec::new();
    let mut frame: Vec<u8> = Vec::new();
    loop {
        let mut len_buf = [0u8; 4];
        if stream.read_exact(&mut len_buf).is_err() {
            return; // EOF (client done) or severed by shutdown.
        }
        let n = u32::from_le_bytes(len_buf);
        if n == HEALTH_PROBE {
            if write_health(&mut stream, &health_report(scorer, panel), &mut frame).is_err() {
                return;
            }
            continue;
        }
        if n > MAX_REQUEST_FEATURES {
            let _ = write_error(
                &mut stream,
                &format!("implausible feature count {n}"),
                &mut frame,
            );
            return;
        }
        payload.clear();
        payload.resize(n as usize * 8, 0);
        if stream.read_exact(&mut payload).is_err() {
            return;
        }
        let mut row = Vec::with_capacity(n as usize);
        row.extend(
            payload
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().expect("chunks are 8 bytes"))),
        );
        // The handle validates width at enqueue, so a malformed client
        // never occupies a slot in a coalesced panel.
        let ok = match handle.score(row) {
            Ok(score) => write_score(&mut stream, score).is_ok(),
            // Shed requests get the typed status so clients can back
            // off and retry instead of parsing error text.
            Err(ServeError::Overloaded(msg)) => {
                write_overloaded(&mut stream, &msg, &mut frame).is_ok()
            }
            Err(e) => write_error(&mut stream, &e.to_string(), &mut frame).is_ok(),
        };
        if !ok {
            return;
        }
    }
}

/// Writes one response frame. The `"server::write_frame"` failpoint can
/// tear the frame here: only the first `keep_bytes` reach the wire and
/// the socket is shut down, exactly what a mid-write crash or network
/// partition produces.
fn write_frame(stream: &mut TcpStream, frame: &[u8]) -> std::io::Result<()> {
    #[cfg(any(test, feature = "failpoints"))]
    if let Some(crate::fault::FaultAction::TornWrite { keep_bytes }) =
        crate::fault::check("server::write_frame")
    {
        let keep = keep_bytes.min(frame.len());
        let _ = stream.write_all(&frame[..keep]);
        let _ = stream.flush();
        let _ = stream.shutdown(Shutdown::Both);
        return Err(std::io::Error::new(
            std::io::ErrorKind::BrokenPipe,
            "failpoint tore the response frame",
        ));
    }
    // Flush errors propagate: with Nagle disabled a buffered-writer
    // flush is where a dead peer surfaces, and swallowing it would let
    // the handler keep scoring into a closed socket.
    stream.write_all(frame)?;
    stream.flush()
}

fn write_score(stream: &mut TcpStream, score: f64) -> std::io::Result<()> {
    let mut frame = [0u8; 9];
    frame[1..].copy_from_slice(&score.to_le_bytes());
    write_frame(stream, &frame)
}

/// Assembles a `status | len | bytes` frame in the caller's pooled
/// buffer so the message paths (error, shed, health) stay off the
/// per-reply allocator.
fn write_message_frame(
    stream: &mut TcpStream,
    status: u8,
    message: &str,
    frame: &mut Vec<u8>,
) -> std::io::Result<()> {
    let bytes = message.as_bytes();
    frame.clear();
    frame.reserve(5 + bytes.len());
    frame.push(status);
    frame.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    frame.extend_from_slice(bytes);
    write_frame(stream, frame)
}

fn write_error(stream: &mut TcpStream, message: &str, frame: &mut Vec<u8>) -> std::io::Result<()> {
    write_message_frame(stream, 1, message, frame)
}

fn write_overloaded(
    stream: &mut TcpStream,
    message: &str,
    frame: &mut Vec<u8>,
) -> std::io::Result<()> {
    write_message_frame(stream, 2, message, frame)
}

fn write_health(
    stream: &mut TcpStream,
    report: &HealthReport,
    frame: &mut Vec<u8>,
) -> std::io::Result<()> {
    let payload = report.encode();
    frame.clear();
    frame.reserve(5 + payload.len());
    frame.push(3u8);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    write_frame(stream, frame)
}

/// Retry schedule for [`ScoreClient`]: exponential backoff with
/// deterministic, seeded jitter (no OS randomness — the same client
/// replays the same schedule, which the chaos suite relies on).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Extra attempts after the first failure.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub backoff_base: Duration,
    /// Ceiling on any single backoff.
    pub backoff_cap: Duration,
    /// Jitter fraction in `[0, 1]`: each backoff is scaled by a
    /// deterministic factor in `[1 - jitter, 1]`, decorrelating clients
    /// that share a seed schedule shape but not a seed.
    pub jitter: f64,
    /// Seed for the jitter sequence.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_secs(1),
            jitter: 0.5,
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl RetryPolicy {
    /// The delay before retry number `attempt` (0-based).
    fn backoff(&self, attempt: u32) -> Duration {
        let exp = attempt.min(20);
        let raw = self
            .backoff_base
            .saturating_mul(1u32 << exp)
            .min(self.backoff_cap);
        let jitter = self.jitter.clamp(0.0, 1.0);
        // splitmix64 of (seed, attempt) → uniform in [0, 1).
        let u = (splitmix64(self.seed ^ u64::from(attempt)) >> 11) as f64 / (1u64 << 53) as f64;
        raw.mul_f64(1.0 - jitter * u)
    }
}

/// SplitMix64 — deterministic jitter source (no OS randomness needed).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A minimal blocking client for the scoring protocol.
///
/// By default reads and writes block indefinitely; set deadlines with
/// [`ScoreClient::connect_with_timeouts`] or [`ScoreClient::set_timeouts`]
/// so a hung or wedged server surfaces as [`ServeError::Io`]
/// (`WouldBlock`/`TimedOut`) instead of blocking `score` forever.
///
/// [`ScoreClient::score_with_retry`] retries transient failures —
/// transport errors (reconnecting first) and typed
/// [`ServeError::Overloaded`] sheds — with seeded exponential backoff.
/// Retrying a score request is always safe: the protocol carries no
/// client state and scoring mutates nothing, so a resend can at worst
/// recompute. Under exact or noisy-expectation execution a resent row
/// scores bit-identically — the score depends only on the row and the
/// frozen statistics. Under `Sampled` execution the shot-noise draw is
/// keyed by the server-assigned sample id, so a resend is a fresh,
/// identically distributed draw rather than a byte-for-byte replay.
#[derive(Debug)]
pub struct ScoreClient {
    stream: TcpStream,
    /// Resolved addresses, kept for reconnects during retry.
    addrs: Vec<SocketAddr>,
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
    retry: RetryPolicy,
    /// Reused request-frame buffer: steady-state scoring encodes into
    /// this instead of allocating per call.
    frame: Vec<u8>,
}

impl ScoreClient {
    /// Connects to a running [`QuorumServer`] with no i/o deadlines.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the connection fails.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServeError> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let stream = TcpStream::connect(&addrs[..])?;
        // Requests are single small frames; without this each one can
        // stall behind Nagle waiting for the server's delayed ACK.
        stream.set_nodelay(true)?;
        Ok(ScoreClient {
            stream,
            addrs,
            read_timeout: None,
            write_timeout: None,
            retry: RetryPolicy::default(),
            frame: Vec::new(),
        })
    }

    /// Connects and applies the given read/write deadlines in one step.
    /// `None` leaves that direction blocking.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the connection fails or a zero duration is
    /// passed.
    pub fn connect_with_timeouts(
        addr: impl ToSocketAddrs,
        read: Option<Duration>,
        write: Option<Duration>,
    ) -> Result<Self, ServeError> {
        let mut client = Self::connect(addr)?;
        client.set_timeouts(read, write)?;
        Ok(client)
    }

    /// Connects, retrying transport failures under `retry` — a client
    /// started before (or racing) its server converges instead of
    /// failing fast.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when every attempt fails; the last error wins.
    pub fn connect_with_retry(
        addr: impl ToSocketAddrs,
        retry: RetryPolicy,
    ) -> Result<Self, ServeError> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let mut attempt = 0u32;
        loop {
            match TcpStream::connect(&addrs[..]) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    return Ok(ScoreClient {
                        stream,
                        addrs,
                        read_timeout: None,
                        write_timeout: None,
                        retry,
                        frame: Vec::new(),
                    });
                }
                Err(_) if attempt < retry.max_retries => {
                    std::thread::sleep(retry.backoff(attempt));
                    attempt += 1;
                }
                Err(e) => return Err(ServeError::Io(e)),
            }
        }
    }

    /// Sets the read/write deadlines for every subsequent `score` call.
    /// `None` reverts that direction to blocking indefinitely.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] for a zero duration (the platform rejects it).
    pub fn set_timeouts(
        &mut self,
        read: Option<Duration>,
        write: Option<Duration>,
    ) -> Result<(), ServeError> {
        self.stream.set_read_timeout(read)?;
        self.stream.set_write_timeout(write)?;
        self.read_timeout = read;
        self.write_timeout = write;
        Ok(())
    }

    /// Replaces the retry schedule used by
    /// [`ScoreClient::score_with_retry`].
    pub fn set_retry(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// Scores one sample, blocking for the response (up to the
    /// configured deadlines, when set). No retries — see
    /// [`ScoreClient::score_with_retry`].
    ///
    /// # Errors
    ///
    /// [`ServeError::Request`] when the server answers with an error
    /// frame; [`ServeError::Overloaded`] when the server shed the
    /// request (status 2 — not scored, safe to retry);
    /// [`ServeError::Io`] on transport failures and expired deadlines.
    pub fn score(&mut self, row: &[f64]) -> Result<f64, ServeError> {
        self.frame.clear();
        self.frame.reserve(4 + row.len() * 8);
        self.frame
            .extend_from_slice(&(row.len() as u32).to_le_bytes());
        for &v in row {
            self.frame.extend_from_slice(&v.to_le_bytes());
        }
        self.stream.write_all(&self.frame)?;
        let mut status = [0u8; 1];
        self.stream.read_exact(&mut status)?;
        match status[0] {
            0 => {
                let mut value = [0u8; 8];
                self.stream.read_exact(&mut value)?;
                Ok(f64::from_le_bytes(value))
            }
            1 => Err(ServeError::Request(self.read_message()?)),
            2 => Err(ServeError::Overloaded(self.read_message()?)),
            other => Err(ServeError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unknown response status {other}"),
            ))),
        }
    }

    /// [`ScoreClient::score`] with retries: transport failures
    /// reconnect and resend after a backoff, [`ServeError::Overloaded`]
    /// sheds back off on the same connection, and every other error
    /// (bad request, scoring failure) returns immediately — retrying a
    /// deterministic failure would only repeat it.
    ///
    /// # Errors
    ///
    /// The last transient error once the retry budget is spent, or the
    /// first non-transient error.
    pub fn score_with_retry(&mut self, row: &[f64]) -> Result<f64, ServeError> {
        let mut attempt = 0u32;
        loop {
            let err = match self.score(row) {
                Ok(score) => return Ok(score),
                Err(e @ (ServeError::Io(_) | ServeError::Overloaded(_))) => e,
                Err(other) => return Err(other),
            };
            if attempt >= self.retry.max_retries {
                return Err(err);
            }
            std::thread::sleep(self.retry.backoff(attempt));
            attempt += 1;
            if matches!(err, ServeError::Io(_)) {
                // The stream may be torn mid-frame; resynchronise with a
                // fresh connection. A failed reconnect just consumes the
                // attempt — the next loop iteration fails fast on i/o.
                if let Ok(stream) = TcpStream::connect(&self.addrs[..]) {
                    if stream.set_nodelay(true).is_ok()
                        && stream.set_read_timeout(self.read_timeout).is_ok()
                        && stream.set_write_timeout(self.write_timeout).is_ok()
                    {
                        self.stream = stream;
                    }
                }
            }
        }
    }

    /// Probes the server's health (protocol v2): batcher queue pressure,
    /// shed totals and per-shard worker liveness.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on transport failures or when the server does
    /// not speak protocol v2 (a v1 server answers the probe with an
    /// error frame and closes the connection, surfaced as
    /// [`ServeError::Request`]).
    pub fn health(&mut self) -> Result<HealthReport, ServeError> {
        self.stream.write_all(&HEALTH_PROBE.to_le_bytes())?;
        let mut status = [0u8; 1];
        self.stream.read_exact(&mut status)?;
        match status[0] {
            3 => {
                let payload = self.read_payload()?;
                HealthReport::decode(&payload)
            }
            1 => Err(ServeError::Request(self.read_message()?)),
            other => Err(ServeError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unexpected health response status {other}"),
            ))),
        }
    }

    /// Reads a `u32`-length-prefixed payload, bounded at 64 KiB.
    fn read_payload(&mut self) -> Result<Vec<u8>, ServeError> {
        let mut len_buf = [0u8; 4];
        self.stream.read_exact(&mut len_buf)?;
        let len = u32::from_le_bytes(len_buf);
        if len > 1 << 16 {
            return Err(ServeError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "oversized response frame",
            )));
        }
        let mut payload = vec![0u8; len as usize];
        self.stream.read_exact(&mut payload)?;
        Ok(payload)
    }

    fn read_message(&mut self) -> Result<String, ServeError> {
        let payload = self.read_payload()?;
        Ok(String::from_utf8_lossy(&payload).into_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_backoff_is_deterministic_capped_and_jittered() {
        let policy = RetryPolicy {
            max_retries: 5,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(100),
            jitter: 0.5,
            seed: 42,
        };
        let a: Vec<Duration> = (0..6).map(|i| policy.backoff(i)).collect();
        let b: Vec<Duration> = (0..6).map(|i| policy.backoff(i)).collect();
        assert_eq!(a, b, "same seed must replay the same schedule");
        for (i, d) in a.iter().enumerate() {
            let raw = Duration::from_millis(10)
                .saturating_mul(1 << i as u32)
                .min(Duration::from_millis(100));
            assert!(*d <= raw, "jitter only shrinks the delay");
            assert!(
                d.as_secs_f64() >= raw.as_secs_f64() * 0.5 - 1e-9,
                "jitter is bounded by the configured fraction"
            );
        }
        let other = RetryPolicy { seed: 43, ..policy };
        let c: Vec<Duration> = (0..6).map(|i| other.backoff(i)).collect();
        assert_ne!(a, c, "a different seed jitters differently");
        // Zero jitter is the plain exponential schedule.
        let plain = RetryPolicy {
            jitter: 0.0,
            ..policy
        };
        assert_eq!(plain.backoff(0), Duration::from_millis(10));
        assert_eq!(plain.backoff(2), Duration::from_millis(40));
        assert_eq!(plain.backoff(5), Duration::from_millis(100));
    }

    #[test]
    fn health_report_round_trips() {
        let report = HealthReport {
            protocol_version: PROTOCOL_VERSION,
            queue_depth: 3,
            shed_total: 11,
            batches_dispatched: 7,
            samples_scored: 19,
            shards: vec![
                ShardHealth {
                    shard: 0,
                    liveness: ShardLiveness::Live,
                    restarts: 2,
                    groups: 5,
                },
                ShardHealth {
                    shard: 1,
                    liveness: ShardLiveness::Retired,
                    restarts: 4,
                    groups: 0,
                },
                ShardHealth {
                    shard: 2,
                    liveness: ShardLiveness::BackingOff,
                    restarts: 1,
                    groups: 3,
                },
            ],
        };
        let decoded = HealthReport::decode(&report.encode()).unwrap();
        assert_eq!(decoded, report);
        assert!(HealthReport::decode(&report.encode()[..7]).is_err());
    }
}
