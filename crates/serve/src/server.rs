//! A long-lived TCP scoring server over a frozen detector, plus the
//! matching blocking client.
//!
//! Wire protocol (all little-endian):
//!
//! * request — `u32` feature count `n`, then `n` `f64` values;
//! * response — one status byte: `0` followed by the `f64` score, or
//!   `1` followed by a `u32` length and a UTF-8 error message.
//!
//! Error semantics: a *well-framed* bad request (wrong feature width,
//! unscorable values) is answered with an error frame and the connection
//! stays usable for the next request. A frame that cannot be trusted —
//! a declared feature count over [`MAX_REQUEST_FEATURES`] — is answered
//! with an error frame and then the connection is **closed**: the
//! declared length is the only framing information the protocol carries,
//! so once it is implausible the stream can never be resynchronised and
//! draining it would mean reading up to 32 GiB of attacker-controlled
//! payload.
//!
//! Each connection gets its own handler thread; every handler submits
//! through the shared [`BatchScorer`], so samples arriving concurrently
//! on different connections coalesce into one panel. The backend behind
//! the batcher is any [`PanelScorer`] — the single-process
//! [`FrozenDetector`] via [`QuorumServer::bind`], or a [`ShardedScorer`]
//! fanning ensemble groups across worker shards via
//! [`QuorumServer::bind_sharded`]; the wire protocol is identical either
//! way.

use crate::batch::{BatchScorer, CoalescePolicy, PanelScorer};
use crate::error::ServeError;
use crate::frozen::FrozenDetector;
use crate::shard::{ShardPolicy, ShardedScorer};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Upper bound on a request's declared feature count; anything larger is
/// a corrupt or hostile frame, not a plausible sample.
const MAX_REQUEST_FEATURES: u32 = 1 << 20;

/// Live connections keyed by connection id, shared between the acceptor
/// (insert), handlers (remove-on-exit) and shutdown (sever all).
type ConnSlab = Arc<Mutex<HashMap<u64, TcpStream>>>;

/// The serving runtime: an acceptor thread, one handler thread per
/// connection, and a shared batching worker coalescing across all of
/// them. Shuts down cleanly on [`QuorumServer::shutdown`] or drop.
#[derive(Debug)]
pub struct QuorumServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    scorer: Arc<BatchScorer>,
    conns: ConnSlab,
}

impl QuorumServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving `frozen` under the given coalescing policy.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if binding fails.
    pub fn bind(
        addr: impl ToSocketAddrs,
        frozen: Arc<FrozenDetector>,
        policy: CoalescePolicy,
    ) -> Result<Self, ServeError> {
        Self::serve(addr, frozen, policy)
    }

    /// Binds `addr` and serves `frozen` through a [`ShardedScorer`]
    /// planned from `shards`. The wire protocol is unchanged — clients
    /// cannot tell a sharded server from a single-process one, scores
    /// included (they are bit-identical by the sharding invariance).
    /// [`ShardPolicy::Single`] degrades to [`QuorumServer::bind`].
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if binding fails; plan and engine-override
    /// validation failures from [`ShardedScorer::new`].
    pub fn bind_sharded(
        addr: impl ToSocketAddrs,
        frozen: Arc<FrozenDetector>,
        policy: CoalescePolicy,
        shards: &ShardPolicy,
    ) -> Result<Self, ServeError> {
        match shards {
            ShardPolicy::Single => Self::serve(addr, frozen, policy),
            _ => {
                let sharded = Arc::new(ShardedScorer::new(frozen, shards)?);
                Self::serve(addr, sharded, policy)
            }
        }
    }

    fn serve(
        addr: impl ToSocketAddrs,
        panel: Arc<dyn PanelScorer>,
        policy: CoalescePolicy,
    ) -> Result<Self, ServeError> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let scorer = Arc::new(BatchScorer::start(panel, policy));
        let conns: ConnSlab = Arc::new(Mutex::new(HashMap::new()));
        let acceptor = {
            let stop = Arc::clone(&stop);
            let scorer = Arc::clone(&scorer);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("quorum-acceptor".into())
                .spawn(move || {
                    accept_loop(&listener, &scorer, &conns, &stop);
                })
                .expect("spawning the acceptor thread")
        };
        Ok(QuorumServer {
            local_addr,
            stop,
            acceptor: Some(acceptor),
            scorer,
            conns,
        })
    }

    /// The bound address — connect clients here.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Panels dispatched by the shared batcher (throughput diagnostics).
    pub fn batches_dispatched(&self) -> u64 {
        self.scorer.batches_dispatched()
    }

    /// Samples scored by the shared batcher.
    pub fn samples_scored(&self) -> u64 {
        self.scorer.samples_scored()
    }

    /// Connections currently tracked as live. Handlers remove their
    /// entry (closing the server's cloned fd) as they exit, so this
    /// returns to zero once disconnected clients' handlers have wound
    /// down — the connection-reaping regression test asserts exactly
    /// that after a connect/score/disconnect soak.
    pub fn open_connections(&self) -> usize {
        self.conns
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Stops accepting, severs live connections so handler threads exit,
    /// and joins the acceptor. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the acceptor's blocking accept() with a throwaway
        // connection; it observes the flag and returns.
        let _ = TcpStream::connect(self.local_addr);
        let conns = self.conns.lock().unwrap_or_else(PoisonError::into_inner);
        for conn in conns.values() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        drop(conns);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

impl Drop for QuorumServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    scorer: &Arc<BatchScorer>,
    conns: &ConnSlab,
    stop: &Arc<AtomicBool>,
) {
    // Handler JoinHandles live here, keyed by connection id; exiting
    // handlers queue their id on `finished` and the acceptor reaps the
    // handle (join + remove) on its next wakeup, so neither the conn
    // slab nor this map grows with the lifetime total of connections —
    // only with the number currently live.
    let mut handlers: HashMap<u64, JoinHandle<()>> = HashMap::new();
    let finished: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let mut next_id: u64 = 0;
    while let Ok((stream, _)) = listener.accept() {
        for id in finished
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
        {
            if let Some(join) = handlers.remove(&id) {
                let _ = join.join();
            }
        }
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let id = next_id;
        next_id = next_id.wrapping_add(1);
        if let Ok(clone) = stream.try_clone() {
            conns
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .insert(id, clone);
        }
        let handle = scorer.handle();
        let conns_h = Arc::clone(conns);
        let finished_h = Arc::clone(&finished);
        match std::thread::Builder::new()
            .name("quorum-conn".into())
            .spawn(move || {
                handle_connection(stream, &handle);
                // Reap this connection's slab entry (dropping the cloned
                // fd) and mark the JoinHandle collectable.
                conns_h
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .remove(&id);
                finished_h
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(id);
            }) {
            Ok(join) => {
                handlers.insert(id, join);
            }
            Err(_) => {
                conns
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .remove(&id);
            }
        }
    }
    for handler in handlers.into_values() {
        let _ = handler.join();
    }
}

/// One connection's request loop: read frames until EOF or a transport
/// error, answering each with a score or a typed error message.
/// Well-framed protocol errors (wrong width, unscorable rows) are
/// answered and keep the connection usable; transport errors end the
/// loop. An implausible declared feature count (over
/// [`MAX_REQUEST_FEATURES`]) is answered with an error frame and then
/// **closes** the connection — the declared length is the stream's only
/// framing, so an untrustworthy one leaves no way to find the next
/// frame boundary, and draining it would read gigabytes on the
/// attacker's say-so.
fn handle_connection(mut stream: TcpStream, handle: &crate::batch::BatchHandle) {
    loop {
        let mut len_buf = [0u8; 4];
        if stream.read_exact(&mut len_buf).is_err() {
            return; // EOF (client done) or severed by shutdown.
        }
        let n = u32::from_le_bytes(len_buf);
        if n > MAX_REQUEST_FEATURES {
            let _ = write_error(&mut stream, &format!("implausible feature count {n}"));
            return;
        }
        let mut row = vec![0.0f64; n as usize];
        let mut value = [0u8; 8];
        for slot in &mut row {
            if stream.read_exact(&mut value).is_err() {
                return;
            }
            *slot = f64::from_le_bytes(value);
        }
        // The handle validates width at enqueue, so a malformed client
        // never occupies a slot in a coalesced panel.
        let ok = match handle.score(row) {
            Ok(score) => write_score(&mut stream, score).is_ok(),
            Err(e) => write_error(&mut stream, &e.to_string()).is_ok(),
        };
        if !ok {
            return;
        }
    }
}

fn write_score(stream: &mut TcpStream, score: f64) -> std::io::Result<()> {
    let mut frame = [0u8; 9];
    frame[1..].copy_from_slice(&score.to_le_bytes());
    stream.write_all(&frame)
}

fn write_error(stream: &mut TcpStream, message: &str) -> std::io::Result<()> {
    let bytes = message.as_bytes();
    let mut frame = Vec::with_capacity(5 + bytes.len());
    frame.push(1u8);
    frame.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    frame.extend_from_slice(bytes);
    stream.write_all(&frame)
}

/// A minimal blocking client for the scoring protocol.
///
/// By default reads and writes block indefinitely; set deadlines with
/// [`ScoreClient::connect_with_timeouts`] or [`ScoreClient::set_timeouts`]
/// so a hung or wedged server surfaces as [`ServeError::Io`]
/// (`WouldBlock`/`TimedOut`) instead of blocking `score` forever.
#[derive(Debug)]
pub struct ScoreClient {
    stream: TcpStream,
}

impl ScoreClient {
    /// Connects to a running [`QuorumServer`] with no i/o deadlines.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the connection fails.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServeError> {
        Ok(ScoreClient {
            stream: TcpStream::connect(addr)?,
        })
    }

    /// Connects and applies the given read/write deadlines in one step.
    /// `None` leaves that direction blocking.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the connection fails or a zero duration is
    /// passed.
    pub fn connect_with_timeouts(
        addr: impl ToSocketAddrs,
        read: Option<Duration>,
        write: Option<Duration>,
    ) -> Result<Self, ServeError> {
        let mut client = Self::connect(addr)?;
        client.set_timeouts(read, write)?;
        Ok(client)
    }

    /// Sets the read/write deadlines for every subsequent `score` call.
    /// `None` reverts that direction to blocking indefinitely.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] for a zero duration (the platform rejects it).
    pub fn set_timeouts(
        &mut self,
        read: Option<Duration>,
        write: Option<Duration>,
    ) -> Result<(), ServeError> {
        self.stream.set_read_timeout(read)?;
        self.stream.set_write_timeout(write)?;
        Ok(())
    }

    /// Scores one sample, blocking for the response (up to the
    /// configured deadlines, when set).
    ///
    /// # Errors
    ///
    /// [`ServeError::Request`] when the server answers with an error
    /// frame; [`ServeError::Io`] on transport failures and expired
    /// deadlines.
    pub fn score(&mut self, row: &[f64]) -> Result<f64, ServeError> {
        let mut frame = Vec::with_capacity(4 + row.len() * 8);
        frame.extend_from_slice(&(row.len() as u32).to_le_bytes());
        for &v in row {
            frame.extend_from_slice(&v.to_le_bytes());
        }
        self.stream.write_all(&frame)?;
        let mut status = [0u8; 1];
        self.stream.read_exact(&mut status)?;
        match status[0] {
            0 => {
                let mut value = [0u8; 8];
                self.stream.read_exact(&mut value)?;
                Ok(f64::from_le_bytes(value))
            }
            1 => {
                let mut len_buf = [0u8; 4];
                self.stream.read_exact(&mut len_buf)?;
                let len = u32::from_le_bytes(len_buf);
                if len > 1 << 16 {
                    return Err(ServeError::Io(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "oversized error frame",
                    )));
                }
                let mut msg = vec![0u8; len as usize];
                self.stream.read_exact(&mut msg)?;
                Err(ServeError::Request(
                    String::from_utf8_lossy(&msg).into_owned(),
                ))
            }
            other => Err(ServeError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unknown response status {other}"),
            ))),
        }
    }
}
