//! A long-lived TCP scoring server over a frozen detector, plus the
//! matching blocking client.
//!
//! Wire protocol (all little-endian):
//!
//! * request — `u32` feature count `n`, then `n` `f64` values;
//! * response — one status byte: `0` followed by the `f64` score, or
//!   `1` followed by a `u32` length and a UTF-8 error message.
//!
//! Each connection gets its own handler thread; every handler submits
//! through the shared [`BatchScorer`], so samples arriving concurrently
//! on different connections coalesce into one panel.

use crate::batch::{BatchScorer, CoalescePolicy};
use crate::error::ServeError;
use crate::frozen::FrozenDetector;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;

/// Upper bound on a request's declared feature count; anything larger is
/// a corrupt or hostile frame, not a plausible sample.
const MAX_REQUEST_FEATURES: u32 = 1 << 20;

/// The serving runtime: an acceptor thread, one handler thread per
/// connection, and a shared batching worker coalescing across all of
/// them. Shuts down cleanly on [`QuorumServer::shutdown`] or drop.
#[derive(Debug)]
pub struct QuorumServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    scorer: Arc<BatchScorer>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
}

impl QuorumServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving `frozen` under the given coalescing policy.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if binding fails.
    pub fn bind(
        addr: impl ToSocketAddrs,
        frozen: Arc<FrozenDetector>,
        policy: CoalescePolicy,
    ) -> Result<Self, ServeError> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let scorer = Arc::new(BatchScorer::start(Arc::clone(&frozen), policy));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let stop = Arc::clone(&stop);
            let scorer = Arc::clone(&scorer);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("quorum-acceptor".into())
                .spawn(move || {
                    accept_loop(&listener, &frozen, &scorer, &conns, &stop);
                })
                .expect("spawning the acceptor thread")
        };
        Ok(QuorumServer {
            local_addr,
            stop,
            acceptor: Some(acceptor),
            scorer,
            conns,
        })
    }

    /// The bound address — connect clients here.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Panels dispatched by the shared batcher (throughput diagnostics).
    pub fn batches_dispatched(&self) -> u64 {
        self.scorer.batches_dispatched()
    }

    /// Samples scored by the shared batcher.
    pub fn samples_scored(&self) -> u64 {
        self.scorer.samples_scored()
    }

    /// Stops accepting, severs live connections so handler threads exit,
    /// and joins the acceptor. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the acceptor's blocking accept() with a throwaway
        // connection; it observes the flag and returns.
        let _ = TcpStream::connect(self.local_addr);
        let conns = self.conns.lock().unwrap_or_else(PoisonError::into_inner);
        for conn in conns.iter() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        drop(conns);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

impl Drop for QuorumServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    frozen: &Arc<FrozenDetector>,
    scorer: &Arc<BatchScorer>,
    conns: &Arc<Mutex<Vec<TcpStream>>>,
    stop: &Arc<AtomicBool>,
) {
    let mut handlers = Vec::new();
    while let Ok((stream, _)) = listener.accept() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        if let Ok(clone) = stream.try_clone() {
            conns
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(clone);
        }
        let handle = scorer.handle();
        let frozen = Arc::clone(frozen);
        if let Ok(join) = std::thread::Builder::new()
            .name("quorum-conn".into())
            .spawn(move || handle_connection(stream, &frozen, &handle))
        {
            handlers.push(join);
        }
    }
    for handler in handlers {
        let _ = handler.join();
    }
}

/// One connection's request loop: read frames until EOF or a transport
/// error, answering each with a score or a typed error message. Protocol
/// errors are answered (keeping the connection usable); transport errors
/// end the loop.
fn handle_connection(
    mut stream: TcpStream,
    frozen: &Arc<FrozenDetector>,
    handle: &crate::batch::BatchHandle,
) {
    loop {
        let mut len_buf = [0u8; 4];
        if stream.read_exact(&mut len_buf).is_err() {
            return; // EOF (client done) or severed by shutdown.
        }
        let n = u32::from_le_bytes(len_buf);
        if n > MAX_REQUEST_FEATURES {
            let _ = write_error(&mut stream, &format!("implausible feature count {n}"));
            return;
        }
        let mut row = vec![0.0f64; n as usize];
        let mut value = [0u8; 8];
        for slot in &mut row {
            if stream.read_exact(&mut value).is_err() {
                return;
            }
            *slot = f64::from_le_bytes(value);
        }
        // Reject wrong widths before enqueueing so one malformed client
        // never occupies a slot in a coalesced panel.
        let result = if row.len() == frozen.num_features() {
            handle.score(row)
        } else {
            Err(ServeError::Request(format!(
                "expected {} features, got {}",
                frozen.num_features(),
                row.len()
            )))
        };
        let ok = match result {
            Ok(score) => write_score(&mut stream, score).is_ok(),
            Err(e) => write_error(&mut stream, &e.to_string()).is_ok(),
        };
        if !ok {
            return;
        }
    }
}

fn write_score(stream: &mut TcpStream, score: f64) -> std::io::Result<()> {
    let mut frame = [0u8; 9];
    frame[1..].copy_from_slice(&score.to_le_bytes());
    stream.write_all(&frame)
}

fn write_error(stream: &mut TcpStream, message: &str) -> std::io::Result<()> {
    let bytes = message.as_bytes();
    let mut frame = Vec::with_capacity(5 + bytes.len());
    frame.push(1u8);
    frame.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    frame.extend_from_slice(bytes);
    stream.write_all(&frame)
}

/// A minimal blocking client for the scoring protocol.
#[derive(Debug)]
pub struct ScoreClient {
    stream: TcpStream,
}

impl ScoreClient {
    /// Connects to a running [`QuorumServer`].
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the connection fails.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServeError> {
        Ok(ScoreClient {
            stream: TcpStream::connect(addr)?,
        })
    }

    /// Scores one sample, blocking for the response.
    ///
    /// # Errors
    ///
    /// [`ServeError::Request`] when the server answers with an error
    /// frame; [`ServeError::Io`] on transport failures.
    pub fn score(&mut self, row: &[f64]) -> Result<f64, ServeError> {
        let mut frame = Vec::with_capacity(4 + row.len() * 8);
        frame.extend_from_slice(&(row.len() as u32).to_le_bytes());
        for &v in row {
            frame.extend_from_slice(&v.to_le_bytes());
        }
        self.stream.write_all(&frame)?;
        let mut status = [0u8; 1];
        self.stream.read_exact(&mut status)?;
        match status[0] {
            0 => {
                let mut value = [0u8; 8];
                self.stream.read_exact(&mut value)?;
                Ok(f64::from_le_bytes(value))
            }
            1 => {
                let mut len_buf = [0u8; 4];
                self.stream.read_exact(&mut len_buf)?;
                let len = u32::from_le_bytes(len_buf);
                if len > 1 << 16 {
                    return Err(ServeError::Io(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "oversized error frame",
                    )));
                }
                let mut msg = vec![0u8; len as usize];
                self.stream.read_exact(&mut msg)?;
                Err(ServeError::Request(
                    String::from_utf8_lossy(&msg).into_owned(),
                ))
            }
            other => Err(ServeError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unknown response status {other}"),
            ))),
        }
    }
}
