//! Fault-tolerant sharded serving: shard workers run under a
//! supervisor that catches panics, restarts crashed workers with
//! bounded exponential backoff, and — past a restart budget — retires
//! the failing shard and **re-folds** its groups into the survivors.
//!
//! The whole design leans on one invariant: the ensemble score is an
//! additive sum of per-group partial vectors, merged in ascending
//! group-index order, and a group's partial depends only on the group,
//! its assigned engine, the rows and the stable sample ids — never on
//! which worker thread computed it. Each group's engine assignment is
//! fixed at construction (it keeps the engine override of the shard it
//! was planned onto), so *any* group→worker placement afterwards —
//! original plan, transient fold while a shard backs off, permanent
//! re-fold after retirement — produces **bit-identical** scores.
//! Fault recovery here is re-planning, not re-computation semantics.
//!
//! Failure handling, per request:
//!
//! 1. A panel is dispatched to every live worker (each scores the
//!    groups it owns, plus a transient share of any backing-off
//!    shard's groups).
//! 2. A worker that panics mid-panel (caught by `catch_unwind`) sends
//!    a "panicked" reply and its thread exits. The supervisor notes the
//!    death: restart with exponential backoff while the shard is within
//!    its restart budget, retirement + permanent re-fold past it.
//! 3. Groups left unscored by the dead worker are re-dispatched, up to
//!    [`SupervisorPolicy::request_retries`] extra rounds; past the
//!    budget the request fails with a typed [`ServeError::Faulted`].
//!
//! Restarted workers re-warm their groups' noisy per-group caches
//! (superoperator fusions, channel programs) before taking traffic, so
//! a crash never turns into a latency cliff for the next panel.

use crate::batch::PanelScorer;
use crate::error::ServeError;
use crate::frozen::{FrozenDetector, NormalizedPanel};
use crate::shard::{ShardPlan, ShardPolicy};
use quorum_core::config::EngineKind;
use quorum_core::QuorumError;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Restart and retry budgets for a [`SupervisedScorer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorPolicy {
    /// How many restarts one shard worker gets before it is retired and
    /// its groups are re-folded into the surviving shards for good.
    pub max_restarts: u64,
    /// Backoff before the first restart; doubles per consecutive
    /// restart of the same shard.
    pub backoff_base: Duration,
    /// Ceiling on the per-restart backoff.
    pub backoff_cap: Duration,
    /// Extra dispatch rounds one request may spend re-scoring groups a
    /// crashed worker left behind, before failing with
    /// [`ServeError::Faulted`].
    pub request_retries: u32,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        SupervisorPolicy {
            max_restarts: 3,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_secs(2),
            request_retries: 2,
        }
    }
}

/// Where one shard worker is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardLiveness {
    /// Running (or eligible to be restarted on the next dispatch).
    Live,
    /// Crashed and waiting out its restart backoff; its groups are
    /// folded into live shards transiently, per dispatch.
    BackingOff,
    /// Past its restart budget; its groups have been re-folded into the
    /// surviving shards permanently.
    Retired,
}

/// One shard's liveness snapshot, as reported by the `Health` wire
/// message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardHealth {
    /// Shard index in the original plan.
    pub shard: usize,
    /// Lifecycle state.
    pub liveness: ShardLiveness,
    /// How many times this shard's worker has been restarted.
    pub restarts: u64,
    /// Groups the shard currently owns (zero once retired).
    pub groups: usize,
}

/// A job fanned out to one supervised worker: the groups to score this
/// round (each with its fixed engine assignment), the shared normalized
/// panel, and the reply channel.
struct SupJob {
    groups: Arc<Vec<(usize, Option<EngineKind>)>>,
    normalized: Arc<NormalizedPanel>,
    first_sample_id: u64,
    reply: Sender<SupReply>,
}

/// Per-group partial score vectors (or per-group scoring errors) one
/// worker computed for a single dispatch round.
type GroupPartials = Vec<(usize, Result<Vec<f64>, QuorumError>)>;

/// A worker's answer. `Err(())` means the panel panicked: the worker
/// announced its own death and its thread has exited.
struct SupReply {
    worker: usize,
    epoch: u64,
    outcome: Result<GroupPartials, ()>,
}

/// The live half of one shard worker.
struct WorkerSlot {
    tx: Sender<SupJob>,
    join: JoinHandle<()>,
}

/// Supervisor-side state of one shard.
struct ShardState {
    /// Groups this shard owns, each with the engine assignment fixed at
    /// construction. Mutated only by permanent re-folds.
    groups: Vec<(usize, Option<EngineKind>)>,
    restarts: u64,
    retired: bool,
    /// While `Some` and in the future, the shard is backing off and its
    /// groups ride on live shards for each dispatch.
    down_until: Option<Instant>,
    /// Bumped per spawn so late replies from a previous incarnation
    /// cannot be mistaken for the current worker's.
    epoch: u64,
    worker: Option<WorkerSlot>,
}

struct Inner {
    shards: Vec<ShardState>,
}

/// A sharded panel scorer whose workers survive panics: crashed shards
/// restart with bounded exponential backoff, chronically crashing
/// shards retire and re-fold their groups into the survivors, and
/// in-flight panels are re-dispatched within a per-request retry
/// budget — all without changing a single output bit (see the module
/// docs for why re-planning preserves bit-identity).
pub struct SupervisedScorer {
    frozen: Arc<FrozenDetector>,
    policy: SupervisorPolicy,
    inner: Mutex<Inner>,
    restarts_total: AtomicU64,
    refolds_total: AtomicU64,
}

impl std::fmt::Debug for SupervisedScorer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SupervisedScorer")
            .field("policy", &self.policy)
            .field(
                "restarts_total",
                &self.restarts_total.load(Ordering::Relaxed),
            )
            .field("refolds_total", &self.refolds_total.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl SupervisedScorer {
    /// Plans `shard_policy` over `frozen` (identically to
    /// [`crate::ShardedScorer::new`]) and starts one supervised worker
    /// per shard.
    ///
    /// # Errors
    ///
    /// [`ServeError::Request`] for degenerate policies;
    /// [`ServeError::Quorum`] for engine overrides the frozen execution
    /// mode rejects; [`ServeError::Spawn`] when a worker thread cannot
    /// be spawned.
    pub fn new(
        frozen: Arc<FrozenDetector>,
        shard_policy: &ShardPolicy,
        policy: SupervisorPolicy,
    ) -> Result<Self, ServeError> {
        let plan = ShardPlan::for_detector(&frozen, shard_policy)?;
        Self::with_plan(frozen, plan, policy)
    }

    /// Starts supervised workers for an explicit plan.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SupervisedScorer::new`], plus
    /// [`ServeError::Request`] for plans that skip or duplicate groups.
    pub fn with_plan(
        frozen: Arc<FrozenDetector>,
        plan: ShardPlan,
        policy: SupervisorPolicy,
    ) -> Result<Self, ServeError> {
        let mut seen = vec![false; frozen.groups().len()];
        for shard in plan.shards() {
            for &g in shard.groups() {
                if g >= seen.len() || seen[g] {
                    return Err(ServeError::Request(format!(
                        "shard plan assigns group {g} out of range or twice"
                    )));
                }
                seen[g] = true;
            }
        }
        if !seen.iter().all(|&s| s) {
            return Err(ServeError::Request(
                "shard plan leaves at least one group unassigned".into(),
            ));
        }
        let mut shards = Vec::with_capacity(plan.num_shards());
        for shard in plan.shards() {
            // Validate the override and warm this shard's groups before
            // any worker spawns, exactly like the unsupervised scorer.
            frozen.resolve_stream_engine(shard.engine())?;
            if let Some(kind) = shard.engine() {
                frozen.prewarm_groups(kind, shard.groups())?;
            }
            shards.push(ShardState {
                groups: shard
                    .groups()
                    .iter()
                    .map(|&g| (g, shard.engine()))
                    .collect(),
                restarts: 0,
                retired: false,
                down_until: None,
                epoch: 0,
                worker: None,
            });
        }
        let scorer = SupervisedScorer {
            frozen,
            policy,
            inner: Mutex::new(Inner { shards }),
            restarts_total: AtomicU64::new(0),
            refolds_total: AtomicU64::new(0),
        };
        {
            let mut inner = scorer.lock_inner();
            for s in 0..inner.shards.len() {
                scorer.spawn_worker(&mut inner, s)?;
            }
        }
        Ok(scorer)
    }

    fn lock_inner(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A worker panic can never poison this lock (workers don't hold
        // it), but a panicking test thread could; the state stays
        // consistent because every mutation is single-step.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Spawns (or respawns) the worker for shard `s`, re-warming its
    /// groups' engine-specific caches first.
    fn spawn_worker(&self, inner: &mut Inner, s: usize) -> Result<(), ServeError> {
        // Re-warm per-group caches for every engine this shard's groups
        // are pinned to, so a restarted worker's first panel pays no
        // fusion or lowering. (A fresh construction warms too — the
        // calls are cheap no-ops when the caches are already populated.)
        let shard = &inner.shards[s];
        let mut by_kind: Vec<(EngineKind, Vec<usize>)> = Vec::new();
        for &(g, ov) in &shard.groups {
            if let Some(kind) = ov {
                match by_kind.iter_mut().find(|(k, _)| *k == kind) {
                    Some((_, gs)) => gs.push(g),
                    None => by_kind.push((kind, vec![g])),
                }
            }
        }
        for (kind, gs) in by_kind {
            self.frozen.prewarm_groups(kind, &gs)?;
        }
        let shard = &mut inner.shards[s];
        shard.epoch += 1;
        let epoch = shard.epoch;
        let (tx, rx) = mpsc::channel::<SupJob>();
        let frozen = Arc::clone(&self.frozen);
        let join = std::thread::Builder::new()
            .name(format!("quorum-supshard-{s}"))
            .spawn(move || worker_loop(&frozen, s, epoch, &rx))
            .map_err(|e| ServeError::spawn(&format!("quorum-supshard-{s}"), e))?;
        shard.worker = Some(WorkerSlot { tx, join });
        shard.down_until = None;
        Ok(())
    }

    /// Records the death of shard `s`'s worker at `epoch`: backoff and
    /// restart while within budget, retirement + permanent re-fold past
    /// it. Stale epochs (a reply from a worker already replaced) are
    /// ignored.
    fn note_dead(&self, inner: &mut Inner, s: usize, epoch: u64) {
        if inner.shards[s].epoch != epoch || inner.shards[s].retired {
            return;
        }
        if let Some(slot) = inner.shards[s].worker.take() {
            drop(slot.tx);
            // The thread exits right after announcing its death.
            let _ = slot.join.join();
        }
        inner.shards[s].restarts += 1;
        if inner.shards[s].restarts > self.policy.max_restarts {
            // Past the budget: retire the shard and move its groups to
            // the survivors for good. Group→engine assignments travel
            // with the groups, so scores stay bit-identical.
            inner.shards[s].retired = true;
            inner.shards[s].down_until = None;
            let orphans = std::mem::take(&mut inner.shards[s].groups);
            if !orphans.is_empty() {
                let mut heirs: Vec<usize> = (0..inner.shards.len())
                    .filter(|&i| !inner.shards[i].retired)
                    .collect();
                if !heirs.is_empty() {
                    for (g, ov) in orphans {
                        // Least-loaded survivor, by current group count.
                        heirs.sort_by_key(|&i| (inner.shards[i].groups.len(), i));
                        let heir = heirs[0];
                        inner.shards[heir].groups.push((g, ov));
                        inner.shards[heir].groups.sort_unstable_by_key(|&(g, _)| g);
                    }
                    self.refolds_total.fetch_add(1, Ordering::Relaxed);
                }
                // No survivors: the groups are lost and every future
                // dispatch fails typed — the caller sees Faulted, not a
                // wedge or a wrong partial sum.
            }
        } else {
            let exp = inner.shards[s].restarts.saturating_sub(1).min(20);
            let backoff = self
                .policy
                .backoff_base
                .saturating_mul(1u32 << u32::try_from(exp).expect("capped at 20"))
                .min(self.policy.backoff_cap);
            inner.shards[s].down_until = Some(Instant::now() + backoff);
        }
    }

    /// Scores a panel of streamed rows, transparently re-planning around
    /// crashed workers. Bit-identical to
    /// [`FrozenDetector::score_samples`] under the same per-group engine
    /// assignment, whatever faults occur, because every group's partial
    /// is merged in ascending group order regardless of which worker
    /// computed it.
    ///
    /// # Errors
    ///
    /// Row validation and scoring failures as in
    /// [`FrozenDetector::score_samples`]; [`ServeError::Faulted`] when
    /// no live worker remains or the per-request retry budget runs out.
    pub fn score_samples(
        &self,
        rows: &[Vec<f64>],
        first_sample_id: u64,
    ) -> Result<Vec<f64>, ServeError> {
        if rows.is_empty() {
            return Ok(Vec::new());
        }
        let normalized = Arc::new(self.frozen.normalize_stream_panel(rows)?);
        let num_groups = self.frozen.groups().len();
        let mut per_group: Vec<Option<Vec<f64>>> = (0..num_groups).map(|_| None).collect();
        let mut rounds = 0u32;
        loop {
            let missing: Vec<usize> = (0..num_groups)
                .filter(|&g| per_group[g].is_none())
                .collect();
            if missing.is_empty() {
                break;
            }
            if rounds > self.policy.request_retries {
                return Err(ServeError::Faulted(format!(
                    "retry budget exhausted: {} of {num_groups} groups unscored after {rounds} dispatch rounds",
                    missing.len()
                )));
            }
            rounds += 1;
            let (reply_tx, reply_rx) = mpsc::channel::<SupReply>();
            let outstanding = self.dispatch(&missing, &normalized, first_sample_id, &reply_tx)?;
            drop(reply_tx);
            let mut dead: Vec<(usize, u64)> = Vec::new();
            let mut group_error: Option<(usize, QuorumError)> = None;
            for _ in 0..outstanding {
                let Ok(reply) = reply_rx.recv() else {
                    // Every sender gone without replying cannot happen
                    // (workers reply even when panicking), but a lost
                    // reply is just another round of missing groups.
                    break;
                };
                match reply.outcome {
                    Ok(partials) => {
                        for (g, partial) in partials {
                            match partial {
                                Ok(p) => per_group[g] = Some(p),
                                Err(e) => {
                                    // Deterministic scoring failure: no
                                    // retry, and the lowest-indexed
                                    // group's error wins (the
                                    // single-process reporting order).
                                    if group_error.as_ref().is_none_or(|(gg, _)| g < *gg) {
                                        group_error = Some((g, e));
                                    }
                                }
                            }
                        }
                    }
                    Err(()) => dead.push((reply.worker, reply.epoch)),
                }
            }
            if !dead.is_empty() {
                let mut inner = self.lock_inner();
                for (s, epoch) in dead {
                    self.note_dead(&mut inner, s, epoch);
                }
            }
            if let Some((_, e)) = group_error {
                return Err(ServeError::Quorum(e));
            }
        }
        let mut totals = vec![0.0; rows.len()];
        for partial in per_group {
            let partial = partial.expect("loop exits only with every group scored");
            for (t, p) in totals.iter_mut().zip(partial) {
                *t += p;
            }
        }
        Ok(totals)
    }

    /// One dispatch round: revive eligible workers, assign each missing
    /// group to a live worker (its owner when live, a transient heir
    /// while the owner backs off), send the jobs. Returns how many
    /// replies to await.
    fn dispatch(
        &self,
        missing: &[usize],
        normalized: &Arc<NormalizedPanel>,
        first_sample_id: u64,
        reply_tx: &Sender<SupReply>,
    ) -> Result<usize, ServeError> {
        let mut inner = self.lock_inner();
        let live: Vec<usize> = loop {
            let now = Instant::now();
            // Revive: a non-retired shard whose worker died and whose
            // backoff has elapsed gets a fresh worker before this round.
            for s in 0..inner.shards.len() {
                let shard = &inner.shards[s];
                if shard.retired || shard.worker.is_some() {
                    continue;
                }
                if shard.down_until.is_none_or(|t| now >= t) {
                    self.spawn_worker(&mut inner, s)?;
                    self.restarts_total.fetch_add(1, Ordering::Relaxed);
                }
            }
            let live: Vec<usize> = (0..inner.shards.len())
                .filter(|&s| inner.shards[s].worker.is_some())
                .collect();
            if !live.is_empty() {
                break live;
            }
            // A crash burst can put the whole fleet into backoff at
            // once. That is a pause, not a death sentence: wait out the
            // soonest revival (bounded by `backoff_cap`) instead of
            // failing a request that still has retry budget. Only a
            // fully retired fleet is unrecoverable.
            let soonest = inner
                .shards
                .iter()
                .filter(|shard| !shard.retired)
                .filter_map(|shard| shard.down_until)
                .min();
            let Some(revive_at) = soonest else {
                return Err(ServeError::Faulted(
                    "no live shard workers remain (every shard is retired)".into(),
                ));
            };
            drop(inner);
            std::thread::sleep(revive_at.saturating_duration_since(Instant::now()));
            inner = self.lock_inner();
        };
        let is_missing = |g: usize| missing.binary_search(&g).is_ok();
        let mut assignments: Vec<Vec<(usize, Option<EngineKind>)>> =
            vec![Vec::new(); inner.shards.len()];
        let mut orphans: Vec<(usize, Option<EngineKind>)> = Vec::new();
        for (s, shard) in inner.shards.iter().enumerate() {
            let owned_missing = shard.groups.iter().copied().filter(|&(g, _)| is_missing(g));
            if shard.worker.is_some() {
                assignments[s].extend(owned_missing);
            } else {
                // Backing off: its groups ride with the live shards for
                // this round only. (Retired shards own nothing.)
                orphans.extend(owned_missing);
            }
        }
        for (i, orphan) in orphans.into_iter().enumerate() {
            assignments[live[i % live.len()]].push(orphan);
        }
        let mut outstanding = 0usize;
        let mut send_failures: Vec<(usize, u64)> = Vec::new();
        for s in live {
            if assignments[s].is_empty() {
                continue;
            }
            let shard = &inner.shards[s];
            let slot = shard.worker.as_ref().expect("live shards have workers");
            let job = SupJob {
                groups: Arc::new(std::mem::take(&mut assignments[s])),
                normalized: Arc::clone(normalized),
                first_sample_id,
                reply: reply_tx.clone(),
            };
            if slot.tx.send(job).is_err() {
                // The worker died between rounds without us noticing —
                // count the death now; its groups stay missing and the
                // next round re-plans around it.
                send_failures.push((s, shard.epoch));
            } else {
                outstanding += 1;
            }
        }
        for (s, epoch) in send_failures {
            self.note_dead(&mut inner, s, epoch);
        }
        Ok(outstanding)
    }

    /// Worker restarts performed since construction.
    pub fn restarts_total(&self) -> u64 {
        self.restarts_total.load(Ordering::Relaxed)
    }

    /// Permanent re-folds (retired shards whose groups moved to
    /// survivors) since construction.
    pub fn refolds_total(&self) -> u64 {
        self.refolds_total.load(Ordering::Relaxed)
    }

    /// Per-shard liveness snapshot, in original plan order.
    pub fn shard_health(&self) -> Vec<ShardHealth> {
        let inner = self.lock_inner();
        let now = Instant::now();
        inner
            .shards
            .iter()
            .enumerate()
            .map(|(s, shard)| ShardHealth {
                shard: s,
                liveness: if shard.retired {
                    ShardLiveness::Retired
                } else if shard.worker.is_none() && shard.down_until.is_some_and(|t| now < t) {
                    ShardLiveness::BackingOff
                } else {
                    ShardLiveness::Live
                },
                restarts: shard.restarts,
                groups: shard.groups.len(),
            })
            .collect()
    }

    /// The underlying frozen detector.
    pub fn frozen(&self) -> &Arc<FrozenDetector> {
        &self.frozen
    }
}

impl Drop for SupervisedScorer {
    fn drop(&mut self) {
        let mut inner = self.lock_inner();
        for shard in &mut inner.shards {
            if let Some(slot) = shard.worker.take() {
                drop(slot.tx);
                let _ = slot.join.join();
            }
        }
    }
}

impl PanelScorer for SupervisedScorer {
    fn num_features(&self) -> usize {
        self.frozen.num_features()
    }

    fn score_panel(&self, rows: &[Vec<f64>], first_sample_id: u64) -> Result<Vec<f64>, ServeError> {
        self.score_samples(rows, first_sample_id)
    }

    fn shard_health(&self) -> Vec<ShardHealth> {
        SupervisedScorer::shard_health(self)
    }
}

/// The supervised worker body: score each assigned group under its
/// fixed engine, reply, repeat — and if a panel panics, announce the
/// death and exit (the supervisor restarts or retires the shard).
fn worker_loop(frozen: &Arc<FrozenDetector>, worker: usize, epoch: u64, rx: &Receiver<SupJob>) {
    let levels = frozen.stream_levels();
    while let Ok(job) = rx.recv() {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            #[cfg(any(test, feature = "failpoints"))]
            match crate::fault::check("supervisor::worker") {
                Some(crate::fault::FaultAction::Panic) => {
                    panic!("failpoint \"supervisor::worker\" injected a panic")
                }
                Some(crate::fault::FaultAction::Delay(d)) => std::thread::sleep(d),
                Some(crate::fault::FaultAction::PoisonCaches) => {
                    // A crashed lock holder: poison this job's groups'
                    // derived caches. Scoring must absorb it (the
                    // byte-bounded caches recover poisoned locks). The
                    // poison hooks live behind core's `failpoints`
                    // feature, which serve's forwards to.
                    #[cfg(feature = "failpoints")]
                    for &(g, _) in job.groups.iter() {
                        frozen.groups()[g].poison_derived_caches();
                    }
                }
                _ => {}
            }
            job.groups
                .iter()
                .map(|&(g, ov)| {
                    let partial = frozen
                        .resolve_stream_engine(ov)
                        .map_err(|e| {
                            // Overrides were validated at construction;
                            // failing here is a bug, not a request error.
                            QuorumError::Internal(format!(
                                "shard engine resolve failed at scoring time: {e}"
                            ))
                        })
                        .and_then(|(engine, exact_config)| {
                            frozen.stream_scores_for_group_with(
                                engine,
                                &exact_config,
                                g,
                                &job.normalized.as_panel(),
                                &levels,
                                job.first_sample_id,
                            )
                        });
                    (g, partial)
                })
                .collect::<Vec<_>>()
        }));
        match outcome {
            Ok(partials) => {
                let _ = job.reply.send(SupReply {
                    worker,
                    epoch,
                    outcome: Ok(partials),
                });
            }
            Err(_) => {
                // Announce the death so the in-flight request re-plans
                // immediately instead of waiting on a reply that will
                // never come, then let the thread die.
                let _ = job.reply.send(SupReply {
                    worker,
                    epoch,
                    outcome: Err(()),
                });
                break;
            }
        }
    }
}
