//! The variational QNN classifier circuit.
//!
//! Architecture (hardware-efficient, after Kukliansky et al., the paper's
//! "QNN" competitor): per re-uploading block, an **angle-encoding layer**
//! (RY(π·x) per qubit over a rotating window of the feature vector)
//! followed by a **trainable layer** (RY(w), RZ(w) per qubit and a CX
//! ring). The readout is `⟨Z⟩` on qubit 0 mapped to an anomaly probability
//! `p = (1 − ⟨Z⟩)/2`.

use qsim::circuit::{Circuit, Operation};
use qsim::statevector::Statevector;
use rand::Rng;
use std::f64::consts::PI;

/// Trainable parameters: `2 × num_qubits` angles per block
/// (RY then RZ per qubit).
#[derive(Debug, Clone, PartialEq)]
pub struct QnnModel {
    num_qubits: usize,
    blocks: usize,
    /// Flattened parameters: `params[block][2 * qubit + {0: ry, 1: rz}]`.
    params: Vec<f64>,
}

impl QnnModel {
    /// Creates a model with small random initial weights.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits == 0` or `blocks == 0`.
    pub fn random<R: Rng + ?Sized>(num_qubits: usize, blocks: usize, rng: &mut R) -> Self {
        assert!(num_qubits > 0, "at least one qubit");
        assert!(blocks > 0, "at least one block");
        let params = (0..blocks * 2 * num_qubits)
            .map(|_| rng.gen_range(-0.1..0.1))
            .collect();
        QnnModel {
            num_qubits,
            blocks,
            params,
        }
    }

    /// Qubit count.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Re-uploading block count.
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// Immutable view of the flattened trainable parameters.
    pub fn params(&self) -> &[f64] {
        &self.params
    }

    /// Number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// Overwrites one parameter (used by the parameter-shift rule).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn set_param(&mut self, idx: usize, value: f64) {
        self.params[idx] = value;
    }

    /// Applies a delta to every parameter (optimizer step).
    ///
    /// # Panics
    ///
    /// Panics if `delta.len() != self.num_params()`.
    pub fn apply_update(&mut self, delta: &[f64]) {
        assert_eq!(delta.len(), self.params.len(), "update length");
        for (p, d) in self.params.iter_mut().zip(delta) {
            *p += d;
        }
    }

    /// Builds the full circuit for one input sample.
    pub fn circuit(&self, features: &[f64]) -> Circuit {
        let n = self.num_qubits;
        let mut circ = Circuit::new(n);
        for block in 0..self.blocks {
            // Encoding layer: rotate each qubit by the next feature in a
            // rotating window (re-uploading).
            for q in 0..n {
                let f = if features.is_empty() {
                    0.0
                } else {
                    features[(block * n + q) % features.len()]
                };
                circ.ry(PI * f, q);
            }
            // Trainable layer.
            for q in 0..n {
                circ.ry(self.params[block * 2 * n + 2 * q], q);
                circ.rz(self.params[block * 2 * n + 2 * q + 1], q);
            }
            // Entangling ring.
            if n > 1 {
                for q in 0..n {
                    circ.cx(q, (q + 1) % n);
                }
            }
        }
        circ
    }

    /// Exact `⟨Z⟩` on qubit 0 for one sample (statevector evaluation — the
    /// infinite-shot limit the optimizer trains against).
    pub fn expectation(&self, features: &[f64]) -> f64 {
        let circ = self.circuit(features);
        let mut sv = Statevector::new(self.num_qubits);
        for instr in circ.instructions() {
            if let Operation::Gate(g) = &instr.op {
                sv.apply_gate(*g, &instr.qubits).expect("valid circuit");
            }
        }
        sv.expectation_z(0).expect("qubit 0 exists")
    }

    /// Anomaly probability `p = (1 − ⟨Z⟩)/2 ∈ [0, 1]`.
    pub fn probability(&self, features: &[f64]) -> f64 {
        (1.0 - self.expectation(features)) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model(seed: u64) -> QnnModel {
        QnnModel::random(4, 2, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn construction_and_shapes() {
        let m = model(1);
        assert_eq!(m.num_qubits(), 4);
        assert_eq!(m.blocks(), 2);
        assert_eq!(m.num_params(), 16);
    }

    #[test]
    fn circuit_structure() {
        let m = model(2);
        let circ = m.circuit(&[0.1, 0.2, 0.3]);
        // Per block: 4 encode RY + 4 RY + 4 RZ + 4 CX = 16; 2 blocks = 32.
        assert_eq!(circ.len(), 32);
        assert_eq!(circ.num_qubits(), 4);
    }

    #[test]
    fn probability_is_valid_and_depends_on_input() {
        let m = model(3);
        let p0 = m.probability(&[0.0, 0.0, 0.0, 0.0]);
        let p1 = m.probability(&[0.9, 0.8, 0.7, 0.6]);
        assert!((0.0..=1.0).contains(&p0));
        assert!((0.0..=1.0).contains(&p1));
        assert!((p0 - p1).abs() > 1e-6, "model ignores inputs");
    }

    #[test]
    fn params_update_changes_output() {
        let mut m = model(4);
        let x = [0.3, 0.6, 0.1, 0.9];
        let before = m.probability(&x);
        let delta = vec![0.3; m.num_params()];
        m.apply_update(&delta);
        let after = m.probability(&x);
        assert!((before - after).abs() > 1e-6);
    }

    #[test]
    fn feature_window_rotates_across_blocks() {
        // With more features than qubits, later blocks see later features:
        // two different long inputs sharing the first 4 features must still
        // produce different outputs.
        let m = model(5);
        let a = [0.1, 0.2, 0.3, 0.4, 0.9, 0.9, 0.9, 0.9];
        let b = [0.1, 0.2, 0.3, 0.4, 0.0, 0.0, 0.0, 0.0];
        assert!((m.probability(&a) - m.probability(&b)).abs() > 1e-6);
    }

    #[test]
    fn empty_features_are_tolerated() {
        let m = model(6);
        let p = m.probability(&[]);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn parameter_shift_rule_holds() {
        // d<Z>/dθ must equal (E(θ+π/2) − E(θ−π/2))/2 for rotation gates.
        let m = model(7);
        let x = [0.4, 0.2, 0.7, 0.5];
        let idx = 3;
        let theta = m.params()[idx];
        let h = 1e-6;
        let mut mp = m.clone();
        mp.set_param(idx, theta + h);
        let mut mm = m.clone();
        mm.set_param(idx, theta - h);
        let numeric = (mp.expectation(&x) - mm.expectation(&x)) / (2.0 * h);
        let mut ms_p = m.clone();
        ms_p.set_param(idx, theta + PI / 2.0);
        let mut ms_m = m.clone();
        ms_m.set_param(idx, theta - PI / 2.0);
        let shift = (ms_p.expectation(&x) - ms_m.expectation(&x)) / 2.0;
        assert!(
            (numeric - shift).abs() < 1e-4,
            "parameter shift {shift} vs numeric {numeric}"
        );
    }
}
