//! # qnn-baseline — the paper's supervised QNN competitor
//!
//! A hardware-efficient variational quantum classifier trained with
//! parameter-shift gradients and Adam on **labelled** data, adapted for
//! generic tabular anomaly detection from the network-anomaly QNN of
//! Kukliansky et al. (the technique the paper benchmarks Quorum against).
//!
//! Everything Quorum avoids lives here: gradient evaluation costs two extra
//! circuit executions per parameter per sample, labels are mandatory, and
//! class imbalance drives the classifier toward conservative predictions —
//! the high-precision / low-recall behaviour visible in the paper's Fig. 8.
//!
//! ```
//! use qnn_baseline::{train, TrainConfig};
//! use qdata::Dataset;
//!
//! // A small separable labelled set.
//! let mut rows: Vec<Vec<f64>> = (0..12).map(|i| vec![0.1 + 0.01 * i as f64, 0.4]).collect();
//! rows.extend((0..12).map(|i| vec![0.9 - 0.01 * i as f64, 0.4]));
//! let mut labels = vec![false; 12];
//! labels.extend(vec![true; 12]);
//! let ds = Dataset::from_rows("toy", rows, Some(labels)).unwrap();
//!
//! let trained = train(&ds, &TrainConfig { epochs: 4, ..TrainConfig::default() });
//! let scores = trained.score_dataset(&ds);
//! assert_eq!(scores.len(), 24);
//! ```

#![warn(missing_docs)]

pub mod model;
pub mod train;

pub use model::QnnModel;
pub use train::{train, TrainConfig, TrainedQnn};
