//! Supervised training: parameter-shift gradients, binary cross-entropy,
//! Adam.
//!
//! This is exactly the machinery Quorum exists to avoid (paper §I: "the
//! difficulty of gradient calculation … from first principles using the
//! parameter shift rule"): every gradient entry costs two extra circuit
//! evaluations per sample.

use crate::model::QnnModel;
use qdata::preprocess::RangeNormalizer;
use qdata::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::f64::consts::FRAC_PI_2;

/// Training hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Qubits in the classifier.
    pub num_qubits: usize,
    /// Re-uploading blocks.
    pub blocks: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Decision threshold on the anomaly probability.
    pub threshold: f64,
    /// RNG seed (init + shuffling).
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            num_qubits: 4,
            blocks: 2,
            epochs: 12,
            batch_size: 16,
            learning_rate: 0.05,
            threshold: 0.5,
            seed: 7,
        }
    }
}

/// A trained QNN classifier with its fitted normaliser.
#[derive(Debug, Clone)]
pub struct TrainedQnn {
    model: QnnModel,
    normalizer: RangeNormalizer,
    /// Feature count of the training data; the range normaliser maps into
    /// `[0, 1/M]`, so angle encoding rescales by `M` into `[0, 1]`.
    feature_scale: f64,
    threshold: f64,
    loss_history: Vec<f64>,
}

impl TrainedQnn {
    /// The underlying model.
    pub fn model(&self) -> &QnnModel {
        &self.model
    }

    /// Mean training loss per epoch.
    pub fn loss_history(&self) -> &[f64] {
        &self.loss_history
    }

    /// Scores every sample of a dataset (higher = more anomalous).
    pub fn score_dataset(&self, data: &Dataset) -> Vec<f64> {
        let normalized = self.normalizer.transform(&data.strip_labels());
        normalized
            .rows()
            .iter()
            .map(|row| {
                let features: Vec<f64> =
                    row.iter().map(|v| (v * self.feature_scale).abs()).collect();
                self.model.probability(&features)
            })
            .collect()
    }

    /// Binary predictions for every sample at the trained threshold.
    pub fn predict_dataset(&self, data: &Dataset) -> Vec<bool> {
        self.score_dataset(data)
            .into_iter()
            .map(|p| p >= self.threshold)
            .collect()
    }
}

/// Trains a QNN on a **labelled** dataset — the supervised, training-heavy
/// competitor the paper compares Quorum against.
///
/// # Panics
///
/// Panics if `data` carries no labels (the QNN cannot train without them —
/// that asymmetry is the paper's point) or if the label set is degenerate.
pub fn train(data: &Dataset, config: &TrainConfig) -> TrainedQnn {
    let labels = data
        .labels()
        .expect("the QNN baseline is supervised: labels are required")
        .to_vec();
    assert!(
        labels.iter().any(|&l| l),
        "training set contains no anomalies"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let normalizer = RangeNormalizer::fit(&data.strip_labels());
    // Scale back up to [0,1] for angle encoding: multiply by M.
    let normalized = normalizer.transform(&data.strip_labels());
    let m = data.num_features() as f64;
    let rows: Vec<Vec<f64>> = normalized
        .rows()
        .iter()
        .map(|r| r.iter().map(|v| (v * m).abs()).collect())
        .collect();

    let mut model = QnnModel::random(config.num_qubits, config.blocks, &mut rng);
    let mut adam = Adam::new(model.num_params(), config.learning_rate);
    let mut loss_history = Vec::with_capacity(config.epochs);
    let mut order: Vec<usize> = (0..rows.len()).collect();

    for _epoch in 0..config.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        let mut batches = 0.0;
        for batch in order.chunks(config.batch_size) {
            let mut grad = vec![0.0; model.num_params()];
            let mut batch_loss = 0.0;
            for &i in batch {
                let x = &rows[i];
                let y = if labels[i] { 1.0 } else { 0.0 };
                let z = model.expectation(x);
                let p = ((1.0 - z) / 2.0).clamp(1e-9, 1.0 - 1e-9);
                batch_loss += -(y * p.ln() + (1.0 - y) * (1.0 - p).ln());
                // dL/dz = dL/dp · dp/dz = ((p − y)/(p(1−p))) · (−1/2)
                let dl_dz = -0.5 * (p - y) / (p * (1.0 - p));
                // Parameter-shift rule per trainable angle.
                for (k, g) in grad.iter_mut().enumerate() {
                    let theta = model.params()[k];
                    model.set_param(k, theta + FRAC_PI_2);
                    let z_plus = model.expectation(x);
                    model.set_param(k, theta - FRAC_PI_2);
                    let z_minus = model.expectation(x);
                    model.set_param(k, theta);
                    *g += dl_dz * (z_plus - z_minus) / 2.0;
                }
            }
            let scale = 1.0 / batch.len() as f64;
            for g in &mut grad {
                *g *= scale;
            }
            let update = adam.step(&grad);
            model.apply_update(&update);
            epoch_loss += batch_loss * scale;
            batches += 1.0;
        }
        loss_history.push(epoch_loss / batches);
    }

    TrainedQnn {
        model,
        normalizer,
        feature_scale: m,
        threshold: config.threshold,
        loss_history,
    }
}

/// Adam optimizer state.
#[derive(Debug, Clone)]
struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: i32,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl Adam {
    fn new(num_params: usize, lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: vec![0.0; num_params],
            v: vec![0.0; num_params],
        }
    }

    /// Returns the parameter *delta* (already negated for descent).
    fn step(&mut self, grad: &[f64]) -> Vec<f64> {
        self.t += 1;
        let mut update = vec![0.0; grad.len()];
        for (k, &g) in grad.iter().enumerate() {
            self.m[k] = self.beta1 * self.m[k] + (1.0 - self.beta1) * g;
            self.v[k] = self.beta2 * self.v[k] + (1.0 - self.beta2) * g * g;
            let m_hat = self.m[k] / (1.0 - self.beta1.powi(self.t));
            let v_hat = self.v[k] / (1.0 - self.beta2.powi(self.t));
            update[k] = -self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
        update
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivially separable labelled dataset: anomalies have large f0.
    fn separable(n_normal: usize, n_anom: usize) -> Dataset {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n_normal {
            rows.push(vec![0.1 + 0.001 * i as f64, 0.5, 0.3, 0.2]);
            labels.push(false);
        }
        for i in 0..n_anom {
            rows.push(vec![0.9 + 0.001 * i as f64, 0.5, 0.3, 0.2]);
            labels.push(true);
        }
        Dataset::from_rows("sep", rows, Some(labels)).unwrap()
    }

    fn quick_config() -> TrainConfig {
        TrainConfig {
            epochs: 8,
            batch_size: 8,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn loss_decreases_on_separable_data() {
        let ds = separable(24, 24);
        let trained = train(&ds, &quick_config());
        let history = trained.loss_history();
        assert_eq!(history.len(), 8);
        assert!(
            history.last().unwrap() < history.first().unwrap(),
            "loss did not decrease: {history:?}"
        );
    }

    #[test]
    fn learns_a_separable_boundary() {
        let ds = separable(30, 30);
        let trained = train(&ds, &quick_config());
        let scores = trained.score_dataset(&ds);
        let labels = ds.labels().unwrap();
        // Mean anomaly score must clearly exceed mean normal score.
        let mean = |f: bool| {
            let v: Vec<f64> = scores
                .iter()
                .zip(labels)
                .filter(|(_, &l)| l == f)
                .map(|(&s, _)| s)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(
            mean(true) > mean(false) + 0.1,
            "anomaly {} vs normal {}",
            mean(true),
            mean(false)
        );
        let auc = qmetrics::roc_auc(&scores, labels);
        assert!(auc > 0.9, "AUC {auc}");
    }

    #[test]
    fn imbalanced_data_yields_conservative_classifier() {
        // 58 normals, 4 anomalies: the class imbalance the paper's datasets
        // have. BCE training tends toward "predict normal" — which is why
        // the paper's QNN shows poor recall.
        let ds = separable(58, 4);
        let trained = train(&ds, &quick_config());
        let preds = trained.predict_dataset(&ds);
        let flagged = preds.iter().filter(|&&p| p).count();
        assert!(flagged <= 20, "over-eager detector flagged {flagged}");
    }

    #[test]
    fn training_is_deterministic() {
        let ds = separable(16, 16);
        let a = train(&ds, &quick_config());
        let b = train(&ds, &quick_config());
        assert_eq!(a.model().params(), b.model().params());
    }

    #[test]
    #[should_panic(expected = "labels are required")]
    fn training_requires_labels() {
        let ds = separable(8, 8).strip_labels();
        train(&ds, &quick_config());
    }

    #[test]
    #[should_panic(expected = "no anomalies")]
    fn training_requires_positive_class() {
        let rows = vec![vec![0.1, 0.2]; 8];
        let ds = Dataset::from_rows("neg", rows, Some(vec![false; 8])).unwrap();
        train(&ds, &quick_config());
    }

    #[test]
    fn predictions_are_threshold_consistent() {
        let ds = separable(20, 20);
        let trained = train(&ds, &quick_config());
        let scores = trained.score_dataset(&ds);
        let preds = trained.predict_dataset(&ds);
        for (s, p) in scores.iter().zip(preds) {
            assert_eq!(p, *s >= 0.5);
        }
    }
}
