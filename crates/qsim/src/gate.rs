//! The gate library: every unitary the Quorum circuits need.
//!
//! Single-qubit gates carry their 2×2 matrix; two- and three-qubit gates are
//! applied with specialised kernels in the state backends, but every gate can
//! also produce its full dense matrix via [`Gate::matrix`] for verification
//! and transpiler testing.

use crate::complex::C64;
use crate::matrix::CMatrix;
use std::fmt;

const FRAC_1_SQRT_2: f64 = std::f64::consts::FRAC_1_SQRT_2;

/// A quantum gate.
///
/// Rotation angles are in radians. The matrix conventions follow the paper's
/// Background section (and Qiskit): e.g.
/// `RX(θ) = [[cos θ/2, −i sin θ/2], [−i sin θ/2, cos θ/2]]`.
///
/// # Examples
///
/// ```
/// use qsim::gate::Gate;
///
/// let g = Gate::RX(std::f64::consts::PI);
/// assert_eq!(g.num_qubits(), 1);
/// assert!(g.matrix().is_unitary(1e-12));
/// assert_eq!(g.inverse(), Gate::RX(-std::f64::consts::PI));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Gate {
    /// Identity.
    I,
    /// Hadamard.
    H,
    /// Pauli-X (NOT).
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Phase gate S = diag(1, i).
    S,
    /// S†.
    Sdg,
    /// T = diag(1, e^{iπ/4}).
    T,
    /// T†.
    Tdg,
    /// √X, the native IBM single-qubit gate.
    SX,
    /// √X†.
    SXdg,
    /// Rotation about the x-axis by the given angle.
    RX(f64),
    /// Rotation about the y-axis by the given angle.
    RY(f64),
    /// Rotation about the z-axis by the given angle.
    RZ(f64),
    /// Phase rotation diag(1, e^{iθ}).
    Phase(f64),
    /// Generic single-qubit rotation U(θ, φ, λ) in the Qiskit convention.
    U(f64, f64, f64),
    /// Controlled-X; operand order is `(control, target)`.
    CX,
    /// Controlled-Z (symmetric in its operands).
    CZ,
    /// Controlled RZ(θ); operand order is `(control, target)`.
    CRZ(f64),
    /// Controlled phase diag(1,1,1,e^{iθ}) (symmetric in its operands).
    CPhase(f64),
    /// Swaps two qubits.
    Swap,
    /// Toffoli (CCX); operand order is `(control, control, target)`.
    CCX,
    /// Fredkin (controlled-SWAP); operand order is `(control, target, target)`.
    CSwap,
}

impl Gate {
    /// The number of qubits this gate acts on.
    pub fn num_qubits(&self) -> usize {
        match self {
            Gate::I
            | Gate::H
            | Gate::X
            | Gate::Y
            | Gate::Z
            | Gate::S
            | Gate::Sdg
            | Gate::T
            | Gate::Tdg
            | Gate::SX
            | Gate::SXdg
            | Gate::RX(_)
            | Gate::RY(_)
            | Gate::RZ(_)
            | Gate::Phase(_)
            | Gate::U(..) => 1,
            Gate::CX | Gate::CZ | Gate::CRZ(_) | Gate::CPhase(_) | Gate::Swap => 2,
            Gate::CCX | Gate::CSwap => 3,
        }
    }

    /// A short lowercase mnemonic (Qiskit-compatible where possible).
    pub fn name(&self) -> &'static str {
        match self {
            Gate::I => "id",
            Gate::H => "h",
            Gate::X => "x",
            Gate::Y => "y",
            Gate::Z => "z",
            Gate::S => "s",
            Gate::Sdg => "sdg",
            Gate::T => "t",
            Gate::Tdg => "tdg",
            Gate::SX => "sx",
            Gate::SXdg => "sxdg",
            Gate::RX(_) => "rx",
            Gate::RY(_) => "ry",
            Gate::RZ(_) => "rz",
            Gate::Phase(_) => "p",
            Gate::U(..) => "u",
            Gate::CX => "cx",
            Gate::CZ => "cz",
            Gate::CRZ(_) => "crz",
            Gate::CPhase(_) => "cp",
            Gate::Swap => "swap",
            Gate::CCX => "ccx",
            Gate::CSwap => "cswap",
        }
    }

    /// The inverse gate `G†`.
    pub fn inverse(&self) -> Gate {
        match *self {
            Gate::S => Gate::Sdg,
            Gate::Sdg => Gate::S,
            Gate::T => Gate::Tdg,
            Gate::Tdg => Gate::T,
            Gate::SX => Gate::SXdg,
            Gate::SXdg => Gate::SX,
            Gate::RX(t) => Gate::RX(-t),
            Gate::RY(t) => Gate::RY(-t),
            Gate::RZ(t) => Gate::RZ(-t),
            Gate::Phase(t) => Gate::Phase(-t),
            Gate::U(t, p, l) => Gate::U(-t, -l, -p),
            Gate::CRZ(t) => Gate::CRZ(-t),
            Gate::CPhase(t) => Gate::CPhase(-t),
            // Self-inverse gates.
            g => g,
        }
    }

    /// The 2×2 matrix of a single-qubit gate.
    ///
    /// # Panics
    ///
    /// Panics when called on a multi-qubit gate; use [`Gate::matrix`] there.
    pub fn matrix_1q(&self) -> [[C64; 2]; 2] {
        let o = C64::ZERO;
        let l = C64::ONE;
        let i = C64::I;
        match *self {
            Gate::I => [[l, o], [o, l]],
            Gate::H => [
                [C64::from_real(FRAC_1_SQRT_2), C64::from_real(FRAC_1_SQRT_2)],
                [
                    C64::from_real(FRAC_1_SQRT_2),
                    C64::from_real(-FRAC_1_SQRT_2),
                ],
            ],
            Gate::X => [[o, l], [l, o]],
            Gate::Y => [[o, -i], [i, o]],
            Gate::Z => [[l, o], [o, -l]],
            Gate::S => [[l, o], [o, i]],
            Gate::Sdg => [[l, o], [o, -i]],
            Gate::T => [[l, o], [o, C64::cis(std::f64::consts::FRAC_PI_4)]],
            Gate::Tdg => [[l, o], [o, C64::cis(-std::f64::consts::FRAC_PI_4)]],
            // SX = (1/2) [[1+i, 1-i], [1-i, 1+i]]
            Gate::SX => [
                [C64::new(0.5, 0.5), C64::new(0.5, -0.5)],
                [C64::new(0.5, -0.5), C64::new(0.5, 0.5)],
            ],
            Gate::SXdg => [
                [C64::new(0.5, -0.5), C64::new(0.5, 0.5)],
                [C64::new(0.5, 0.5), C64::new(0.5, -0.5)],
            ],
            Gate::RX(t) => {
                let (c, s) = ((t / 2.0).cos(), (t / 2.0).sin());
                [
                    [C64::from_real(c), C64::new(0.0, -s)],
                    [C64::new(0.0, -s), C64::from_real(c)],
                ]
            }
            Gate::RY(t) => {
                let (c, s) = ((t / 2.0).cos(), (t / 2.0).sin());
                [
                    [C64::from_real(c), C64::from_real(-s)],
                    [C64::from_real(s), C64::from_real(c)],
                ]
            }
            Gate::RZ(t) => [[C64::cis(-t / 2.0), o], [o, C64::cis(t / 2.0)]],
            Gate::Phase(t) => [[l, o], [o, C64::cis(t)]],
            Gate::U(theta, phi, lambda) => {
                let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
                [
                    [C64::from_real(c), -C64::cis(lambda) * s],
                    [C64::cis(phi) * s, C64::cis(phi + lambda) * c],
                ]
            }
            _ => panic!("matrix_1q called on multi-qubit gate {self}"),
        }
    }

    /// The full dense matrix of the gate (2×2, 4×4 or 8×8).
    ///
    /// For multi-qubit gates the first operand is the most significant bit
    /// of the row/column index (so CX on `(control, target)` flips the
    /// *second* bit when the *first* is 1).
    pub fn matrix(&self) -> CMatrix {
        match self.num_qubits() {
            1 => {
                let m = self.matrix_1q();
                CMatrix::from_rows(&[&m[0], &m[1]])
            }
            2 => {
                let mut m = CMatrix::identity(4);
                match *self {
                    Gate::CX => {
                        // |10> <-> |11>
                        m[(2, 2)] = C64::ZERO;
                        m[(3, 3)] = C64::ZERO;
                        m[(2, 3)] = C64::ONE;
                        m[(3, 2)] = C64::ONE;
                    }
                    Gate::CZ => {
                        m[(3, 3)] = -C64::ONE;
                    }
                    Gate::CRZ(t) => {
                        m[(2, 2)] = C64::cis(-t / 2.0);
                        m[(3, 3)] = C64::cis(t / 2.0);
                    }
                    Gate::CPhase(t) => {
                        m[(3, 3)] = C64::cis(t);
                    }
                    Gate::Swap => {
                        m[(1, 1)] = C64::ZERO;
                        m[(2, 2)] = C64::ZERO;
                        m[(1, 2)] = C64::ONE;
                        m[(2, 1)] = C64::ONE;
                    }
                    _ => unreachable!(),
                }
                m
            }
            3 => {
                let mut m = CMatrix::identity(8);
                match *self {
                    Gate::CCX => {
                        // |110> <-> |111>
                        m[(6, 6)] = C64::ZERO;
                        m[(7, 7)] = C64::ZERO;
                        m[(6, 7)] = C64::ONE;
                        m[(7, 6)] = C64::ONE;
                    }
                    Gate::CSwap => {
                        // |101> <-> |110>
                        m[(5, 5)] = C64::ZERO;
                        m[(6, 6)] = C64::ZERO;
                        m[(5, 6)] = C64::ONE;
                        m[(6, 5)] = C64::ONE;
                    }
                    _ => unreachable!(),
                }
                m
            }
            _ => unreachable!(),
        }
    }

    /// Whether this gate is diagonal in the computational basis.
    pub fn is_diagonal(&self) -> bool {
        matches!(
            self,
            Gate::I
                | Gate::Z
                | Gate::S
                | Gate::Sdg
                | Gate::T
                | Gate::Tdg
                | Gate::RZ(_)
                | Gate::Phase(_)
                | Gate::CZ
                | Gate::CRZ(_)
                | Gate::CPhase(_)
        )
    }

    /// The rotation angle, if this is a parameterised single-parameter gate.
    pub fn angle(&self) -> Option<f64> {
        match *self {
            Gate::RX(t)
            | Gate::RY(t)
            | Gate::RZ(t)
            | Gate::Phase(t)
            | Gate::CRZ(t)
            | Gate::CPhase(t) => Some(t),
            _ => None,
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Gate::RX(t) => write!(f, "rx({t:.4})"),
            Gate::RY(t) => write!(f, "ry({t:.4})"),
            Gate::RZ(t) => write!(f, "rz({t:.4})"),
            Gate::Phase(t) => write!(f, "p({t:.4})"),
            Gate::CRZ(t) => write!(f, "crz({t:.4})"),
            Gate::CPhase(t) => write!(f, "cp({t:.4})"),
            Gate::U(t, p, l) => write!(f, "u({t:.4},{p:.4},{l:.4})"),
            g => write!(f, "{}", g.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    const TOL: f64 = 1e-12;

    fn all_test_gates() -> Vec<Gate> {
        vec![
            Gate::I,
            Gate::H,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::SX,
            Gate::SXdg,
            Gate::RX(0.7),
            Gate::RY(-1.3),
            Gate::RZ(2.9),
            Gate::Phase(0.4),
            Gate::U(0.3, 1.1, -0.8),
            Gate::CX,
            Gate::CZ,
            Gate::CRZ(1.7),
            Gate::CPhase(-0.6),
            Gate::Swap,
            Gate::CCX,
            Gate::CSwap,
        ]
    }

    #[test]
    fn every_gate_is_unitary() {
        for g in all_test_gates() {
            assert!(g.matrix().is_unitary(TOL), "{g} is not unitary");
        }
    }

    #[test]
    fn inverse_matrices_are_daggers() {
        for g in all_test_gates() {
            let gi = g.inverse().matrix();
            let gd = g.matrix().dagger();
            assert!(gi.approx_eq(&gd, TOL), "{g} inverse mismatch");
        }
    }

    #[test]
    fn rx_matches_paper_definition() {
        let t = 0.95;
        let m = Gate::RX(t).matrix_1q();
        assert!(m[0][0].approx_eq(C64::from_real((t / 2.0).cos()), TOL));
        assert!(m[0][1].approx_eq(C64::new(0.0, -(t / 2.0).sin()), TOL));
        assert!(m[1][0].approx_eq(C64::new(0.0, -(t / 2.0).sin()), TOL));
        assert!(m[1][1].approx_eq(C64::from_real((t / 2.0).cos()), TOL));
    }

    #[test]
    fn ry_matches_paper_definition() {
        let t = 1.21;
        let m = Gate::RY(t).matrix_1q();
        assert!(m[0][1].approx_eq(C64::from_real(-(t / 2.0).sin()), TOL));
        assert!(m[1][0].approx_eq(C64::from_real((t / 2.0).sin()), TOL));
    }

    #[test]
    fn rz_matches_paper_definition() {
        let t = 0.33;
        let m = Gate::RZ(t).matrix_1q();
        assert!(m[0][0].approx_eq(C64::cis(-t / 2.0), TOL));
        assert!(m[1][1].approx_eq(C64::cis(t / 2.0), TOL));
        assert!(m[0][1].approx_eq(C64::ZERO, TOL));
    }

    #[test]
    fn cx_matches_paper_definition() {
        // Paper: CX = [[1,0,0,0],[0,1,0,0],[0,0,0,1],[0,0,1,0]]
        let m = Gate::CX.matrix();
        assert!(m[(0, 0)].approx_eq(C64::ONE, TOL));
        assert!(m[(1, 1)].approx_eq(C64::ONE, TOL));
        assert!(m[(2, 3)].approx_eq(C64::ONE, TOL));
        assert!(m[(3, 2)].approx_eq(C64::ONE, TOL));
        assert!(m[(2, 2)].approx_eq(C64::ZERO, TOL));
    }

    #[test]
    fn sx_squared_is_x() {
        let sx = Gate::SX.matrix();
        let x = Gate::X.matrix();
        assert!((&sx * &sx).approx_eq(&x, TOL));
    }

    #[test]
    fn s_squared_is_z_and_t_squared_is_s() {
        let s = Gate::S.matrix();
        assert!((&s * &s).approx_eq(&Gate::Z.matrix(), TOL));
        let t = Gate::T.matrix();
        assert!((&t * &t).approx_eq(&s, TOL));
    }

    #[test]
    fn hadamard_conjugates_x_to_z() {
        let h = Gate::H.matrix();
        let hxh = &(&h * &Gate::X.matrix()) * &h;
        assert!(hxh.approx_eq(&Gate::Z.matrix(), TOL));
    }

    #[test]
    fn rx_pi_is_x_up_to_phase() {
        assert!(Gate::RX(PI)
            .matrix()
            .approx_eq_up_to_phase(&Gate::X.matrix(), TOL));
    }

    #[test]
    fn rz_is_phase_up_to_global_phase() {
        let t = 1.1;
        assert!(Gate::RZ(t)
            .matrix()
            .approx_eq_up_to_phase(&Gate::Phase(t).matrix(), TOL));
    }

    #[test]
    fn u_gate_specialisations() {
        // U(θ, -π/2, π/2) = RX(θ)
        let t = 0.77;
        assert!(Gate::U(t, -FRAC_PI_2, FRAC_PI_2)
            .matrix()
            .approx_eq(&Gate::RX(t).matrix(), TOL));
        // U(θ, 0, 0) = RY(θ)
        assert!(Gate::U(t, 0.0, 0.0)
            .matrix()
            .approx_eq(&Gate::RY(t).matrix(), TOL));
        // U(π/2, 0, π) = H
        assert!(Gate::U(FRAC_PI_2, 0.0, PI)
            .matrix()
            .approx_eq(&Gate::H.matrix(), TOL));
    }

    #[test]
    fn u_inverse_round_trips() {
        let g = Gate::U(0.3, 1.1, -0.8);
        let prod = &g.matrix() * &g.inverse().matrix();
        assert!(prod.approx_eq(&CMatrix::identity(2), TOL));
    }

    #[test]
    fn swap_matrix_swaps_basis_states() {
        let m = Gate::Swap.matrix();
        // |01> (index 1) <-> |10> (index 2)
        assert!(m[(1, 2)].approx_eq(C64::ONE, TOL));
        assert!(m[(2, 1)].approx_eq(C64::ONE, TOL));
    }

    #[test]
    fn cswap_only_permutes_when_control_set() {
        let m = Gate::CSwap.matrix();
        // control=1 block: |101> <-> |110>
        assert!(m[(5, 6)].approx_eq(C64::ONE, TOL));
        assert!(m[(6, 5)].approx_eq(C64::ONE, TOL));
        // control=0 block untouched
        for k in 0..4 {
            assert!(m[(k, k)].approx_eq(C64::ONE, TOL));
        }
    }

    #[test]
    fn arity_and_names() {
        assert_eq!(Gate::H.num_qubits(), 1);
        assert_eq!(Gate::CX.num_qubits(), 2);
        assert_eq!(Gate::CSwap.num_qubits(), 3);
        assert_eq!(Gate::CSwap.name(), "cswap");
        assert_eq!(Gate::RX(1.0).name(), "rx");
    }

    #[test]
    fn diagonal_classification() {
        assert!(Gate::RZ(0.3).is_diagonal());
        assert!(Gate::CZ.is_diagonal());
        assert!(!Gate::RX(0.3).is_diagonal());
        assert!(!Gate::CX.is_diagonal());
    }

    #[test]
    fn angle_accessor() {
        assert_eq!(Gate::RX(0.5).angle(), Some(0.5));
        assert_eq!(Gate::H.angle(), None);
    }

    #[test]
    fn display_includes_parameters() {
        assert_eq!(Gate::RX(0.5).to_string(), "rx(0.5000)");
        assert_eq!(Gate::H.to_string(), "h");
    }
}
