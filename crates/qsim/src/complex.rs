//! Minimal complex-number arithmetic for statevector simulation.
//!
//! The sanctioned dependency set does not include `num-complex`, and the
//! subset of complex arithmetic a circuit simulator needs is small and hot,
//! so it is implemented here directly. The type is `Copy` and all operations
//! are `#[inline]` so that gate kernels vectorise well.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number `re + i·im`.
///
/// # Examples
///
/// ```
/// use qsim::complex::C64;
///
/// let a = C64::new(1.0, 2.0);
/// let b = C64::new(3.0, -1.0);
/// assert_eq!(a + b, C64::new(4.0, 1.0));
/// assert_eq!(a * C64::I, C64::new(-2.0, 1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r·e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        C64::new(r * theta.cos(), r * theta.sin())
    }

    /// Returns `e^{iθ}`, a unit-modulus phase factor.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        C64::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate `re − i·im`.
    #[inline]
    pub fn conj(self) -> Self {
        C64::new(self.re, -self.im)
    }

    /// Squared modulus `re² + im²`. This is the measurement probability of
    /// an amplitude, so it is the hottest scalar operation in the simulator.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `sqrt(re² + im²)`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        C64::new(self.re * k, self.im * k)
    }

    /// Complex exponential `e^{self}`.
    #[inline]
    pub fn exp(self) -> Self {
        C64::from_polar(self.re.exp(), self.im)
    }

    /// Multiplicative inverse. Returns NaN components when `self` is zero,
    /// mirroring `f64` division semantics.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        C64::new(self.re / d, -self.im / d)
    }

    /// Returns `true` when both parts are within `tol` of `other`'s.
    #[inline]
    pub fn approx_eq(self, other: C64, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }

    /// Returns `true` when either part is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// Returns `true` when both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl From<f64> for C64 {
    #[inline]
    fn from(re: f64) -> Self {
        C64::from_real(re)
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, rhs: C64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: f64) -> C64 {
        self.scale(rhs)
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        rhs.scale(self)
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w = z · w⁻¹ by definition
    fn div(self, rhs: C64) -> C64 {
        self * rhs.recip()
    }
}

impl Div<f64> for C64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: f64) -> C64 {
        C64::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn constructors_and_constants() {
        assert_eq!(C64::ZERO, C64::new(0.0, 0.0));
        assert_eq!(C64::ONE, C64::new(1.0, 0.0));
        assert_eq!(C64::I, C64::new(0.0, 1.0));
        assert_eq!(C64::from_real(2.5), C64::new(2.5, 0.0));
        assert_eq!(C64::from(3.0), C64::new(3.0, 0.0));
    }

    #[test]
    fn addition_and_subtraction() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(-0.5, 4.0);
        assert_eq!(a + b, C64::new(0.5, 6.0));
        assert_eq!(a - b, C64::new(1.5, -2.0));
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
        c -= b;
        assert!(c.approx_eq(a, TOL));
    }

    #[test]
    fn multiplication_matches_expansion() {
        let a = C64::new(2.0, 3.0);
        let b = C64::new(4.0, -5.0);
        // (2+3i)(4-5i) = 8 -10i +12i +15 = 23 + 2i
        assert_eq!(a * b, C64::new(23.0, 2.0));
        let mut c = a;
        c *= b;
        assert_eq!(c, a * b);
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(C64::I * C64::I, C64::new(-1.0, 0.0));
    }

    #[test]
    fn scalar_multiplication_commutes() {
        let a = C64::new(1.5, -2.5);
        assert_eq!(a * 2.0, 2.0 * a);
        assert_eq!(a * 2.0, C64::new(3.0, -5.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = C64::new(3.0, -7.0);
        let b = C64::new(0.5, 2.0);
        let q = a / b;
        assert!((q * b).approx_eq(a, 1e-10));
        assert!((a / 2.0).approx_eq(C64::new(1.5, -3.5), TOL));
    }

    #[test]
    fn conjugate_and_modulus() {
        let a = C64::new(3.0, 4.0);
        assert_eq!(a.conj(), C64::new(3.0, -4.0));
        assert!((a.norm_sqr() - 25.0).abs() < TOL);
        assert!((a.abs() - 5.0).abs() < TOL);
        // z * conj(z) is |z|^2 (a real number).
        let p = a * a.conj();
        assert!(p.approx_eq(C64::new(25.0, 0.0), TOL));
    }

    #[test]
    fn polar_round_trip() {
        let z = C64::from_polar(2.0, std::f64::consts::FRAC_PI_3);
        assert!((z.abs() - 2.0).abs() < TOL);
        assert!((z.arg() - std::f64::consts::FRAC_PI_3).abs() < TOL);
    }

    #[test]
    fn cis_is_unit_modulus() {
        for k in 0..16 {
            let theta = k as f64 * std::f64::consts::FRAC_PI_8;
            assert!((C64::cis(theta).abs() - 1.0).abs() < TOL);
        }
    }

    #[test]
    fn exp_of_imaginary_is_cis() {
        let theta = 1.2345;
        let z = C64::new(0.0, theta).exp();
        assert!(z.approx_eq(C64::cis(theta), TOL));
    }

    #[test]
    fn exp_of_real_matches_f64() {
        let z = C64::from_real(1.5).exp();
        assert!(z.approx_eq(C64::from_real(1.5f64.exp()), 1e-10));
    }

    #[test]
    fn recip_is_inverse() {
        let a = C64::new(2.0, -3.0);
        assert!((a * a.recip()).approx_eq(C64::ONE, TOL));
    }

    #[test]
    fn negation() {
        let a = C64::new(1.0, -2.0);
        assert_eq!(-a, C64::new(-1.0, 2.0));
        assert_eq!(a + (-a), C64::ZERO);
    }

    #[test]
    fn sum_over_iterator() {
        let total: C64 = (0..4).map(|k| C64::new(k as f64, 1.0)).sum();
        assert_eq!(total, C64::new(6.0, 4.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(C64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(C64::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn nan_and_finite_checks() {
        assert!(C64::new(f64::NAN, 0.0).is_nan());
        assert!(!C64::ONE.is_nan());
        assert!(C64::ONE.is_finite());
        assert!(!C64::new(f64::INFINITY, 0.0).is_finite());
    }
}
