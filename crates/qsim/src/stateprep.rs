//! Amplitude-encoding state preparation.
//!
//! Quorum amplitude-encodes each data sample (paper §IV-B). For a
//! non-negative real target vector this is a pure rotation-tree problem:
//! the Möttönen-style construction emits one uniformly-controlled RY
//! multiplexor per tree level, each decomposed recursively into plain RY
//! and CX gates. An `n`-qubit preparation uses `2^n − 1` RY rotations and
//! `2^{n+1} − 2n − 2` CX gates.
//!
//! The construction factors into a **sample-independent skeleton** and a
//! **per-sample angle vector**: the RY/CX tree of [`PrepSkeleton`] depends
//! only on the qubit count, while the data enter solely through the RY
//! rotation angles. No gate is ever pruned on an angle condition —
//! zero-angle rotations are emitted as `RY(0)` — so every sample of a
//! batch walks the *identical* gate sequence. That invariant is what lets
//! the noisy scoring engine evolve a whole batch of density matrices in
//! lockstep (one shared superoperator GEMM per skeleton position, with
//! only the cheap single-qubit RY conjugation varying per sample), and it
//! keeps per-gate noise accounting independent of the data.
//! [`prepare_real_amplitudes`] is the skeleton instantiated with one
//! sample's angles.

use crate::circuit::Circuit;
use crate::error::QsimError;

/// Builds a circuit over `num_qubits` qubits that maps `|0…0⟩` to
/// `Σ_i a_i |i⟩` for the given non-negative real amplitudes (length
/// `2^num_qubits`, automatically normalised).
///
/// # Errors
///
/// * [`QsimError::DimensionMismatch`] if `amplitudes.len() != 2^num_qubits`.
/// * [`QsimError::InvalidAmplitude`] on negative or non-finite entries.
/// * [`QsimError::NotNormalized`] if all amplitudes are zero.
///
/// # Examples
///
/// ```
/// use qsim::stateprep::prepare_real_amplitudes;
/// use qsim::statevector::Statevector;
/// use qsim::circuit::Operation;
///
/// let amps = [0.5, 0.5, 0.5, 0.5];
/// let circ = prepare_real_amplitudes(2, &amps).unwrap();
/// let mut sv = Statevector::new(2);
/// for instr in circ.instructions() {
///     if let Operation::Gate(g) = &instr.op {
///         sv.apply_gate(*g, &instr.qubits).unwrap();
///     }
/// }
/// assert!((sv.amplitude(3).re - 0.5).abs() < 1e-10);
/// ```
pub fn prepare_real_amplitudes(
    num_qubits: usize,
    amplitudes: &[f64],
) -> Result<Circuit, QsimError> {
    let skeleton = PrepSkeleton::new(num_qubits);
    let angles = skeleton.angles_for(amplitudes)?;
    Ok(skeleton.to_circuit(&angles))
}

/// One gate position of the sample-independent Möttönen skeleton.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrepStep {
    /// `RY(angles[angle_index])` on `target` — the only sample-dependent
    /// operation in the whole preparation.
    Ry {
        /// The rotated qubit.
        target: usize,
        /// Index into the skeleton's per-sample angle vector.
        angle_index: usize,
    },
    /// `CX(control, target)` — identical for every sample.
    Cx {
        /// The control qubit.
        control: usize,
        /// The target qubit.
        target: usize,
    },
}

/// The sample-independent gate skeleton of an `n`-qubit real-amplitude
/// preparation: the RY/CX tree of the recursive multiplexor decomposition
/// with **no angle-dependent pruning**. Gate positions are a function of
/// the qubit count alone; the per-sample data enter only through the
/// [`PrepSkeleton::angles_for`] vector consumed by the `angle_index` of
/// each [`PrepStep::Ry`].
///
/// # Examples
///
/// ```
/// use qsim::stateprep::PrepSkeleton;
///
/// let skeleton = PrepSkeleton::new(3);
/// assert_eq!(skeleton.num_angles(), 7); // 2^3 − 1 rotations
/// let a = skeleton.angles_for(&[1.0; 8]).unwrap();
/// let b = skeleton.angles_for(&[0.9, 0.1, 0.0, 0.4, 0.2, 0.2, 0.1, 0.3]).unwrap();
/// assert_eq!(a.len(), b.len()); // same positions, different angles
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrepSkeleton {
    num_qubits: usize,
    steps: Vec<PrepStep>,
    num_angles: usize,
}

impl PrepSkeleton {
    /// Builds the skeleton for `num_qubits` qubits: level `k` splits on
    /// qubit `n − 1 − k`, controlled by the `k` more significant qubits,
    /// and each multiplexor unrolls recursively into `2^k` RY rotations
    /// interleaved with CX gates — every position emitted unconditionally.
    pub fn new(num_qubits: usize) -> Self {
        let mut steps = Vec::new();
        let mut num_angles = 0usize;
        for k in 0..num_qubits {
            let target = num_qubits - 1 - k;
            // Controls in LSB-first pattern order: pattern bit j
            // corresponds to qubit (target+1+j).
            let controls: Vec<usize> = (0..k).map(|j| target + 1 + j).collect();
            Self::emit_ucry_skeleton(&mut steps, &mut num_angles, 1usize << k, &controls, target);
        }
        PrepSkeleton {
            num_qubits,
            steps,
            num_angles,
        }
    }

    /// The recursive multiplexor skeleton: a k-control multiplexor is two
    /// (k−1)-control multiplexors sandwiched between CX gates — emitted
    /// for every pattern count, with no degenerate-angle collapse.
    fn emit_ucry_skeleton(
        steps: &mut Vec<PrepStep>,
        next_angle: &mut usize,
        patterns: usize,
        controls: &[usize],
        target: usize,
    ) {
        debug_assert_eq!(patterns, 1 << controls.len());
        if controls.is_empty() {
            steps.push(PrepStep::Ry {
                target,
                angle_index: *next_angle,
            });
            *next_angle += 1;
            return;
        }
        let k = controls.len();
        let msb_control = controls[k - 1];
        let inner = &controls[..k - 1];
        Self::emit_ucry_skeleton(steps, next_angle, patterns / 2, inner, target);
        steps.push(PrepStep::Cx {
            control: msb_control,
            target,
        });
        Self::emit_ucry_skeleton(steps, next_angle, patterns / 2, inner, target);
        steps.push(PrepStep::Cx {
            control: msb_control,
            target,
        });
    }

    /// The register width the skeleton prepares.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The gate positions, in emission order.
    pub fn steps(&self) -> &[PrepStep] {
        &self.steps
    }

    /// The length of every per-sample angle vector: `2^n − 1`.
    pub fn num_angles(&self) -> usize {
        self.num_angles
    }

    /// Computes one sample's angle vector, in the skeleton's
    /// `angle_index` order, into a caller-owned buffer (cleared first) —
    /// the allocation-light form batch packers use.
    ///
    /// # Errors
    ///
    /// * [`QsimError::DimensionMismatch`] if
    ///   `amplitudes.len() != 2^num_qubits`.
    /// * [`QsimError::InvalidAmplitude`] on negative or non-finite entries.
    /// * [`QsimError::NotNormalized`] if all amplitudes are zero.
    pub fn angles_for_into(&self, amplitudes: &[f64], out: &mut Vec<f64>) -> Result<(), QsimError> {
        let dim = 1usize << self.num_qubits;
        if amplitudes.len() != dim {
            return Err(QsimError::DimensionMismatch {
                expected: dim,
                actual: amplitudes.len(),
            });
        }
        for (i, &a) in amplitudes.iter().enumerate() {
            if !a.is_finite() || a < 0.0 {
                return Err(QsimError::InvalidAmplitude { index: i });
            }
        }
        let norm_sqr: f64 = amplitudes.iter().map(|a| a * a).sum();
        if norm_sqr <= 0.0 {
            return Err(QsimError::NotNormalized { norm_sqr });
        }

        // probs[i] = normalised probability of basis state i.
        let probs: Vec<f64> = amplitudes.iter().map(|a| a * a / norm_sqr).collect();

        out.clear();
        out.reserve(self.num_angles);
        for k in 0..self.num_qubits {
            let num_patterns = 1usize << k;
            let mut raw = vec![0.0f64; num_patterns];
            for (s, angle) in raw.iter_mut().enumerate() {
                // P(prefix s, next bit b) summed over the remaining low
                // bits.
                let mut p0 = 0.0;
                let mut p1 = 0.0;
                let low_bits = self.num_qubits - 1 - k;
                for rest in 0..(1usize << low_bits) {
                    let base = (s << (low_bits + 1)) | rest;
                    p0 += probs[base];
                    p1 += probs[base | (1 << low_bits)];
                }
                *angle = 2.0 * p1.sqrt().atan2(p0.sqrt());
            }
            Self::resolve_ucry_angles(&raw, out);
        }
        debug_assert_eq!(out.len(), self.num_angles);
        Ok(())
    }

    /// [`PrepSkeleton::angles_for_into`] returning a fresh vector.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PrepSkeleton::angles_for_into`].
    pub fn angles_for(&self, amplitudes: &[f64]) -> Result<Vec<f64>, QsimError> {
        let mut out = Vec::new();
        self.angles_for_into(amplitudes, &mut out)?;
        Ok(out)
    }

    /// Resolves one multiplexor's raw pattern angles into the rotation
    /// angles actually emitted, in [`PrepSkeleton::emit_ucry_skeleton`]'s
    /// beta-first depth-first order: a k-control multiplexor splits into
    /// the half-sum (`beta`) and half-difference (`gamma`) multiplexors
    /// that play between its CX gates.
    fn resolve_ucry_angles(raw: &[f64], out: &mut Vec<f64>) {
        if raw.len() == 1 {
            out.push(raw[0]);
            return;
        }
        let half = raw.len() / 2;
        let mut beta = Vec::with_capacity(half);
        let mut gamma = Vec::with_capacity(half);
        for j in 0..half {
            beta.push((raw[j] + raw[j + half]) / 2.0);
            gamma.push((raw[j] - raw[j + half]) / 2.0);
        }
        Self::resolve_ucry_angles(&beta, out);
        Self::resolve_ucry_angles(&gamma, out);
    }

    /// Instantiates the skeleton with one sample's angle vector. Every
    /// position is emitted — including exact `RY(0)` rotations — so the
    /// returned circuit's gate sequence is identical across samples.
    ///
    /// # Panics
    ///
    /// Panics if `angles.len() != self.num_angles()`.
    pub fn to_circuit(&self, angles: &[f64]) -> Circuit {
        assert_eq!(
            angles.len(),
            self.num_angles,
            "angle vector must match the skeleton"
        );
        let mut circ = Circuit::new(self.num_qubits);
        for step in &self.steps {
            match *step {
                PrepStep::Ry {
                    target,
                    angle_index,
                } => {
                    circ.ry(angles[angle_index], target);
                }
                PrepStep::Cx { control, target } => {
                    circ.cx(control, target);
                }
            }
        }
        circ
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Operation;
    use crate::statevector::Statevector;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn run(circ: &Circuit) -> Statevector {
        let mut sv = Statevector::new(circ.num_qubits());
        for instr in circ.instructions() {
            if let Operation::Gate(g) = &instr.op {
                sv.apply_gate(*g, &instr.qubits).unwrap();
            }
        }
        sv
    }

    fn assert_prepares(num_qubits: usize, amps: &[f64]) {
        let circ = prepare_real_amplitudes(num_qubits, amps).unwrap();
        let sv = run(&circ);
        let norm: f64 = amps.iter().map(|a| a * a).sum::<f64>().sqrt();
        for (i, &a) in amps.iter().enumerate() {
            let expected = a / norm;
            let got = sv.amplitude(i);
            assert!(
                (got.re - expected).abs() < 1e-10 && got.im.abs() < 1e-10,
                "index {i}: expected {expected}, got {got} (n={num_qubits})"
            );
        }
    }

    #[test]
    fn prepares_basis_states() {
        for i in 0..8 {
            let mut amps = [0.0; 8];
            amps[i] = 1.0;
            assert_prepares(3, &amps);
        }
    }

    #[test]
    fn prepares_uniform_superposition() {
        assert_prepares(2, &[0.5; 4]);
        assert_prepares(3, &[1.0; 8]);
    }

    #[test]
    fn prepares_bell_like_state() {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert_prepares(2, &[s, 0.0, 0.0, s]);
    }

    #[test]
    fn prepares_random_vectors() {
        let mut rng = StdRng::seed_from_u64(17);
        for n in 1..=5usize {
            for _ in 0..10 {
                let amps: Vec<f64> = (0..(1 << n)).map(|_| rng.gen::<f64>()).collect();
                assert_prepares(n, &amps);
            }
        }
    }

    #[test]
    fn prepares_sparse_vectors() {
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..10 {
            let mut amps: Vec<f64> = vec![0.0; 16];
            for _ in 0..3 {
                let idx: usize = rng.gen_range(0..16);
                amps[idx] = rng.gen::<f64>() + 0.01;
            }
            assert_prepares(4, &amps);
        }
    }

    #[test]
    fn normalises_unnormalised_input() {
        let circ = prepare_real_amplitudes(1, &[3.0, 4.0]).unwrap();
        let sv = run(&circ);
        assert!((sv.amplitude(0).re - 0.6).abs() < 1e-10);
        assert!((sv.amplitude(1).re - 0.8).abs() < 1e-10);
    }

    #[test]
    fn gate_count_is_fixed_by_the_skeleton() {
        // Exactly 2^n − 1 RY rotations and 2^{n+1} − 2n − 2 CX gates —
        // never fewer: degenerate angles emit RY(0) instead of pruning, so
        // the gate sequence is sample-independent.
        let count = |circ: &Circuit, name: &str| {
            circ.count_ops()
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, c)| *c)
                .unwrap_or(0)
        };
        for n in 1..=4usize {
            let amps: Vec<f64> = (1..=(1 << n)).map(|x| x as f64).collect();
            let circ = prepare_real_amplitudes(n, &amps).unwrap();
            assert_eq!(count(&circ, "ry"), (1 << n) - 1, "n={n}");
            assert_eq!(count(&circ, "cx"), (2 << n) - 2 * n - 2, "n={n}");
            // A fully degenerate input (basis state) keeps the same shape.
            let mut basis = vec![0.0; 1 << n];
            basis[0] = 1.0;
            let degenerate = prepare_real_amplitudes(n, &basis).unwrap();
            assert_eq!(count(&degenerate, "ry"), (1 << n) - 1, "n={n}");
            assert_eq!(count(&degenerate, "cx"), (2 << n) - 2 * n - 2, "n={n}");
        }
    }

    /// The skeleton-stability pin: gate positions (op kind and operand
    /// qubits, in order) are identical across random angle vectors — only
    /// the RY angles differ.
    #[test]
    fn skeleton_positions_are_identical_across_random_angle_vectors() {
        let mut rng = StdRng::seed_from_u64(41);
        for n in 1..=4usize {
            let skeleton = PrepSkeleton::new(n);
            assert_eq!(skeleton.num_angles(), (1 << n) - 1);
            let reference: Vec<(String, Vec<usize>)> =
                prepare_real_amplitudes(n, &vec![1.0; 1 << n])
                    .unwrap()
                    .instructions()
                    .iter()
                    .map(|instr| (format!("{:?}", instr.op), instr.qubits.clone()))
                    .collect();
            for _ in 0..16 {
                let amps: Vec<f64> = (0..(1 << n))
                    .map(|_| {
                        // Mix in hard zeros so degenerate multiplexors are
                        // exercised — the pruning trap this test pins shut.
                        if rng.gen::<f64>() < 0.4 {
                            0.0
                        } else {
                            rng.gen::<f64>()
                        }
                    })
                    .collect();
                if amps.iter().all(|&a| a == 0.0) {
                    continue;
                }
                let circ = prepare_real_amplitudes(n, &amps).unwrap();
                let shape: Vec<(String, Vec<usize>)> = circ
                    .instructions()
                    .iter()
                    .map(|instr| (format!("{:?}", instr.op), instr.qubits.clone()))
                    .collect();
                assert_eq!(shape.len(), reference.len(), "n={n}");
                for (got, want) in shape.iter().zip(&reference) {
                    // RY angles differ by design; positions must not.
                    let gate_kind = |s: &str| s.split('(').next().unwrap().to_string();
                    assert_eq!(gate_kind(&got.0), gate_kind(&want.0), "n={n}");
                    assert_eq!(got.1, want.1, "n={n}");
                }
            }
        }
    }

    #[test]
    fn skeleton_circuit_round_trips_through_angles() {
        let mut rng = StdRng::seed_from_u64(57);
        for n in 1..=4usize {
            let skeleton = PrepSkeleton::new(n);
            let amps: Vec<f64> = (0..(1 << n)).map(|_| rng.gen::<f64>() + 0.01).collect();
            let angles = skeleton.angles_for(&amps).unwrap();
            assert_eq!(angles.len(), skeleton.num_angles());
            let direct = prepare_real_amplitudes(n, &amps).unwrap();
            let via_skeleton = skeleton.to_circuit(&angles);
            assert_eq!(direct.len(), via_skeleton.len());
            // And the instantiated skeleton still prepares the state.
            let sv = run(&via_skeleton);
            let norm: f64 = amps.iter().map(|a| a * a).sum::<f64>().sqrt();
            for (i, &a) in amps.iter().enumerate() {
                assert!((sv.amplitude(i).re - a / norm).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn skeleton_validates_like_prepare() {
        let skeleton = PrepSkeleton::new(2);
        assert!(matches!(
            skeleton.angles_for(&[1.0, 0.0]),
            Err(QsimError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            skeleton.angles_for(&[1.0, -0.5, 0.0, 0.0]),
            Err(QsimError::InvalidAmplitude { index: 1 })
        ));
        assert!(matches!(
            skeleton.angles_for(&[0.0; 4]),
            Err(QsimError::NotNormalized { .. })
        ));
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(matches!(
            prepare_real_amplitudes(2, &[1.0, 0.0]),
            Err(QsimError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            prepare_real_amplitudes(1, &[1.0, -0.5]),
            Err(QsimError::InvalidAmplitude { index: 1 })
        ));
        assert!(matches!(
            prepare_real_amplitudes(1, &[0.0, 0.0]),
            Err(QsimError::NotNormalized { .. })
        ));
        assert!(matches!(
            prepare_real_amplitudes(1, &[f64::NAN, 1.0]),
            Err(QsimError::InvalidAmplitude { index: 0 })
        ));
    }

    #[test]
    fn zero_qubit_edge_case() {
        // A single amplitude over zero qubits: the empty circuit.
        let circ = prepare_real_amplitudes(0, &[1.0]).unwrap();
        assert!(circ.is_empty());
    }
}
