//! Amplitude-encoding state preparation.
//!
//! Quorum amplitude-encodes each data sample (paper §IV-B). For a
//! non-negative real target vector this is a pure rotation-tree problem:
//! the Möttönen-style construction emits one uniformly-controlled RY
//! multiplexor per tree level, each decomposed recursively into plain RY
//! and CX gates. An `n`-qubit preparation uses `2^n − 1` RY rotations and
//! `2^n − n − 1` CX gates.

use crate::circuit::Circuit;
use crate::error::QsimError;

/// Builds a circuit over `num_qubits` qubits that maps `|0…0⟩` to
/// `Σ_i a_i |i⟩` for the given non-negative real amplitudes (length
/// `2^num_qubits`, automatically normalised).
///
/// # Errors
///
/// * [`QsimError::DimensionMismatch`] if `amplitudes.len() != 2^num_qubits`.
/// * [`QsimError::InvalidAmplitude`] on negative or non-finite entries.
/// * [`QsimError::NotNormalized`] if all amplitudes are zero.
///
/// # Examples
///
/// ```
/// use qsim::stateprep::prepare_real_amplitudes;
/// use qsim::statevector::Statevector;
/// use qsim::circuit::Operation;
///
/// let amps = [0.5, 0.5, 0.5, 0.5];
/// let circ = prepare_real_amplitudes(2, &amps).unwrap();
/// let mut sv = Statevector::new(2);
/// for instr in circ.instructions() {
///     if let Operation::Gate(g) = &instr.op {
///         sv.apply_gate(*g, &instr.qubits).unwrap();
///     }
/// }
/// assert!((sv.amplitude(3).re - 0.5).abs() < 1e-10);
/// ```
pub fn prepare_real_amplitudes(
    num_qubits: usize,
    amplitudes: &[f64],
) -> Result<Circuit, QsimError> {
    let dim = 1usize << num_qubits;
    if amplitudes.len() != dim {
        return Err(QsimError::DimensionMismatch {
            expected: dim,
            actual: amplitudes.len(),
        });
    }
    for (i, &a) in amplitudes.iter().enumerate() {
        if !a.is_finite() || a < 0.0 {
            return Err(QsimError::InvalidAmplitude { index: i });
        }
    }
    let norm_sqr: f64 = amplitudes.iter().map(|a| a * a).sum();
    if norm_sqr <= 0.0 {
        return Err(QsimError::NotNormalized { norm_sqr });
    }

    // probs[i] = normalised probability of basis state i.
    let probs: Vec<f64> = amplitudes.iter().map(|a| a * a / norm_sqr).collect();

    let mut circ = Circuit::new(num_qubits);
    // Level k splits on qubit (num_qubits-1-k), controlled by the k more
    // significant qubits.
    for k in 0..num_qubits {
        let target = num_qubits - 1 - k;
        let num_patterns = 1usize << k;
        let mut angles = vec![0.0f64; num_patterns];
        for (s, angle) in angles.iter_mut().enumerate() {
            // P(prefix s, next bit b) summed over the remaining low bits.
            let mut p0 = 0.0;
            let mut p1 = 0.0;
            let low_bits = num_qubits - 1 - k;
            for rest in 0..(1usize << low_bits) {
                let base = (s << (low_bits + 1)) | rest;
                p0 += probs[base];
                p1 += probs[base | (1 << low_bits)];
            }
            *angle = 2.0 * p1.sqrt().atan2(p0.sqrt());
        }
        // Controls in LSB-first pattern order: pattern bit j corresponds to
        // qubit (target+1+j).
        let controls: Vec<usize> = (0..k).map(|j| target + 1 + j).collect();
        emit_ucry(&mut circ, &angles, &controls, target);
    }
    Ok(circ)
}

/// Emits a uniformly-controlled RY multiplexor: applies `RY(angles[s])` to
/// `target` when the control register (LSB-first over `controls`) reads
/// `s`. Decomposed recursively: a k-control multiplexor becomes two
/// (k−1)-control multiplexors sandwiched between CX gates.
fn emit_ucry(circ: &mut Circuit, angles: &[f64], controls: &[usize], target: usize) {
    debug_assert_eq!(angles.len(), 1 << controls.len());
    if controls.is_empty() {
        if angles[0].abs() > 1e-14 {
            circ.ry(angles[0], target);
        }
        return;
    }
    let k = controls.len();
    let half = 1usize << (k - 1);
    let msb_control = controls[k - 1];
    let inner = &controls[..k - 1];
    // beta plays when the MSB control is 0/1-mixed; see module docs.
    let mut beta = Vec::with_capacity(half);
    let mut gamma = Vec::with_capacity(half);
    for j in 0..half {
        beta.push((angles[j] + angles[j + half]) / 2.0);
        gamma.push((angles[j] - angles[j + half]) / 2.0);
    }
    // Skip the CX pair entirely when the two halves agree (gamma == 0):
    // the multiplexor degenerates to the unconditional half.
    if gamma.iter().all(|g| g.abs() < 1e-14) {
        emit_ucry(circ, &beta, inner, target);
        return;
    }
    emit_ucry(circ, &beta, inner, target);
    circ.cx(msb_control, target);
    emit_ucry(circ, &gamma, inner, target);
    circ.cx(msb_control, target);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Operation;
    use crate::statevector::Statevector;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn run(circ: &Circuit) -> Statevector {
        let mut sv = Statevector::new(circ.num_qubits());
        for instr in circ.instructions() {
            if let Operation::Gate(g) = &instr.op {
                sv.apply_gate(*g, &instr.qubits).unwrap();
            }
        }
        sv
    }

    fn assert_prepares(num_qubits: usize, amps: &[f64]) {
        let circ = prepare_real_amplitudes(num_qubits, amps).unwrap();
        let sv = run(&circ);
        let norm: f64 = amps.iter().map(|a| a * a).sum::<f64>().sqrt();
        for (i, &a) in amps.iter().enumerate() {
            let expected = a / norm;
            let got = sv.amplitude(i);
            assert!(
                (got.re - expected).abs() < 1e-10 && got.im.abs() < 1e-10,
                "index {i}: expected {expected}, got {got} (n={num_qubits})"
            );
        }
    }

    #[test]
    fn prepares_basis_states() {
        for i in 0..8 {
            let mut amps = [0.0; 8];
            amps[i] = 1.0;
            assert_prepares(3, &amps);
        }
    }

    #[test]
    fn prepares_uniform_superposition() {
        assert_prepares(2, &[0.5; 4]);
        assert_prepares(3, &[1.0; 8]);
    }

    #[test]
    fn prepares_bell_like_state() {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert_prepares(2, &[s, 0.0, 0.0, s]);
    }

    #[test]
    fn prepares_random_vectors() {
        let mut rng = StdRng::seed_from_u64(17);
        for n in 1..=5usize {
            for _ in 0..10 {
                let amps: Vec<f64> = (0..(1 << n)).map(|_| rng.gen::<f64>()).collect();
                assert_prepares(n, &amps);
            }
        }
    }

    #[test]
    fn prepares_sparse_vectors() {
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..10 {
            let mut amps: Vec<f64> = vec![0.0; 16];
            for _ in 0..3 {
                let idx: usize = rng.gen_range(0..16);
                amps[idx] = rng.gen::<f64>() + 0.01;
            }
            assert_prepares(4, &amps);
        }
    }

    #[test]
    fn normalises_unnormalised_input() {
        let circ = prepare_real_amplitudes(1, &[3.0, 4.0]).unwrap();
        let sv = run(&circ);
        assert!((sv.amplitude(0).re - 0.6).abs() < 1e-10);
        assert!((sv.amplitude(1).re - 0.8).abs() < 1e-10);
    }

    #[test]
    fn gate_count_is_bounded() {
        // 2^n − 1 RY rotations and at most 2^n − n − 1 CX (fewer when
        // angles degenerate).
        let amps: Vec<f64> = (1..=8).map(|x| x as f64).collect();
        let circ = prepare_real_amplitudes(3, &amps).unwrap();
        let ry = circ
            .count_ops()
            .iter()
            .find(|(n, _)| n == "ry")
            .map(|(_, c)| *c)
            .unwrap_or(0);
        let cx = circ
            .count_ops()
            .iter()
            .find(|(n, _)| n == "cx")
            .map(|(_, c)| *c)
            .unwrap_or(0);
        assert!(ry <= 7, "ry count {ry}");
        assert!(cx <= 8, "cx count {cx}");
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(matches!(
            prepare_real_amplitudes(2, &[1.0, 0.0]),
            Err(QsimError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            prepare_real_amplitudes(1, &[1.0, -0.5]),
            Err(QsimError::InvalidAmplitude { index: 1 })
        ));
        assert!(matches!(
            prepare_real_amplitudes(1, &[0.0, 0.0]),
            Err(QsimError::NotNormalized { .. })
        ));
        assert!(matches!(
            prepare_real_amplitudes(1, &[f64::NAN, 1.0]),
            Err(QsimError::InvalidAmplitude { index: 0 })
        ));
    }

    #[test]
    fn zero_qubit_edge_case() {
        // A single amplitude over zero qubits: the empty circuit.
        let circ = prepare_real_amplitudes(0, &[1.0]).unwrap();
        assert!(circ.is_empty());
    }
}
