//! Circuit lowering passes.
//!
//! Real hardware executes a small native gate set; error accumulates per
//! *physical* gate. To make the noisy simulation faithful, circuits are
//! lowered before noise is applied:
//!
//! 1. [`decompose_multiqubit`] — CSWAP/CCX/SWAP/CZ/CRZ/CPhase into
//!    `{CX, 1-qubit}` gates,
//! 2. [`lower_1q_to_basis`] — every single-qubit gate into the IBM native
//!    set `{RZ, SX, X}` via ZYZ Euler angles and the ZSXZSXZ identity,
//! 3. [`cancel_adjacent_inverses`] — a peephole cleanup pass.
//!
//! All passes preserve the circuit's unitary action up to global phase
//! (verified by property tests).

use crate::circuit::{Circuit, Instruction, Operation};
use crate::complex::C64;
use crate::gate::Gate;
use std::f64::consts::PI;

/// Decomposes every gate acting on 3 qubits, plus SWAP/CZ/CRZ/CPhase, into
/// CX and single-qubit gates. The output contains only 1-qubit gates, CX,
/// resets, measures and barriers.
pub fn decompose_multiqubit(circ: &Circuit) -> Circuit {
    let mut out = Circuit::with_clbits(circ.num_qubits(), circ.num_clbits());
    for instr in circ.instructions() {
        match &instr.op {
            Operation::Gate(g) => emit_decomposed(&mut out, *g, &instr.qubits),
            _ => {
                out.push(instr.clone()).expect("same width");
            }
        }
    }
    out
}

fn emit_decomposed(out: &mut Circuit, gate: Gate, q: &[usize]) {
    match gate {
        Gate::Swap => {
            out.cx(q[0], q[1]).cx(q[1], q[0]).cx(q[0], q[1]);
        }
        Gate::CZ => {
            out.h(q[1]).cx(q[0], q[1]).h(q[1]);
        }
        Gate::CRZ(t) => {
            out.rz(t / 2.0, q[1])
                .cx(q[0], q[1])
                .rz(-t / 2.0, q[1])
                .cx(q[0], q[1]);
        }
        Gate::CPhase(t) => {
            out.p(t / 2.0, q[0])
                .cx(q[0], q[1])
                .p(-t / 2.0, q[1])
                .cx(q[0], q[1])
                .p(t / 2.0, q[1]);
        }
        Gate::CCX => emit_toffoli(out, q[0], q[1], q[2]),
        Gate::CSwap => {
            // CSWAP(c, a, b) = CX(b,a) · CCX(c,a,b) · CX(b,a)
            out.cx(q[2], q[1]);
            emit_toffoli(out, q[0], q[1], q[2]);
            out.cx(q[2], q[1]);
        }
        g => {
            out.push(Instruction::gate(g, q.to_vec()))
                .expect("validated upstream");
        }
    }
}

/// The textbook 6-CX Toffoli decomposition (Nielsen & Chuang Fig. 4.9).
fn emit_toffoli(out: &mut Circuit, a: usize, b: usize, c: usize) {
    out.h(c)
        .cx(b, c)
        .tdg(c)
        .cx(a, c)
        .t(c)
        .cx(b, c)
        .tdg(c)
        .cx(a, c)
        .t(b)
        .t(c)
        .h(c)
        .cx(a, b)
        .t(a)
        .tdg(b)
        .cx(a, b);
}

/// Extracts ZYZ Euler angles `(θ, φ, λ)` such that the gate equals
/// `U(θ, φ, λ)` up to global phase.
fn zyz_angles(m: &[[C64; 2]; 2]) -> (f64, f64, f64) {
    let a00 = m[0][0].abs();
    let a10 = m[1][0].abs();
    let theta = 2.0 * a10.atan2(a00);
    const EPS: f64 = 1e-12;
    if a10 <= EPS {
        // Diagonal: U = diag(u00, u11) ≅ RZ(arg(u11) − arg(u00)).
        let lam = m[1][1].arg() - m[0][0].arg();
        (0.0, 0.0, lam)
    } else if a00 <= EPS {
        // Anti-diagonal: U ≅ [[0, −e^{iλ}], [e^{iφ}, 0]] with λ = 0.
        let phi = m[1][0].arg() - (-m[0][1]).arg();
        (PI, phi, 0.0)
    } else {
        let phi = m[1][0].arg() - m[0][0].arg();
        let lam = (-m[0][1]).arg() - m[0][0].arg();
        (theta, phi, lam)
    }
}

/// Lowers every single-qubit gate to the IBM native basis `{RZ, SX, X}`
/// using `U(θ,φ,λ) ≅ RZ(φ+π)·SX·RZ(θ+π)·SX·RZ(λ)`. Multi-qubit gates other
/// than CX are passed through unchanged — run [`decompose_multiqubit`]
/// first.
pub fn lower_1q_to_basis(circ: &Circuit) -> Circuit {
    let mut out = Circuit::with_clbits(circ.num_qubits(), circ.num_clbits());
    for instr in circ.instructions() {
        match &instr.op {
            Operation::Gate(g) if g.num_qubits() == 1 => {
                let q = instr.qubits[0];
                match g {
                    Gate::I => {}
                    Gate::X => {
                        out.x(q);
                    }
                    Gate::SX => {
                        out.sx(q);
                    }
                    Gate::RZ(t) => {
                        out.rz(*t, q);
                    }
                    // Phase-like gates are RZ up to global phase.
                    Gate::Z => {
                        out.rz(PI, q);
                    }
                    Gate::S => {
                        out.rz(PI / 2.0, q);
                    }
                    Gate::Sdg => {
                        out.rz(-PI / 2.0, q);
                    }
                    Gate::T => {
                        out.rz(PI / 4.0, q);
                    }
                    Gate::Tdg => {
                        out.rz(-PI / 4.0, q);
                    }
                    Gate::Phase(t) => {
                        out.rz(*t, q);
                    }
                    g => {
                        let (theta, phi, lam) = zyz_angles(&g.matrix_1q());
                        emit_zsx(&mut out, q, theta, phi, lam);
                    }
                }
            }
            _ => {
                out.push(instr.clone()).expect("same width");
            }
        }
    }
    out
}

/// Emits `U(θ,φ,λ)` in the ZSXZSXZ form, skipping degenerate stages.
fn emit_zsx(out: &mut Circuit, q: usize, theta: f64, phi: f64, lam: f64) {
    if norm_angle(theta) == 0.0 {
        let total = norm_angle(phi + lam);
        if total != 0.0 {
            out.rz(total, q);
        }
        return;
    }
    maybe_rz(out, q, lam);
    out.sx(q);
    maybe_rz(out, q, theta + PI);
    out.sx(q);
    maybe_rz(out, q, phi + PI);
}

fn maybe_rz(out: &mut Circuit, q: usize, angle: f64) {
    let a = norm_angle(angle);
    if a != 0.0 {
        out.rz(a, q);
    }
}

/// Normalises an angle into `(−π, π]`, mapping values within 1e-12 of 0
/// (mod 2π) to exactly 0.
fn norm_angle(a: f64) -> f64 {
    let two_pi = 2.0 * PI;
    let mut x = a % two_pi;
    if x > PI {
        x -= two_pi;
    } else if x <= -PI {
        x += two_pi;
    }
    if x.abs() < 1e-12 {
        0.0
    } else {
        x
    }
}

/// Full lowering pipeline: multi-qubit decomposition, native 1-qubit basis,
/// then peephole cleanup.
pub fn to_native(circ: &Circuit) -> Circuit {
    cancel_adjacent_inverses(&lower_1q_to_basis(&decompose_multiqubit(circ)))
}

/// Peephole pass: merges adjacent RZ rotations on the same qubit, removes
/// zero-angle rotations, and cancels adjacent self-inverse gate pairs
/// (X·X, H·H, CX·CX, SX·SX† pairs are not merged — only exact repeats of
/// self-inverse gates). Resets, measures and barriers block cancellation
/// across them.
pub fn cancel_adjacent_inverses(circ: &Circuit) -> Circuit {
    let mut pending: Vec<Instruction> = Vec::new();
    for instr in circ.instructions() {
        match &instr.op {
            Operation::Gate(g) => {
                // Try to merge/cancel against the most recent instruction
                // touching exactly the same qubits with nothing in between
                // on those qubits.
                if let Some(prev_idx) = last_touching(&pending, &instr.qubits) {
                    let prev = pending[prev_idx].clone();
                    if prev.qubits == instr.qubits {
                        if let Operation::Gate(pg) = prev.op {
                            // Exact self-inverse pair cancels.
                            if pg == *g && is_self_inverse(pg) {
                                pending.remove(prev_idx);
                                continue;
                            }
                            // Explicit inverse pair cancels.
                            if pg.inverse() == *g && pg.angle().is_some() {
                                pending.remove(prev_idx);
                                continue;
                            }
                            // Adjacent RZ merge.
                            if let (Gate::RZ(a), Gate::RZ(b)) = (pg, *g) {
                                let merged = norm_angle(a + b);
                                pending.remove(prev_idx);
                                if merged != 0.0 {
                                    pending.push(Instruction::gate(
                                        Gate::RZ(merged),
                                        instr.qubits.clone(),
                                    ));
                                }
                                continue;
                            }
                        }
                    }
                }
                // Drop zero-angle rotations outright.
                if let Some(a) = g.angle() {
                    if norm_angle(a) == 0.0 && !matches!(g, Gate::CPhase(_) | Gate::CRZ(_)) {
                        continue;
                    }
                }
                pending.push(instr.clone());
            }
            _ => pending.push(instr.clone()),
        }
    }
    let mut out = Circuit::with_clbits(circ.num_qubits(), circ.num_clbits());
    for instr in pending {
        out.push(instr).expect("same width");
    }
    out
}

/// Finds the index of the latest pending instruction whose qubit set
/// intersects `qubits`, returning `None` when that instruction is a
/// non-gate (which must not be cancelled across).
fn last_touching(pending: &[Instruction], qubits: &[usize]) -> Option<usize> {
    for (idx, instr) in pending.iter().enumerate().rev() {
        if instr.qubits.iter().any(|q| qubits.contains(q)) {
            return match instr.op {
                Operation::Gate(_) => Some(idx),
                _ => None,
            };
        }
    }
    None
}

fn is_self_inverse(g: Gate) -> bool {
    matches!(
        g,
        Gate::H
            | Gate::X
            | Gate::Y
            | Gate::Z
            | Gate::CX
            | Gate::CZ
            | Gate::Swap
            | Gate::CCX
            | Gate::CSwap
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statevector::Statevector;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Runs both circuits on a batch of random states and checks the final
    /// states agree up to a single global phase per circuit pair.
    fn assert_equivalent_up_to_phase(a: &Circuit, b: &Circuit, n: usize) {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..8 {
            let mut raw: Vec<C64> = (0..(1 << n))
                .map(|_| C64::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
                .collect();
            let norm: f64 = raw.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
            for z in &mut raw {
                *z = z.scale(1.0 / norm);
            }
            let mut sa = Statevector::from_amplitudes(raw.clone()).unwrap();
            let mut sb = Statevector::from_amplitudes(raw).unwrap();
            for instr in a.instructions() {
                if let Operation::Gate(g) = &instr.op {
                    sa.apply_gate(*g, &instr.qubits).unwrap();
                }
            }
            for instr in b.instructions() {
                if let Operation::Gate(g) = &instr.op {
                    sb.apply_gate(*g, &instr.qubits).unwrap();
                }
            }
            let fidelity = sa.fidelity(&sb).unwrap();
            assert!(
                (fidelity - 1.0).abs() < 1e-9,
                "circuits differ: fidelity {fidelity}"
            );
        }
    }

    #[test]
    fn multiqubit_lowering_preserves_the_prep_skeleton() {
        // The noisy engines charge per-gate error on the lowered circuit,
        // and the lockstep batched prep walks the skeleton directly — the
        // two agree only because `decompose_multiqubit` is the identity on
        // the skeleton's {RY, CX} gate set: same ops, same operands, same
        // order, for any angle vector (including exact zeros).
        use crate::stateprep::prepare_real_amplitudes;
        let mut rng = StdRng::seed_from_u64(71);
        for n in 1..=4usize {
            for _ in 0..4 {
                let amps: Vec<f64> = (0..(1 << n))
                    .map(|_| {
                        if rng.gen::<f64>() < 0.3 {
                            0.0
                        } else {
                            rng.gen()
                        }
                    })
                    .collect();
                if amps.iter().all(|&a| a == 0.0) {
                    continue;
                }
                let prep = prepare_real_amplitudes(n, &amps).unwrap();
                let lowered = decompose_multiqubit(&prep);
                assert_eq!(lowered.len(), prep.len(), "n={n}");
                for (a, b) in prep.instructions().iter().zip(lowered.instructions()) {
                    assert_eq!(a.qubits, b.qubits, "n={n}");
                    match (&a.op, &b.op) {
                        (Operation::Gate(ga), Operation::Gate(gb)) => assert_eq!(ga, gb),
                        _ => panic!("non-gate op in a prep circuit"),
                    }
                }
            }
        }
    }

    #[test]
    fn toffoli_decomposition_is_exact() {
        let mut ideal = Circuit::new(3);
        ideal.ccx(0, 1, 2);
        let lowered = decompose_multiqubit(&ideal);
        assert!(lowered
            .count_ops()
            .iter()
            .all(|(name, _)| ["cx", "h", "t", "tdg"].contains(&name.as_str())));
        assert_eq!(
            lowered
                .count_ops()
                .iter()
                .find(|(n, _)| n == "cx")
                .unwrap()
                .1,
            6
        );
        assert_equivalent_up_to_phase(&ideal, &lowered, 3);
    }

    #[test]
    fn cswap_decomposition_is_exact() {
        let mut ideal = Circuit::new(3);
        ideal.cswap(2, 0, 1);
        let lowered = decompose_multiqubit(&ideal);
        assert_eq!(lowered.count_multi_qubit_gates(), 8); // 6 (toffoli) + 2
        assert_equivalent_up_to_phase(&ideal, &lowered, 3);
    }

    #[test]
    fn swap_cz_crz_cp_decompositions_are_exact() {
        for build in [
            |c: &mut Circuit| {
                c.swap(0, 1);
            },
            |c: &mut Circuit| {
                c.cz(0, 1);
            },
            |c: &mut Circuit| {
                c.crz(0.87, 1, 0);
            },
            |c: &mut Circuit| {
                c.cp(-1.4, 0, 1);
            },
        ] {
            let mut ideal = Circuit::new(2);
            build(&mut ideal);
            let lowered = decompose_multiqubit(&ideal);
            for instr in lowered.instructions() {
                if let Operation::Gate(g) = &instr.op {
                    assert!(g.num_qubits() == 1 || *g == Gate::CX);
                }
            }
            assert_equivalent_up_to_phase(&ideal, &lowered, 2);
        }
    }

    #[test]
    fn native_lowering_covers_every_1q_gate() {
        let gates = vec![
            Gate::H,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::SX,
            Gate::SXdg,
            Gate::RX(0.73),
            Gate::RY(-2.11),
            Gate::RZ(1.57),
            Gate::Phase(0.4),
            Gate::U(0.3, -0.9, 2.2),
        ];
        for g in gates {
            let mut ideal = Circuit::new(1);
            ideal.push(Instruction::gate(g, vec![0])).unwrap();
            let lowered = lower_1q_to_basis(&ideal);
            for instr in lowered.instructions() {
                if let Operation::Gate(lg) = &instr.op {
                    assert!(
                        matches!(lg, Gate::RZ(_) | Gate::SX | Gate::X),
                        "gate {lg} is not native (lowering {g})"
                    );
                }
            }
            assert_equivalent_up_to_phase(&ideal, &lowered, 1);
        }
    }

    #[test]
    fn full_native_pipeline_preserves_a_deep_circuit() {
        let mut ideal = Circuit::new(3);
        ideal
            .h(0)
            .rx(0.4, 1)
            .cswap(0, 1, 2)
            .crz(1.3, 2, 0)
            .ccx(1, 2, 0)
            .ry(0.2, 2)
            .swap(0, 2)
            .cp(0.6, 1, 2);
        let native = to_native(&ideal);
        for instr in native.instructions() {
            if let Operation::Gate(g) = &instr.op {
                assert!(matches!(g, Gate::RZ(_) | Gate::SX | Gate::X | Gate::CX));
            }
        }
        assert_equivalent_up_to_phase(&ideal, &native, 3);
    }

    #[test]
    fn peephole_cancels_self_inverse_pairs() {
        let mut circ = Circuit::new(2);
        circ.h(0).h(0).cx(0, 1).cx(0, 1).x(1).x(1);
        let cleaned = cancel_adjacent_inverses(&circ);
        assert!(cleaned.is_empty(), "got {cleaned}");
    }

    #[test]
    fn peephole_merges_rz_chains() {
        let mut circ = Circuit::new(1);
        circ.rz(0.3, 0).rz(0.4, 0).rz(-0.7, 0);
        let cleaned = cancel_adjacent_inverses(&circ);
        assert!(cleaned.is_empty(), "got {cleaned}");
        let mut circ2 = Circuit::new(1);
        circ2.rz(0.3, 0).rz(0.4, 0);
        let cleaned2 = cancel_adjacent_inverses(&circ2);
        assert_eq!(cleaned2.len(), 1);
    }

    #[test]
    fn peephole_cancels_inverse_rotations() {
        let mut circ = Circuit::new(1);
        circ.rx(0.5, 0).rx(-0.5, 0).ry(1.0, 0);
        let cleaned = cancel_adjacent_inverses(&circ);
        assert_eq!(cleaned.len(), 1);
    }

    #[test]
    fn peephole_respects_interleaved_qubits() {
        // h(0), cx(0,1), h(0): the two H's must NOT cancel (CX between).
        let mut circ = Circuit::new(2);
        circ.h(0).cx(0, 1).h(0);
        let cleaned = cancel_adjacent_inverses(&circ);
        assert_eq!(cleaned.len(), 3);
    }

    #[test]
    fn peephole_does_not_cancel_across_reset() {
        let mut circ = Circuit::new(1);
        circ.h(0).reset(0).h(0);
        let cleaned = cancel_adjacent_inverses(&circ);
        assert_eq!(cleaned.len(), 3);
    }

    #[test]
    fn zero_angle_rotations_are_dropped() {
        let mut circ = Circuit::new(1);
        circ.rx(0.0, 0).rz(2.0 * PI, 0).ry(0.0, 0);
        let cleaned = cancel_adjacent_inverses(&circ);
        assert!(cleaned.is_empty());
    }

    #[test]
    fn measures_and_resets_survive_lowering() {
        let mut circ = Circuit::with_clbits(2, 1);
        circ.h(0).reset(1).measure(0, 0);
        let native = to_native(&circ);
        assert!(native.has_nonunitary_ops());
        assert_eq!(native.measured_clbits(), vec![0]);
    }

    #[test]
    fn norm_angle_wraps() {
        assert_eq!(norm_angle(2.0 * PI), 0.0);
        assert!((norm_angle(3.0 * PI) - PI).abs() < 1e-12);
        assert!((norm_angle(-3.0 * PI) - PI).abs() < 1e-12);
        assert!((norm_angle(0.5) - 0.5).abs() < 1e-15);
    }
}
