//! Split-complex SIMD micro-kernels behind the GEMM seam.
//!
//! [`CMatrix::matmul_threaded`](crate::matrix::CMatrix::matmul_threaded)
//! computes its output in independent column panels; this module owns the
//! panel kernel. Three implementations share one contract (the row-major
//! `a_rows × width` block of `A·B` covering output columns `c0..c1`):
//!
//! 1. **Scalar oracle** ([`mul_panel_scalar`]): the original interleaved
//!    `C64` i–k–j loop. Slowest, but the bit-exact reference every other
//!    kernel is pinned against.
//! 2. **Split-complex SoA** ([`mul_panel`], default): the `rhs` panel is
//!    repacked once into separate re/im `f64` slices, and the output is
//!    produced in register tiles — 4 rows × 4 column lanes with the `k`
//!    reduction innermost, so the 32 partial sums live in registers for
//!    the whole reduction instead of streaming through memory per `k`.
//!    The lane loops are pure branchless unrolled `f64` arithmetic that
//!    stable rustc autovectorises; because the default x86-64 target
//!    baseline stops at 128-bit SSE2, the same safe body is *also*
//!    compiled under `#[target_feature(enable = "avx")]` and dispatched
//!    at runtime, giving full 256-bit lanes on any AVX machine with no
//!    cargo feature and no behaviour change. Each output element
//!    accumulates the exact expression the scalar oracle evaluates
//!    (`re += ar·br − ai·bi; im += ar·bi + ai·br`) in the same `k` order;
//!    the only divergence is that the oracle's sparse-term skip is traded
//!    for multiplying exact `±0`s through (branches would defeat
//!    vectorisation), which can flip the sign of a zero but never a
//!    value — so without the `simd` feature the results equal the
//!    oracle's, bitwise except for zero signs.
//! 3. **AVX2/FMA** (`--features simd`, x86-64 only): the same tiling
//!    driven by explicit 256-bit `core::arch` FMA intrinsics. Selected
//!    *at runtime* via `is_x86_feature_detected!` — a `simd` build still
//!    runs correctly (through kernel 2) on hardware without AVX2. FMA
//!    contracts the multiply–add rounding step, so this path is not
//!    bit-identical to the oracle; property suites pin it to ≤ 1e-12.
//!
//! The repack buffers live in a [`PanelScratch`] owned by the caller:
//! `matmul_threaded` hands each worker thread one scratch for its whole
//! panel stream (via [`crate::parallel::map_indexed_with`]), and the
//! sequential path reuses a thread-local scratch across calls, so repeated
//! GEMMs on a fixed configuration stop reallocating per panel.

use crate::complex::C64;

/// Output rows per register tile: four rows' accumulators (4 × 4 lanes ×
/// re/im = 8 vectors) plus the broadcast multiplicands fit the 16-register
/// AVX2 file, and every extra row in the tile divides the `rhs`-panel
/// read traffic by one more.
const TILE_ROWS: usize = 4;

/// Output column lanes per register tile: one 256-bit vector of `f64`.
/// [`crate::matrix::GEMM_COL_BLOCK`] must stay a multiple of this so
/// threaded panels and the sequential full-width panel put the same
/// columns in lane tiles vs the scalar remainder (statically asserted
/// there) — otherwise FMA builds would lose bit-for-bit thread-count
/// determinism.
pub(crate) const LANES: usize = 4;

/// Elements (per re/im buffer) the long-lived sequential scratch may
/// retain between GEMMs: 512 Ki doubles — 4 MiB each — covers every
/// supported shape except the `n = 6` density extreme (`4096 × S`
/// batches), which pays a realloc per pass instead of pinning
/// batch-sized buffers on the thread forever (the same trade the noisy
/// superoperator cache makes). Per-call worker scratches die with their
/// threads and are never trimmed.
pub(crate) const SCRATCH_RETAIN_ELEMS: usize = 1 << 19;

/// Reusable split-complex workspace for the panel kernels: the repacked
/// re/im copies of one `rhs` panel. Buffers only ever grow, so a scratch
/// reused across same-shape GEMMs allocates once.
#[derive(Debug, Default)]
pub struct PanelScratch {
    /// Real parts of the current `rhs` panel, `k`-major (`a_cols × width`).
    b_re: Vec<f64>,
    /// Imaginary parts of the current `rhs` panel, same layout.
    b_im: Vec<f64>,
}

impl PanelScratch {
    /// Creates an empty scratch; buffers are sized lazily by the kernels.
    pub fn new() -> Self {
        PanelScratch::default()
    }

    /// Releases oversized repack buffers (beyond
    /// [`SCRATCH_RETAIN_ELEMS`]) so a long-lived scratch — the
    /// sequential path's thread-local — never pins an extreme-shape
    /// allocation past the GEMM that needed it.
    pub(crate) fn trim(&mut self) {
        if self.b_re.capacity() > SCRATCH_RETAIN_ELEMS {
            self.b_re = Vec::new();
            self.b_im = Vec::new();
        }
    }
}

/// Returns `true` when the explicit AVX2/FMA kernel is both compiled in
/// (`--features simd` on x86-64) and supported by the running CPU. The
/// single runtime-dispatch predicate for every SIMD path in the crate.
#[inline]
pub fn simd_active() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        false
    }
}

/// The scalar oracle: interleaved-`C64` i–k–j panel kernel (the PR 2
/// kernel, verbatim). Kept as the bit-exact reference for the SoA and
/// AVX2 kernels and as the baseline the SIMD speedup is measured against.
#[allow(clippy::too_many_arguments)] // flat BLAS-style kernel signature
pub fn mul_panel_scalar(
    a: &[C64],
    a_rows: usize,
    a_cols: usize,
    b: &[C64],
    b_cols: usize,
    c0: usize,
    c1: usize,
) -> Vec<C64> {
    let width = c1 - c0;
    let mut panel = vec![C64::ZERO; a_rows * width];
    for i in 0..a_rows {
        let a_row = &a[i * a_cols..(i + 1) * a_cols];
        let out_row = &mut panel[i * width..(i + 1) * width];
        for (k, &av) in a_row.iter().enumerate() {
            if av == C64::ZERO {
                continue;
            }
            let b_row = &b[k * b_cols + c0..k * b_cols + c1];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
    panel
}

/// Returns `true` when the AVX-recompiled autovec kernels are usable: the
/// same safe Rust bodies compiled with 256-bit vectors enabled,
/// dispatched at runtime, available on any x86-64 build (no cargo feature
/// needed). Shared by this module's SoA tiles and the density-matrix
/// lane kernels.
#[inline]
#[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))] // callers are x86-64-gated
pub(crate) fn avx_autovec_active() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Returns `true` when the 512-bit recompilation rung is usable: the same
/// safe Rust bodies compiled with AVX-512 (F + VL + DQ) enabled. One more
/// step on the same ladder as [`avx_autovec_active`] — no intrinsics, no
/// contraction, so results stay identical to the baseline bodies; only the
/// vector width doubles. Cached after the first probe (the lane kernels
/// sit inside per-gate loops, unlike the per-panel GEMM dispatch).
#[inline]
#[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))] // callers are x86-64-gated
pub(crate) fn avx512_autovec_active() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::OnceLock;
        static ACTIVE: OnceLock<bool> = OnceLock::new();
        *ACTIVE.get_or_init(|| {
            std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512vl")
                && std::arch::is_x86_feature_detected!("avx512dq")
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The dispatching split-complex panel kernel: repacks the `rhs` panel
/// into SoA slices once, then produces the output in register tiles —
/// through the AVX2/FMA intrinsics when [`simd_active`], else the
/// autovectorised SoA body recompiled for 256-bit AVX when the CPU has it
/// (still value-identical to [`mul_panel_scalar`]; see the module docs
/// for the exact equality contract), else the baseline-target SoA body.
#[allow(clippy::too_many_arguments)] // flat BLAS-style kernel signature
pub fn mul_panel(
    a: &[C64],
    a_rows: usize,
    a_cols: usize,
    b: &[C64],
    b_cols: usize,
    c0: usize,
    c1: usize,
    scratch: &mut PanelScratch,
) -> Vec<C64> {
    let mut panel = Vec::new();
    mul_panel_into(a, a_rows, a_cols, b, b_cols, c0, c1, scratch, &mut panel);
    panel
}

/// [`mul_panel`] writing into a caller-owned output vector — the
/// allocation-free seam for steady-state scoring loops that run the same
/// GEMM shape every batch. `panel` is cleared and refilled; its capacity
/// is reused across calls. Values are identical to [`mul_panel`]'s: the
/// output buffer never feeds back into the product.
#[allow(clippy::too_many_arguments)] // flat BLAS-style kernel signature
pub fn mul_panel_into(
    a: &[C64],
    a_rows: usize,
    a_cols: usize,
    b: &[C64],
    b_cols: usize,
    c0: usize,
    c1: usize,
    scratch: &mut PanelScratch,
    panel: &mut Vec<C64>,
) {
    let width = c1 - c0;
    repack_panel(b, b_cols, c0, c1, a_cols, scratch);
    panel.clear();
    panel.resize(a_rows * width, C64::ZERO);
    // Only referenced from the x86-64 dispatch arms below.
    #[cfg(target_arch = "x86_64")]
    let avx_autovec = avx_autovec_active();
    #[cfg(target_arch = "x86_64")]
    let avx512_autovec = avx512_autovec_active();
    let mut i = 0;
    while i + TILE_ROWS <= a_rows {
        let a_rows_slice = &a[i * a_cols..(i + TILE_ROWS) * a_cols];
        let out = &mut panel[i * width..(i + TILE_ROWS) * width];
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if simd_active() {
            // SAFETY: `simd_active` verified AVX2 + FMA at runtime.
            unsafe {
                tile_rows_avx2(a_rows_slice, a_cols, width, scratch, out);
            }
            i += TILE_ROWS;
            continue;
        }
        #[cfg(target_arch = "x86_64")]
        if avx512_autovec {
            // SAFETY: `avx512_autovec` verified AVX-512 at runtime; the
            // function body is the same safe Rust as `tile_rows_soa`.
            unsafe {
                tile_rows_soa_avx512(a_rows_slice, a_cols, width, scratch, out);
            }
            i += TILE_ROWS;
            continue;
        }
        #[cfg(target_arch = "x86_64")]
        if avx_autovec {
            // SAFETY: `avx_autovec` verified AVX at runtime; the function
            // body is the same safe Rust as `tile_rows_soa`.
            unsafe {
                tile_rows_soa_avx(a_rows_slice, a_cols, width, scratch, out);
            }
            i += TILE_ROWS;
            continue;
        }
        tile_rows_soa(a_rows_slice, a_cols, width, scratch, out);
        i += TILE_ROWS;
    }
    while i < a_rows {
        let a_row = &a[i * a_cols..(i + 1) * a_cols];
        let out = &mut panel[i * width..(i + 1) * width];
        #[cfg(target_arch = "x86_64")]
        if avx512_autovec {
            // SAFETY: as above.
            unsafe {
                single_row_avx512(a_row, a_cols, width, scratch, out);
            }
            i += 1;
            continue;
        }
        #[cfg(target_arch = "x86_64")]
        if avx_autovec {
            // SAFETY: as above.
            unsafe {
                single_row_avx(a_row, a_cols, width, scratch, out);
            }
            i += 1;
            continue;
        }
        single_row(a_row, a_cols, width, scratch, out);
        i += 1;
    }
}

/// Copies the `rhs` panel (`a_cols` rows × columns `c0..c1`) into the
/// scratch's split re/im slices, `k`-major so each inner sweep is one
/// contiguous stream per array.
fn repack_panel(
    b: &[C64],
    b_cols: usize,
    c0: usize,
    c1: usize,
    a_cols: usize,
    scratch: &mut PanelScratch,
) {
    let width = c1 - c0;
    scratch.b_re.resize(a_cols * width, 0.0);
    scratch.b_im.resize(a_cols * width, 0.0);
    for k in 0..a_cols {
        let row = &b[k * b_cols + c0..k * b_cols + c1];
        let re = &mut scratch.b_re[k * width..(k + 1) * width];
        let im = &mut scratch.b_im[k * width..(k + 1) * width];
        for ((r, i), &z) in re.iter_mut().zip(im.iter_mut()).zip(row) {
            *r = z.re;
            *i = z.im;
        }
    }
}

/// One 4-wide lane accumulator: `acc += a · b` over split complex lanes,
/// exactly the scalar oracle's expression per element. Fixed-size array
/// references keep every lane loop bounds-check-free and SLP-friendly; a
/// free function so every tile kernel instantiates the identical
/// operation sequence.
#[inline(always)]
fn lane_madd(
    acc_re: &mut [f64; LANES],
    acc_im: &mut [f64; LANES],
    av: C64,
    br: &[f64; LANES],
    bi: &[f64; LANES],
) {
    let (ar, ai) = (av.re, av.im);
    for l in 0..LANES {
        acc_re[l] += ar * br[l] - ai * bi[l];
        acc_im[l] += ar * bi[l] + ai * br[l];
    }
}

/// Borrows the 4-lane window at `offset` as a fixed-size array.
#[inline(always)]
fn lanes_at(slice: &[f64], offset: usize) -> &[f64; LANES] {
    slice[offset..offset + LANES]
        .try_into()
        .expect("window is exactly LANES wide")
}

/// One full 4-row tile stripe in autovectorised form: for each 4-lane
/// column tile the 32 partial sums stay in named local arrays (registers)
/// while `k` runs innermost, with the four rows unrolled by hand. The
/// tile body is branchless — structurally-zero `A` terms are multiplied
/// through rather than skipped, contributing exact `±0`s, so results
/// equal the oracle's in value with per-element accumulation in the same
/// `k` order (only the sign of a zero can differ; the skip survives in
/// the oracle, where sparse rows are actually worth a branch).
fn tile_rows_soa(
    a_rows: &[C64],
    a_cols: usize,
    width: usize,
    scratch: &PanelScratch,
    out: &mut [C64],
) {
    tile_rows_body(a_rows, a_cols, width, scratch, out);
}

/// [`tile_rows_soa`]'s body recompiled with 256-bit AVX vectors enabled —
/// identical safe Rust, so identical results; only the instruction
/// selection differs. Dispatched at runtime behind [`avx_autovec_active`].
///
/// # Safety
///
/// The caller must have verified AVX support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn tile_rows_soa_avx(
    a_rows: &[C64],
    a_cols: usize,
    width: usize,
    scratch: &PanelScratch,
    out: &mut [C64],
) {
    tile_rows_body(a_rows, a_cols, width, scratch, out);
}

/// [`tile_rows_soa`]'s body recompiled with 512-bit AVX-512 vectors
/// enabled — identical safe Rust, identical results.
///
/// # Safety
///
/// The caller must have verified AVX-512 (F + VL + DQ) support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f", enable = "avx512vl", enable = "avx512dq")]
unsafe fn tile_rows_soa_avx512(
    a_rows: &[C64],
    a_cols: usize,
    width: usize,
    scratch: &PanelScratch,
    out: &mut [C64],
) {
    tile_rows_body(a_rows, a_cols, width, scratch, out);
}

#[inline(always)]
fn tile_rows_body(
    a_rows: &[C64],
    a_cols: usize,
    width: usize,
    scratch: &PanelScratch,
    out: &mut [C64],
) {
    let (r0, rest) = out.split_at_mut(width);
    let (r1, rest) = rest.split_at_mut(width);
    let (r2, r3) = rest.split_at_mut(width);
    let a0 = &a_rows[..a_cols];
    let a1 = &a_rows[a_cols..2 * a_cols];
    let a2 = &a_rows[2 * a_cols..3 * a_cols];
    let a3 = &a_rows[3 * a_cols..4 * a_cols];
    let mut j = 0;
    while j + LANES <= width {
        let (mut re0, mut im0) = ([0.0_f64; LANES], [0.0_f64; LANES]);
        let (mut re1, mut im1) = ([0.0_f64; LANES], [0.0_f64; LANES]);
        let (mut re2, mut im2) = ([0.0_f64; LANES], [0.0_f64; LANES]);
        let (mut re3, mut im3) = ([0.0_f64; LANES], [0.0_f64; LANES]);
        for k in 0..a_cols {
            let br = lanes_at(&scratch.b_re, k * width + j);
            let bi = lanes_at(&scratch.b_im, k * width + j);
            lane_madd(&mut re0, &mut im0, a0[k], br, bi);
            lane_madd(&mut re1, &mut im1, a1[k], br, bi);
            lane_madd(&mut re2, &mut im2, a2[k], br, bi);
            lane_madd(&mut re3, &mut im3, a3[k], br, bi);
        }
        for l in 0..LANES {
            r0[j + l] = C64::new(re0[l], im0[l]);
            r1[j + l] = C64::new(re1[l], im1[l]);
            r2[j + l] = C64::new(re2[l], im2[l]);
            r3[j + l] = C64::new(re3[l], im3[l]);
        }
        j += LANES;
    }
    while j < width {
        let mut acc = [C64::ZERO; TILE_ROWS];
        for k in 0..a_cols {
            let bv = C64::new(scratch.b_re[k * width + j], scratch.b_im[k * width + j]);
            acc[0] += a0[k] * bv;
            acc[1] += a1[k] * bv;
            acc[2] += a2[k] * bv;
            acc[3] += a3[k] * bv;
        }
        r0[j] = acc[0];
        r1[j] = acc[1];
        r2[j] = acc[2];
        r3[j] = acc[3];
        j += 1;
    }
}

/// The remainder-row kernel (fewer than [`TILE_ROWS`] rows left): one
/// output row, 4-lane column tiles, `k` innermost — the single-row
/// specialisation of [`tile_rows_soa`] with identical per-element order.
fn single_row(a_row: &[C64], a_cols: usize, width: usize, scratch: &PanelScratch, out: &mut [C64]) {
    single_row_body(a_row, a_cols, width, scratch, out);
}

/// [`single_row`]'s body recompiled with 256-bit AVX vectors enabled;
/// see [`tile_rows_soa_avx`].
///
/// # Safety
///
/// The caller must have verified AVX support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn single_row_avx(
    a_row: &[C64],
    a_cols: usize,
    width: usize,
    scratch: &PanelScratch,
    out: &mut [C64],
) {
    single_row_body(a_row, a_cols, width, scratch, out);
}

/// [`single_row`]'s body recompiled with 512-bit AVX-512 vectors
/// enabled — identical safe Rust, identical results.
///
/// # Safety
///
/// The caller must have verified AVX-512 (F + VL + DQ) support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f", enable = "avx512vl", enable = "avx512dq")]
unsafe fn single_row_avx512(
    a_row: &[C64],
    a_cols: usize,
    width: usize,
    scratch: &PanelScratch,
    out: &mut [C64],
) {
    single_row_body(a_row, a_cols, width, scratch, out);
}

#[inline(always)]
fn single_row_body(
    a_row: &[C64],
    a_cols: usize,
    width: usize,
    scratch: &PanelScratch,
    out: &mut [C64],
) {
    let mut j = 0;
    while j + LANES <= width {
        let mut acc_re = [0.0_f64; LANES];
        let mut acc_im = [0.0_f64; LANES];
        for (k, &av) in a_row.iter().enumerate().take(a_cols) {
            let br = lanes_at(&scratch.b_re, k * width + j);
            let bi = lanes_at(&scratch.b_im, k * width + j);
            lane_madd(&mut acc_re, &mut acc_im, av, br, bi);
        }
        for l in 0..LANES {
            out[j + l] = C64::new(acc_re[l], acc_im[l]);
        }
        j += LANES;
    }
    while j < width {
        let mut acc = C64::ZERO;
        for (k, &av) in a_row.iter().enumerate().take(a_cols) {
            acc += av * C64::new(scratch.b_re[k * width + j], scratch.b_im[k * width + j]);
        }
        out[j] = acc;
        j += 1;
    }
}

/// The explicit AVX2/FMA 4-row tile stripe: the same register tiling as
/// [`tile_rows_soa`] with 256-bit fused multiply–adds. Rounding differs
/// from the oracle only by FMA's skipped intermediate round; property
/// tests pin the gap to ≤ 1e-12.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn tile_rows_avx2(
    a_rows: &[C64],
    a_cols: usize,
    width: usize,
    scratch: &PanelScratch,
    out: &mut [C64],
) {
    use core::arch::x86_64::{
        __m256d, _mm256_fmadd_pd, _mm256_fnmadd_pd, _mm256_loadu_pd, _mm256_set1_pd,
        _mm256_setzero_pd, _mm256_storeu_pd,
    };
    let b_re = scratch.b_re.as_ptr();
    let b_im = scratch.b_im.as_ptr();
    let mut j = 0;
    while j + LANES <= width {
        let mut acc_re: [__m256d; TILE_ROWS] = [_mm256_setzero_pd(); TILE_ROWS];
        let mut acc_im: [__m256d; TILE_ROWS] = [_mm256_setzero_pd(); TILE_ROWS];
        for k in 0..a_cols {
            let vbr = _mm256_loadu_pd(b_re.add(k * width + j));
            let vbi = _mm256_loadu_pd(b_im.add(k * width + j));
            for r in 0..TILE_ROWS {
                let av = *a_rows.get_unchecked(r * a_cols + k);
                let var = _mm256_set1_pd(av.re);
                let vai = _mm256_set1_pd(av.im);
                acc_re[r] = _mm256_fmadd_pd(var, vbr, acc_re[r]);
                acc_re[r] = _mm256_fnmadd_pd(vai, vbi, acc_re[r]);
                acc_im[r] = _mm256_fmadd_pd(var, vbi, acc_im[r]);
                acc_im[r] = _mm256_fmadd_pd(vai, vbr, acc_im[r]);
            }
        }
        // Interleave each row's re/im lanes back into C64 storage.
        for r in 0..TILE_ROWS {
            let mut re = [0.0_f64; LANES];
            let mut im = [0.0_f64; LANES];
            _mm256_storeu_pd(re.as_mut_ptr(), acc_re[r]);
            _mm256_storeu_pd(im.as_mut_ptr(), acc_im[r]);
            for l in 0..LANES {
                *out.get_unchecked_mut(r * width + j + l) = C64::new(re[l], im[l]);
            }
        }
        j += LANES;
    }
    while j < width {
        for r in 0..TILE_ROWS {
            let mut acc_re = 0.0_f64;
            let mut acc_im = 0.0_f64;
            for k in 0..a_cols {
                let av = *a_rows.get_unchecked(r * a_cols + k);
                let br = *b_re.add(k * width + j);
                let bi = *b_im.add(k * width + j);
                // The exact fused sequence of the vector lanes above
                // (mul_add(ai, -bi, ·) is bit-identical to fnmadd), so a
                // column's bits never depend on which path the panel
                // width routed it through — a single-sample panel must
                // score bit-identically to a coalesced one.
                acc_re = av.re.mul_add(br, acc_re);
                acc_re = av.im.mul_add(-bi, acc_re);
                acc_im = av.re.mul_add(bi, acc_im);
                acc_im = av.im.mul_add(br, acc_im);
            }
            *out.get_unchecked_mut(r * width + j) = C64::new(acc_re, acc_im);
        }
        j += 1;
    }
}

/// The batched RY-conjugation lane kernel: applies the real 4×4
/// superoperator of `ρ → RY(θ_j) ρ RY(θ_j)†` across the sample lanes of
/// one row quadruple of a `4^n × S` vec(ρ) panel. `v0..v3` are the four
/// vec rows `(ρ00, ρ01, ρ10, ρ11)` of the conjugated qubit's sub-block —
/// each a contiguous `S`-lane slice — and `cc`/`cs`/`ss` hold the
/// per-sample coefficients `cos²(θ/2)`, `cos(θ/2)·sin(θ/2)`, `sin²(θ/2)`.
///
/// Per lane, each output element evaluates the exact expression the
/// per-sample gate kernel ([`crate::density::DensityMatrix::apply_gate`]'s
/// fused 4×4 superoperator) produces, term for term in the same order, so
/// the lockstep batch matches the per-sample walk bit-for-bit (up to the
/// sign of exact zeros). Dispatched through the same runtime AVX
/// recompilation ladder as the GEMM tiles.
#[allow(clippy::too_many_arguments)] // flat lane-kernel signature
pub fn ry_conj_lanes(
    v0: &mut [C64],
    v1: &mut [C64],
    v2: &mut [C64],
    v3: &mut [C64],
    cc: &[f64],
    cs: &[f64],
    ss: &[f64],
) {
    #[cfg(target_arch = "x86_64")]
    if avx512_autovec_active() {
        // SAFETY: AVX-512 support verified at runtime; the function body
        // is the same safe Rust as `ry_conj_body`.
        unsafe {
            ry_conj_avx512(v0, v1, v2, v3, cc, cs, ss);
        }
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if avx_autovec_active() {
        // SAFETY: AVX support verified at runtime; the function body is
        // the same safe Rust as `ry_conj_body`.
        unsafe {
            ry_conj_avx(v0, v1, v2, v3, cc, cs, ss);
        }
        return;
    }
    ry_conj_body(v0, v1, v2, v3, cc, cs, ss);
}

/// [`ry_conj_lanes`]'s body recompiled with 512-bit AVX-512 vectors
/// enabled — identical safe Rust, identical results.
///
/// # Safety
///
/// The caller must have verified AVX-512 (F + VL + DQ) support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f", enable = "avx512vl", enable = "avx512dq")]
unsafe fn ry_conj_avx512(
    v0: &mut [C64],
    v1: &mut [C64],
    v2: &mut [C64],
    v3: &mut [C64],
    cc: &[f64],
    cs: &[f64],
    ss: &[f64],
) {
    ry_conj_body(v0, v1, v2, v3, cc, cs, ss);
}

/// [`ry_conj_lanes`]'s body recompiled with 256-bit AVX vectors enabled —
/// identical safe Rust, identical results.
///
/// # Safety
///
/// The caller must have verified AVX support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn ry_conj_avx(
    v0: &mut [C64],
    v1: &mut [C64],
    v2: &mut [C64],
    v3: &mut [C64],
    cc: &[f64],
    cs: &[f64],
    ss: &[f64],
) {
    ry_conj_body(v0, v1, v2, v3, cc, cs, ss);
}

#[inline(always)]
fn ry_conj_body(
    v0: &mut [C64],
    v1: &mut [C64],
    v2: &mut [C64],
    v3: &mut [C64],
    cc: &[f64],
    cs: &[f64],
    ss: &[f64],
) {
    // U ⊗ U for the real rotation U = [[c, −s], [s, c]] (c = cos θ/2,
    // s = sin θ/2), row-major over (ρ00, ρ01, ρ10, ρ11); the real and
    // imaginary planes transform independently.
    for ((((((a, b), c_), d), &kcc), &kcs), &kss) in v0
        .iter_mut()
        .zip(v1.iter_mut())
        .zip(v2.iter_mut())
        .zip(v3.iter_mut())
        .zip(cc)
        .zip(cs)
        .zip(ss)
    {
        let (w, x, y, z) = (*a, *b, *c_, *d);
        *a = C64::new(
            kcc * w.re - kcs * x.re - kcs * y.re + kss * z.re,
            kcc * w.im - kcs * x.im - kcs * y.im + kss * z.im,
        );
        *b = C64::new(
            kcs * w.re + kcc * x.re - kss * y.re - kcs * z.re,
            kcs * w.im + kcc * x.im - kss * y.im - kcs * z.im,
        );
        *c_ = C64::new(
            kcs * w.re - kss * x.re + kcc * y.re - kcs * z.re,
            kcs * w.im - kss * x.im + kcc * y.im - kcs * z.im,
        );
        *d = C64::new(
            kss * w.re + kcs * x.re + kcs * y.re + kcc * z.re,
            kss * w.im + kcs * x.im + kcs * y.im + kcc * z.im,
        );
    }
}

/// The batched 1q-superoperator lane kernel: applies one shared 4×4
/// superoperator (a fused noise channel) across the sample lanes of one
/// row quadruple of a `4^n × S` vec(ρ) panel — the whole-batch analogue
/// of the per-sample density kernel
/// ([`crate::density::DensityMatrix::apply_superop_1q`]), with the same
/// per-element term order, so lockstep and per-sample walks agree to the
/// bit. Each lane is a tiny `4×4 · 4×1` GEMM; the panel layout makes the
/// four operand rows contiguous lane runs, which is what lets the
/// compiler vectorise across samples. Dispatched through the runtime AVX
/// recompilation ladder.
pub fn superop4_lanes(
    v0: &mut [C64],
    v1: &mut [C64],
    v2: &mut [C64],
    v3: &mut [C64],
    s: &[[C64; 4]; 4],
) {
    #[cfg(target_arch = "x86_64")]
    if avx512_autovec_active() {
        // SAFETY: AVX-512 support verified at runtime; the function body
        // is the same safe Rust as `superop4_body`.
        unsafe {
            superop4_avx512(v0, v1, v2, v3, s);
        }
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if avx_autovec_active() {
        // SAFETY: AVX support verified at runtime; the function body is
        // the same safe Rust as `superop4_body`.
        unsafe {
            superop4_avx(v0, v1, v2, v3, s);
        }
        return;
    }
    superop4_body(v0, v1, v2, v3, s);
}

/// [`superop4_lanes`]'s body recompiled with 512-bit AVX-512 vectors
/// enabled — identical safe Rust, identical results.
///
/// # Safety
///
/// The caller must have verified AVX-512 (F + VL + DQ) support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f", enable = "avx512vl", enable = "avx512dq")]
unsafe fn superop4_avx512(
    v0: &mut [C64],
    v1: &mut [C64],
    v2: &mut [C64],
    v3: &mut [C64],
    s: &[[C64; 4]; 4],
) {
    superop4_body(v0, v1, v2, v3, s);
}

/// [`superop4_lanes`]'s body recompiled with 256-bit AVX vectors enabled —
/// identical safe Rust, identical results.
///
/// # Safety
///
/// The caller must have verified AVX support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn superop4_avx(
    v0: &mut [C64],
    v1: &mut [C64],
    v2: &mut [C64],
    v3: &mut [C64],
    s: &[[C64; 4]; 4],
) {
    superop4_body(v0, v1, v2, v3, s);
}

#[inline(always)]
fn superop4_body(
    v0: &mut [C64],
    v1: &mut [C64],
    v2: &mut [C64],
    v3: &mut [C64],
    s: &[[C64; 4]; 4],
) {
    for (((a, b), c_), d) in v0
        .iter_mut()
        .zip(v1.iter_mut())
        .zip(v2.iter_mut())
        .zip(v3.iter_mut())
    {
        let v = [*a, *b, *c_, *d];
        let mut out = [C64::ZERO; 4];
        for (i, o) in out.iter_mut().enumerate() {
            let row = &s[i];
            *o = row[0] * v[0] + row[1] * v[1] + row[2] * v[2] + row[3] * v[3];
        }
        *a = out[0];
        *b = out[1];
        *c_ = out[2];
        *d = out[3];
    }
}

/// The split-complex branch-sweep lane kernel for the batched pure-state
/// engine: one row pass of the reset-branch expansion, accumulating every
/// sample's branch weight and overlap term across the lanes of a split
/// `Φ` row pair. Per lane:
/// `w += |top|²`, `o += conj(low) · top` — expanded into the exact real
/// expressions the interleaved per-sample loop evaluates (same value, same
/// per-element accumulation order). Dispatched through the runtime AVX
/// recompilation ladder.
#[allow(clippy::too_many_arguments)] // flat lane-kernel signature
pub fn branch_sweep_lanes(
    low_re: &[f64],
    low_im: &[f64],
    top_re: &[f64],
    top_im: &[f64],
    weight: &mut [f64],
    over_re: &mut [f64],
    over_im: &mut [f64],
) {
    #[cfg(target_arch = "x86_64")]
    if avx512_autovec_active() {
        // SAFETY: AVX-512 support verified at runtime; the function body
        // is the same safe Rust as `branch_sweep_body`.
        unsafe {
            branch_sweep_avx512(low_re, low_im, top_re, top_im, weight, over_re, over_im);
        }
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if avx_autovec_active() {
        // SAFETY: AVX support verified at runtime; the function body is
        // the same safe Rust as `branch_sweep_body`.
        unsafe {
            branch_sweep_avx(low_re, low_im, top_re, top_im, weight, over_re, over_im);
        }
        return;
    }
    branch_sweep_body(low_re, low_im, top_re, top_im, weight, over_re, over_im);
}

/// [`branch_sweep_lanes`]'s body recompiled with 512-bit AVX-512 vectors
/// enabled — identical safe Rust, identical results.
///
/// # Safety
///
/// The caller must have verified AVX-512 (F + VL + DQ) support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f", enable = "avx512vl", enable = "avx512dq")]
#[allow(clippy::too_many_arguments)] // flat lane-kernel signature
unsafe fn branch_sweep_avx512(
    low_re: &[f64],
    low_im: &[f64],
    top_re: &[f64],
    top_im: &[f64],
    weight: &mut [f64],
    over_re: &mut [f64],
    over_im: &mut [f64],
) {
    branch_sweep_body(low_re, low_im, top_re, top_im, weight, over_re, over_im);
}

/// [`branch_sweep_lanes`]'s body recompiled with 256-bit AVX vectors
/// enabled — identical safe Rust, identical results.
///
/// # Safety
///
/// The caller must have verified AVX support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn branch_sweep_avx(
    low_re: &[f64],
    low_im: &[f64],
    top_re: &[f64],
    top_im: &[f64],
    weight: &mut [f64],
    over_re: &mut [f64],
    over_im: &mut [f64],
) {
    branch_sweep_body(low_re, low_im, top_re, top_im, weight, over_re, over_im);
}

#[inline(always)]
fn branch_sweep_body(
    low_re: &[f64],
    low_im: &[f64],
    top_re: &[f64],
    top_im: &[f64],
    weight: &mut [f64],
    over_re: &mut [f64],
    over_im: &mut [f64],
) {
    for (((((w, or), oi), (&lr, &li)), &tr), &ti) in weight
        .iter_mut()
        .zip(over_re.iter_mut())
        .zip(over_im.iter_mut())
        .zip(low_re.iter().zip(low_im))
        .zip(top_re)
        .zip(top_im)
    {
        *w += tr * tr + ti * ti;
        *or += lr * tr + li * ti;
        *oi += lr * ti - li * tr;
    }
}

/// The batched 16×16 superoperator lane kernel: applies one shared 16×16
/// complex matrix across the sample lanes of sixteen row runs of a
/// `4^n × S` vec(ρ) panel. Two callers share it: the two-qubit
/// superoperator conjugation
/// ([`crate::density::apply_superop_2q_columns`], rows = the sixteen vec
/// rows of one two-qubit sub-block) and the structured swap-test readout
/// sweep ([`crate::channel::SwapTestMpo`], rows = 4 bond panels × 4 field
/// rows). Per lane the arithmetic matches
/// [`crate::density::DensityMatrix::apply_superop_2q`]'s gather → 16×16
/// mat-vec → scatter loop term for term. Dispatched through the runtime
/// AVX recompilation ladder.
pub fn superop16_lanes(rows: &mut [&mut [C64]; 16], s: &[[C64; 16]; 16]) {
    #[cfg(target_arch = "x86_64")]
    if avx512_autovec_active() {
        // SAFETY: AVX-512 support verified at runtime; the function body
        // is the same safe Rust as `superop16_body`.
        unsafe {
            superop16_avx512(rows, s);
        }
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if avx_autovec_active() {
        // SAFETY: AVX support verified at runtime; the function body is
        // the same safe Rust as `superop16_body`.
        unsafe {
            superop16_avx(rows, s);
        }
        return;
    }
    superop16_body(rows, s);
}

/// [`superop16_lanes`]'s body recompiled with 512-bit AVX-512 vectors
/// enabled — identical safe Rust, identical results.
///
/// # Safety
///
/// The caller must have verified AVX-512 (F + VL + DQ) support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f", enable = "avx512vl", enable = "avx512dq")]
unsafe fn superop16_avx512(rows: &mut [&mut [C64]; 16], s: &[[C64; 16]; 16]) {
    superop16_body(rows, s);
}

/// [`superop16_lanes`]'s body recompiled with 256-bit AVX vectors enabled —
/// identical safe Rust, identical results.
///
/// # Safety
///
/// The caller must have verified AVX support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn superop16_avx(rows: &mut [&mut [C64]; 16], s: &[[C64; 16]; 16]) {
    superop16_body(rows, s);
}

#[inline(always)]
fn superop16_body(rows: &mut [&mut [C64]; 16], s: &[[C64; 16]; 16]) {
    let lanes = rows[0].len();
    for row in rows.iter() {
        assert_eq!(row.len(), lanes, "lane runs must have equal width");
    }
    for lane in 0..lanes {
        let mut v = [C64::ZERO; 16];
        for (slot, row) in v.iter_mut().zip(rows.iter()) {
            *slot = row[lane];
        }
        for (row, srow) in rows.iter_mut().zip(s.iter()) {
            let mut acc = C64::ZERO;
            for (m, x) in srow.iter().zip(&v) {
                acc += *m * *x;
            }
            row[lane] = acc;
        }
    }
}

/// The batched reset-channel lane kernel: collapses one single-qubit
/// sub-block to `|0⟩` across the sample lanes — per lane
/// `ρ00 ← ρ00 + ρ11`, `ρ01 = ρ10 = ρ11 = 0`, the closed form of the
/// Kraus pair `{|0⟩⟨0|, |0⟩⟨1|}` that
/// [`crate::density::DensityMatrix::reset`] charges (same accumulation
/// order: the `K₀` term before the `K₁` term). Dispatched through the
/// runtime AVX recompilation ladder.
pub fn reset_lanes(v0: &mut [C64], v1: &mut [C64], v2: &mut [C64], v3: &mut [C64]) {
    #[cfg(target_arch = "x86_64")]
    if avx_autovec_active() {
        // SAFETY: AVX support verified at runtime; the function body is
        // the same safe Rust as `reset_body`.
        unsafe {
            reset_avx(v0, v1, v2, v3);
        }
        return;
    }
    reset_body(v0, v1, v2, v3);
}

/// [`reset_lanes`]'s body recompiled with 256-bit AVX vectors enabled —
/// identical safe Rust, identical results.
///
/// # Safety
///
/// The caller must have verified AVX support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn reset_avx(v0: &mut [C64], v1: &mut [C64], v2: &mut [C64], v3: &mut [C64]) {
    reset_body(v0, v1, v2, v3);
}

#[inline(always)]
fn reset_body(v0: &mut [C64], v1: &mut [C64], v2: &mut [C64], v3: &mut [C64]) {
    for (((a, b), c_), d) in v0
        .iter_mut()
        .zip(v1.iter_mut())
        .zip(v2.iter_mut())
        .zip(v3.iter_mut())
    {
        *a += *d;
        *b = C64::ZERO;
        *c_ = C64::ZERO;
        *d = C64::ZERO;
    }
}

/// The batched amplitude-damping lane kernel: per lane
/// `ρ00 ← ρ00 + γ·ρ11`, `ρ01 ← √(1−γ)·ρ01`, `ρ10 ← √(1−γ)·ρ10`,
/// `ρ11 ← (1−γ)·ρ11` — the closed form of
/// [`crate::noise::amplitude_damping`]'s Kraus pair. `damp = √(1−γ)` and
/// `keep = 1−γ` are hoisted by the caller so every lane pays multiplies
/// only. Dispatched through the runtime AVX recompilation ladder.
pub fn amp_damp_lanes(
    v0: &mut [C64],
    v1: &mut [C64],
    v2: &mut [C64],
    v3: &mut [C64],
    gamma: f64,
    damp: f64,
) {
    #[cfg(target_arch = "x86_64")]
    if avx_autovec_active() {
        // SAFETY: AVX support verified at runtime; the function body is
        // the same safe Rust as `amp_damp_body`.
        unsafe {
            amp_damp_avx(v0, v1, v2, v3, gamma, damp);
        }
        return;
    }
    amp_damp_body(v0, v1, v2, v3, gamma, damp);
}

/// [`amp_damp_lanes`]'s body recompiled with 256-bit AVX vectors enabled —
/// identical safe Rust, identical results.
///
/// # Safety
///
/// The caller must have verified AVX support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn amp_damp_avx(
    v0: &mut [C64],
    v1: &mut [C64],
    v2: &mut [C64],
    v3: &mut [C64],
    gamma: f64,
    damp: f64,
) {
    amp_damp_body(v0, v1, v2, v3, gamma, damp);
}

#[inline(always)]
fn amp_damp_body(
    v0: &mut [C64],
    v1: &mut [C64],
    v2: &mut [C64],
    v3: &mut [C64],
    gamma: f64,
    damp: f64,
) {
    let keep = 1.0 - gamma;
    for (((a, b), c_), d) in v0
        .iter_mut()
        .zip(v1.iter_mut())
        .zip(v2.iter_mut())
        .zip(v3.iter_mut())
    {
        *a += d.scale(gamma);
        *b = b.scale(damp);
        *c_ = c_.scale(damp);
        *d = d.scale(keep);
    }
}

/// The batched phase-damping lane kernel: per lane the coherences shrink,
/// `ρ01 ← √(1−λ)·ρ01`, `ρ10 ← √(1−λ)·ρ10`, and the populations are
/// untouched — the closed form of [`crate::noise::phase_damping`]'s
/// Kraus pair. `damp = √(1−λ)` is hoisted by the caller. Dispatched
/// through the runtime AVX recompilation ladder.
pub fn phase_damp_lanes(v1: &mut [C64], v2: &mut [C64], damp: f64) {
    #[cfg(target_arch = "x86_64")]
    if avx_autovec_active() {
        // SAFETY: AVX support verified at runtime; the function body is
        // the same safe Rust as `phase_damp_body`.
        unsafe {
            phase_damp_avx(v1, v2, damp);
        }
        return;
    }
    phase_damp_body(v1, v2, damp);
}

/// [`phase_damp_lanes`]'s body recompiled with 256-bit AVX vectors
/// enabled — identical safe Rust, identical results.
///
/// # Safety
///
/// The caller must have verified AVX support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn phase_damp_avx(v1: &mut [C64], v2: &mut [C64], damp: f64) {
    phase_damp_body(v1, v2, damp);
}

#[inline(always)]
fn phase_damp_body(v1: &mut [C64], v2: &mut [C64], damp: f64) {
    for (b, c_) in v1.iter_mut().zip(v2.iter_mut()) {
        *b = b.scale(damp);
        *c_ = c_.scale(damp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pseudo-random but deterministic dense test data.
    fn dense(rows: usize, cols: usize, salt: u64) -> Vec<C64> {
        (0..rows * cols)
            .map(|idx| {
                let t = idx as f64 + salt as f64 * 0.37;
                C64::new((t * 0.7311).sin(), (t * 1.1931).cos())
            })
            .collect()
    }

    /// Shapes that exercise every remainder case: widths below, at, and
    /// beyond the 4-lane tile, row counts straddling the 4-row tile, plus
    /// single rows/columns.
    const SHAPES: [(usize, usize, usize); 9] = [
        (1, 1, 1),
        (3, 5, 2),
        (4, 4, 4),
        (5, 7, 9),
        (8, 8, 13),
        (7, 3, 33),
        (6, 11, 5),
        (16, 16, 37),
        (9, 25, 64),
    ];

    #[test]
    fn soa_kernel_is_bit_identical_to_scalar_oracle() {
        for &(m, k, n) in &SHAPES {
            let a = dense(m, k, 1);
            let b = dense(k, n, 2);
            let mut scratch = PanelScratch::new();
            // Full-width panel and a ragged sub-panel alike.
            for (c0, c1) in [(0, n), (n / 3, n), (0, n.div_ceil(2))] {
                if c0 >= c1 {
                    continue;
                }
                let oracle = mul_panel_scalar(&a, m, k, &b, n, c0, c1);
                let soa = mul_panel(&a, m, k, &b, n, c0, c1, &mut scratch);
                if simd_active() {
                    // FMA rounding: not bit-exact, but pinned tight.
                    for (s, o) in soa.iter().zip(&oracle) {
                        assert!(s.approx_eq(*o, 1e-12), "{m}x{k}x{n}: {s} vs {o}");
                    }
                } else {
                    assert_eq!(soa, oracle, "shape {m}x{k}x{n} panel {c0}..{c1}");
                }
            }
        }
    }

    #[test]
    fn kernel_handles_structural_zeros_like_the_oracle() {
        // Rows of zeros in A exercise the sparse-term skip in every tile
        // position of both kernels.
        let mut a = dense(6, 6, 3);
        for j in 0..6 {
            a[2 * 6 + j] = C64::ZERO;
            a[j * 6 + 4] = C64::ZERO;
        }
        let b = dense(6, 10, 4);
        let mut scratch = PanelScratch::new();
        let oracle = mul_panel_scalar(&a, 6, 6, &b, 10, 0, 10);
        let soa = mul_panel(&a, 6, 6, &b, 10, 0, 10, &mut scratch);
        for (s, o) in soa.iter().zip(&oracle) {
            assert!(s.approx_eq(*o, 1e-12));
        }
    }

    #[test]
    fn scratch_reuse_across_different_shapes_is_safe() {
        let mut scratch = PanelScratch::new();
        for &(m, k, n) in &SHAPES {
            let a = dense(m, k, 5);
            let b = dense(k, n, 6);
            let oracle = mul_panel_scalar(&a, m, k, &b, n, 0, n);
            let soa = mul_panel(&a, m, k, &b, n, 0, n, &mut scratch);
            for (s, o) in soa.iter().zip(&oracle) {
                assert!(s.approx_eq(*o, 1e-12), "shape {m}x{k}x{n}");
            }
        }
    }

    #[test]
    fn ry_conj_lanes_matches_direct_superop_arithmetic() {
        // Reference: the same 4×4 real map evaluated lane by lane with
        // plain C64 arithmetic in the per-sample kernel's term order.
        let lanes = 11;
        let mut v: Vec<Vec<C64>> = (0..4).map(|r| dense(1, lanes, r as u64)).collect();
        let thetas: Vec<f64> = (0..lanes).map(|j| 0.3 * j as f64 - 1.1).collect();
        let (mut cc, mut cs, mut ss) = (vec![0.0; lanes], vec![0.0; lanes], vec![0.0; lanes]);
        for j in 0..lanes {
            let half = thetas[j] / 2.0;
            let (c, s) = (half.cos(), half.sin());
            cc[j] = c * c;
            cs[j] = c * s;
            ss[j] = s * s;
        }
        let mut expected = v.clone();
        for j in 0..lanes {
            let half = thetas[j] / 2.0;
            let (c, s) = (half.cos(), half.sin());
            let m = [
                [c * c, -(c * s), -(c * s), s * s],
                [c * s, c * c, -(s * s), -(c * s)],
                [c * s, -(s * s), c * c, -(c * s)],
                [s * s, c * s, c * s, c * c],
            ];
            let vin = [v[0][j], v[1][j], v[2][j], v[3][j]];
            for (i, row) in m.iter().enumerate() {
                let mut acc = C64::ZERO;
                for (k, &coef) in row.iter().enumerate() {
                    acc += vin[k].scale(coef);
                }
                expected[i][j] = acc;
            }
        }
        let (v0, rest) = v.split_at_mut(1);
        let (v1, rest) = rest.split_at_mut(1);
        let (v2, v3) = rest.split_at_mut(1);
        ry_conj_lanes(
            &mut v0[0], &mut v1[0], &mut v2[0], &mut v3[0], &cc, &cs, &ss,
        );
        for r in 0..4 {
            let row = [&v0[0], &v1[0], &v2[0], &v3[0]][r];
            for j in 0..lanes {
                assert!(
                    row[j].approx_eq(expected[r][j], 1e-14),
                    "row {r} lane {j}: {} vs {}",
                    row[j],
                    expected[r][j]
                );
            }
        }
    }

    #[test]
    fn branch_sweep_lanes_matches_interleaved_loop() {
        let lanes = 13;
        let low = dense(1, lanes, 9);
        let top = dense(1, lanes, 10);
        let (low_re, low_im): (Vec<f64>, Vec<f64>) = low.iter().map(|z| (z.re, z.im)).unzip();
        let (top_re, top_im): (Vec<f64>, Vec<f64>) = top.iter().map(|z| (z.re, z.im)).unzip();
        // Start from non-zero accumulators to catch += vs = mistakes.
        let mut weight: Vec<f64> = (0..lanes).map(|j| j as f64 * 0.1).collect();
        let mut over_re = weight.clone();
        let mut over_im = weight.clone();
        let (mut w_ref, mut or_ref, mut oi_ref) =
            (weight.clone(), over_re.clone(), over_im.clone());
        for j in 0..lanes {
            w_ref[j] += top[j].norm_sqr();
            let o = low[j].conj() * top[j];
            or_ref[j] += o.re;
            oi_ref[j] += o.im;
        }
        branch_sweep_lanes(
            &low_re,
            &low_im,
            &top_re,
            &top_im,
            &mut weight,
            &mut over_re,
            &mut over_im,
        );
        // The split expressions are exactly the interleaved ones.
        assert_eq!(weight, w_ref);
        assert_eq!(over_re, or_ref);
        assert_eq!(over_im, oi_ref);
    }

    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[test]
    fn superop16_lanes_matches_plain_mat_vec() {
        let lanes = 7;
        let mut v: Vec<Vec<C64>> = (0..16).map(|r| dense(1, lanes, 20 + r as u64)).collect();
        let mut s = [[C64::ZERO; 16]; 16];
        for (i, row) in s.iter_mut().enumerate() {
            for (j, x) in row.iter_mut().enumerate() {
                let t = (i * 16 + j) as f64;
                *x = C64::new((t * 0.311).sin(), (t * 0.731).cos());
            }
        }
        let mut expected = v.clone();
        for j in 0..lanes {
            let vin: Vec<C64> = (0..16).map(|r| v[r][j]).collect();
            for (i, row) in s.iter().enumerate() {
                let mut acc = C64::ZERO;
                for (m, x) in row.iter().zip(&vin) {
                    acc += *m * *x;
                }
                expected[i][j] = acc;
            }
        }
        let refs: Vec<&mut [C64]> = v.iter_mut().map(|r| r.as_mut_slice()).collect();
        let mut rows: [&mut [C64]; 16] = refs.try_into().expect("sixteen rows");
        superop16_lanes(&mut rows, &s);
        for (r, exp) in expected.iter().enumerate() {
            for j in 0..lanes {
                assert!(
                    v[r][j].approx_eq(exp[j], 1e-13),
                    "row {r} lane {j}: {} vs {}",
                    v[r][j],
                    exp[j]
                );
            }
        }
    }

    #[test]
    fn reset_and_damping_lanes_match_closed_forms() {
        let lanes = 9;
        let mk = || -> Vec<Vec<C64>> { (0..4).map(|r| dense(1, lanes, 40 + r as u64)).collect() };

        // Reset: ρ00 + ρ11 survives, everything else vanishes.
        let mut v = mk();
        let orig = v.clone();
        {
            let (a, rest) = v.split_at_mut(1);
            let (b, rest) = rest.split_at_mut(1);
            let (c, d) = rest.split_at_mut(1);
            reset_lanes(&mut a[0], &mut b[0], &mut c[0], &mut d[0]);
        }
        for j in 0..lanes {
            assert!(v[0][j].approx_eq(orig[0][j] + orig[3][j], 1e-14));
            for row in v.iter().take(4).skip(1) {
                assert_eq!(row[j], C64::ZERO);
            }
        }

        // Amplitude damping at γ: population transfer + coherence decay.
        let gamma: f64 = 0.37;
        let damp = (1.0 - gamma).sqrt();
        let mut v = mk();
        let orig = v.clone();
        {
            let (a, rest) = v.split_at_mut(1);
            let (b, rest) = rest.split_at_mut(1);
            let (c, d) = rest.split_at_mut(1);
            amp_damp_lanes(&mut a[0], &mut b[0], &mut c[0], &mut d[0], gamma, damp);
        }
        for j in 0..lanes {
            assert!(v[0][j].approx_eq(orig[0][j] + orig[3][j].scale(gamma), 1e-14));
            assert!(v[1][j].approx_eq(orig[1][j].scale(damp), 1e-14));
            assert!(v[2][j].approx_eq(orig[2][j].scale(damp), 1e-14));
            assert!(v[3][j].approx_eq(orig[3][j].scale(1.0 - gamma), 1e-14));
        }

        // Phase damping at λ: only the coherences shrink.
        let lambda: f64 = 0.52;
        let damp = (1.0 - lambda).sqrt();
        let mut v = mk();
        let orig = v.clone();
        {
            let (_, rest) = v.split_at_mut(1);
            let (b, rest) = rest.split_at_mut(1);
            let (c, _) = rest.split_at_mut(1);
            phase_damp_lanes(&mut b[0], &mut c[0], damp);
        }
        for j in 0..lanes {
            assert_eq!(v[0][j], orig[0][j]);
            assert!(v[1][j].approx_eq(orig[1][j].scale(damp), 1e-14));
            assert!(v[2][j].approx_eq(orig[2][j].scale(damp), 1e-14));
            assert_eq!(v[3][j], orig[3][j]);
        }
    }

    #[test]
    fn avx2_kernel_matches_oracle_when_available() {
        if !simd_active() {
            return; // no AVX2/FMA on this host: dispatch already covered.
        }
        for &(m, k, n) in &SHAPES {
            let a = dense(m, k, 7);
            let b = dense(k, n, 8);
            let mut scratch = PanelScratch::new();
            let oracle = mul_panel_scalar(&a, m, k, &b, n, 0, n);
            let simd = mul_panel(&a, m, k, &b, n, 0, n, &mut scratch);
            for (s, o) in simd.iter().zip(&oracle) {
                assert!(s.approx_eq(*o, 1e-12), "shape {m}x{k}x{n}: {s} vs {o}");
            }
        }
    }
}
