//! Pure-state simulation: a `2^n`-amplitude statevector with specialised
//! gate kernels.
//!
//! Bit convention matches Qiskit: **qubit `k` is bit `k` (LSB = qubit 0)** of
//! the basis-state index. `Statevector` itself only implements *unitary*
//! evolution plus projective collapse; exact handling of non-unitary resets
//! and measurements (via weighted branching) lives in
//! [`crate::simulator::StatevectorBackend`].

use crate::complex::C64;
use crate::error::QsimError;
use crate::gate::Gate;
use rand::Rng;

/// A pure quantum state over `num_qubits` qubits.
///
/// # Examples
///
/// ```
/// use qsim::statevector::Statevector;
/// use qsim::gate::Gate;
///
/// let mut sv = Statevector::new(2);
/// sv.apply_gate(Gate::H, &[0]).unwrap();
/// sv.apply_gate(Gate::CX, &[0, 1]).unwrap();
/// // Bell state: P(|00>) = P(|11>) = 1/2.
/// let p = sv.probabilities();
/// assert!((p[0] - 0.5).abs() < 1e-12);
/// assert!((p[3] - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Statevector {
    num_qubits: usize,
    amps: Vec<C64>,
}

impl Statevector {
    /// Creates the all-zeros state `|0…0⟩`.
    pub fn new(num_qubits: usize) -> Self {
        assert!(num_qubits <= 28, "statevector would exceed memory");
        let mut amps = vec![C64::ZERO; 1 << num_qubits];
        amps[0] = C64::ONE;
        Statevector { num_qubits, amps }
    }

    /// Creates a state from explicit amplitudes.
    ///
    /// # Errors
    ///
    /// * [`QsimError::DimensionMismatch`] if `amps.len()` is not a power of
    ///   two.
    /// * [`QsimError::NotNormalized`] if the squared norm differs from 1 by
    ///   more than `1e-8`.
    pub fn from_amplitudes(amps: Vec<C64>) -> Result<Self, QsimError> {
        let n = amps.len();
        if n == 0 || n & (n - 1) != 0 {
            return Err(QsimError::DimensionMismatch {
                expected: n.next_power_of_two().max(1),
                actual: n,
            });
        }
        let norm_sqr: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        if (norm_sqr - 1.0).abs() > 1e-8 {
            return Err(QsimError::NotNormalized { norm_sqr });
        }
        Ok(Statevector {
            num_qubits: n.trailing_zeros() as usize,
            amps,
        })
    }

    /// Creates a state from non-negative real amplitudes, normalising if the
    /// norm deviates slightly from one (amplitude-embedding helper).
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::InvalidAmplitude`] on negative or non-finite
    /// entries, [`QsimError::DimensionMismatch`] on non-power-of-two length,
    /// or [`QsimError::NotNormalized`] if the norm is zero.
    pub fn from_real_amplitudes(values: &[f64]) -> Result<Self, QsimError> {
        let n = values.len();
        if n == 0 || n & (n - 1) != 0 {
            return Err(QsimError::DimensionMismatch {
                expected: n.next_power_of_two().max(1),
                actual: n,
            });
        }
        for (i, &v) in values.iter().enumerate() {
            if !v.is_finite() || v < 0.0 {
                return Err(QsimError::InvalidAmplitude { index: i });
            }
        }
        let norm_sqr: f64 = values.iter().map(|v| v * v).sum();
        if norm_sqr <= 0.0 {
            return Err(QsimError::NotNormalized { norm_sqr });
        }
        let scale = norm_sqr.sqrt().recip();
        Ok(Statevector {
            num_qubits: n.trailing_zeros() as usize,
            amps: values.iter().map(|&v| C64::from_real(v * scale)).collect(),
        })
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Hilbert-space dimension `2^n`.
    pub fn dim(&self) -> usize {
        self.amps.len()
    }

    /// Immutable view of the amplitudes, indexed by basis state.
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// The amplitude of basis state `index`.
    pub fn amplitude(&self, index: usize) -> C64 {
        self.amps[index]
    }

    /// Squared norm of the state (should be 1 for normalised states).
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Rescales to unit norm.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::NotNormalized`] if the current norm is zero.
    pub fn normalize(&mut self) -> Result<(), QsimError> {
        let n = self.norm_sqr();
        if n <= 0.0 {
            return Err(QsimError::NotNormalized { norm_sqr: n });
        }
        let s = n.sqrt().recip();
        for a in &mut self.amps {
            *a = a.scale(s);
        }
        Ok(())
    }

    fn check_qubits(&self, qubits: &[usize]) -> Result<(), QsimError> {
        for (i, &q) in qubits.iter().enumerate() {
            if q >= self.num_qubits {
                return Err(QsimError::QubitOutOfRange {
                    qubit: q,
                    num_qubits: self.num_qubits,
                });
            }
            if qubits[..i].contains(&q) {
                return Err(QsimError::DuplicateQubit { qubit: q });
            }
        }
        Ok(())
    }

    /// Applies a gate to the given qubit operands (order matters for
    /// controlled gates: `[control, target]`).
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::QubitOutOfRange`], [`QsimError::DuplicateQubit`]
    /// or [`QsimError::DimensionMismatch`] for invalid operands.
    pub fn apply_gate(&mut self, gate: Gate, qubits: &[usize]) -> Result<(), QsimError> {
        self.check_qubits(qubits)?;
        if qubits.len() != gate.num_qubits() {
            return Err(QsimError::DimensionMismatch {
                expected: gate.num_qubits(),
                actual: qubits.len(),
            });
        }
        match gate {
            Gate::I => {}
            Gate::X => self.kernel_x(qubits[0]),
            Gate::Z => self.kernel_phase_flip(qubits[0], -C64::ONE),
            Gate::S => self.kernel_phase_flip(qubits[0], C64::I),
            Gate::Sdg => self.kernel_phase_flip(qubits[0], -C64::I),
            Gate::T => self.kernel_phase_flip(qubits[0], C64::cis(std::f64::consts::FRAC_PI_4)),
            Gate::Tdg => self.kernel_phase_flip(qubits[0], C64::cis(-std::f64::consts::FRAC_PI_4)),
            Gate::Phase(t) => self.kernel_phase_flip(qubits[0], C64::cis(t)),
            Gate::RZ(t) => self.kernel_rz(qubits[0], t),
            g if g.num_qubits() == 1 => {
                let m = g.matrix_1q();
                self.kernel_1q(qubits[0], &m);
            }
            Gate::CX => self.kernel_cx(qubits[0], qubits[1]),
            Gate::CZ => self.kernel_controlled_phase(qubits[0], qubits[1], -C64::ONE),
            Gate::CPhase(t) => self.kernel_controlled_phase(qubits[0], qubits[1], C64::cis(t)),
            Gate::CRZ(t) => self.kernel_crz(qubits[0], qubits[1], t),
            Gate::Swap => self.kernel_swap(qubits[0], qubits[1]),
            Gate::CCX => self.kernel_ccx(qubits[0], qubits[1], qubits[2]),
            Gate::CSwap => self.kernel_cswap(qubits[0], qubits[1], qubits[2]),
            _ => unreachable!("gate dispatch is exhaustive"),
        }
        Ok(())
    }

    /// Applies an arbitrary 2×2 matrix to one qubit (used by state
    /// preparation and the transpiler tests).
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::QubitOutOfRange`] for a bad operand.
    pub fn apply_matrix_1q(&mut self, q: usize, m: &[[C64; 2]; 2]) -> Result<(), QsimError> {
        self.check_qubits(&[q])?;
        self.kernel_1q(q, m);
        Ok(())
    }

    /// Stride-paired single-qubit update in lane form: each `2·stride`
    /// block splits into two contiguous halves (`q` bit clear / set), and
    /// the 2×2 matrix is applied elementwise across the paired lanes — a
    /// bounds-check-free zip that stable rustc autovectorises. The
    /// per-element operations match the previous indexed loop exactly, so
    /// the restructure is bit-identical.
    #[inline]
    fn kernel_1q(&mut self, q: usize, m: &[[C64; 2]; 2]) {
        let stride = 1usize << q;
        let [[m00, m01], [m10, m11]] = *m;
        for block in self.amps.chunks_exact_mut(stride << 1) {
            let (lo, hi) = block.split_at_mut(stride);
            for (a0, a1) in lo.iter_mut().zip(hi.iter_mut()) {
                let (x0, x1) = (*a0, *a1);
                *a0 = m00 * x0 + m01 * x1;
                *a1 = m10 * x0 + m11 * x1;
            }
        }
    }

    #[inline]
    fn kernel_x(&mut self, q: usize) {
        let stride = 1usize << q;
        for block in self.amps.chunks_exact_mut(stride << 1) {
            let (lo, hi) = block.split_at_mut(stride);
            lo.swap_with_slice(hi);
        }
    }

    /// Multiplies amplitudes whose `q` bit is 1 by `factor` — the set-bit
    /// half of each block is one contiguous lane run.
    #[inline]
    fn kernel_phase_flip(&mut self, q: usize, factor: C64) {
        let stride = 1usize << q;
        for block in self.amps.chunks_exact_mut(stride << 1) {
            for a in &mut block[stride..] {
                *a *= factor;
            }
        }
    }

    #[inline]
    fn kernel_rz(&mut self, q: usize, theta: f64) {
        let stride = 1usize << q;
        let minus = C64::cis(-theta / 2.0);
        let plus = C64::cis(theta / 2.0);
        for block in self.amps.chunks_exact_mut(stride << 1) {
            let (lo, hi) = block.split_at_mut(stride);
            for a in lo {
                *a *= minus;
            }
            for a in hi {
                *a *= plus;
            }
        }
    }

    /// Visits every basis index whose `m1` and `m2` bits are both clear,
    /// in ascending order — the base-index enumeration shared by the
    /// two-qubit kernels, restructured from a full-register scan with bit
    /// tests into three nested stride loops over contiguous runs.
    #[inline]
    fn for_each_clear2(dim: usize, m1: usize, m2: usize, mut f: impl FnMut(usize)) {
        let (small, big) = if m1 < m2 { (m1, m2) } else { (m2, m1) };
        let mut hi = 0;
        while hi < dim {
            let mut mid = hi;
            while mid < hi + big {
                for base in mid..mid + small {
                    f(base);
                }
                mid += small << 1;
            }
            hi += big << 1;
        }
    }

    #[inline]
    fn kernel_cx(&mut self, control: usize, target: usize) {
        let cmask = 1usize << control;
        let tmask = 1usize << target;
        let dim = self.amps.len();
        let amps = &mut self.amps;
        Self::for_each_clear2(dim, cmask, tmask, |base| {
            amps.swap(base | cmask, base | cmask | tmask);
        });
    }

    #[inline]
    fn kernel_controlled_phase(&mut self, a: usize, b: usize, factor: C64) {
        let amask = 1usize << a;
        let bmask = 1usize << b;
        let dim = self.amps.len();
        let amps = &mut self.amps;
        Self::for_each_clear2(dim, amask, bmask, |base| {
            amps[base | amask | bmask] *= factor;
        });
    }

    #[inline]
    fn kernel_crz(&mut self, control: usize, target: usize, theta: f64) {
        let cmask = 1usize << control;
        let tmask = 1usize << target;
        let minus = C64::cis(-theta / 2.0);
        let plus = C64::cis(theta / 2.0);
        let dim = self.amps.len();
        let amps = &mut self.amps;
        Self::for_each_clear2(dim, cmask, tmask, |base| {
            amps[base | cmask] *= minus;
            amps[base | cmask | tmask] *= plus;
        });
    }

    #[inline]
    fn kernel_swap(&mut self, a: usize, b: usize) {
        let amask = 1usize << a;
        let bmask = 1usize << b;
        let dim = self.amps.len();
        let amps = &mut self.amps;
        Self::for_each_clear2(dim, amask, bmask, |base| {
            amps.swap(base | amask, base | bmask);
        });
    }

    #[inline]
    fn kernel_ccx(&mut self, c1: usize, c2: usize, t: usize) {
        let cmask = (1usize << c1) | (1usize << c2);
        let tmask = 1usize << t;
        for i in 0..self.amps.len() {
            if i & cmask == cmask && i & tmask == 0 {
                self.amps.swap(i, i | tmask);
            }
        }
    }

    #[inline]
    fn kernel_cswap(&mut self, c: usize, a: usize, b: usize) {
        let cmask = 1usize << c;
        let amask = 1usize << a;
        let bmask = 1usize << b;
        for i in 0..self.amps.len() {
            if i & cmask != 0 && i & amask != 0 && i & bmask == 0 {
                self.amps.swap(i, i ^ amask ^ bmask);
            }
        }
    }

    /// Applies a dense `2^n × 2^n` unitary to the whole register as one
    /// matrix–vector product.
    ///
    /// Combined with [`crate::circuit::Circuit::to_unitary`] this fuses a
    /// fixed subcircuit into a single operation: one cached matrix applied
    /// per state instead of replaying a gate list.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::DimensionMismatch`] if `u` is not
    /// `dim() × dim()`.
    pub fn apply_unitary(&mut self, u: &crate::matrix::CMatrix) -> Result<(), QsimError> {
        if u.rows() != self.dim() || u.cols() != self.dim() {
            // Report whichever dimension is off (rows first if both are).
            let actual = if u.rows() != self.dim() {
                u.rows()
            } else {
                u.cols()
            };
            return Err(QsimError::DimensionMismatch {
                expected: self.dim(),
                actual,
            });
        }
        self.amps = u.mul_vec(&self.amps);
        Ok(())
    }

    /// Probability of measuring qubit `q` as `|1⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::QubitOutOfRange`] for a bad operand.
    pub fn probability_one(&self, q: usize) -> Result<f64, QsimError> {
        self.check_qubits(&[q])?;
        let mask = 1usize << q;
        Ok(self
            .amps
            .iter()
            .enumerate()
            .filter(|(i, _)| i & mask != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum())
    }

    /// `⟨Z⟩` on qubit `q`: `P(0) − P(1)`.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::QubitOutOfRange`] for a bad operand.
    pub fn expectation_z(&self, q: usize) -> Result<f64, QsimError> {
        let p1 = self.probability_one(q)?;
        Ok(1.0 - 2.0 * p1)
    }

    /// Projects qubit `q` onto `outcome` and renormalises, returning the
    /// probability the projection had.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::QubitOutOfRange`] for a bad operand, or
    /// [`QsimError::InvalidProbability`] when the requested outcome has
    /// (numerically) zero probability.
    pub fn collapse(&mut self, q: usize, outcome: bool) -> Result<f64, QsimError> {
        let p1 = self.probability_one(q)?;
        let p = if outcome { p1 } else { 1.0 - p1 };
        if p <= 1e-15 {
            return Err(QsimError::InvalidProbability { value: p });
        }
        let mask = 1usize << q;
        let scale = p.sqrt().recip();
        for (i, a) in self.amps.iter_mut().enumerate() {
            let matches = (i & mask != 0) == outcome;
            *a = if matches { a.scale(scale) } else { C64::ZERO };
        }
        Ok(p)
    }

    /// Measures qubit `q`, sampling the outcome with `rng`, collapsing the
    /// state, and returning the observed bit.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::QubitOutOfRange`] for a bad operand.
    pub fn measure<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) -> Result<bool, QsimError> {
        let p1 = self.probability_one(q)?;
        let outcome = rng.gen::<f64>() < p1;
        // The sampled branch always has positive probability.
        self.collapse(q, outcome)?;
        Ok(outcome)
    }

    /// Resets qubit `q` to `|0⟩` *stochastically* (measure, then flip if the
    /// outcome was 1). For exact reset handling use the branching backend.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::QubitOutOfRange`] for a bad operand.
    pub fn reset<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) -> Result<(), QsimError> {
        if self.measure(q, rng)? {
            self.kernel_x(q);
        }
        Ok(())
    }

    /// Full probability distribution over basis states.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Draws `shots` samples of the full register.
    pub fn sample_counts<R: Rng + ?Sized>(
        &self,
        shots: u64,
        rng: &mut R,
    ) -> std::collections::HashMap<u64, u64> {
        let probs = self.probabilities();
        crate::sampling::sample_counts_by_index(&probs, shots, rng)
            .into_iter()
            .enumerate()
            .filter(|&(_, c)| c > 0)
            .map(|(idx, c)| (idx as u64, c))
            .collect()
    }

    /// Inner product `⟨self|other⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::DimensionMismatch`] if widths differ.
    pub fn inner_product(&self, other: &Statevector) -> Result<C64, QsimError> {
        if self.num_qubits != other.num_qubits {
            return Err(QsimError::DimensionMismatch {
                expected: self.dim(),
                actual: other.dim(),
            });
        }
        Ok(self
            .amps
            .iter()
            .zip(&other.amps)
            .map(|(a, b)| a.conj() * *b)
            .sum())
    }

    /// Fidelity `|⟨self|other⟩|²`.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::DimensionMismatch`] if widths differ.
    pub fn fidelity(&self, other: &Statevector) -> Result<f64, QsimError> {
        Ok(self.inner_product(other)?.norm_sqr())
    }

    /// Tensor product `self ⊗ other`; `other`'s qubits become the low bits.
    pub fn tensor(&self, other: &Statevector) -> Statevector {
        let mut amps = vec![C64::ZERO; self.dim() * other.dim()];
        for (i, &a) in self.amps.iter().enumerate() {
            if a == C64::ZERO {
                continue;
            }
            for (j, &b) in other.amps.iter().enumerate() {
                amps[(i << other.num_qubits) | j] = a * b;
            }
        }
        Statevector {
            num_qubits: self.num_qubits + other.num_qubits,
            amps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::f64::consts::PI;

    const TOL: f64 = 1e-12;

    #[test]
    fn new_state_is_all_zeros() {
        let sv = Statevector::new(3);
        assert_eq!(sv.dim(), 8);
        assert!(sv.amplitude(0).approx_eq(C64::ONE, TOL));
        assert!((sv.norm_sqr() - 1.0).abs() < TOL);
    }

    #[test]
    fn x_flips_qubit() {
        let mut sv = Statevector::new(2);
        sv.apply_gate(Gate::X, &[1]).unwrap();
        // |10> = index 2
        assert!(sv.amplitude(2).approx_eq(C64::ONE, TOL));
    }

    #[test]
    fn h_creates_uniform_superposition() {
        let mut sv = Statevector::new(1);
        sv.apply_gate(Gate::H, &[0]).unwrap();
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert!(sv.amplitude(0).approx_eq(C64::from_real(s), TOL));
        assert!(sv.amplitude(1).approx_eq(C64::from_real(s), TOL));
    }

    #[test]
    fn bell_state_probabilities() {
        let mut sv = Statevector::new(2);
        sv.apply_gate(Gate::H, &[0]).unwrap();
        sv.apply_gate(Gate::CX, &[0, 1]).unwrap();
        let p = sv.probabilities();
        assert!((p[0] - 0.5).abs() < TOL);
        assert!((p[1]).abs() < TOL);
        assert!((p[2]).abs() < TOL);
        assert!((p[3] - 0.5).abs() < TOL);
    }

    #[test]
    fn cx_control_order_matters() {
        // X on qubit 1, then CX with control=1 flips target 0.
        let mut sv = Statevector::new(2);
        sv.apply_gate(Gate::X, &[1]).unwrap();
        sv.apply_gate(Gate::CX, &[1, 0]).unwrap();
        // |11> = index 3
        assert!(sv.amplitude(3).approx_eq(C64::ONE, TOL));
        // Whereas control=0 (still |0⟩ before X... fresh state) does nothing.
        let mut sv2 = Statevector::new(2);
        sv2.apply_gate(Gate::X, &[1]).unwrap();
        sv2.apply_gate(Gate::CX, &[0, 1]).unwrap();
        assert!(sv2.amplitude(2).approx_eq(C64::ONE, TOL));
    }

    #[test]
    fn specialised_kernels_match_dense_matrices() {
        // Apply each gate via kernel and via dense matrix on a random state;
        // results must agree.
        use crate::matrix::CMatrix;
        let mut rng = StdRng::seed_from_u64(7);
        let gates: Vec<(Gate, Vec<usize>)> = vec![
            (Gate::X, vec![1]),
            (Gate::Z, vec![0]),
            (Gate::S, vec![2]),
            (Gate::T, vec![1]),
            (Gate::Phase(0.7), vec![0]),
            (Gate::RZ(1.3), vec![2]),
            (Gate::RX(0.5), vec![1]),
            (Gate::RY(2.1), vec![0]),
            (Gate::H, vec![2]),
            (Gate::CX, vec![0, 2]),
            (Gate::CZ, vec![1, 2]),
            (Gate::CPhase(0.9), vec![2, 0]),
            (Gate::CRZ(1.1), vec![0, 1]),
            (Gate::Swap, vec![0, 2]),
            (Gate::CCX, vec![2, 0, 1]),
            (Gate::CSwap, vec![1, 2, 0]),
        ];
        for (gate, qubits) in gates {
            // Random normalised 3-qubit state.
            let mut raw: Vec<C64> = (0..8)
                .map(|_| C64::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
                .collect();
            let norm: f64 = raw.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
            for a in &mut raw {
                *a = a.scale(1.0 / norm);
            }
            let sv0 = Statevector::from_amplitudes(raw.clone()).unwrap();

            // Kernel path.
            let mut sv_kernel = sv0.clone();
            sv_kernel.apply_gate(gate, &qubits).unwrap();

            // Dense path: build the full 8x8 unitary by embedding.
            let g = gate.matrix();
            let dim = 8usize;
            let mut full = CMatrix::zeros(dim, dim);
            for col in 0..dim {
                // Basis vector |col>, extract the bits of the operand qubits
                // (first operand = most significant in the gate matrix).
                let k = qubits.len();
                let mut sub_in = 0usize;
                for (pos, &q) in qubits.iter().enumerate() {
                    if col >> q & 1 == 1 {
                        sub_in |= 1 << (k - 1 - pos);
                    }
                }
                for sub_out in 0..(1 << k) {
                    let amp = g[(sub_out, sub_in)];
                    if amp == C64::ZERO {
                        continue;
                    }
                    let mut row = col;
                    for (pos, &q) in qubits.iter().enumerate() {
                        let bit = sub_out >> (k - 1 - pos) & 1;
                        row = (row & !(1 << q)) | (bit << q);
                    }
                    full[(row, col)] += amp;
                }
            }
            let dense = full.mul_vec(sv0.amplitudes());
            for (i, (&a, &b)) in sv_kernel.amplitudes().iter().zip(&dense).enumerate() {
                assert!(
                    a.approx_eq(b, 1e-10),
                    "gate {gate:?} on {qubits:?} mismatch at index {i}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn rotation_composition() {
        // RX(a) then RX(b) equals RX(a+b).
        let mut sv1 = Statevector::new(1);
        sv1.apply_gate(Gate::RX(0.4), &[0]).unwrap();
        sv1.apply_gate(Gate::RX(0.9), &[0]).unwrap();
        let mut sv2 = Statevector::new(1);
        sv2.apply_gate(Gate::RX(1.3), &[0]).unwrap();
        assert!((sv1.fidelity(&sv2).unwrap() - 1.0).abs() < TOL);
    }

    #[test]
    fn probability_one_and_expectation_z() {
        let mut sv = Statevector::new(1);
        sv.apply_gate(Gate::RY(PI / 3.0), &[0]).unwrap();
        // P(1) = sin^2(π/6) = 1/4.
        assert!((sv.probability_one(0).unwrap() - 0.25).abs() < TOL);
        assert!((sv.expectation_z(0).unwrap() - 0.5).abs() < TOL);
    }

    #[test]
    fn collapse_renormalises() {
        let mut sv = Statevector::new(2);
        sv.apply_gate(Gate::H, &[0]).unwrap();
        sv.apply_gate(Gate::CX, &[0, 1]).unwrap();
        let p = sv.collapse(0, true).unwrap();
        assert!((p - 0.5).abs() < TOL);
        // Collapsed Bell state is |11>.
        assert!(sv.amplitude(3).approx_eq(C64::ONE, TOL));
        assert!((sv.norm_sqr() - 1.0).abs() < TOL);
    }

    #[test]
    fn collapse_to_impossible_outcome_errors() {
        let mut sv = Statevector::new(1);
        assert!(matches!(
            sv.collapse(0, true),
            Err(QsimError::InvalidProbability { .. })
        ));
    }

    #[test]
    fn measure_is_deterministic_on_basis_states() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sv = Statevector::new(2);
        sv.apply_gate(Gate::X, &[1]).unwrap();
        assert!(!sv.measure(0, &mut rng).unwrap());
        assert!(sv.measure(1, &mut rng).unwrap());
    }

    #[test]
    fn reset_always_yields_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let mut sv = Statevector::new(1);
            sv.apply_gate(Gate::H, &[0]).unwrap();
            sv.reset(0, &mut rng).unwrap();
            assert!((sv.probability_one(0).unwrap()).abs() < TOL);
        }
    }

    #[test]
    fn sampling_matches_distribution() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut sv = Statevector::new(1);
        sv.apply_gate(Gate::RY(PI / 3.0), &[0]).unwrap();
        let counts = sv.sample_counts(20_000, &mut rng);
        let ones = *counts.get(&1).unwrap_or(&0) as f64 / 20_000.0;
        assert!((ones - 0.25).abs() < 0.02, "sampled {ones}");
    }

    #[test]
    fn inner_product_and_fidelity() {
        let mut a = Statevector::new(1);
        a.apply_gate(Gate::H, &[0]).unwrap();
        let b = Statevector::new(1);
        let ip = a.inner_product(&b).unwrap();
        assert!((ip.abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < TOL);
        assert!((a.fidelity(&b).unwrap() - 0.5).abs() < TOL);
        assert!((a.fidelity(&a).unwrap() - 1.0).abs() < TOL);
    }

    #[test]
    fn tensor_product_layout() {
        // |1> ⊗ |0> puts the high qubit from `self`.
        let mut one = Statevector::new(1);
        one.apply_gate(Gate::X, &[0]).unwrap();
        let zero = Statevector::new(1);
        let t = one.tensor(&zero);
        // self=|1> becomes bit 1 => index 2.
        assert!(t.amplitude(2).approx_eq(C64::ONE, TOL));
    }

    #[test]
    fn apply_unitary_matches_gate_application() {
        use crate::circuit::Circuit;
        let mut qc = Circuit::new(2);
        qc.h(0).cx(0, 1).rz(0.4, 1);
        let u = qc.to_unitary().unwrap();

        let mut via_matrix = Statevector::new(2);
        via_matrix.apply_unitary(&u).unwrap();
        let mut via_gates = Statevector::new(2);
        via_gates.apply_gate(Gate::H, &[0]).unwrap();
        via_gates.apply_gate(Gate::CX, &[0, 1]).unwrap();
        via_gates.apply_gate(Gate::RZ(0.4), &[1]).unwrap();
        assert!((via_matrix.fidelity(&via_gates).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn apply_unitary_rejects_wrong_dimensions() {
        use crate::matrix::CMatrix;
        let mut sv = Statevector::new(2);
        let err = sv.apply_unitary(&CMatrix::zeros(2, 2)).unwrap_err();
        assert!(matches!(
            err,
            QsimError::DimensionMismatch {
                expected: 4,
                actual: 2
            }
        ));
        // A non-square matrix with matching rows reports the bad columns.
        let err = sv.apply_unitary(&CMatrix::zeros(4, 2)).unwrap_err();
        assert!(matches!(
            err,
            QsimError::DimensionMismatch {
                expected: 4,
                actual: 2
            }
        ));
    }

    #[test]
    fn from_amplitudes_validation() {
        assert!(Statevector::from_amplitudes(vec![C64::ONE; 3]).is_err());
        assert!(Statevector::from_amplitudes(vec![C64::ONE, C64::ONE]).is_err());
        assert!(Statevector::from_amplitudes(vec![C64::ONE, C64::ZERO]).is_ok());
    }

    #[test]
    fn from_real_amplitudes_normalises_and_validates() {
        let sv = Statevector::from_real_amplitudes(&[3.0, 4.0]).unwrap();
        assert!((sv.amplitude(0).re - 0.6).abs() < TOL);
        assert!((sv.amplitude(1).re - 0.8).abs() < TOL);
        assert!(Statevector::from_real_amplitudes(&[-1.0, 0.0]).is_err());
        assert!(Statevector::from_real_amplitudes(&[0.0, 0.0]).is_err());
        assert!(Statevector::from_real_amplitudes(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn gate_errors_on_bad_operands() {
        let mut sv = Statevector::new(2);
        assert!(sv.apply_gate(Gate::H, &[4]).is_err());
        assert!(sv.apply_gate(Gate::CX, &[0, 0]).is_err());
        assert!(sv.apply_gate(Gate::CX, &[0]).is_err());
    }

    #[test]
    fn unitarity_preserves_norm() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut sv = Statevector::new(4);
        for _ in 0..100 {
            let q = rng.gen_range(0..4);
            let theta = rng.gen_range(0.0..2.0 * PI);
            match rng.gen_range(0..5) {
                0 => sv.apply_gate(Gate::RX(theta), &[q]).unwrap(),
                1 => sv.apply_gate(Gate::RY(theta), &[q]).unwrap(),
                2 => sv.apply_gate(Gate::RZ(theta), &[q]).unwrap(),
                3 => sv.apply_gate(Gate::H, &[q]).unwrap(),
                _ => {
                    let mut t = rng.gen_range(0..4);
                    if t == q {
                        t = (t + 1) % 4;
                    }
                    sv.apply_gate(Gate::CX, &[q, t]).unwrap();
                }
            }
            assert!((sv.norm_sqr() - 1.0).abs() < 1e-9);
        }
    }
}
