//! Pauli-string observables.
//!
//! Expectation values `⟨P⟩ = ⟨ψ|P|ψ⟩` (or `Tr(ρP)` for mixed states) for
//! tensor products of Pauli operators — the readout abstraction variational
//! models use (the QNN baseline reads `⟨Z₀⟩`) and a convenient diagnostic
//! for Quorum's transformed registers.

use crate::complex::C64;
use crate::density::DensityMatrix;
use crate::error::QsimError;
use crate::statevector::Statevector;
use std::fmt;
use std::str::FromStr;

/// A single-qubit Pauli operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pauli {
    /// Identity.
    I,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
}

/// A Pauli string: one [`Pauli`] per qubit, e.g. `ZIZ` on three qubits.
///
/// The string is written **most-significant qubit first**, matching ket
/// notation: `PauliString::from_str("ZX")` puts `Z` on qubit 1 and `X` on
/// qubit 0.
///
/// # Examples
///
/// ```
/// use qsim::pauli::PauliString;
/// use qsim::statevector::Statevector;
/// use qsim::gate::Gate;
///
/// let mut sv = Statevector::new(2);
/// sv.apply_gate(Gate::X, &[0]).unwrap();
/// let zz: PauliString = "ZZ".parse().unwrap();
/// // |01⟩: qubit0 = 1 (eigenvalue −1), qubit1 = 0 (+1) => ⟨ZZ⟩ = −1.
/// assert!((zz.expectation(&sv).unwrap() + 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PauliString {
    /// `ops[k]` acts on qubit `k` (LSB first internally).
    ops: Vec<Pauli>,
}

impl PauliString {
    /// Builds from per-qubit operators, `ops[k]` acting on qubit `k`.
    pub fn new(ops: Vec<Pauli>) -> Self {
        PauliString { ops }
    }

    /// The identity string on `n` qubits.
    pub fn identity(n: usize) -> Self {
        PauliString {
            ops: vec![Pauli::I; n],
        }
    }

    /// A single `Z` on `qubit` within an `n`-qubit register.
    ///
    /// # Panics
    ///
    /// Panics if `qubit >= n`.
    pub fn z_on(n: usize, qubit: usize) -> Self {
        assert!(qubit < n, "qubit out of range");
        let mut ops = vec![Pauli::I; n];
        ops[qubit] = Pauli::Z;
        PauliString { ops }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.ops.len()
    }

    /// The operator acting on `qubit`.
    pub fn op(&self, qubit: usize) -> Pauli {
        self.ops[qubit]
    }

    /// Weight: the number of non-identity factors.
    pub fn weight(&self) -> usize {
        self.ops.iter().filter(|&&p| p != Pauli::I).count()
    }

    /// Applies `P|ψ⟩` into a fresh amplitude buffer.
    fn apply_to_amps(&self, amps: &[C64]) -> Vec<C64> {
        let n = self.ops.len();
        let mut out = vec![C64::ZERO; amps.len()];
        for (i, &a) in amps.iter().enumerate() {
            if a == C64::ZERO {
                continue;
            }
            let mut j = i;
            let mut phase = C64::ONE;
            for (q, &p) in self.ops.iter().enumerate().take(n) {
                let bit = i >> q & 1;
                match p {
                    Pauli::I => {}
                    Pauli::X => j ^= 1 << q,
                    Pauli::Y => {
                        j ^= 1 << q;
                        // Y|0> = i|1>, Y|1> = -i|0>
                        phase *= if bit == 0 { C64::I } else { -C64::I };
                    }
                    Pauli::Z => {
                        if bit == 1 {
                            phase = -phase;
                        }
                    }
                }
            }
            out[j] += phase * a;
        }
        out
    }

    /// `⟨ψ|P|ψ⟩` for a pure state. Always real for Hermitian `P`.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::DimensionMismatch`] if the widths differ.
    pub fn expectation(&self, sv: &Statevector) -> Result<f64, QsimError> {
        if sv.num_qubits() != self.num_qubits() {
            return Err(QsimError::DimensionMismatch {
                expected: self.num_qubits(),
                actual: sv.num_qubits(),
            });
        }
        let transformed = self.apply_to_amps(sv.amplitudes());
        let value: C64 = sv
            .amplitudes()
            .iter()
            .zip(&transformed)
            .map(|(a, b)| a.conj() * *b)
            .sum();
        Ok(value.re)
    }

    /// `Tr(ρP)` for a mixed state.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::DimensionMismatch`] if the widths differ.
    pub fn expectation_density(&self, rho: &DensityMatrix) -> Result<f64, QsimError> {
        if rho.num_qubits() != self.num_qubits() {
            return Err(QsimError::DimensionMismatch {
                expected: self.num_qubits(),
                actual: rho.num_qubits(),
            });
        }
        // Tr(ρP) = Σ_i (ρP)[i,i] = Σ_{i,j} ρ[i,j] P[j,i]; use P columns via
        // apply_to_amps on basis vectors is wasteful — instead apply P to
        // each row of ρ read as a bra.
        let m = rho.to_cmatrix();
        let dim = m.rows();
        // Build P's action once per basis state j: P|j> = phase(j) |perm(j)>.
        let mut perm = vec![0usize; dim];
        let mut phase = vec![C64::ONE; dim];
        for j in 0..dim {
            let mut basis = vec![C64::ZERO; dim];
            basis[j] = C64::ONE;
            let out = self.apply_to_amps(&basis);
            let (target, &amp) = out
                .iter()
                .enumerate()
                .find(|(_, a)| a.norm_sqr() > 0.5)
                .expect("Pauli strings permute basis states");
            perm[j] = target;
            phase[j] = amp;
        }
        let mut total = C64::ZERO;
        for j in 0..dim {
            // P[perm(j), j] = phase(j)  =>  Tr(ρP) = Σ_j ρ[j? ...]
            total += m[(j, perm[j])] * phase[perm[j]];
        }
        Ok(total.re)
    }
}

impl FromStr for PauliString {
    type Err = QsimError;

    /// Parses ket-ordered text like `"ZIX"` (leftmost = highest qubit).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut ops = Vec::with_capacity(s.len());
        for ch in s.chars().rev() {
            ops.push(match ch.to_ascii_uppercase() {
                'I' => Pauli::I,
                'X' => Pauli::X,
                'Y' => Pauli::Y,
                'Z' => Pauli::Z,
                other => {
                    return Err(QsimError::Unsupported(format!(
                        "invalid Pauli character '{other}'"
                    )))
                }
            });
        }
        if ops.is_empty() {
            return Err(QsimError::Unsupported("empty Pauli string".into()));
        }
        Ok(PauliString { ops })
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &p in self.ops.iter().rev() {
            let c = match p {
                Pauli::I => 'I',
                Pauli::X => 'X',
                Pauli::Y => 'Y',
                Pauli::Z => 'Z',
            };
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    const TOL: f64 = 1e-12;

    #[test]
    fn parse_and_display_round_trip() {
        let p: PauliString = "ZIXY".parse().unwrap();
        assert_eq!(p.num_qubits(), 4);
        assert_eq!(p.to_string(), "ZIXY");
        // Leftmost char is the highest qubit.
        assert_eq!(p.op(3), Pauli::Z);
        assert_eq!(p.op(0), Pauli::Y);
        assert_eq!(p.weight(), 3);
        assert!("ZQ".parse::<PauliString>().is_err());
        assert!("".parse::<PauliString>().is_err());
    }

    #[test]
    fn z_expectation_on_basis_states() {
        let mut sv = Statevector::new(2);
        let z0 = PauliString::z_on(2, 0);
        assert!((z0.expectation(&sv).unwrap() - 1.0).abs() < TOL);
        sv.apply_gate(Gate::X, &[0]).unwrap();
        assert!((z0.expectation(&sv).unwrap() + 1.0).abs() < TOL);
    }

    #[test]
    fn x_expectation_on_plus_state() {
        let mut sv = Statevector::new(1);
        sv.apply_gate(Gate::H, &[0]).unwrap();
        let x: PauliString = "X".parse().unwrap();
        assert!((x.expectation(&sv).unwrap() - 1.0).abs() < TOL);
        let z: PauliString = "Z".parse().unwrap();
        assert!(z.expectation(&sv).unwrap().abs() < TOL);
    }

    #[test]
    fn y_expectation_on_circular_state() {
        // S·H|0> = (|0> + i|1>)/√2, the +1 eigenstate of Y.
        let mut sv = Statevector::new(1);
        sv.apply_gate(Gate::H, &[0]).unwrap();
        sv.apply_gate(Gate::S, &[0]).unwrap();
        let y: PauliString = "Y".parse().unwrap();
        assert!((y.expectation(&sv).unwrap() - 1.0).abs() < TOL);
    }

    #[test]
    fn zz_correlation_of_bell_state() {
        let mut sv = Statevector::new(2);
        sv.apply_gate(Gate::H, &[0]).unwrap();
        sv.apply_gate(Gate::CX, &[0, 1]).unwrap();
        let zz: PauliString = "ZZ".parse().unwrap();
        let xx: PauliString = "XX".parse().unwrap();
        let yy: PauliString = "YY".parse().unwrap();
        assert!((zz.expectation(&sv).unwrap() - 1.0).abs() < TOL);
        assert!((xx.expectation(&sv).unwrap() - 1.0).abs() < TOL);
        assert!((yy.expectation(&sv).unwrap() + 1.0).abs() < TOL);
    }

    #[test]
    fn identity_expectation_is_one() {
        let mut sv = Statevector::new(3);
        sv.apply_gate(Gate::RY(1.1), &[0]).unwrap();
        sv.apply_gate(Gate::CX, &[0, 2]).unwrap();
        let id = PauliString::identity(3);
        assert!((id.expectation(&sv).unwrap() - 1.0).abs() < TOL);
    }

    #[test]
    fn density_expectation_matches_statevector() {
        let mut sv = Statevector::new(2);
        sv.apply_gate(Gate::RY(0.8), &[0]).unwrap();
        sv.apply_gate(Gate::CX, &[0, 1]).unwrap();
        sv.apply_gate(Gate::RZ(0.4), &[1]).unwrap();
        let rho = DensityMatrix::from_statevector(&sv);
        for text in ["ZI", "IZ", "XX", "YZ", "YY"] {
            let p: PauliString = text.parse().unwrap();
            let a = p.expectation(&sv).unwrap();
            let b = p.expectation_density(&rho).unwrap();
            assert!((a - b).abs() < 1e-10, "{text}: {a} vs {b}");
        }
    }

    #[test]
    fn mixed_state_expectation() {
        // Maximally mixed single qubit: every non-identity Pauli reads 0.
        let mut rho = DensityMatrix::new(1).unwrap();
        rho.apply_gate(Gate::H, &[0]).unwrap();
        rho.dephase(0).unwrap();
        rho.apply_gate(Gate::H, &[0]).unwrap();
        rho.dephase(0).unwrap();
        let z: PauliString = "Z".parse().unwrap();
        assert!(z.expectation_density(&rho).unwrap().abs() < 1e-10);
    }

    #[test]
    fn matches_statevector_expectation_z() {
        let mut sv = Statevector::new(2);
        sv.apply_gate(Gate::RY(0.9), &[1]).unwrap();
        let z1 = PauliString::z_on(2, 1);
        assert!((z1.expectation(&sv).unwrap() - sv.expectation_z(1).unwrap()).abs() < TOL);
    }

    #[test]
    fn dimension_mismatch_errors() {
        let sv = Statevector::new(2);
        let p: PauliString = "ZZZ".parse().unwrap();
        assert!(p.expectation(&sv).is_err());
    }
}
