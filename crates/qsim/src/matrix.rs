//! Dense complex matrices for gate algebra and batched state evolution.
//!
//! Gates are at most 8×8 (three-qubit CSWAP), so a simple row-major
//! `Vec<C64>` representation is both adequate and cache-friendly. The type is
//! used for gate definitions, unitarity checks, transpiler verification,
//! Kraus-channel algebra — and, through the blocked [`CMatrix::matmul`]
//! kernel, for applying a fused unitary to many statevectors packed
//! column-wise in one matrix–matrix product (the batched analytic scoring
//! path) or a fused superoperator to many `vec(ρ)` columns (the batched
//! density scoring path). The panel kernel itself lives in
//! [`crate::kernel`]: a split-complex structure-of-arrays loop with an
//! optional runtime-dispatched AVX2/FMA path (`--features simd`), pinned
//! against the scalar oracle kept on [`CMatrix::matmul_scalar`].
//! Single-state evolution uses specialised kernels in
//! [`crate::statevector`] and [`crate::density`].

use crate::complex::C64;
use crate::error::QsimError;
use crate::kernel::{self, PanelScratch};
use std::cell::RefCell;
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// Output columns per GEMM panel — the unit of parallelism in
/// [`CMatrix::matmul_threaded`] and the width of the split-complex repack
/// in [`crate::kernel`]. Measured on the flagship GEMM shapes
/// (`8×8·8×96` encoder and `64×64·64×96` superoperator products),
/// widths 32–128 are equivalent within noise for the scalar, SoA and
/// AVX2 kernels alike while 16 trails slightly (repack overhead and
/// partial register tiles); 64 is chosen from that plateau because it
/// halves the panel count — and thus stitch/fan-out overhead — relative
/// to the previous 32-column blocks while keeping the SoA panel copy
/// (`2 × a_cols × 64` doubles — 64 KiB at the flagship density width
/// `4³ = 64`) comfortably L2-resident at every supported register
/// width.
pub const GEMM_COL_BLOCK: usize = 64;

// Panel starts must preserve lane alignment: threaded panels and the
// sequential full-width panel have to agree on which columns sit in
// vector tiles vs the scalar remainder, or FMA builds would diverge
// bit-wise across thread counts.
const _: () = assert!(GEMM_COL_BLOCK.is_multiple_of(kernel::LANES));

thread_local! {
    /// Panel scratch for sequential GEMMs: repeated products on a fixed
    /// configuration (one per group per scoring pass) reuse one repack
    /// buffer per thread instead of reallocating every call. Worker
    /// threads spawned by [`CMatrix::matmul_threaded`] get their own
    /// per-call scratch through
    /// [`crate::parallel::map_indexed_with`] instead.
    static SEQ_SCRATCH: RefCell<PanelScratch> = RefCell::new(PanelScratch::new());
}

/// A dense, row-major complex matrix.
///
/// # Examples
///
/// ```
/// use qsim::matrix::CMatrix;
/// use qsim::complex::C64;
///
/// let x = CMatrix::from_rows(&[
///     &[C64::ZERO, C64::ONE],
///     &[C64::ONE, C64::ZERO],
/// ]);
/// assert!(x.is_unitary(1e-12));
/// assert!((&x * &x).approx_eq(&CMatrix::identity(2), 1e-12));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<C64>,
}

impl CMatrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMatrix {
            rows,
            cols,
            data: vec![C64::ZERO; rows * cols],
        }
    }

    /// Reshapes to `rows × cols` with every entry zero, reusing the
    /// backing allocation when its capacity suffices — the reset step for
    /// pooled scratch matrices on steady-state scoring paths.
    pub fn resize_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, C64::ZERO);
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = C64::ONE;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[C64]]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "inconsistent row length");
            data.extend_from_slice(r);
        }
        CMatrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a square matrix from a flat row-major slice.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::DimensionMismatch`] when `data.len()` is not a
    /// perfect square.
    pub fn from_flat(data: &[C64]) -> Result<Self, QsimError> {
        let n = (data.len() as f64).sqrt().round() as usize;
        if n * n != data.len() {
            return Err(QsimError::DimensionMismatch {
                expected: n * n,
                actual: data.len(),
            });
        }
        Ok(CMatrix {
            rows: n,
            cols: n,
            data: data.to_vec(),
        })
    }

    /// Builds a `dim × columns.len()` matrix whose `j`-th column is
    /// `columns[j]` — convenient when each column is a statevector to be
    /// pushed through [`CMatrix::matmul`] (hot paths that already own
    /// scratch buffers write columns in place instead).
    ///
    /// # Panics
    ///
    /// Panics if `columns` is empty or the columns have inconsistent
    /// lengths.
    pub fn from_columns(columns: &[Vec<C64>]) -> Self {
        assert!(!columns.is_empty(), "matrix must have at least one column");
        let rows = columns[0].len();
        let mut m = CMatrix::zeros(rows, columns.len());
        for (j, col) in columns.iter().enumerate() {
            assert_eq!(col.len(), rows, "inconsistent column length");
            for (i, &v) in col.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of the row-major backing storage.
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }

    /// Mutable view of the row-major backing storage — the door for
    /// in-place panel kernels (e.g. the lockstep prep's batched RY
    /// conjugation, [`crate::density::ry_conjugate_columns`]) that update
    /// a packed batch without reallocating it.
    pub fn as_mut_slice(&mut self) -> &mut [C64] {
        &mut self.data
    }

    /// Immutable view of row `i` (contiguous in the row-major layout).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> &[C64] {
        assert!(i < self.rows, "row index out of range");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` out of the row-major storage.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn column(&self, j: usize) -> Vec<C64> {
        assert!(j < self.cols, "column index out of range");
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Conjugate transpose `A†`.
    pub fn dagger(&self) -> CMatrix {
        let mut out = CMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)].conj();
            }
        }
        out
    }

    /// Matrix trace. Defined for square matrices only.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> C64 {
        assert_eq!(self.rows, self.cols, "trace requires a square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Kronecker (tensor) product `self ⊗ other`.
    pub fn kron(&self, other: &CMatrix) -> CMatrix {
        let mut out = CMatrix::zeros(self.rows * other.rows, self.cols * other.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a = self[(i, j)];
                for k in 0..other.rows {
                    for l in 0..other.cols {
                        out[(i * other.rows + k, j * other.cols + l)] = a * other[(k, l)];
                    }
                }
            }
        }
        out
    }

    /// Scales every entry by a complex factor.
    pub fn scaled(&self, k: C64) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&z| z * k).collect(),
        }
    }

    /// Matrix–vector product `A·v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[C64]) -> Vec<C64> {
        assert_eq!(v.len(), self.cols, "vector length must match columns");
        let mut out = vec![C64::ZERO; self.rows];
        for (i, slot) in out.iter_mut().enumerate() {
            let mut acc = C64::ZERO;
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            for (a, x) in row.iter().zip(v) {
                acc += *a * *x;
            }
            *slot = acc;
        }
        out
    }

    /// Matrix–matrix product `A·B` through the blocked GEMM kernel.
    ///
    /// Sequential convenience wrapper around
    /// [`CMatrix::matmul_threaded`]; see there for the kernel layout.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::DimensionMismatch`] when
    /// `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &CMatrix) -> Result<CMatrix, QsimError> {
        self.matmul_threaded(rhs, 1)
    }

    /// Matrix–matrix product `A·B`, blocked over column panels of `rhs`
    /// and fanned out over up to `threads` OS threads via
    /// [`crate::parallel::map_indexed_with`] (each worker owns one panel
    /// scratch for its whole panel stream).
    ///
    /// Each panel of [`GEMM_COL_BLOCK`] output columns is computed
    /// independently by the split-complex register-tile kernel in
    /// [`crate::kernel`], so the per-column accumulation order is
    /// identical for every thread count — results are bit-for-bit
    /// deterministic regardless of `threads`. Without the `simd` feature
    /// the kernel is value-identical to the scalar oracle on
    /// [`CMatrix::matmul_scalar`] (see [`crate::kernel`] for the exact
    /// equality contract); with it, an AVX2/FMA path is selected at
    /// runtime where the CPU supports it.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::DimensionMismatch`] when
    /// `self.cols() != rhs.rows()`.
    pub fn matmul_threaded(&self, rhs: &CMatrix, threads: usize) -> Result<CMatrix, QsimError> {
        let mut out = CMatrix::zeros(0, 0);
        self.matmul_threaded_into(rhs, threads, &mut out)?;
        Ok(out)
    }

    /// [`CMatrix::matmul_threaded`] writing into a caller-owned output
    /// matrix — the allocation-free seam for steady-state scoring loops
    /// that run the same product shape every batch. `out` is reshaped to
    /// `self.rows() × rhs.cols()` and overwritten; its backing storage is
    /// reused across calls. Results are bit-identical to the allocating
    /// path (the output buffer never feeds back into the product).
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::DimensionMismatch`] when
    /// `self.cols() != rhs.rows()`; `out` is untouched on error.
    pub fn matmul_threaded_into(
        &self,
        rhs: &CMatrix,
        threads: usize,
        out: &mut CMatrix,
    ) -> Result<(), QsimError> {
        if self.cols != rhs.rows {
            return Err(QsimError::DimensionMismatch {
                expected: self.cols,
                actual: rhs.rows,
            });
        }
        if rhs.cols == 0 || self.rows == 0 {
            out.resize_zeroed(self.rows, rhs.cols);
            return Ok(());
        }
        if threads <= 1 {
            // Sequential fast path: one full-width panel *is* the
            // row-major result — no zero-fill, no stitching — through the
            // thread-local scratch so repeated GEMMs reuse their buffers.
            out.rows = self.rows;
            out.cols = rhs.cols;
            SEQ_SCRATCH.with(|scratch| {
                let mut scratch = scratch.borrow_mut();
                self.mul_panel_into(rhs, 0, rhs.cols, &mut scratch, &mut out.data);
                // Don't pin extreme-shape buffers on this thread forever.
                scratch.trim();
            });
            return Ok(());
        }
        out.resize_zeroed(self.rows, rhs.cols);
        let num_panels = rhs.cols.div_ceil(GEMM_COL_BLOCK);
        let panels =
            crate::parallel::map_indexed_with(num_panels, threads, PanelScratch::new, |s, p| {
                let c0 = p * GEMM_COL_BLOCK;
                let c1 = (c0 + GEMM_COL_BLOCK).min(rhs.cols);
                self.mul_panel(rhs, c0, c1, s)
            });
        // Stitch the row-major panels back into the row-major output.
        for (p, panel) in panels.iter().enumerate() {
            let c0 = p * GEMM_COL_BLOCK;
            let width = (c0 + GEMM_COL_BLOCK).min(rhs.cols) - c0;
            for i in 0..self.rows {
                out.data[i * rhs.cols + c0..i * rhs.cols + c0 + width]
                    .copy_from_slice(&panel[i * width..(i + 1) * width]);
            }
        }
        Ok(())
    }

    /// Matrix–matrix product through the scalar oracle kernel only — the
    /// bit-exact reference the SoA/AVX2 kernels are pinned against, and
    /// the baseline the SIMD speedup is benchmarked from. Always
    /// sequential; production code wants [`CMatrix::matmul`].
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::DimensionMismatch`] when
    /// `self.cols() != rhs.rows()`.
    pub fn matmul_scalar(&self, rhs: &CMatrix) -> Result<CMatrix, QsimError> {
        if self.cols != rhs.rows {
            return Err(QsimError::DimensionMismatch {
                expected: self.cols,
                actual: rhs.rows,
            });
        }
        if rhs.cols == 0 || self.rows == 0 {
            return Ok(CMatrix::zeros(self.rows, rhs.cols));
        }
        Ok(CMatrix {
            rows: self.rows,
            cols: rhs.cols,
            data: kernel::mul_panel_scalar(
                &self.data, self.rows, self.cols, &rhs.data, rhs.cols, 0, rhs.cols,
            ),
        })
    }

    /// One GEMM column panel: the row-major `self.rows × (c1 − c0)` block
    /// of `self · rhs` covering output columns `c0..c1`, through the
    /// dispatching split-complex kernel.
    fn mul_panel(
        &self,
        rhs: &CMatrix,
        c0: usize,
        c1: usize,
        scratch: &mut PanelScratch,
    ) -> Vec<C64> {
        kernel::mul_panel(
            &self.data, self.rows, self.cols, &rhs.data, rhs.cols, c0, c1, scratch,
        )
    }

    /// [`CMatrix::mul_panel`] into a caller-owned buffer (cleared and
    /// refilled; capacity reused).
    fn mul_panel_into(
        &self,
        rhs: &CMatrix,
        c0: usize,
        c1: usize,
        scratch: &mut PanelScratch,
        panel: &mut Vec<C64>,
    ) {
        kernel::mul_panel_into(
            &self.data, self.rows, self.cols, &rhs.data, rhs.cols, c0, c1, scratch, panel,
        );
    }

    /// Returns `true` when every entry is within `tol` of `other`'s.
    pub fn approx_eq(&self, other: &CMatrix, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// Returns `true` when `self` equals `other` up to a global phase
    /// `e^{iφ}`. Used to validate transpiler rewrites, which are only
    /// required to preserve physics (global phase is unobservable).
    pub fn approx_eq_up_to_phase(&self, other: &CMatrix, tol: f64) -> bool {
        if self.rows != other.rows || self.cols != other.cols {
            return false;
        }
        // Find the entry of largest modulus in `other` to anchor the phase.
        let (idx, _) = other
            .data
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.norm_sqr().total_cmp(&b.norm_sqr()))
            .expect("matrix is non-empty");
        if other.data[idx].norm_sqr() < tol * tol {
            return self.approx_eq(other, tol);
        }
        let phase = self.data[idx] / other.data[idx];
        if (phase.abs() - 1.0).abs() > tol.max(1e-9) {
            return false;
        }
        self.approx_eq(&other.scaled(phase), tol)
    }

    /// Checks `A†A = I` within `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        let product = &self.dagger() * self;
        product.approx_eq(&CMatrix::identity(self.rows), tol)
    }

    /// Checks `A = A†` within `tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        self.rows == self.cols && self.approx_eq(&self.dagger(), tol)
    }
}

impl Default for CMatrix {
    /// The empty `0 × 0` matrix — the initial state of pooled scratch
    /// matrices that grow on first use.
    fn default() -> Self {
        CMatrix::zeros(0, 0)
    }
}

impl std::ops::Index<(usize, usize)> for CMatrix {
    type Output = C64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &C64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut C64 {
        &mut self.data[i * self.cols + j]
    }
}

impl Mul for &CMatrix {
    type Output = CMatrix;
    fn mul(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        self.matmul(rhs).expect("dimensions checked above")
    }
}

impl Add for &CMatrix {
    type Output = CMatrix;
    fn add(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a + *b)
                .collect(),
        }
    }
}

impl Sub for &CMatrix {
    type Output = CMatrix;
    fn sub(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a - *b)
                .collect(),
        }
    }
}

impl fmt::Display for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> C64 {
        C64::new(re, im)
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let a = CMatrix::from_rows(&[&[c(1.0, 1.0), c(2.0, 0.0)], &[c(0.0, -1.0), c(3.0, 0.5)]]);
        let i = CMatrix::identity(2);
        assert!((&a * &i).approx_eq(&a, 1e-12));
        assert!((&i * &a).approx_eq(&a, 1e-12));
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = CMatrix::from_rows(&[&[c(1.0, 0.0), c(2.0, 0.0)], &[c(3.0, 0.0), c(4.0, 0.0)]]);
        let b = CMatrix::from_rows(&[&[c(5.0, 0.0), c(6.0, 0.0)], &[c(7.0, 0.0), c(8.0, 0.0)]]);
        let p = &a * &b;
        assert!(p.approx_eq(
            &CMatrix::from_rows(&[&[c(19.0, 0.0), c(22.0, 0.0)], &[c(43.0, 0.0), c(50.0, 0.0)]]),
            1e-12
        ));
    }

    #[test]
    fn dagger_reverses_products() {
        let a = CMatrix::from_rows(&[&[c(1.0, 2.0), c(0.0, 1.0)], &[c(2.0, 0.0), c(1.0, -1.0)]]);
        let b = CMatrix::from_rows(&[&[c(0.5, 0.0), c(1.0, 1.0)], &[c(0.0, -2.0), c(3.0, 0.0)]]);
        let lhs = (&a * &b).dagger();
        let rhs = &b.dagger() * &a.dagger();
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn trace_is_sum_of_diagonal() {
        let a = CMatrix::from_rows(&[&[c(1.0, 2.0), c(9.0, 9.0)], &[c(9.0, 9.0), c(3.0, -1.0)]]);
        assert!(a.trace().approx_eq(c(4.0, 1.0), 1e-12));
    }

    #[test]
    fn kron_dimensions_and_values() {
        let x = CMatrix::from_rows(&[&[C64::ZERO, C64::ONE], &[C64::ONE, C64::ZERO]]);
        let i = CMatrix::identity(2);
        let xi = x.kron(&i);
        assert_eq!(xi.rows(), 4);
        // X ⊗ I swaps the two-qubit basis blocks: |0a> <-> |1a>.
        let v = vec![c(1.0, 0.0), c(2.0, 0.0), c(3.0, 0.0), c(4.0, 0.0)];
        let w = xi.mul_vec(&v);
        assert!(w[0].approx_eq(c(3.0, 0.0), 1e-12));
        assert!(w[1].approx_eq(c(4.0, 0.0), 1e-12));
        assert!(w[2].approx_eq(c(1.0, 0.0), 1e-12));
        assert!(w[3].approx_eq(c(2.0, 0.0), 1e-12));
    }

    #[test]
    fn unitarity_check_accepts_hadamard_rejects_scaled() {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let h = CMatrix::from_rows(&[&[c(s, 0.0), c(s, 0.0)], &[c(s, 0.0), c(-s, 0.0)]]);
        assert!(h.is_unitary(1e-12));
        assert!(!h.scaled(c(2.0, 0.0)).is_unitary(1e-9));
    }

    #[test]
    fn hermitian_check() {
        let a = CMatrix::from_rows(&[&[c(2.0, 0.0), c(1.0, 1.0)], &[c(1.0, -1.0), c(5.0, 0.0)]]);
        assert!(a.is_hermitian(1e-12));
        let b = CMatrix::from_rows(&[&[c(2.0, 0.0), c(1.0, 1.0)], &[c(1.0, 1.0), c(5.0, 0.0)]]);
        assert!(!b.is_hermitian(1e-9));
    }

    #[test]
    fn phase_insensitive_equality() {
        let a = CMatrix::identity(2);
        let b = a.scaled(C64::cis(0.7));
        assert!(b.approx_eq_up_to_phase(&a, 1e-12));
        assert!(!b.approx_eq(&a, 1e-9));
        let c_ = CMatrix::from_rows(&[&[C64::ZERO, C64::ONE], &[C64::ONE, C64::ZERO]]);
        assert!(!c_.approx_eq_up_to_phase(&a, 1e-9));
    }

    #[test]
    fn from_flat_rejects_non_square() {
        assert!(CMatrix::from_flat(&[C64::ZERO; 3]).is_err());
        assert!(CMatrix::from_flat(&[C64::ZERO; 4]).is_ok());
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = CMatrix::from_rows(&[&[c(1.0, 1.0), c(2.0, 2.0)], &[c(3.0, 3.0), c(4.0, 4.0)]]);
        let b = CMatrix::identity(2);
        let sum = &a + &b;
        let back = &sum - &b;
        assert!(back.approx_eq(&a, 1e-12));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_dimension_mismatch_panics() {
        let a = CMatrix::zeros(2, 3);
        let b = CMatrix::zeros(2, 2);
        let _ = &a * &b;
    }

    /// Pseudo-random but deterministic dense test matrix.
    fn dense(rows: usize, cols: usize, salt: u64) -> CMatrix {
        let mut m = CMatrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                let t = (i * cols + j) as f64 + salt as f64 * 0.37;
                m[(i, j)] = c((t * 0.7311).sin(), (t * 1.1931).cos());
            }
        }
        m
    }

    #[test]
    fn gemm_identity_law() {
        let m = dense(8, 40, 1);
        let i = CMatrix::identity(8);
        assert!(i.matmul(&m).unwrap().approx_eq(&m, 1e-12));
    }

    #[test]
    fn gemm_composition_law() {
        // U·(V·M) = (U·V)·M across a panel boundary (40 > GEMM_COL_BLOCK).
        let u = dense(8, 8, 2);
        let v = dense(8, 8, 3);
        let m = dense(8, 40, 4);
        let nested = u.matmul(&v.matmul(&m).unwrap()).unwrap();
        let fused = u.matmul(&v).unwrap().matmul(&m).unwrap();
        assert!(nested.approx_eq(&fused, 1e-9));
    }

    #[test]
    fn gemm_agrees_with_repeated_apply_unitary_matvecs() {
        use crate::circuit::Circuit;
        use crate::statevector::Statevector;

        let mut qc = Circuit::new(3);
        qc.h(0).ry(0.8, 1).cx(0, 1).rz(1.3, 2).cx(1, 2);
        let u = qc.to_unitary().unwrap();

        // 37 unit-norm columns (crosses the panel boundary with a ragged
        // final panel).
        let cols: Vec<Vec<C64>> = (0..37)
            .map(|j| {
                let raw: Vec<C64> = (0..8)
                    .map(|i| c(((i * 37 + j) as f64 * 0.51).sin(), 0.0))
                    .collect();
                let norm: f64 = raw.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
                raw.iter().map(|&a| a * c(1.0 / norm, 0.0)).collect()
            })
            .collect();
        let packed = CMatrix::from_columns(&cols);
        let product = u.matmul(&packed).unwrap();

        for (j, col) in cols.iter().enumerate() {
            let mut sv = Statevector::from_amplitudes(col.clone()).unwrap();
            sv.apply_unitary(&u).unwrap();
            for (i, &expected) in sv.amplitudes().iter().enumerate() {
                assert!(
                    product[(i, j)].approx_eq(expected, 1e-12),
                    "column {j} row {i}: {} vs {}",
                    product[(i, j)],
                    expected
                );
            }
        }
    }

    #[test]
    fn gemm_non_square_shapes() {
        let a = dense(3, 5, 7);
        let b = dense(5, 2, 8);
        let p = a.matmul(&b).unwrap();
        assert_eq!((p.rows(), p.cols()), (3, 2));
        // Spot-check one entry against the definition.
        let mut expected = C64::ZERO;
        for k in 0..5 {
            expected += a[(2, k)] * b[(k, 1)];
        }
        assert!(p[(2, 1)].approx_eq(expected, 1e-12));
    }

    #[test]
    fn gemm_shape_mismatch_is_an_error() {
        let a = CMatrix::zeros(2, 3);
        let b = CMatrix::zeros(2, 2);
        assert!(matches!(
            a.matmul(&b),
            Err(QsimError::DimensionMismatch {
                expected: 3,
                actual: 2
            })
        ));
    }

    #[test]
    fn gemm_threaded_matches_sequential_bit_for_bit() {
        let a = dense(16, 16, 11);
        let b = dense(16, 100, 12); // four panels, ragged tail
        let seq = a.matmul_threaded(&b, 1).unwrap();
        for threads in [2, 4, 8] {
            let par = a.matmul_threaded(&b, threads).unwrap();
            assert_eq!(seq.as_slice(), par.as_slice(), "threads = {threads}");
        }
    }

    #[test]
    fn gemm_matches_scalar_oracle_across_shapes() {
        // The dispatching kernel (SoA, or AVX2 under `--features simd`)
        // against the bit-exact scalar oracle, over shapes that exercise
        // ragged panels and remainder lanes.
        for (rows, inner, cols) in [(1, 1, 1), (3, 5, 2), (8, 8, 96), (16, 16, 100), (5, 9, 67)] {
            let a = dense(rows, inner, 31);
            let b = dense(inner, cols, 32);
            let oracle = a.matmul_scalar(&b).unwrap();
            let fast = a.matmul(&b).unwrap();
            if qsim_kernel_simd_active() {
                assert!(fast.approx_eq(&oracle, 1e-12), "{rows}x{inner}x{cols}");
            } else {
                assert_eq!(fast.as_slice(), oracle.as_slice(), "{rows}x{inner}x{cols}");
            }
            let threaded = a.matmul_threaded(&b, 4).unwrap();
            assert_eq!(fast.as_slice(), threaded.as_slice());
        }
    }

    fn qsim_kernel_simd_active() -> bool {
        crate::kernel::simd_active()
    }

    #[test]
    fn matmul_scalar_validates_shapes_like_matmul() {
        let a = CMatrix::zeros(2, 3);
        let b = CMatrix::zeros(2, 2);
        assert!(matches!(
            a.matmul_scalar(&b),
            Err(QsimError::DimensionMismatch { .. })
        ));
        let empty = CMatrix::zeros(0, 4);
        let tall = CMatrix::zeros(4, 7);
        let p = empty.matmul_scalar(&tall).unwrap();
        assert_eq!((p.rows(), p.cols()), (0, 7));
    }

    #[test]
    fn gemm_matches_operator_mul() {
        let a = dense(6, 6, 21);
        let b = dense(6, 6, 22);
        assert!((&a * &b).approx_eq(&a.matmul(&b).unwrap(), 1e-15));
    }

    #[test]
    fn from_columns_round_trips_through_column() {
        let cols = vec![
            vec![c(1.0, 0.0), c(2.0, -1.0)],
            vec![c(0.0, 3.0), c(4.0, 0.5)],
            vec![c(5.0, 5.0), c(6.0, -6.0)],
        ];
        let m = CMatrix::from_columns(&cols);
        assert_eq!((m.rows(), m.cols()), (2, 3));
        for (j, col) in cols.iter().enumerate() {
            assert_eq!(&m.column(j), col);
        }
        assert_eq!(m.row(0), &[cols[0][0], cols[1][0], cols[2][0]]);
    }
}
