//! Small dense complex matrices for gate algebra.
//!
//! Gates are at most 8×8 (three-qubit CSWAP), so a simple row-major
//! `Vec<C64>` representation is both adequate and cache-friendly. The type is
//! used for gate definitions, unitarity checks, transpiler verification, and
//! Kraus-channel algebra — not for state evolution, which uses specialised
//! kernels in [`crate::statevector`] and [`crate::density`].

use crate::complex::C64;
use crate::error::QsimError;
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A dense, row-major complex matrix.
///
/// # Examples
///
/// ```
/// use qsim::matrix::CMatrix;
/// use qsim::complex::C64;
///
/// let x = CMatrix::from_rows(&[
///     &[C64::ZERO, C64::ONE],
///     &[C64::ONE, C64::ZERO],
/// ]);
/// assert!(x.is_unitary(1e-12));
/// assert!((&x * &x).approx_eq(&CMatrix::identity(2), 1e-12));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<C64>,
}

impl CMatrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMatrix {
            rows,
            cols,
            data: vec![C64::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = C64::ONE;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[C64]]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "inconsistent row length");
            data.extend_from_slice(r);
        }
        CMatrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a square matrix from a flat row-major slice.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::DimensionMismatch`] when `data.len()` is not a
    /// perfect square.
    pub fn from_flat(data: &[C64]) -> Result<Self, QsimError> {
        let n = (data.len() as f64).sqrt().round() as usize;
        if n * n != data.len() {
            return Err(QsimError::DimensionMismatch {
                expected: n * n,
                actual: data.len(),
            });
        }
        Ok(CMatrix {
            rows: n,
            cols: n,
            data: data.to_vec(),
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of the row-major backing storage.
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }

    /// Conjugate transpose `A†`.
    pub fn dagger(&self) -> CMatrix {
        let mut out = CMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)].conj();
            }
        }
        out
    }

    /// Matrix trace. Defined for square matrices only.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> C64 {
        assert_eq!(self.rows, self.cols, "trace requires a square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Kronecker (tensor) product `self ⊗ other`.
    pub fn kron(&self, other: &CMatrix) -> CMatrix {
        let mut out = CMatrix::zeros(self.rows * other.rows, self.cols * other.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a = self[(i, j)];
                for k in 0..other.rows {
                    for l in 0..other.cols {
                        out[(i * other.rows + k, j * other.cols + l)] = a * other[(k, l)];
                    }
                }
            }
        }
        out
    }

    /// Scales every entry by a complex factor.
    pub fn scaled(&self, k: C64) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&z| z * k).collect(),
        }
    }

    /// Matrix–vector product `A·v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[C64]) -> Vec<C64> {
        assert_eq!(v.len(), self.cols, "vector length must match columns");
        let mut out = vec![C64::ZERO; self.rows];
        for (i, slot) in out.iter_mut().enumerate() {
            let mut acc = C64::ZERO;
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            for (a, x) in row.iter().zip(v) {
                acc += *a * *x;
            }
            *slot = acc;
        }
        out
    }

    /// Returns `true` when every entry is within `tol` of `other`'s.
    pub fn approx_eq(&self, other: &CMatrix, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// Returns `true` when `self` equals `other` up to a global phase
    /// `e^{iφ}`. Used to validate transpiler rewrites, which are only
    /// required to preserve physics (global phase is unobservable).
    pub fn approx_eq_up_to_phase(&self, other: &CMatrix, tol: f64) -> bool {
        if self.rows != other.rows || self.cols != other.cols {
            return false;
        }
        // Find the entry of largest modulus in `other` to anchor the phase.
        let (idx, _) = other
            .data
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.norm_sqr().total_cmp(&b.norm_sqr()))
            .expect("matrix is non-empty");
        if other.data[idx].norm_sqr() < tol * tol {
            return self.approx_eq(other, tol);
        }
        let phase = self.data[idx] / other.data[idx];
        if (phase.abs() - 1.0).abs() > tol.max(1e-9) {
            return false;
        }
        self.approx_eq(&other.scaled(phase), tol)
    }

    /// Checks `A†A = I` within `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        let product = &self.dagger() * self;
        product.approx_eq(&CMatrix::identity(self.rows), tol)
    }

    /// Checks `A = A†` within `tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        self.rows == self.cols && self.approx_eq(&self.dagger(), tol)
    }
}

impl std::ops::Index<(usize, usize)> for CMatrix {
    type Output = C64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &C64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut C64 {
        &mut self.data[i * self.cols + j]
    }
}

impl Mul for &CMatrix {
    type Output = CMatrix;
    fn mul(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        let mut out = CMatrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == C64::ZERO {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }
}

impl Add for &CMatrix {
    type Output = CMatrix;
    fn add(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a + *b)
                .collect(),
        }
    }
}

impl Sub for &CMatrix {
    type Output = CMatrix;
    fn sub(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a - *b)
                .collect(),
        }
    }
}

impl fmt::Display for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> C64 {
        C64::new(re, im)
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let a = CMatrix::from_rows(&[&[c(1.0, 1.0), c(2.0, 0.0)], &[c(0.0, -1.0), c(3.0, 0.5)]]);
        let i = CMatrix::identity(2);
        assert!((&a * &i).approx_eq(&a, 1e-12));
        assert!((&i * &a).approx_eq(&a, 1e-12));
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = CMatrix::from_rows(&[&[c(1.0, 0.0), c(2.0, 0.0)], &[c(3.0, 0.0), c(4.0, 0.0)]]);
        let b = CMatrix::from_rows(&[&[c(5.0, 0.0), c(6.0, 0.0)], &[c(7.0, 0.0), c(8.0, 0.0)]]);
        let p = &a * &b;
        assert!(p.approx_eq(
            &CMatrix::from_rows(&[&[c(19.0, 0.0), c(22.0, 0.0)], &[c(43.0, 0.0), c(50.0, 0.0)]]),
            1e-12
        ));
    }

    #[test]
    fn dagger_reverses_products() {
        let a = CMatrix::from_rows(&[&[c(1.0, 2.0), c(0.0, 1.0)], &[c(2.0, 0.0), c(1.0, -1.0)]]);
        let b = CMatrix::from_rows(&[&[c(0.5, 0.0), c(1.0, 1.0)], &[c(0.0, -2.0), c(3.0, 0.0)]]);
        let lhs = (&a * &b).dagger();
        let rhs = &b.dagger() * &a.dagger();
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn trace_is_sum_of_diagonal() {
        let a = CMatrix::from_rows(&[&[c(1.0, 2.0), c(9.0, 9.0)], &[c(9.0, 9.0), c(3.0, -1.0)]]);
        assert!(a.trace().approx_eq(c(4.0, 1.0), 1e-12));
    }

    #[test]
    fn kron_dimensions_and_values() {
        let x = CMatrix::from_rows(&[&[C64::ZERO, C64::ONE], &[C64::ONE, C64::ZERO]]);
        let i = CMatrix::identity(2);
        let xi = x.kron(&i);
        assert_eq!(xi.rows(), 4);
        // X ⊗ I swaps the two-qubit basis blocks: |0a> <-> |1a>.
        let v = vec![c(1.0, 0.0), c(2.0, 0.0), c(3.0, 0.0), c(4.0, 0.0)];
        let w = xi.mul_vec(&v);
        assert!(w[0].approx_eq(c(3.0, 0.0), 1e-12));
        assert!(w[1].approx_eq(c(4.0, 0.0), 1e-12));
        assert!(w[2].approx_eq(c(1.0, 0.0), 1e-12));
        assert!(w[3].approx_eq(c(2.0, 0.0), 1e-12));
    }

    #[test]
    fn unitarity_check_accepts_hadamard_rejects_scaled() {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let h = CMatrix::from_rows(&[&[c(s, 0.0), c(s, 0.0)], &[c(s, 0.0), c(-s, 0.0)]]);
        assert!(h.is_unitary(1e-12));
        assert!(!h.scaled(c(2.0, 0.0)).is_unitary(1e-9));
    }

    #[test]
    fn hermitian_check() {
        let a = CMatrix::from_rows(&[&[c(2.0, 0.0), c(1.0, 1.0)], &[c(1.0, -1.0), c(5.0, 0.0)]]);
        assert!(a.is_hermitian(1e-12));
        let b = CMatrix::from_rows(&[&[c(2.0, 0.0), c(1.0, 1.0)], &[c(1.0, 1.0), c(5.0, 0.0)]]);
        assert!(!b.is_hermitian(1e-9));
    }

    #[test]
    fn phase_insensitive_equality() {
        let a = CMatrix::identity(2);
        let b = a.scaled(C64::cis(0.7));
        assert!(b.approx_eq_up_to_phase(&a, 1e-12));
        assert!(!b.approx_eq(&a, 1e-9));
        let c_ = CMatrix::from_rows(&[&[C64::ZERO, C64::ONE], &[C64::ONE, C64::ZERO]]);
        assert!(!c_.approx_eq_up_to_phase(&a, 1e-9));
    }

    #[test]
    fn from_flat_rejects_non_square() {
        assert!(CMatrix::from_flat(&[C64::ZERO; 3]).is_err());
        assert!(CMatrix::from_flat(&[C64::ZERO; 4]).is_ok());
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = CMatrix::from_rows(&[&[c(1.0, 1.0), c(2.0, 2.0)], &[c(3.0, 3.0), c(4.0, 4.0)]]);
        let b = CMatrix::identity(2);
        let sum = &a + &b;
        let back = &sum - &b;
        assert!(back.approx_eq(&a, 1e-12));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_dimension_mismatch_panics() {
        let a = CMatrix::zeros(2, 3);
        let b = CMatrix::zeros(2, 2);
        let _ = &a * &b;
    }
}
