//! Mixed-state simulation: a `2^n × 2^n` density matrix with gate and
//! Kraus-channel kernels.
//!
//! This backend exists for two reasons:
//!
//! 1. **Noise.** The paper's Fig. 9 "Noisy" series models IBM Brisbane;
//!    Kraus channels (depolarizing, thermal relaxation, readout) require
//!    mixed states.
//! 2. **Ground truth.** A density matrix handles Quorum's mid-circuit resets
//!    exactly, so it cross-validates the branching statevector backend
//!    (see the `backend_agreement` integration tests).
//!
//! Bit convention matches [`crate::statevector`]: qubit `k` is bit `k` of
//! the row/column index.

use crate::complex::C64;
use crate::error::QsimError;
use crate::gate::Gate;
use crate::matrix::CMatrix;
use crate::statevector::Statevector;

/// A mixed quantum state over `num_qubits` qubits.
///
/// # Examples
///
/// ```
/// use qsim::density::DensityMatrix;
/// use qsim::gate::Gate;
///
/// let mut rho = DensityMatrix::new(1).unwrap();
/// rho.apply_gate(Gate::H, &[0]).unwrap();
/// assert!((rho.purity() - 1.0).abs() < 1e-12);
/// rho.reset(0).unwrap(); // non-unitary but exact
/// assert!((rho.probability_one(0).unwrap()).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMatrix {
    num_qubits: usize,
    dim: usize,
    /// Row-major `dim × dim` matrix.
    data: Vec<C64>,
}

/// Memory budget for a single dense density matrix (or operator evolved
/// through its kernels): 2 GiB. A `n`-qubit matrix stores `4^n` complex
/// entries of 16 bytes each, so the widest admissible register is
/// [`max_density_qubits`] — the cap is *derived* from this budget rather
/// than hard-coded, and exceeding it is a recoverable
/// [`QsimError::ExceedsMemoryBudget`], not a panic.
pub const DENSITY_MEMORY_BUDGET_BYTES: usize = 2 << 30;

/// The widest register whose dense density matrix fits
/// [`DENSITY_MEMORY_BUDGET_BYTES`]: the largest `n` with
/// `16 · 4^n ≤ budget` (16 bytes per `C64` entry).
pub const fn max_density_qubits() -> usize {
    let mut n = 0;
    // 4^(n+1) entries × 16 bytes, guarded against shift overflow.
    while 4 * (n + 1) < usize::BITS as usize
        && (core::mem::size_of::<C64>() << (2 * (n + 1))) <= DENSITY_MEMORY_BUDGET_BYTES
    {
        n += 1;
    }
    n
}

// The budget must reproduce the simulator's historical 13-qubit ceiling —
// the swap-test observable build relies on `2n+1 ≤ 13` staying legal for
// the dense small-n oracle.
const _: () = assert!(max_density_qubits() == 13);

impl DensityMatrix {
    /// Creates `|0…0⟩⟨0…0|`.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::ExceedsMemoryBudget`] when the `4^n` dense
    /// storage would not fit [`DENSITY_MEMORY_BUDGET_BYTES`].
    pub fn new(num_qubits: usize) -> Result<Self, QsimError> {
        if num_qubits > max_density_qubits() {
            return Err(QsimError::ExceedsMemoryBudget {
                num_qubits,
                max_qubits: max_density_qubits(),
            });
        }
        let dim = 1usize << num_qubits;
        let mut data = vec![C64::ZERO; dim * dim];
        data[0] = C64::ONE;
        Ok(DensityMatrix {
            num_qubits,
            dim,
            data,
        })
    }

    /// Wraps an arbitrary square matrix over a power-of-two dimension as a
    /// `DensityMatrix`, so the gate/Kraus/superoperator kernels can evolve
    /// it. Every kernel is a *linear* map on the matrix entries, so this is
    /// also the door to operator algebra beyond states: evolving the
    /// matrix-unit basis `E_ij` column-by-column yields a channel's
    /// superoperator, and evolving a POVM element backwards (adjoint
    /// kernels) yields Heisenberg-picture observables. Neither use is a
    /// valid quantum state, and no positivity or trace check is applied.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::DimensionMismatch`] for a non-square matrix,
    /// [`QsimError::Unsupported`] for a dimension that is not a power of
    /// two, and [`QsimError::ExceedsMemoryBudget`] past the
    /// budget-derived [`max_density_qubits`] limit.
    pub fn from_cmatrix(m: &CMatrix) -> Result<Self, QsimError> {
        let dim = m.rows();
        if m.cols() != dim {
            return Err(QsimError::DimensionMismatch {
                expected: dim,
                actual: m.cols(),
            });
        }
        if !dim.is_power_of_two() {
            return Err(QsimError::Unsupported(format!(
                "operator dimension {dim} must be a power of two"
            )));
        }
        if dim > (1 << max_density_qubits()) {
            return Err(QsimError::ExceedsMemoryBudget {
                num_qubits: dim.trailing_zeros() as usize,
                max_qubits: max_density_qubits(),
            });
        }
        let num_qubits = dim.trailing_zeros() as usize;
        let mut data = vec![C64::ZERO; dim * dim];
        for i in 0..dim {
            for j in 0..dim {
                data[i * dim + j] = m[(i, j)];
            }
        }
        Ok(DensityMatrix {
            num_qubits,
            dim,
            data,
        })
    }

    /// The raw row-major entries — equivalently `vec(ρ)` in the row-major
    /// vectorisation convention used by [`superop_from_kraus`].
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }

    /// Builds the pure-state density matrix `|ψ⟩⟨ψ|`.
    pub fn from_statevector(sv: &Statevector) -> Self {
        let dim = sv.dim();
        let amps = sv.amplitudes();
        let mut data = vec![C64::ZERO; dim * dim];
        for i in 0..dim {
            for j in 0..dim {
                data[i * dim + j] = amps[i] * amps[j].conj();
            }
        }
        DensityMatrix {
            num_qubits: sv.num_qubits(),
            dim,
            data,
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Hilbert-space dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    #[inline]
    fn at(&self, i: usize, j: usize) -> C64 {
        self.data[i * self.dim + j]
    }

    /// Trace of the density matrix (1 for a valid state).
    pub fn trace(&self) -> f64 {
        (0..self.dim).map(|i| self.at(i, i).re).sum()
    }

    /// Purity `Tr(ρ²)`; 1 for pure states, `1/2^n` for the maximally mixed
    /// state.
    pub fn purity(&self) -> f64 {
        // Tr(ρ²) = Σ_ij ρ_ij ρ_ji = Σ_ij |ρ_ij|² for Hermitian ρ.
        self.data.iter().map(|z| z.norm_sqr()).sum()
    }

    /// The basis-state probabilities (the real diagonal).
    pub fn diagonal_probabilities(&self) -> Vec<f64> {
        (0..self.dim).map(|i| self.at(i, i).re.max(0.0)).collect()
    }

    /// Probability that qubit `q` reads `|1⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::QubitOutOfRange`] for a bad operand.
    pub fn probability_one(&self, q: usize) -> Result<f64, QsimError> {
        if q >= self.num_qubits {
            return Err(QsimError::QubitOutOfRange {
                qubit: q,
                num_qubits: self.num_qubits,
            });
        }
        let mask = 1usize << q;
        Ok((0..self.dim)
            .filter(|i| i & mask != 0)
            .map(|i| self.at(i, i).re)
            .sum())
    }

    fn check_qubits(&self, qubits: &[usize]) -> Result<(), QsimError> {
        for (i, &q) in qubits.iter().enumerate() {
            if q >= self.num_qubits {
                return Err(QsimError::QubitOutOfRange {
                    qubit: q,
                    num_qubits: self.num_qubits,
                });
            }
            if qubits[..i].contains(&q) {
                return Err(QsimError::DuplicateQubit { qubit: q });
            }
        }
        Ok(())
    }

    /// Applies a unitary gate: `ρ → U ρ U†`.
    ///
    /// # Errors
    ///
    /// Returns an operand-validation error (see
    /// [`Statevector::apply_gate`](crate::statevector::Statevector::apply_gate)).
    pub fn apply_gate(&mut self, gate: Gate, qubits: &[usize]) -> Result<(), QsimError> {
        self.check_qubits(qubits)?;
        if qubits.len() != gate.num_qubits() {
            return Err(QsimError::DimensionMismatch {
                expected: gate.num_qubits(),
                actual: qubits.len(),
            });
        }
        // Fast paths for the two gate classes that dominate lowered
        // circuits: single-qubit unitaries (fused 4×4 superoperator) and
        // CX (a pure index permutation).
        if gate.num_qubits() == 1 {
            let u = gate.matrix_1q();
            let mut s = [[C64::ZERO; 4]; 4];
            for i in 0..2 {
                for j in 0..2 {
                    for k in 0..2 {
                        for l in 0..2 {
                            s[i * 2 + k][j * 2 + l] = u[i][j] * u[k][l].conj();
                        }
                    }
                }
            }
            return self.apply_superop_1q(qubits[0], &s);
        }
        if gate == Gate::CX {
            self.permute_cx(qubits[0], qubits[1]);
            return Ok(());
        }
        let m = gate.matrix();
        self.apply_unitary_small(&m, qubits);
        Ok(())
    }

    /// `ρ → CX ρ CX` as a row/column permutation (CX is self-inverse).
    fn permute_cx(&mut self, control: usize, target: usize) {
        let cmask = 1usize << control;
        let tmask = 1usize << target;
        let dim = self.dim;
        // Swap row pairs (i, i ^ tmask) for rows with the control bit set.
        for i in 0..dim {
            if i & cmask != 0 && i & tmask == 0 {
                let j = i | tmask;
                for col in 0..dim {
                    self.data.swap(i * dim + col, j * dim + col);
                }
            }
        }
        // Swap column pairs likewise.
        for row in 0..dim {
            let base = row * dim;
            for i in 0..dim {
                if i & cmask != 0 && i & tmask == 0 {
                    self.data.swap(base + i, base + (i | tmask));
                }
            }
        }
    }

    /// Applies an arbitrary small unitary (2, 4 or 8 dimensional) given as a
    /// dense matrix over the listed qubits (first operand = most significant
    /// sub-index bit). Exposed for the transpiler's equivalence tests.
    pub fn apply_unitary_small(&mut self, m: &CMatrix, qubits: &[usize]) {
        self.left_mul_small(m, qubits);
        self.right_mul_dagger_small(m, qubits);
    }

    /// Applies a Kraus channel `ρ → Σ_m K_m ρ K_m†` over the listed qubits.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::DimensionMismatch`] if a Kraus operator's
    /// dimension does not match `2^{qubits.len()}`.
    pub fn apply_kraus(&mut self, kraus: &[CMatrix], qubits: &[usize]) -> Result<(), QsimError> {
        self.check_qubits(qubits)?;
        let k = 1usize << qubits.len();
        for op in kraus {
            if op.rows() != k || op.cols() != k {
                return Err(QsimError::DimensionMismatch {
                    expected: k,
                    actual: op.rows(),
                });
            }
        }
        let mut acc = vec![C64::ZERO; self.data.len()];
        let original = self.data.clone();
        for op in kraus {
            self.data.copy_from_slice(&original);
            self.left_mul_small(op, qubits);
            self.right_mul_dagger_small(op, qubits);
            for (a, &b) in acc.iter_mut().zip(&self.data) {
                *a += b;
            }
        }
        self.data = acc;
        Ok(())
    }

    /// Exact reset of qubit `q` to `|0⟩` via the Kraus pair
    /// `{|0⟩⟨0|, |0⟩⟨1|}`.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::QubitOutOfRange`] for a bad operand.
    pub fn reset(&mut self, q: usize) -> Result<(), QsimError> {
        let k0 = CMatrix::from_rows(&[&[C64::ONE, C64::ZERO], &[C64::ZERO, C64::ZERO]]);
        let k1 = CMatrix::from_rows(&[&[C64::ZERO, C64::ONE], &[C64::ZERO, C64::ZERO]]);
        self.apply_kraus(&[k0, k1], &[q])
    }

    /// Dephases qubit `q` in the computational basis (projective measurement
    /// whose outcome is discarded into the classical record). Used to model
    /// mid-circuit measurement exactly.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::QubitOutOfRange`] for a bad operand.
    pub fn dephase(&mut self, q: usize) -> Result<(), QsimError> {
        let p0 = CMatrix::from_rows(&[&[C64::ONE, C64::ZERO], &[C64::ZERO, C64::ZERO]]);
        let p1 = CMatrix::from_rows(&[&[C64::ZERO, C64::ZERO], &[C64::ZERO, C64::ONE]]);
        self.apply_kraus(&[p0, p1], &[q])
    }

    /// `A = M · ρ` where `M` acts on the sub-space of `qubits`.
    fn left_mul_small(&mut self, m: &CMatrix, qubits: &[usize]) {
        let k = qubits.len();
        let sub_dim = 1usize << k;
        let dim = self.dim;
        // Enumerate row groups: rows that differ only in the operand bits.
        let mut scratch = vec![C64::ZERO; sub_dim];
        let masks: Vec<usize> = qubits.iter().map(|&q| 1usize << q).collect();
        let all_mask: usize = masks.iter().sum();
        for col in 0..dim {
            for base in 0..dim {
                if base & all_mask != 0 {
                    continue;
                }
                // Gather, transform, scatter the sub_dim rows of this group.
                for (s, slot) in scratch.iter_mut().enumerate() {
                    let row = expand_index(base, s, &masks, k);
                    *slot = self.data[row * dim + col];
                }
                for s_out in 0..sub_dim {
                    let mut acc = C64::ZERO;
                    for s_in in 0..sub_dim {
                        acc += m[(s_out, s_in)] * scratch[s_in];
                    }
                    let row = expand_index(base, s_out, &masks, k);
                    self.data[row * dim + col] = acc;
                }
            }
        }
    }

    /// `A = ρ · M†` where `M` acts on the sub-space of `qubits`.
    fn right_mul_dagger_small(&mut self, m: &CMatrix, qubits: &[usize]) {
        let k = qubits.len();
        let sub_dim = 1usize << k;
        let dim = self.dim;
        let mut scratch = vec![C64::ZERO; sub_dim];
        let masks: Vec<usize> = qubits.iter().map(|&q| 1usize << q).collect();
        let all_mask: usize = masks.iter().sum();
        for row in 0..dim {
            for base in 0..dim {
                if base & all_mask != 0 {
                    continue;
                }
                for (s, slot) in scratch.iter_mut().enumerate() {
                    let col = expand_index(base, s, &masks, k);
                    *slot = self.data[row * dim + col];
                }
                for s_out in 0..sub_dim {
                    // (ρ M†)[row, col_out] = Σ_in ρ[row, col_in] · conj(M[col_out, col_in])
                    let mut acc = C64::ZERO;
                    for s_in in 0..sub_dim {
                        acc += scratch[s_in] * m[(s_out, s_in)].conj();
                    }
                    let col = expand_index(base, s_out, &masks, k);
                    self.data[row * dim + col] = acc;
                }
            }
        }
    }

    /// Applies a precomputed single-qubit superoperator to qubit `q`.
    ///
    /// `s` is the 4×4 row-major matrix acting on the vectorised 2×2 block
    /// `[ρ00, ρ01, ρ10, ρ11]` (row bit first). Built from Kraus operators
    /// with [`superop_from_kraus`]; composing a gate's full channel stack
    /// into one superoperator makes the noisy backend ~8× faster than
    /// repeated [`DensityMatrix::apply_kraus`] calls.
    ///
    /// The stride-paired updates run in lane form: for each row pair the
    /// four matrix sub-blocks are contiguous column runs of length
    /// `2^q`, so the 4×4 map applies elementwise across four zipped
    /// slices — bounds-check-free loops the compiler autovectorises,
    /// with per-element operations identical to the indexed original.
    /// On x86-64 with AVX the same safe body is dispatched in a
    /// 256-bit-vector recompilation (the [`crate::kernel`] pattern),
    /// again with identical results.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::QubitOutOfRange`] for a bad operand.
    pub fn apply_superop_1q(&mut self, q: usize, s: &[[C64; 4]; 4]) -> Result<(), QsimError> {
        self.check_qubits(&[q])?;
        #[cfg(target_arch = "x86_64")]
        if crate::kernel::avx_autovec_active() {
            // SAFETY: AVX support verified at runtime; the function body
            // is the same safe Rust as `superop_1q_body`.
            unsafe {
                self.superop_1q_avx(q, s);
            }
            return Ok(());
        }
        self.superop_1q_body(q, s);
        Ok(())
    }

    /// [`DensityMatrix::apply_superop_1q`]'s body recompiled with 256-bit
    /// AVX vectors enabled — identical safe Rust, identical results.
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX support at runtime.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx")]
    unsafe fn superop_1q_avx(&mut self, q: usize, s: &[[C64; 4]; 4]) {
        self.superop_1q_body(q, s);
    }

    #[inline(always)]
    fn superop_1q_body(&mut self, q: usize, s: &[[C64; 4]; 4]) {
        let stride = 1usize << q;
        let dim = self.dim;
        let mut rbase = 0;
        while rbase < dim {
            for r0 in rbase..rbase + stride {
                let r1 = r0 + stride;
                // Rows r0 < r1: split the storage so both are borrowed at
                // once, then walk their paired column runs.
                let (head, tail) = self.data.split_at_mut(r1 * dim);
                let row0 = &mut head[r0 * dim..r0 * dim + dim];
                let row1 = &mut tail[..dim];
                let mut cbase = 0;
                while cbase < dim {
                    let (r0lo, r0hi) = row0[cbase..cbase + (stride << 1)].split_at_mut(stride);
                    let (r1lo, r1hi) = row1[cbase..cbase + (stride << 1)].split_at_mut(stride);
                    for (((v0, v1), v2), v3) in r0lo
                        .iter_mut()
                        .zip(r0hi.iter_mut())
                        .zip(r1lo.iter_mut())
                        .zip(r1hi.iter_mut())
                    {
                        let v = [*v0, *v1, *v2, *v3];
                        let mut out = [C64::ZERO; 4];
                        for (i, o) in out.iter_mut().enumerate() {
                            let row = &s[i];
                            *o = row[0] * v[0] + row[1] * v[1] + row[2] * v[2] + row[3] * v[3];
                        }
                        *v0 = out[0];
                        *v1 = out[1];
                        *v2 = out[2];
                        *v3 = out[3];
                    }
                    cbase += stride << 1;
                }
            }
            rbase += stride << 1;
        }
    }

    /// Applies a precomputed two-qubit superoperator to `(qa, qb)` (`qa`
    /// is the most significant sub-index bit). `s` is 16×16 row-major over
    /// the vectorised 4×4 block.
    ///
    /// # Errors
    ///
    /// Returns an operand-validation error for bad qubit indices or a
    /// dimension error if `s` is not 16×16.
    pub fn apply_superop_2q(&mut self, qa: usize, qb: usize, s: &CMatrix) -> Result<(), QsimError> {
        self.check_qubits(&[qa, qb])?;
        if s.rows() != 16 || s.cols() != 16 {
            return Err(QsimError::DimensionMismatch {
                expected: 16,
                actual: s.rows(),
            });
        }
        let ma = 1usize << qa;
        let mb = 1usize << qb;
        let both = ma | mb;
        let dim = self.dim;
        // Row/column sub-index expansion: sub 0..4, bit1 = qa, bit0 = qb.
        let expand = |base: usize, sub: usize| -> usize {
            let mut idx = base;
            if sub & 2 != 0 {
                idx |= ma;
            }
            if sub & 1 != 0 {
                idx |= mb;
            }
            idx
        };
        let mut v = [C64::ZERO; 16];
        for r_base in 0..dim {
            if r_base & both != 0 {
                continue;
            }
            for c_base in 0..dim {
                if c_base & both != 0 {
                    continue;
                }
                for rs in 0..4 {
                    let row = expand(r_base, rs);
                    for cs in 0..4 {
                        v[rs * 4 + cs] = self.data[row * dim + expand(c_base, cs)];
                    }
                }
                for rs in 0..4 {
                    let row = expand(r_base, rs);
                    for cs in 0..4 {
                        let i = rs * 4 + cs;
                        let mut acc = C64::ZERO;
                        for (j, &vj) in v.iter().enumerate() {
                            acc += s[(i, j)] * vj;
                        }
                        self.data[row * dim + expand(c_base, cs)] = acc;
                    }
                }
            }
        }
        Ok(())
    }

    /// Applies the two-qubit depolarizing channel with Kraus parameter `p`
    /// directly via its closed form
    /// `ρ → (1−λ)ρ + λ (I/4) ⊗ Tr_{ab}(ρ)` with `λ = 16p/15` — equivalent
    /// to the 16-operator Kraus set of
    /// [`crate::noise::depolarizing_2q`] but ~15× cheaper.
    ///
    /// # Errors
    ///
    /// Returns an operand-validation error or
    /// [`QsimError::InvalidProbability`] if `p` is outside `[0, 15/16]`.
    pub fn apply_depolarizing_2q(&mut self, qa: usize, qb: usize, p: f64) -> Result<(), QsimError> {
        self.check_qubits(&[qa, qb])?;
        let lambda = 16.0 * p / 15.0;
        if !(0.0..=1.0).contains(&lambda) {
            return Err(QsimError::InvalidProbability { value: p });
        }
        let ma = 1usize << qa;
        let mb = 1usize << qb;
        let both = ma | mb;
        let dim = self.dim;
        let keep = 1.0 - lambda;
        let expand = |base: usize, sub: usize| -> usize {
            let mut idx = base;
            if sub & 2 != 0 {
                idx |= ma;
            }
            if sub & 1 != 0 {
                idx |= mb;
            }
            idx
        };
        for r_base in 0..dim {
            if r_base & both != 0 {
                continue;
            }
            for c_base in 0..dim {
                if c_base & both != 0 {
                    continue;
                }
                // Block trace over the two-qubit subsystem.
                let mut t = C64::ZERO;
                for s in 0..4 {
                    t += self.data[expand(r_base, s) * dim + expand(c_base, s)];
                }
                let mixed = t.scale(lambda / 4.0);
                for rs in 0..4 {
                    let row = expand(r_base, rs) * dim;
                    for cs in 0..4 {
                        let idx = row + expand(c_base, cs);
                        let mut v = self.data[idx].scale(keep);
                        if rs == cs {
                            v += mixed;
                        }
                        self.data[idx] = v;
                    }
                }
            }
        }
        Ok(())
    }

    /// Traces out every qubit *not* listed in `keep`, returning the reduced
    /// density matrix over `keep` (in the given order: first listed qubit
    /// becomes the most significant bit of the reduced index).
    ///
    /// # Errors
    ///
    /// Returns an operand-validation error for bad qubit indices.
    pub fn partial_trace(&self, keep: &[usize]) -> Result<DensityMatrix, QsimError> {
        self.check_qubits(keep)?;
        let k = keep.len();
        let sub_dim = 1usize << k;
        let masks: Vec<usize> = keep.iter().map(|&q| 1usize << q).collect();
        let all_mask: usize = masks.iter().sum();
        let mut out = vec![C64::ZERO; sub_dim * sub_dim];
        for i in 0..self.dim {
            let si = compress_index(i, &masks, k);
            let rest_i = i & !all_mask;
            for j in 0..self.dim {
                if (j & !all_mask) != rest_i {
                    continue;
                }
                let sj = compress_index(j, &masks, k);
                out[si * sub_dim + sj] += self.at(i, j);
            }
        }
        Ok(DensityMatrix {
            num_qubits: k,
            dim: sub_dim,
            data: out,
        })
    }

    /// Returns the full matrix as a [`CMatrix`] (for tests/diagnostics).
    pub fn to_cmatrix(&self) -> CMatrix {
        let mut m = CMatrix::zeros(self.dim, self.dim);
        for i in 0..self.dim {
            for j in 0..self.dim {
                m[(i, j)] = self.at(i, j);
            }
        }
        m
    }

    /// Hilbert–Schmidt overlap `Tr(ρ σ)`, the mixed-state generalisation of
    /// fidelity used by the SWAP test.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::DimensionMismatch`] if widths differ.
    pub fn overlap(&self, other: &DensityMatrix) -> Result<f64, QsimError> {
        if self.dim != other.dim {
            return Err(QsimError::DimensionMismatch {
                expected: self.dim,
                actual: other.dim,
            });
        }
        // Tr(ρσ) = Σ_ij ρ_ij σ_ji; both Hermitian so the result is real.
        let mut acc = C64::ZERO;
        for i in 0..self.dim {
            for j in 0..self.dim {
                acc += self.at(i, j) * other.at(j, i);
            }
        }
        Ok(acc.re)
    }
}

/// Applies a per-column RY conjugation `ρ_j → RY(θ_j) ρ_j RY(θ_j)†` on
/// one qubit of a **batched vec(ρ) panel**: `data` is the row-major
/// `dim² × samples` matrix whose column `j` is the row-major vectorisation
/// of sample `j`'s `dim × dim` density matrix, and `cc`/`cs`/`ss` hold the
/// per-sample coefficients `cos²(θ_j/2)`, `cos(θ_j/2)·sin(θ_j/2)`,
/// `sin²(θ_j/2)`.
///
/// This is the only sample-dependent operation in the lockstep noisy
/// state preparation: everything else in the Möttönen skeleton is shared
/// across the batch and applied as whole-panel superoperator GEMMs. For
/// each (row-pair, column-pair) sub-block of ρ the four affected vec rows
/// are *contiguous sample-lane runs* of the panel, so the real 4×4
/// rotation superoperator applies across all samples at once through
/// [`crate::kernel::ry_conj_lanes`] (runtime-AVX-recompiled); per lane the
/// arithmetic matches [`DensityMatrix::apply_gate`]'s fused superoperator
/// term for term.
///
/// # Panics
///
/// Panics when `data.len() != dim² · samples`, `dim` is not a power of
/// two, `qubit` is out of range, or a coefficient slice is not
/// `samples` long.
pub fn ry_conjugate_columns(
    data: &mut [crate::complex::C64],
    dim: usize,
    samples: usize,
    qubit: usize,
    cc: &[f64],
    cs: &[f64],
    ss: &[f64],
) {
    assert!(dim.is_power_of_two(), "ρ dimension must be a power of two");
    assert!(1usize << qubit < dim, "qubit out of range");
    assert_eq!(data.len(), dim * dim * samples, "panel shape mismatch");
    assert_eq!(cc.len(), samples, "coefficient lanes mismatch");
    assert_eq!(cs.len(), samples, "coefficient lanes mismatch");
    assert_eq!(ss.len(), samples, "coefficient lanes mismatch");
    if samples == 0 {
        return;
    }
    let mask = 1usize << qubit;
    for r0 in (0..dim).filter(|r| r & mask == 0) {
        for c0 in (0..dim).filter(|c| c & mask == 0) {
            let (v0, v1, v2, v3) = sub_block_rows_mut(data, dim, samples, mask, r0, c0);
            crate::kernel::ry_conj_lanes(v0, v1, v2, v3, cc, cs, ss);
        }
    }
}

/// Borrows the four vec rows of one single-qubit sub-block of a
/// `dim² × samples` vec(ρ) panel — `(ρ00, ρ01, ρ10, ρ11)` for the
/// `(r0, c0)` base indices and the qubit's bit `mask` — as disjoint
/// mutable lane runs (the vec rows are strictly ascending, so the panel
/// splits cleanly).
#[allow(clippy::type_complexity)] // four borrows of one panel, nothing more
fn sub_block_rows_mut(
    data: &mut [crate::complex::C64],
    dim: usize,
    samples: usize,
    mask: usize,
    r0: usize,
    c0: usize,
) -> (
    &mut [crate::complex::C64],
    &mut [crate::complex::C64],
    &mut [crate::complex::C64],
    &mut [crate::complex::C64],
) {
    let i00 = (r0 * dim + c0) * samples;
    let i01 = (r0 * dim + c0 + mask) * samples;
    let i10 = ((r0 + mask) * dim + c0) * samples;
    let i11 = ((r0 + mask) * dim + c0 + mask) * samples;
    let (head0, rest) = data.split_at_mut(i01);
    let (head1, rest1) = rest.split_at_mut(i10 - i01);
    let (head2, rest2) = rest1.split_at_mut(i11 - i10);
    (
        &mut head0[i00..i00 + samples],
        &mut head1[..samples],
        &mut head2[..samples],
        &mut rest2[..samples],
    )
}

/// Applies a shared single-qubit superoperator (e.g. a fused noise
/// channel) to `qubit` of **every column** of a `dim² × samples` vec(ρ)
/// panel: the lockstep analogue of
/// [`DensityMatrix::apply_superop_1q`], with identical per-element term
/// order — the whole batch pays one pass of contiguous lane sweeps
/// ([`crate::kernel::superop4_lanes`]) instead of `S` strided per-sample
/// applications.
///
/// # Panics
///
/// Same contract as [`ry_conjugate_columns`].
pub fn apply_superop_1q_columns(
    data: &mut [crate::complex::C64],
    dim: usize,
    samples: usize,
    qubit: usize,
    s: &[[crate::complex::C64; 4]; 4],
) {
    assert!(dim.is_power_of_two(), "ρ dimension must be a power of two");
    assert!(1usize << qubit < dim, "qubit out of range");
    assert_eq!(data.len(), dim * dim * samples, "panel shape mismatch");
    if samples == 0 {
        return;
    }
    let mask = 1usize << qubit;
    for r0 in (0..dim).filter(|r| r & mask == 0) {
        for c0 in (0..dim).filter(|c| c & mask == 0) {
            let (v0, v1, v2, v3) = sub_block_rows_mut(data, dim, samples, mask, r0, c0);
            crate::kernel::superop4_lanes(v0, v1, v2, v3, s);
        }
    }
}

/// Applies the CX conjugation `ρ_j → CX ρ_j CX` to **every column** of a
/// `dim² × samples` vec(ρ) panel. CX is a basis permutation, so on vec
/// indices this is a pure involution of panel rows — `(r, c) ↦
/// (cx(r), cx(c))` with `cx` flipping the target bit where the control
/// bit is set — executed as whole-lane row swaps with no arithmetic at
/// all (exactly [`DensityMatrix::apply_gate`]'s CX fast path, batched).
///
/// # Panics
///
/// Panics on a malformed panel shape or out-of-range/duplicate qubits.
pub fn permute_cx_columns(
    data: &mut [crate::complex::C64],
    dim: usize,
    samples: usize,
    control: usize,
    target: usize,
) {
    assert!(dim.is_power_of_two(), "ρ dimension must be a power of two");
    assert!(1usize << control < dim, "control out of range");
    assert!(1usize << target < dim, "target out of range");
    assert_ne!(control, target, "operands must differ");
    assert_eq!(data.len(), dim * dim * samples, "panel shape mismatch");
    if samples == 0 {
        return;
    }
    let cmask = 1usize << control;
    let tmask = 1usize << target;
    let cx = |i: usize| if i & cmask != 0 { i ^ tmask } else { i };
    for r in 0..dim {
        for c in 0..dim {
            let from = r * dim + c;
            let to = cx(r) * dim + cx(c);
            if to > from {
                let (head, tail) = data.split_at_mut(to * samples);
                head[from * samples..from * samples + samples]
                    .swap_with_slice(&mut tail[..samples]);
            }
        }
    }
}

/// Applies the closed-form two-qubit depolarizing channel to `(qa, qb)`
/// of **every column** of a `dim² × samples` vec(ρ) panel — the lockstep
/// analogue of [`DensityMatrix::apply_depolarizing_2q`], per-element
/// expressions replicated exactly. Dispatched through the runtime AVX
/// recompilation ladder like the per-sample kernel.
///
/// # Panics
///
/// Panics on a malformed panel shape, bad operands, or `p` outside
/// `[0, 15/16]`.
pub fn apply_depolarizing_2q_columns(
    data: &mut [crate::complex::C64],
    dim: usize,
    samples: usize,
    qa: usize,
    qb: usize,
    p: f64,
) {
    assert!(dim.is_power_of_two(), "ρ dimension must be a power of two");
    assert!(1usize << qa < dim, "qubit out of range");
    assert!(1usize << qb < dim, "qubit out of range");
    assert_ne!(qa, qb, "operands must differ");
    assert_eq!(data.len(), dim * dim * samples, "panel shape mismatch");
    let lambda = 16.0 * p / 15.0;
    assert!((0.0..=1.0).contains(&lambda), "invalid probability {p}");
    if samples == 0 {
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if crate::kernel::avx512_autovec_active() {
        // SAFETY: AVX-512 support verified at runtime; the function body
        // is the same safe Rust as `depol2q_columns_body`.
        unsafe {
            depol2q_columns_avx512(data, dim, samples, qa, qb, lambda);
        }
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if crate::kernel::avx_autovec_active() {
        // SAFETY: AVX support verified at runtime; the function body is
        // the same safe Rust as `depol2q_columns_body`.
        unsafe {
            depol2q_columns_avx(data, dim, samples, qa, qb, lambda);
        }
        return;
    }
    depol2q_columns_body(data, dim, samples, qa, qb, lambda);
}

/// [`apply_depolarizing_2q_columns`]'s body recompiled with 512-bit
/// AVX-512 vectors enabled — identical safe Rust, identical results.
///
/// # Safety
///
/// The caller must have verified AVX-512 (F + VL + DQ) support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f", enable = "avx512vl", enable = "avx512dq")]
unsafe fn depol2q_columns_avx512(
    data: &mut [crate::complex::C64],
    dim: usize,
    samples: usize,
    qa: usize,
    qb: usize,
    lambda: f64,
) {
    depol2q_columns_body(data, dim, samples, qa, qb, lambda);
}

/// [`apply_depolarizing_2q_columns`]'s body recompiled with 256-bit AVX
/// vectors enabled — identical safe Rust, identical results.
///
/// # Safety
///
/// The caller must have verified AVX support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn depol2q_columns_avx(
    data: &mut [crate::complex::C64],
    dim: usize,
    samples: usize,
    qa: usize,
    qb: usize,
    lambda: f64,
) {
    depol2q_columns_body(data, dim, samples, qa, qb, lambda);
}

#[inline(always)]
fn depol2q_columns_body(
    data: &mut [crate::complex::C64],
    dim: usize,
    samples: usize,
    qa: usize,
    qb: usize,
    lambda: f64,
) {
    use crate::complex::C64;
    let ma = 1usize << qa;
    let mb = 1usize << qb;
    let both = ma | mb;
    let keep = 1.0 - lambda;
    let quarter = lambda / 4.0;
    // Row/column sub-index expansion: sub 0..4, bit1 = qa, bit0 = qb.
    let expand = |base: usize, sub: usize| -> usize {
        let mut idx = base;
        if sub & 2 != 0 {
            idx |= ma;
        }
        if sub & 1 != 0 {
            idx |= mb;
        }
        idx
    };
    let mut mixed = vec![C64::ZERO; samples];
    for r_base in 0..dim {
        if r_base & both != 0 {
            continue;
        }
        for c_base in 0..dim {
            if c_base & both != 0 {
                continue;
            }
            // Block trace over the two-qubit subsystem, lane-wise, in the
            // per-sample kernel's s = 0..4 accumulation order.
            mixed.fill(C64::ZERO);
            for s in 0..4 {
                let row = (expand(r_base, s) * dim + expand(c_base, s)) * samples;
                for (m, &v) in mixed.iter_mut().zip(&data[row..row + samples]) {
                    *m += v;
                }
            }
            for m in mixed.iter_mut() {
                *m = m.scale(quarter);
            }
            for rs in 0..4 {
                let row = expand(r_base, rs) * dim;
                for cs in 0..4 {
                    let idx = (row + expand(c_base, cs)) * samples;
                    let lanes = &mut data[idx..idx + samples];
                    if rs == cs {
                        for (v, &m) in lanes.iter_mut().zip(&mixed) {
                            *v = v.scale(keep) + m;
                        }
                    } else {
                        for v in lanes.iter_mut() {
                            *v = v.scale(keep);
                        }
                    }
                }
            }
        }
    }
}

/// Borrows `N` pairwise-distinct vec rows of a `dim² × samples` panel as
/// disjoint mutable lane runs, in the caller's slot order. The rows are
/// sorted internally and the panel split sequentially, so arbitrary
/// (e.g. non-monotone two-qubit sub-block) row orders are supported.
fn disjoint_rows_mut<'a, const N: usize>(
    data: &'a mut [crate::complex::C64],
    samples: usize,
    rows: &[usize; N],
) -> [&'a mut [crate::complex::C64]; N] {
    let mut order: [usize; N] = core::array::from_fn(|i| i);
    order.sort_unstable_by_key(|&slot| rows[slot]);
    let mut out: [Option<&mut [crate::complex::C64]>; N] = core::array::from_fn(|_| None);
    let mut rest = data;
    let mut consumed = 0usize;
    for &slot in &order {
        let start = rows[slot] * samples;
        let (head, tail) = core::mem::take(&mut rest).split_at_mut(start - consumed + samples);
        let head_len = head.len();
        out[slot] = Some(&mut head[head_len - samples..]);
        consumed = start + samples;
        rest = tail;
    }
    out.map(|o| o.expect("row indices must be pairwise distinct"))
}

/// Applies a shared two-qubit superoperator (16×16 row-major over the
/// vectorised 4×4 sub-block, `qa` the most significant sub-index bit) to
/// `(qa, qb)` of **every column** of a `dim² × samples` vec(ρ) panel —
/// the lockstep analogue of [`DensityMatrix::apply_superop_2q`], with the
/// same gather → mat-vec → scatter term order per lane
/// ([`crate::kernel::superop16_lanes`], runtime-AVX-recompiled).
///
/// # Panics
///
/// Panics on a malformed panel shape or out-of-range/duplicate qubits.
pub fn apply_superop_2q_columns(
    data: &mut [crate::complex::C64],
    dim: usize,
    samples: usize,
    qa: usize,
    qb: usize,
    s: &[[crate::complex::C64; 16]; 16],
) {
    assert!(dim.is_power_of_two(), "ρ dimension must be a power of two");
    assert!(1usize << qa < dim, "qubit out of range");
    assert!(1usize << qb < dim, "qubit out of range");
    assert_ne!(qa, qb, "operands must differ");
    assert_eq!(data.len(), dim * dim * samples, "panel shape mismatch");
    if samples == 0 {
        return;
    }
    let ma = 1usize << qa;
    let mb = 1usize << qb;
    let both = ma | mb;
    // Row/column sub-index expansion: sub 0..4, bit1 = qa, bit0 = qb.
    let expand = |base: usize, sub: usize| -> usize {
        let mut idx = base;
        if sub & 2 != 0 {
            idx |= ma;
        }
        if sub & 1 != 0 {
            idx |= mb;
        }
        idx
    };
    for r_base in 0..dim {
        if r_base & both != 0 {
            continue;
        }
        for c_base in 0..dim {
            if c_base & both != 0 {
                continue;
            }
            let mut vec_rows = [0usize; 16];
            for rs in 0..4 {
                let row = expand(r_base, rs) * dim;
                for cs in 0..4 {
                    vec_rows[rs * 4 + cs] = row + expand(c_base, cs);
                }
            }
            let mut lanes = disjoint_rows_mut(data, samples, &vec_rows);
            crate::kernel::superop16_lanes(&mut lanes, s);
        }
    }
}

/// Resets `qubit` to `|0⟩` in **every column** of a `dim² × samples`
/// vec(ρ) panel — the lockstep analogue of [`DensityMatrix::reset`]'s
/// Kraus pair `{|0⟩⟨0|, |0⟩⟨1|}`, charged in closed form
/// (`ρ00 ← ρ00 + ρ11`, other sub-block entries zeroed) through
/// [`crate::kernel::reset_lanes`].
///
/// # Panics
///
/// Same contract as [`ry_conjugate_columns`].
pub fn apply_reset_columns(
    data: &mut [crate::complex::C64],
    dim: usize,
    samples: usize,
    qubit: usize,
) {
    assert!(dim.is_power_of_two(), "ρ dimension must be a power of two");
    assert!(1usize << qubit < dim, "qubit out of range");
    assert_eq!(data.len(), dim * dim * samples, "panel shape mismatch");
    if samples == 0 {
        return;
    }
    let mask = 1usize << qubit;
    for r0 in (0..dim).filter(|r| r & mask == 0) {
        for c0 in (0..dim).filter(|c| c & mask == 0) {
            let (v0, v1, v2, v3) = sub_block_rows_mut(data, dim, samples, mask, r0, c0);
            crate::kernel::reset_lanes(v0, v1, v2, v3);
        }
    }
}

/// Applies the amplitude-damping channel with parameter `gamma` to
/// `qubit` of **every column** of a `dim² × samples` vec(ρ) panel — the
/// lockstep closed form of [`crate::noise::amplitude_damping`]'s Kraus
/// pair, charged through [`crate::kernel::amp_damp_lanes`].
///
/// # Panics
///
/// Panics on a malformed panel shape, a bad operand, or `gamma` outside
/// `[0, 1]`.
pub fn apply_amplitude_damping_columns(
    data: &mut [crate::complex::C64],
    dim: usize,
    samples: usize,
    qubit: usize,
    gamma: f64,
) {
    assert!(dim.is_power_of_two(), "ρ dimension must be a power of two");
    assert!(1usize << qubit < dim, "qubit out of range");
    assert_eq!(data.len(), dim * dim * samples, "panel shape mismatch");
    assert!((0.0..=1.0).contains(&gamma), "invalid probability {gamma}");
    if samples == 0 {
        return;
    }
    let damp = (1.0 - gamma).sqrt();
    let mask = 1usize << qubit;
    for r0 in (0..dim).filter(|r| r & mask == 0) {
        for c0 in (0..dim).filter(|c| c & mask == 0) {
            let (v0, v1, v2, v3) = sub_block_rows_mut(data, dim, samples, mask, r0, c0);
            crate::kernel::amp_damp_lanes(v0, v1, v2, v3, gamma, damp);
        }
    }
}

/// Applies the phase-damping channel with parameter `lambda` to `qubit`
/// of **every column** of a `dim² × samples` vec(ρ) panel — the lockstep
/// closed form of [`crate::noise::phase_damping`]'s Kraus pair: only the
/// two coherence rows of each sub-block shrink (by `√(1−λ)`), the
/// populations are untouched ([`crate::kernel::phase_damp_lanes`]).
///
/// # Panics
///
/// Panics on a malformed panel shape, a bad operand, or `lambda` outside
/// `[0, 1]`.
pub fn apply_phase_damping_columns(
    data: &mut [crate::complex::C64],
    dim: usize,
    samples: usize,
    qubit: usize,
    lambda: f64,
) {
    assert!(dim.is_power_of_two(), "ρ dimension must be a power of two");
    assert!(1usize << qubit < dim, "qubit out of range");
    assert_eq!(data.len(), dim * dim * samples, "panel shape mismatch");
    assert!(
        (0.0..=1.0).contains(&lambda),
        "invalid probability {lambda}"
    );
    if samples == 0 {
        return;
    }
    let damp = (1.0 - lambda).sqrt();
    let mask = 1usize << qubit;
    for r0 in (0..dim).filter(|r| r & mask == 0) {
        for c0 in (0..dim).filter(|c| c & mask == 0) {
            let (_, v1, v2, _) = sub_block_rows_mut(data, dim, samples, mask, r0, c0);
            crate::kernel::phase_damp_lanes(v1, v2, damp);
        }
    }
}

/// Builds the superoperator matrix `S = Σ_m K_m ⊗ conj(K_m)` of a Kraus
/// channel, acting on row-major vectorised blocks: for `d`-dimensional
/// Kraus operators the result is `d² × d²` with
/// `S[(i·d+k), (j·d+l)] = Σ_m K_m[i,j] · conj(K_m[k,l])`.
///
/// # Panics
///
/// Panics if the Kraus list is empty or operators are non-square/unequal
/// in size.
pub fn superop_from_kraus(kraus: &[CMatrix]) -> CMatrix {
    assert!(!kraus.is_empty(), "empty Kraus set");
    let d = kraus[0].rows();
    for k in kraus {
        assert_eq!(k.rows(), d, "inconsistent Kraus dimensions");
        assert_eq!(k.cols(), d, "non-square Kraus operator");
    }
    let mut s = CMatrix::zeros(d * d, d * d);
    for k in kraus {
        for i in 0..d {
            for j in 0..d {
                let kij = k[(i, j)];
                if kij == C64::ZERO {
                    continue;
                }
                for kk in 0..d {
                    for l in 0..d {
                        s[(i * d + kk, j * d + l)] += kij * k[(kk, l)].conj();
                    }
                }
            }
        }
    }
    s
}

/// Composes superoperators so that `first` acts before `second`
/// (matrix product `second · first`).
pub fn compose_superops(first: &CMatrix, second: &CMatrix) -> CMatrix {
    second * first
}

/// Converts a 4×4 [`CMatrix`] superoperator into the fixed-size array
/// [`DensityMatrix::apply_superop_1q`] consumes.
///
/// # Panics
///
/// Panics unless the matrix is 4×4.
pub fn superop_to_array_1q(s: &CMatrix) -> [[C64; 4]; 4] {
    assert_eq!((s.rows(), s.cols()), (4, 4), "superoperator must be 4×4");
    let mut out = [[C64::ZERO; 4]; 4];
    for (i, row) in out.iter_mut().enumerate() {
        for (j, v) in row.iter_mut().enumerate() {
            *v = s[(i, j)];
        }
    }
    out
}

/// Converts a 16×16 [`CMatrix`] superoperator into the boxed fixed-size
/// array [`apply_superop_2q_columns`] consumes.
///
/// # Panics
///
/// Panics unless the matrix is 16×16.
pub fn superop_to_array_2q(s: &CMatrix) -> Box<[[C64; 16]; 16]> {
    assert_eq!(
        (s.rows(), s.cols()),
        (16, 16),
        "superoperator must be 16×16"
    );
    let mut out = Box::new([[C64::ZERO; 16]; 16]);
    for (i, row) in out.iter_mut().enumerate() {
        for (j, v) in row.iter_mut().enumerate() {
            *v = s[(i, j)];
        }
    }
    out
}

/// The adjoint (Heisenberg-picture) superoperator of a fused single-qubit
/// channel: for `S = Σ_m K_m ⊗ conj(K_m)` the adjoint channel
/// `X → Σ_m K_m† X K_m` has superoperator `S†`. Feeding the result to
/// [`DensityMatrix::apply_superop_1q`] pulls an observable backwards
/// through the channel.
pub fn superop_adjoint_1q(s: &[[C64; 4]; 4]) -> [[C64; 4]; 4] {
    let mut out = [[C64::ZERO; 4]; 4];
    for (i, row) in out.iter_mut().enumerate() {
        for (j, v) in row.iter_mut().enumerate() {
            *v = s[j][i].conj();
        }
    }
    out
}

/// Inserts the bits of `sub` (width `k`) into `base` at the positions given
/// by `masks` (masks[0] = most significant sub bit).
#[inline]
fn expand_index(base: usize, sub: usize, masks: &[usize], k: usize) -> usize {
    let mut idx = base;
    for (pos, &mask) in masks.iter().enumerate() {
        if sub >> (k - 1 - pos) & 1 == 1 {
            idx |= mask;
        }
    }
    idx
}

/// Extracts the sub-index bits of `idx` at `masks` positions.
#[inline]
fn compress_index(idx: usize, masks: &[usize], k: usize) -> usize {
    let mut sub = 0usize;
    for (pos, &mask) in masks.iter().enumerate() {
        if idx & mask != 0 {
            sub |= 1 << (k - 1 - pos);
        }
    }
    sub
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-10;

    #[test]
    fn fresh_state_is_pure_zero() {
        let rho = DensityMatrix::new(2).unwrap();
        assert!((rho.trace() - 1.0).abs() < TOL);
        assert!((rho.purity() - 1.0).abs() < TOL);
        assert!((rho.diagonal_probabilities()[0] - 1.0).abs() < TOL);
    }

    #[test]
    fn gate_evolution_matches_statevector() {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut sv = Statevector::new(3);
        let mut rho = DensityMatrix::new(3).unwrap();
        for _ in 0..30 {
            let q = rng.gen_range(0..3);
            let theta: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            let choice = rng.gen_range(0..6);
            let (gate, qubits): (Gate, Vec<usize>) = match choice {
                0 => (Gate::RX(theta), vec![q]),
                1 => (Gate::RY(theta), vec![q]),
                2 => (Gate::RZ(theta), vec![q]),
                3 => (Gate::H, vec![q]),
                4 => {
                    let t = (q + 1) % 3;
                    (Gate::CX, vec![q, t])
                }
                _ => {
                    let t = (q + 1) % 3;
                    let u = (q + 2) % 3;
                    (Gate::CSwap, vec![q, t, u])
                }
            };
            sv.apply_gate(gate, &qubits).unwrap();
            rho.apply_gate(gate, &qubits).unwrap();
        }
        let expected = DensityMatrix::from_statevector(&sv);
        assert!(rho.to_cmatrix().approx_eq(&expected.to_cmatrix(), 1e-9));
    }

    #[test]
    fn reset_produces_exact_mixture_marginal() {
        // H then reset: ρ = |0><0| on that qubit, trace preserved.
        let mut rho = DensityMatrix::new(1).unwrap();
        rho.apply_gate(Gate::H, &[0]).unwrap();
        rho.reset(0).unwrap();
        assert!((rho.trace() - 1.0).abs() < TOL);
        assert!(rho.probability_one(0).unwrap().abs() < TOL);
    }

    #[test]
    fn reset_of_entangled_qubit_leaves_partner_mixed() {
        // Bell state; resetting qubit 0 leaves qubit 1 maximally mixed.
        let mut rho = DensityMatrix::new(2).unwrap();
        rho.apply_gate(Gate::H, &[0]).unwrap();
        rho.apply_gate(Gate::CX, &[0, 1]).unwrap();
        rho.reset(0).unwrap();
        assert!((rho.trace() - 1.0).abs() < TOL);
        assert!((rho.probability_one(1).unwrap() - 0.5).abs() < TOL);
        // Purity of the 2-qubit state: qubit0 pure ⊗ qubit1 mixed = 1/2.
        assert!((rho.purity() - 0.5).abs() < TOL);
    }

    #[test]
    fn dephase_kills_coherences() {
        let mut rho = DensityMatrix::new(1).unwrap();
        rho.apply_gate(Gate::H, &[0]).unwrap();
        assert!(rho.at(0, 1).abs() > 0.4);
        rho.dephase(0).unwrap();
        assert!(rho.at(0, 1).abs() < TOL);
        assert!((rho.probability_one(0).unwrap() - 0.5).abs() < TOL);
    }

    #[test]
    fn kraus_identity_channel_is_noop() {
        let mut rho = DensityMatrix::new(2).unwrap();
        rho.apply_gate(Gate::H, &[0]).unwrap();
        rho.apply_gate(Gate::CX, &[0, 1]).unwrap();
        let before = rho.clone();
        rho.apply_kraus(&[CMatrix::identity(2)], &[1]).unwrap();
        assert!(rho.to_cmatrix().approx_eq(&before.to_cmatrix(), TOL));
    }

    #[test]
    fn kraus_dimension_validation() {
        let mut rho = DensityMatrix::new(2).unwrap();
        let err = rho.apply_kraus(&[CMatrix::identity(4)], &[0]).unwrap_err();
        assert!(matches!(err, QsimError::DimensionMismatch { .. }));
    }

    #[test]
    fn two_qubit_kraus_depolarizes_to_mixed() {
        // Full 2q depolarizing: ρ → I/4 via 16 Pauli Kraus ops with p=1.
        let paulis = [Gate::I, Gate::X, Gate::Y, Gate::Z];
        let mut kraus = Vec::new();
        for a in paulis {
            for b in paulis {
                kraus.push(a.matrix().kron(&b.matrix()).scaled(C64::from_real(0.25)));
            }
        }
        let mut rho = DensityMatrix::new(2).unwrap();
        rho.apply_gate(Gate::H, &[0]).unwrap();
        rho.apply_gate(Gate::CX, &[0, 1]).unwrap();
        rho.apply_kraus(&kraus, &[0, 1]).unwrap();
        assert!((rho.trace() - 1.0).abs() < TOL);
        assert!((rho.purity() - 0.25).abs() < TOL);
    }

    #[test]
    fn partial_trace_of_bell_state_is_maximally_mixed() {
        let mut rho = DensityMatrix::new(2).unwrap();
        rho.apply_gate(Gate::H, &[0]).unwrap();
        rho.apply_gate(Gate::CX, &[0, 1]).unwrap();
        let reduced = rho.partial_trace(&[1]).unwrap();
        assert_eq!(reduced.num_qubits(), 1);
        assert!((reduced.at(0, 0).re - 0.5).abs() < TOL);
        assert!((reduced.at(1, 1).re - 0.5).abs() < TOL);
        assert!(reduced.at(0, 1).abs() < TOL);
    }

    #[test]
    fn partial_trace_of_product_state_is_factor() {
        let mut rho = DensityMatrix::new(2).unwrap();
        rho.apply_gate(Gate::X, &[1]).unwrap();
        rho.apply_gate(Gate::H, &[0]).unwrap();
        let reduced = rho.partial_trace(&[0]).unwrap();
        assert!((reduced.at(0, 0).re - 0.5).abs() < TOL);
        assert!((reduced.at(0, 1).re - 0.5).abs() < TOL);
    }

    #[test]
    fn overlap_generalises_fidelity() {
        let mut a = Statevector::new(1);
        a.apply_gate(Gate::H, &[0]).unwrap();
        let b = Statevector::new(1);
        let ra = DensityMatrix::from_statevector(&a);
        let rb = DensityMatrix::from_statevector(&b);
        assert!((ra.overlap(&rb).unwrap() - 0.5).abs() < TOL);
        assert!((ra.overlap(&ra).unwrap() - 1.0).abs() < TOL);
    }

    #[test]
    fn probability_one_checks_range() {
        let rho = DensityMatrix::new(2).unwrap();
        assert!(rho.probability_one(5).is_err());
    }

    fn random_mixed_state(seed: u64) -> DensityMatrix {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut rho = DensityMatrix::new(3).unwrap();
        for _ in 0..12 {
            let q = rng.gen_range(0..3);
            rho.apply_gate(Gate::RY(rng.gen_range(0.0..std::f64::consts::TAU)), &[q])
                .unwrap();
            rho.apply_gate(Gate::CX, &[q, (q + 1) % 3]).unwrap();
        }
        rho.apply_kraus(&crate::noise::depolarizing_1q(0.2), &[1])
            .unwrap();
        rho
    }

    #[test]
    fn ry_conjugate_columns_matches_per_sample_gate_application() {
        // A panel of random mixed states, one per column, conjugated in
        // lockstep — against DensityMatrix::apply_gate per sample. The
        // lane kernel reproduces the fused superoperator's arithmetic, so
        // the agreement is exact up to zero signs.
        let samples = 5;
        let n = 3;
        let dim = 1usize << n;
        let states: Vec<DensityMatrix> = (0..samples)
            .map(|j| random_mixed_state(600 + j as u64))
            .collect();
        for qubit in 0..n {
            let thetas: Vec<f64> = (0..samples).map(|j| 0.7 * j as f64 - 1.3).collect();
            let mut panel = vec![C64::ZERO; dim * dim * samples];
            for (j, rho) in states.iter().enumerate() {
                for (i, &v) in rho.as_slice().iter().enumerate() {
                    panel[i * samples + j] = v;
                }
            }
            let (mut cc, mut cs, mut ss) =
                (vec![0.0; samples], vec![0.0; samples], vec![0.0; samples]);
            for j in 0..samples {
                let half = thetas[j] / 2.0;
                let (c, s) = (half.cos(), half.sin());
                cc[j] = c * c;
                cs[j] = c * s;
                ss[j] = s * s;
            }
            ry_conjugate_columns(&mut panel, dim, samples, qubit, &cc, &cs, &ss);
            for (j, rho) in states.iter().enumerate() {
                let mut expected = rho.clone();
                expected
                    .apply_gate(crate::gate::Gate::RY(thetas[j]), &[qubit])
                    .unwrap();
                for (i, &want) in expected.as_slice().iter().enumerate() {
                    let got = panel[i * samples + j];
                    assert!(
                        got.approx_eq(want, 1e-14),
                        "qubit {qubit} sample {j} row {i}: {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn superop_1q_matches_kraus_application() {
        let kraus = crate::noise::amplitude_damping(0.3);
        let s = superop_to_array_1q(&superop_from_kraus(&kraus));
        for seed in 0..3 {
            let mut a = random_mixed_state(seed);
            let mut b = a.clone();
            a.apply_kraus(&kraus, &[2]).unwrap();
            b.apply_superop_1q(2, &s).unwrap();
            assert!(a.to_cmatrix().approx_eq(&b.to_cmatrix(), 1e-10));
        }
    }

    #[test]
    fn superop_composition_matches_sequential_channels() {
        let depol = crate::noise::depolarizing_1q(0.05);
        let damp = crate::noise::amplitude_damping(0.2);
        let s_first = superop_from_kraus(&depol);
        let s_second = superop_from_kraus(&damp);
        let combined = superop_to_array_1q(&compose_superops(&s_first, &s_second));
        let mut a = random_mixed_state(7);
        let mut b = a.clone();
        a.apply_kraus(&depol, &[0]).unwrap();
        a.apply_kraus(&damp, &[0]).unwrap();
        b.apply_superop_1q(0, &combined).unwrap();
        assert!(a.to_cmatrix().approx_eq(&b.to_cmatrix(), 1e-10));
    }

    #[test]
    fn superop_2q_matches_kraus_application() {
        let kraus = crate::noise::depolarizing_2q(0.1);
        let s = superop_from_kraus(&kraus);
        assert_eq!(s.rows(), 16);
        for seed in 0..3 {
            let mut a = random_mixed_state(100 + seed);
            let mut b = a.clone();
            a.apply_kraus(&kraus, &[0, 2]).unwrap();
            b.apply_superop_2q(0, 2, &s).unwrap();
            assert!(a.to_cmatrix().approx_eq(&b.to_cmatrix(), 1e-10));
        }
    }

    #[test]
    fn identity_superop_is_noop() {
        let id = superop_from_kraus(&[CMatrix::identity(2)]);
        let s = superop_to_array_1q(&id);
        let mut rho = random_mixed_state(3);
        let before = rho.clone();
        rho.apply_superop_1q(1, &s).unwrap();
        assert!(rho.to_cmatrix().approx_eq(&before.to_cmatrix(), 1e-12));
    }

    #[test]
    fn closed_form_depolarizing_2q_matches_kraus() {
        let p = 0.08;
        let kraus = crate::noise::depolarizing_2q(p);
        for seed in 0..3 {
            let mut a = random_mixed_state(50 + seed);
            let mut b = a.clone();
            a.apply_kraus(&kraus, &[2, 0]).unwrap();
            b.apply_depolarizing_2q(2, 0, p).unwrap();
            assert!(
                a.to_cmatrix().approx_eq(&b.to_cmatrix(), 1e-10),
                "closed form diverges from Kraus (seed {seed})"
            );
        }
    }

    #[test]
    fn closed_form_depolarizing_validates() {
        let mut rho = DensityMatrix::new(2).unwrap();
        assert!(rho.apply_depolarizing_2q(0, 1, 1.0).is_err());
        assert!(rho.apply_depolarizing_2q(0, 1, -0.1).is_err());
        assert!(rho.apply_depolarizing_2q(0, 1, 0.0).is_ok());
    }

    #[test]
    fn superop_validation() {
        let mut rho = DensityMatrix::new(2).unwrap();
        let s4 = CMatrix::identity(4);
        assert!(rho.apply_superop_2q(0, 1, &s4).is_err()); // wrong dim
        let s16 = CMatrix::identity(16);
        assert!(rho.apply_superop_2q(0, 5, &s16).is_err()); // bad qubit
    }

    #[test]
    fn from_statevector_is_pure_with_unit_trace() {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        for _ in 0..4 {
            let mut sv = Statevector::new(3);
            for q in 0..3 {
                sv.apply_gate(Gate::RY(rng.gen_range(0.0..std::f64::consts::TAU)), &[q])
                    .unwrap();
            }
            sv.apply_gate(Gate::CX, &[0, 2]).unwrap();
            let rho = DensityMatrix::from_statevector(&sv);
            assert!((rho.trace() - 1.0).abs() < TOL);
            assert!((rho.purity() - 1.0).abs() < TOL);
        }
    }

    #[test]
    fn kraus_channels_preserve_trace_on_mixed_states() {
        let channels: Vec<(Vec<CMatrix>, Vec<usize>)> = vec![
            (crate::noise::depolarizing_1q(0.13), vec![0]),
            (crate::noise::amplitude_damping(0.4), vec![1]),
            (crate::noise::phase_damping(0.27), vec![2]),
            (crate::noise::depolarizing_2q(0.08), vec![0, 2]),
        ];
        for seed in 0..3 {
            for (kraus, qubits) in &channels {
                let mut rho = random_mixed_state(300 + seed);
                let before = rho.trace();
                rho.apply_kraus(kraus, qubits).unwrap();
                assert!((rho.trace() - before).abs() < TOL);
            }
        }
    }

    #[test]
    fn unital_kraus_channels_never_raise_purity() {
        // Unital channels (those fixing the identity) are purity
        // non-increasing. Amplitude damping is deliberately absent: it is
        // non-unital and *can* purify (it pumps any state toward |0⟩).
        let channels: Vec<(Vec<CMatrix>, Vec<usize>)> = vec![
            (crate::noise::depolarizing_1q(0.2), vec![1]),
            (crate::noise::phase_damping(0.5), vec![0]),
            (crate::noise::depolarizing_2q(0.15), vec![2, 1]),
        ];
        for seed in 0..4 {
            for (kraus, qubits) in &channels {
                let mut rho = random_mixed_state(400 + seed);
                let before = rho.purity();
                rho.apply_kraus(kraus, qubits).unwrap();
                assert!(
                    rho.purity() <= before + TOL,
                    "unital channel raised purity: {} -> {}",
                    before,
                    rho.purity()
                );
            }
        }
    }

    #[test]
    fn amplitude_damping_purifies_the_maximally_mixed_state() {
        // The non-unital counterexample that keeps the test above honest.
        let mut rho = DensityMatrix::new(1).unwrap();
        rho.apply_kraus(&crate::noise::depolarizing_1q(0.75), &[0])
            .unwrap();
        assert!((rho.purity() - 0.5).abs() < TOL);
        rho.apply_kraus(&crate::noise::amplitude_damping(1.0), &[0])
            .unwrap();
        assert!((rho.purity() - 1.0).abs() < TOL);
        assert!((rho.trace() - 1.0).abs() < TOL);
    }

    #[test]
    fn partial_trace_and_overlap_match_statevector_inner_product() {
        // On pure product states Tr(ρ_A σ_A) after tracing out B equals the
        // statevector overlap |⟨a|a'⟩|² of the kept factors.
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(33);
        for _ in 0..4 {
            let (ta, tb) = (
                rng.gen_range(0.0..std::f64::consts::TAU),
                rng.gen_range(0.0..std::f64::consts::TAU),
            );
            // |ψ⟩ = RY(ta)|0⟩ ⊗ junk on qubit 1, |φ⟩ likewise with tb.
            let mut psi = DensityMatrix::new(2).unwrap();
            psi.apply_gate(Gate::RY(ta), &[0]).unwrap();
            psi.apply_gate(Gate::RY(1.3), &[1]).unwrap();
            let mut phi = DensityMatrix::new(2).unwrap();
            phi.apply_gate(Gate::RY(tb), &[0]).unwrap();
            phi.apply_gate(Gate::RX(0.4), &[1]).unwrap();
            let ra = psi.partial_trace(&[0]).unwrap();
            let rb = phi.partial_trace(&[0]).unwrap();
            // Statevector reference for the kept factor.
            let mut a = Statevector::new(1);
            a.apply_gate(Gate::RY(ta), &[0]).unwrap();
            let mut b = Statevector::new(1);
            b.apply_gate(Gate::RY(tb), &[0]).unwrap();
            let inner: C64 = a
                .amplitudes()
                .iter()
                .zip(b.amplitudes())
                .map(|(x, y)| x.conj() * *y)
                .sum();
            assert!((ra.overlap(&rb).unwrap() - inner.norm_sqr()).abs() < TOL);
        }
    }

    #[test]
    fn superop_composition_law_over_three_channels() {
        // S(C3 ∘ C2 ∘ C1) = S3 · S2 · S1, checked against sequential Kraus
        // application on a random mixed state.
        let c1 = crate::noise::depolarizing_1q(0.1);
        let c2 = crate::noise::phase_damping(0.35);
        let c3 = crate::noise::amplitude_damping(0.2);
        let fused = compose_superops(
            &compose_superops(&superop_from_kraus(&c1), &superop_from_kraus(&c2)),
            &superop_from_kraus(&c3),
        );
        let s = superop_to_array_1q(&fused);
        let mut a = random_mixed_state(11);
        let mut b = a.clone();
        a.apply_kraus(&c1, &[2]).unwrap();
        a.apply_kraus(&c2, &[2]).unwrap();
        a.apply_kraus(&c3, &[2]).unwrap();
        b.apply_superop_1q(2, &s).unwrap();
        assert!(a.to_cmatrix().approx_eq(&b.to_cmatrix(), 1e-10));
    }

    #[test]
    fn superop_adjoint_satisfies_heisenberg_duality() {
        // Tr[C(ρ) · X] == Tr[ρ · C†(X)] for a fused non-unital channel.
        let channel = {
            let depol = superop_from_kraus(&crate::noise::depolarizing_1q(0.07));
            let damp = superop_from_kraus(&crate::noise::amplitude_damping(0.3));
            superop_to_array_1q(&compose_superops(&depol, &damp))
        };
        let adjoint = superop_adjoint_1q(&channel);
        let rho = random_mixed_state(5);
        // A non-trivial Hermitian observable: another mixed state works.
        let obs = random_mixed_state(6);
        let mut forward = rho.clone();
        forward.apply_superop_1q(1, &channel).unwrap();
        let mut backward = obs.clone();
        backward.apply_superop_1q(1, &adjoint).unwrap();
        let lhs = forward.overlap(&obs).unwrap();
        let rhs = rho.overlap(&backward).unwrap();
        assert!((lhs - rhs).abs() < 1e-10, "duality broken: {lhs} vs {rhs}");
    }

    #[test]
    fn from_cmatrix_round_trips_and_validates() {
        let rho = random_mixed_state(9);
        let round = DensityMatrix::from_cmatrix(&rho.to_cmatrix()).unwrap();
        assert_eq!(round, rho);
        assert_eq!(round.num_qubits(), 3);
        // Non-square and non-power-of-two dimensions are rejected.
        assert!(DensityMatrix::from_cmatrix(&CMatrix::zeros(4, 2)).is_err());
        assert!(DensityMatrix::from_cmatrix(&CMatrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn from_cmatrix_entries_evolve_linearly() {
        // Evolving matrix units through a channel and summing reproduces
        // the evolved sum — the linearity that superoperator extraction
        // relies on.
        let kraus = crate::noise::amplitude_damping(0.45);
        let rho = random_mixed_state(14);
        let mut direct = rho.clone();
        direct.apply_kraus(&kraus, &[0]).unwrap();
        let dim = rho.dim();
        let mut acc = CMatrix::zeros(dim, dim);
        let full = rho.to_cmatrix();
        for i in 0..dim {
            for j in 0..dim {
                let mut unit = CMatrix::zeros(dim, dim);
                unit[(i, j)] = C64::ONE;
                let mut e = DensityMatrix::from_cmatrix(&unit).unwrap();
                e.apply_kraus(&kraus, &[0]).unwrap();
                let evolved = e.to_cmatrix();
                for r in 0..dim {
                    for c in 0..dim {
                        acc[(r, c)] += full[(i, j)] * evolved[(r, c)];
                    }
                }
            }
        }
        assert!(acc.approx_eq(&direct.to_cmatrix(), 1e-10));
    }
}
