//! Structured per-gate channel application over batched vec(ρ) panels.
//!
//! The dense noisy path fuses a whole lowered segment into one
//! `4^n × 4^n` superoperator — exact, but `O(16^n)` to build and store,
//! which walls the register width around n ≈ 5. This module keeps the
//! *structure* of the segment instead: a [`ChannelProgram`] is a flat IR
//! of local operations (fused 1q unitary-conjugation ⊕ noise steps, CX
//! permutations, 2q unitary conjugations, closed-form depolarizing,
//! reset and amplitude/phase-damping channels) that is lowered **once**
//! per (group, level) and then executed column-lockstep over the whole
//! batch's `4^n × S` panel with the [`crate::density`] /
//! [`crate::kernel`] lane kernels — `O(G · 4^n · S)` for `G` program
//! ops, never materialising a `16^n` object.
//!
//! The readout side gets the same treatment: [`SwapTestMpo`] is the
//! noisy SWAP-test functional `W` in matrix-product-operator form. The
//! pulled-back ancilla observable threads through the per-pair noisy
//! lowered CSWAP channels with bond dimension 4 (the ancilla's operator
//! space), so `Y = W · P` is computed as an `O(n · 4^n · S)` sweep —
//! the `16^n × 16^n`-entry `W` of the dense path is never built.
//!
//! The dense path remains the bit-exact small-n oracle; the
//! `engine_structured_properties` suite pins this module against it at
//! n ∈ {2, 3} to ≤ 1e-9.

use crate::circuit::{Circuit, Operation};
use crate::complex::C64;
use crate::density::{
    apply_amplitude_damping_columns, apply_depolarizing_2q_columns, apply_phase_damping_columns,
    apply_reset_columns, apply_superop_1q_columns, apply_superop_2q_columns, permute_cx_columns,
    superop_from_kraus, superop_to_array_2q, DensityMatrix,
};
use crate::error::QsimError;
use crate::gate::Gate;
use crate::matrix::CMatrix;
use crate::simulator::GateNoise;
use crate::transpile;

/// One local operation of a [`ChannelProgram`], acting on every column
/// of a `4^n × S` vec(ρ) panel.
// The inline 4×4 in `Superop1q` dominates the enum size, but it is the
// common case on the hot path and programs hold O(gates) ops total —
// boxing it would trade a pointer chase per op for nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum ChannelOp {
    /// A shared 4×4 superoperator on one qubit — a 1q unitary
    /// conjugation `U ⊗ Ū`, a fused noise channel, or any composition
    /// of the two.
    Superop1q {
        /// Operand qubit.
        qubit: usize,
        /// Row-major 4×4 superoperator over `(ρ00, ρ01, ρ10, ρ11)`.
        s: [[C64; 4]; 4],
    },
    /// The CX conjugation `ρ → CX ρ CX` — a pure row permutation of the
    /// panel, no arithmetic.
    PermuteCx {
        /// Control qubit.
        control: usize,
        /// Target qubit.
        target: usize,
    },
    /// The closed-form two-qubit depolarizing channel.
    Depol2q {
        /// Most significant sub-index qubit.
        qa: usize,
        /// Least significant sub-index qubit.
        qb: usize,
        /// Kraus parameter in `[0, 15/16]`.
        p: f64,
    },
    /// A shared 16×16 superoperator on a qubit pair — a general 2q
    /// unitary conjugation `U ⊗ Ū` (non-CX gates surviving lowering) or
    /// an arbitrary fused 2q channel.
    Superop2q {
        /// Most significant sub-index qubit.
        qa: usize,
        /// Least significant sub-index qubit.
        qb: usize,
        /// Row-major 16×16 superoperator over the vectorised pair block.
        s: Box<[[C64; 16]; 16]>,
    },
    /// Exact reset of one qubit to `|0⟩` (Kraus `{|0⟩⟨0|, |0⟩⟨1|}`).
    Reset {
        /// Operand qubit.
        qubit: usize,
    },
    /// The amplitude-damping channel with parameter `gamma`.
    AmplitudeDamping {
        /// Operand qubit.
        qubit: usize,
        /// Damping parameter in `[0, 1]`.
        gamma: f64,
    },
    /// The phase-damping (dephasing) channel with parameter `lambda`;
    /// `lambda = 1` is a full computational-basis dephase.
    PhaseDamping {
        /// Operand qubit.
        qubit: usize,
        /// Damping parameter in `[0, 1]`.
        lambda: f64,
    },
}

impl ChannelOp {
    /// The qubits this op touches (padded with `usize::MAX`).
    fn operands(&self) -> (usize, usize) {
        match self {
            ChannelOp::Superop1q { qubit, .. }
            | ChannelOp::Reset { qubit }
            | ChannelOp::AmplitudeDamping { qubit, .. }
            | ChannelOp::PhaseDamping { qubit, .. } => (*qubit, usize::MAX),
            ChannelOp::PermuteCx { control, target } => (*control, *target),
            ChannelOp::Depol2q { qa, qb, .. } | ChannelOp::Superop2q { qa, qb, .. } => (*qa, *qb),
        }
    }
}

/// The 1q unitary-conjugation superoperator `U ⊗ Ū`:
/// `s[(i·2+k), (j·2+l)] = u[i][j] · conj(u[k][l])` — exactly the fused
/// fast path of [`DensityMatrix::apply_gate`].
fn conj_superop_1q(u: &[[C64; 2]; 2]) -> [[C64; 4]; 4] {
    let mut s = [[C64::ZERO; 4]; 4];
    for i in 0..2 {
        for j in 0..2 {
            for k in 0..2 {
                for l in 0..2 {
                    s[i * 2 + k][j * 2 + l] = u[i][j] * u[k][l].conj();
                }
            }
        }
    }
    s
}

/// Composes fixed-size 1q superoperators so `first` acts before
/// `second` (matrix product `second · first`).
fn compose_1q_arrays(first: &[[C64; 4]; 4], second: &[[C64; 4]; 4]) -> [[C64; 4]; 4] {
    let mut out = [[C64::ZERO; 4]; 4];
    for (i, orow) in out.iter_mut().enumerate() {
        for (j, o) in orow.iter_mut().enumerate() {
            let mut acc = C64::ZERO;
            for k in 0..4 {
                acc += second[i][k] * first[k][j];
            }
            *o = acc;
        }
    }
    out
}

/// A lowered noisy circuit segment as a reusable list of local channel
/// operations over a `4^n × S` vec(ρ) panel.
///
/// Built once from a lowered [`Circuit`] plus a [`GateNoise`]
/// ([`ChannelProgram::from_lowered`]): every 1q gate's conjugation is
/// fused with its post-gate noise channel into a single 4×4 step, and
/// *runs* of 1q steps on the same qubit (e.g. an RX·RZ ansatz column,
/// or a CX's relaxation flowing into the next rotation) are composed
/// into one — operations on disjoint qubits commute exactly, so the
/// fusion only reassociates floating-point products. Execution
/// ([`ChannelProgram::apply_panel`]) walks the ops with the lockstep
/// column kernels: `O(ops · 4^n · S)` total, no `16^n` object anywhere.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelProgram {
    num_qubits: usize,
    ops: Vec<ChannelOp>,
}

impl ChannelProgram {
    /// Lowers a circuit segment (already taken through
    /// [`transpile::decompose_multiqubit`]) and a per-gate noise model
    /// into a channel program, fusing 1q gate conjugations with their
    /// noise and composing same-qubit 1q runs.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::Unsupported`] for gates of arity > 2 (lower
    /// first) and for measurements (a channel program is trace
    /// preserving; measurement is the caller's job).
    pub fn from_lowered(circuit: &Circuit, noise: &GateNoise) -> Result<Self, QsimError> {
        let n = circuit.num_qubits();
        let mut ops: Vec<ChannelOp> = Vec::new();
        // Per qubit: index of a trailing Superop1q that later same-qubit
        // 1q steps may fuse into. Invalidated by any other op on the
        // qubit; ops on *other* qubits commute exactly, so they do not.
        let mut tail_1q: Vec<Option<usize>> = vec![None; n];

        fn push_1q(
            ops: &mut Vec<ChannelOp>,
            tail_1q: &mut [Option<usize>],
            q: usize,
            s: [[C64; 4]; 4],
        ) {
            if let Some(i) = tail_1q[q] {
                if let ChannelOp::Superop1q { s: prev, .. } = &mut ops[i] {
                    *prev = compose_1q_arrays(prev, &s);
                    return;
                }
            }
            tail_1q[q] = Some(ops.len());
            ops.push(ChannelOp::Superop1q { qubit: q, s });
        }

        for instr in circuit.instructions() {
            match &instr.op {
                Operation::Gate(g) => match g.num_qubits() {
                    1 => {
                        let q = instr.qubits[0];
                        let mut s = conj_superop_1q(&g.matrix_1q());
                        if let Some(ns) = noise.superop_1q() {
                            s = compose_1q_arrays(&s, ns);
                        }
                        push_1q(&mut ops, &mut tail_1q, q, s);
                    }
                    2 => {
                        let (a, b) = (instr.qubits[0], instr.qubits[1]);
                        tail_1q[a] = None;
                        tail_1q[b] = None;
                        if matches!(g, Gate::CX) {
                            ops.push(ChannelOp::PermuteCx {
                                control: a,
                                target: b,
                            });
                        } else {
                            let s = superop_from_kraus(&[g.matrix()]);
                            ops.push(ChannelOp::Superop2q {
                                qa: a,
                                qb: b,
                                s: superop_to_array_2q(&s),
                            });
                        }
                        if noise.depol_2q() > 0.0 {
                            ops.push(ChannelOp::Depol2q {
                                qa: a,
                                qb: b,
                                p: noise.depol_2q(),
                            });
                        }
                        if let Some(r) = noise.superop_2q_relax() {
                            push_1q(&mut ops, &mut tail_1q, a, *r);
                            push_1q(&mut ops, &mut tail_1q, b, *r);
                        }
                    }
                    _ => {
                        return Err(QsimError::Unsupported(
                            "3-qubit gate survived lowering".into(),
                        ))
                    }
                },
                Operation::Reset => {
                    let q = instr.qubits[0];
                    tail_1q[q] = None;
                    ops.push(ChannelOp::Reset { qubit: q });
                }
                Operation::Barrier => {}
                _ => {
                    return Err(QsimError::Unsupported(
                        "measurement inside a channel program".into(),
                    ))
                }
            }
        }
        Ok(ChannelProgram { num_qubits: n, ops })
    }

    /// Wraps an explicit op list as a program over `num_qubits` qubits.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::QubitOutOfRange`] /
    /// [`QsimError::DuplicateQubit`] for malformed operands.
    pub fn from_ops(num_qubits: usize, ops: Vec<ChannelOp>) -> Result<Self, QsimError> {
        for op in &ops {
            let (a, b) = op.operands();
            if a >= num_qubits {
                return Err(QsimError::QubitOutOfRange {
                    qubit: a,
                    num_qubits,
                });
            }
            if b != usize::MAX {
                if b >= num_qubits {
                    return Err(QsimError::QubitOutOfRange {
                        qubit: b,
                        num_qubits,
                    });
                }
                if a == b {
                    return Err(QsimError::DuplicateQubit { qubit: a });
                }
            }
        }
        Ok(ChannelProgram { num_qubits, ops })
    }

    /// Register width the program acts on.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The lowered op list, in application order.
    pub fn ops(&self) -> &[ChannelOp] {
        &self.ops
    }

    /// Approximate heap + inline footprint, for cache accounting.
    pub fn approx_bytes(&self) -> usize {
        let boxed: usize = self
            .ops
            .iter()
            .map(|op| match op {
                ChannelOp::Superop2q { .. } => std::mem::size_of::<[[C64; 16]; 16]>(),
                _ => 0,
            })
            .sum();
        std::mem::size_of::<Self>() + self.ops.capacity() * std::mem::size_of::<ChannelOp>() + boxed
    }

    /// Executes the program on **every column** of a `4^n × samples`
    /// vec(ρ) panel through the lockstep column kernels.
    ///
    /// # Panics
    ///
    /// Panics when the panel shape does not match the program width
    /// (the column kernels' contract).
    pub fn apply_panel(&self, data: &mut [C64], samples: usize) {
        let dim = 1usize << self.num_qubits;
        assert_eq!(data.len(), dim * dim * samples, "panel shape mismatch");
        for op in &self.ops {
            match op {
                ChannelOp::Superop1q { qubit, s } => {
                    apply_superop_1q_columns(data, dim, samples, *qubit, s);
                }
                ChannelOp::PermuteCx { control, target } => {
                    permute_cx_columns(data, dim, samples, *control, *target);
                }
                ChannelOp::Depol2q { qa, qb, p } => {
                    apply_depolarizing_2q_columns(data, dim, samples, *qa, *qb, *p);
                }
                ChannelOp::Superop2q { qa, qb, s } => {
                    apply_superop_2q_columns(data, dim, samples, *qa, *qb, s);
                }
                ChannelOp::Reset { qubit } => {
                    apply_reset_columns(data, dim, samples, *qubit);
                }
                ChannelOp::AmplitudeDamping { qubit, gamma } => {
                    apply_amplitude_damping_columns(data, dim, samples, *qubit, *gamma);
                }
                ChannelOp::PhaseDamping { qubit, lambda } => {
                    apply_phase_damping_columns(data, dim, samples, *qubit, *lambda);
                }
            }
        }
    }
}

/// The noisy SWAP-test readout functional in matrix-product-operator
/// form: computes `Y = W · P` column-lockstep in `O(n · 4^n · S)`
/// without materialising the `4^n × 4^n` functional `W`.
///
/// Derivation. The POVM element `Π₁ = |1⟩⟨1|_anc ⊗ I` is pulled
/// backwards through the lowered noisy network
/// `H(anc) · ∏_q CSWAP(anc, q, n+q) · H(anc)`. Decomposed over the
/// ancilla's operator basis `E_μ = |b⟩⟨b'|` (μ = 2b + b', the **bond**,
/// dimension 4), the observable after the final `H` is
/// `Σ_μ h_μ · E_μ ⊗ I`. Each pulled-back CSWAP segment acts on
/// `(anc, q, n+q)` only and always meets the identity on its pair, so
/// its entire action is the pair-independent tensor
/// `𝒟†(E_μ ⊗ I₄) = Σ_ν E_ν ⊗ N_{νμ}` — sixteen 4×4 pair operators
/// computed **numerically** from one 3-qubit adjoint walk with the
/// dense kernels. The first `H` plus the ancilla's `⟨0|·|0⟩`
/// restriction close the chain with the boundary `β_μ`. Contracting
/// with `vec(ρ_B)` one qubit pair at a time is then a bond-mixed 16×16
/// lane sweep over the panel ([`crate::kernel::superop16_lanes`]).
#[derive(Debug, Clone)]
pub struct SwapTestMpo {
    num_qubits: usize,
    /// Bond ⊗ field transfer matrix: `m16[(ν·4+α)][(μ·4+β)]` maps the
    /// B-side vec field `β = (v_b·2 + u_b)` of one qubit pair to the
    /// A-side vec field `α = (v_a·2 + u_a)` while mixing the ancilla
    /// bond `μ → ν`.
    m16: Box<[[C64; 16]; 16]>,
    /// Boundary at the last-`H` end of the chain.
    h: [C64; 4],
    /// Boundary at the first-`H` + ancilla-restriction end.
    beta: [C64; 4],
}

impl SwapTestMpo {
    /// Builds the MPO for `num_qubits`-qubit registers under `noise` —
    /// three tiny dense pull-backs (1, 1 and 3 qubits), independent of
    /// the register width.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors from the constant-size pull-backs.
    pub fn build(num_qubits: usize, noise: &GateNoise) -> Result<Self, QsimError> {
        assert!(num_qubits >= 1, "register width must be at least 1");

        // Pulls a 1-qubit observable back through one noisy H.
        let pull_h = |entries: [[C64; 2]; 2]| -> Result<DensityMatrix, QsimError> {
            let m = CMatrix::from_rows(&[
                &[entries[0][0], entries[0][1]],
                &[entries[1][0], entries[1][1]],
            ]);
            let mut obs = DensityMatrix::from_cmatrix(&m)?;
            noise.apply_adjoint_after_gate(&mut obs, 1, &[0])?;
            obs.apply_gate(Gate::H, &[0])?;
            Ok(obs)
        };

        // h: Π₁ = |1⟩⟨1| through the network's final H (adjoint).
        let mut h = [C64::ZERO; 4];
        let pulled = pull_h([[C64::ZERO, C64::ZERO], [C64::ZERO, C64::ONE]])?;
        h.copy_from_slice(&pulled.as_slice()[..4]);

        // β: each bond basis element through the network's first H
        // (adjoint), restricted to the ancilla's initial |0⟩.
        let mut beta = [C64::ZERO; 4];
        for (mu, slot) in beta.iter_mut().enumerate() {
            let mut e = [[C64::ZERO; 2]; 2];
            e[mu >> 1][mu & 1] = C64::ONE;
            *slot = pull_h(e)?.as_slice()[0];
        }

        // N: one noisy lowered CSWAP's adjoint action on E_μ ⊗ I₄ in the
        // 3-qubit model (anc = qubit 2, pair = (A = qubit 0, B = qubit 1),
        // operand order matching `cswap(ancilla, q, n + q)`).
        let mut cswap = Circuit::new(3);
        cswap.cswap(2, 0, 1);
        let lowered = transpile::decompose_multiqubit(&cswap);
        let mut m16 = Box::new([[C64::ZERO; 16]; 16]);
        for mu in 0..4 {
            let mut op = CMatrix::zeros(8, 8);
            for p in 0..4 {
                op[((mu >> 1) * 4 + p, (mu & 1) * 4 + p)] = C64::ONE;
            }
            let mut obs = DensityMatrix::from_cmatrix(&op)?;
            for instr in lowered.instructions().iter().rev() {
                match &instr.op {
                    Operation::Gate(g) => {
                        noise.apply_adjoint_after_gate(&mut obs, g.num_qubits(), &instr.qubits)?;
                        obs.apply_gate(g.inverse(), &instr.qubits)?;
                    }
                    Operation::Barrier => {}
                    _ => {
                        return Err(QsimError::Unsupported(
                            "the SWAP-test network must be unitary".into(),
                        ))
                    }
                }
            }
            // Decompose over the ancilla bond and reindex the pair
            // operator N_{νμ}[(u_b·2+u_a), (v_b·2+v_a)] into the
            // vec-field transfer K_{νμ}[α = v_a·2+u_a][β = v_b·2+u_b].
            let data = obs.as_slice();
            for nu in 0..4 {
                let (row_anc, col_anc) = (nu >> 1, nu & 1);
                for alpha in 0..4 {
                    let (va, ua) = (alpha >> 1, alpha & 1);
                    for betaf in 0..4 {
                        let (vb, ub) = (betaf >> 1, betaf & 1);
                        let p_r = ub * 2 + ua;
                        let p_c = vb * 2 + va;
                        m16[nu * 4 + alpha][mu * 4 + betaf] =
                            data[(row_anc * 4 + p_r) * 8 + (col_anc * 4 + p_c)];
                    }
                }
            }
        }

        Ok(SwapTestMpo {
            num_qubits,
            m16,
            h,
            beta,
        })
    }

    /// Register width per side of the SWAP test.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Computes `out = W · panel` for a `4^n × samples` vec(ρ_B) panel:
    /// initialise four bond panels `X_μ = h_μ · P`, thread the 16×16
    /// bond ⊗ field transfer through each qubit pair's vec-index field
    /// (bits `q` and `n+q`), then contract the bond against `β`.
    ///
    /// # Panics
    ///
    /// Panics when `panel`/`out` are not `4^n · samples` long.
    pub fn apply_panel(&self, panel: &[C64], samples: usize, out: &mut [C64]) {
        let n = self.num_qubits;
        let dim2 = 1usize << (2 * n);
        assert_eq!(panel.len(), dim2 * samples, "panel shape mismatch");
        assert_eq!(out.len(), dim2 * samples, "output shape mismatch");
        if samples == 0 {
            return;
        }
        let mut bonds: Vec<Vec<C64>> = self
            .h
            .iter()
            .map(|&hm| panel.iter().map(|&x| x * hm).collect())
            .collect();
        // Bond order: the chain runs h → pair n−1 → … → pair 0 → β
        // (the pull-back meets pair n−1 first).
        for q in (0..n).rev() {
            let ml = 1usize << q;
            let mh = 1usize << (n + q);
            let both = ml | mh;
            let [b0, b1, b2, b3] = &mut bonds[..] else {
                unreachable!("four bond panels");
            };
            for base in 0..dim2 {
                if base & both != 0 {
                    continue;
                }
                let [r00, r01, r02, r03] = field_rows_mut(b0, samples, base, ml, mh);
                let [r10, r11, r12, r13] = field_rows_mut(b1, samples, base, ml, mh);
                let [r20, r21, r22, r23] = field_rows_mut(b2, samples, base, ml, mh);
                let [r30, r31, r32, r33] = field_rows_mut(b3, samples, base, ml, mh);
                let mut rows: [&mut [C64]; 16] = [
                    r00, r01, r02, r03, r10, r11, r12, r13, r20, r21, r22, r23, r30, r31, r32, r33,
                ];
                crate::kernel::superop16_lanes(&mut rows, &self.m16);
            }
        }
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.beta[0] * bonds[0][i]
                + self.beta[1] * bonds[1][i]
                + self.beta[2] * bonds[2][i]
                + self.beta[3] * bonds[3][i];
        }
    }
}

/// Borrows the four lane runs of one qubit-pair vec-index field
/// (`base`, `base|ml`, `base|mh`, `base|ml|mh`, strictly ascending)
/// from a bond panel.
fn field_rows_mut(
    buf: &mut [C64],
    samples: usize,
    base: usize,
    ml: usize,
    mh: usize,
) -> [&mut [C64]; 4] {
    let i0 = base * samples;
    let i1 = (base | ml) * samples;
    let i2 = (base | mh) * samples;
    let i3 = (base | ml | mh) * samples;
    let (h0, rest) = buf.split_at_mut(i1);
    let (h1, rest1) = rest.split_at_mut(i2 - i1);
    let (h2, rest2) = rest1.split_at_mut(i3 - i2);
    [
        &mut h0[i0..i0 + samples],
        &mut h1[..samples],
        &mut h2[..samples],
        &mut rest2[..samples],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::NoiseModel;

    const TOL: f64 = 1e-12;

    /// Deterministic trace-1 PSD matrix (a valid mixed state).
    fn test_state(num_qubits: usize, salt: u64) -> CMatrix {
        let dim = 1usize << num_qubits;
        let mut a = CMatrix::zeros(dim, dim);
        for i in 0..dim {
            for j in 0..dim {
                let t = (i * dim + j) as f64 + salt as f64 * 0.61;
                a[(i, j)] = C64::new((t * 0.917).sin(), (t * 1.271).cos());
            }
        }
        let mut rho = &a.dagger() * &a;
        let tr: f64 = (0..dim).map(|i| rho[(i, i)].re).sum();
        for i in 0..dim {
            for j in 0..dim {
                rho[(i, j)] = rho[(i, j)].scale(1.0 / tr);
            }
        }
        rho
    }

    /// A lowered noisy autoencoder-like segment for tests.
    fn test_segment(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.rx(0.3 + 0.2 * q as f64, q);
            c.rz(-0.7 + 0.1 * q as f64, q);
        }
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
        c.reset(n - 1);
        for q in 0..n {
            c.ry(0.9 - 0.3 * q as f64, q);
        }
        transpile::decompose_multiqubit(&c)
    }

    /// Walks the segment per-sample with the dense kernels (the oracle
    /// the program must match).
    fn evolve_dense(rho: &mut DensityMatrix, circ: &Circuit, noise: &GateNoise) {
        for instr in circ.instructions() {
            match &instr.op {
                Operation::Gate(g) => {
                    rho.apply_gate(*g, &instr.qubits).unwrap();
                    noise
                        .apply_after_gate(rho, g.num_qubits(), &instr.qubits)
                        .unwrap();
                }
                Operation::Reset => rho.reset(instr.qubits[0]).unwrap(),
                Operation::Barrier => {}
                other => panic!("unexpected op {other:?}"),
            }
        }
    }

    #[test]
    fn program_matches_dense_walk_under_noise() {
        for n in [2usize, 3] {
            for noise_model in [None, Some(NoiseModel::brisbane())] {
                let gate_noise = noise_model
                    .as_ref()
                    .map(GateNoise::from_model)
                    .unwrap_or_default();
                let circ = test_segment(n);
                let program = ChannelProgram::from_lowered(&circ, &gate_noise).unwrap();
                assert!(!program.ops().is_empty());

                let samples = 3;
                let dim = 1usize << n;
                let states: Vec<CMatrix> = (0..samples).map(|j| test_state(n, j as u64)).collect();
                let mut panel = vec![C64::ZERO; dim * dim * samples];
                for (j, s) in states.iter().enumerate() {
                    for r in 0..dim {
                        for c in 0..dim {
                            panel[(r * dim + c) * samples + j] = s[(r, c)];
                        }
                    }
                }
                program.apply_panel(&mut panel, samples);

                for (j, s) in states.iter().enumerate() {
                    let mut rho = DensityMatrix::from_cmatrix(s).unwrap();
                    evolve_dense(&mut rho, &circ, &gate_noise);
                    let expect = rho.as_slice();
                    let mut trace = C64::ZERO;
                    for r in 0..dim {
                        trace += panel[(r * dim + r) * samples + j];
                    }
                    assert!(
                        (trace.re - 1.0).abs() < 1e-10 && trace.im.abs() < 1e-10,
                        "program is not trace preserving: {trace}"
                    );
                    for idx in 0..dim * dim {
                        let got = panel[idx * samples + j];
                        assert!(
                            got.approx_eq(expect[idx], 1e-10),
                            "n={n} sample {j} entry {idx}: {got} vs {}",
                            expect[idx]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn same_qubit_runs_fuse_into_single_superops() {
        let gate_noise = GateNoise::from_model(&NoiseModel::brisbane());
        let mut c = Circuit::new(2);
        c.rx(0.4, 0);
        c.rz(0.3, 0); // fuses with the RX step
        c.ry(0.2, 1);
        c.cx(0, 1);
        c.rx(0.9, 1); // fuses with CX relaxation on qubit 1
        let program = ChannelProgram::from_lowered(&c, &gate_noise).unwrap();
        let superop_1q = program
            .ops()
            .iter()
            .filter(|op| matches!(op, ChannelOp::Superop1q { .. }))
            .count();
        // One fused step for qubit 0's run, one for qubit 1's pre-CX RY,
        // one for CX relax(0), one for CX relax(1) ⊕ RX.
        assert_eq!(superop_1q, 4);
        assert!(program
            .ops()
            .iter()
            .any(|op| matches!(op, ChannelOp::PermuteCx { .. })));
        assert!(program
            .ops()
            .iter()
            .any(|op| matches!(op, ChannelOp::Depol2q { .. })));
    }

    #[test]
    fn explicit_damping_ops_preserve_trace_and_match_kraus() {
        let n = 2;
        let dim = 1usize << n;
        let program = ChannelProgram::from_ops(
            n,
            vec![
                ChannelOp::AmplitudeDamping {
                    qubit: 0,
                    gamma: 0.23,
                },
                ChannelOp::PhaseDamping {
                    qubit: 1,
                    lambda: 0.41,
                },
                ChannelOp::Reset { qubit: 0 },
            ],
        )
        .unwrap();
        let state = test_state(n, 7);
        let mut panel = vec![C64::ZERO; dim * dim];
        for r in 0..dim {
            for c in 0..dim {
                panel[r * dim + c] = state[(r, c)];
            }
        }
        program.apply_panel(&mut panel, 1);

        let mut rho = DensityMatrix::from_cmatrix(&state).unwrap();
        rho.apply_kraus(&crate::noise::amplitude_damping(0.23), &[0])
            .unwrap();
        rho.apply_kraus(&crate::noise::phase_damping(0.41), &[1])
            .unwrap();
        rho.reset(0).unwrap();
        let expect = rho.as_slice();
        for idx in 0..dim * dim {
            assert!(
                panel[idx].approx_eq(expect[idx], TOL),
                "entry {idx}: {} vs {}",
                panel[idx],
                expect[idx]
            );
        }
        let trace: C64 = (0..dim).map(|r| panel[r * dim + r]).sum();
        assert!((trace.re - 1.0).abs() < TOL && trace.im.abs() < TOL);
    }

    #[test]
    fn from_ops_validates_operands() {
        assert!(matches!(
            ChannelProgram::from_ops(2, vec![ChannelOp::Reset { qubit: 2 }]),
            Err(QsimError::QubitOutOfRange { .. })
        ));
        assert!(matches!(
            ChannelProgram::from_ops(
                2,
                vec![ChannelOp::Depol2q {
                    qa: 1,
                    qb: 1,
                    p: 0.1
                }]
            ),
            Err(QsimError::DuplicateQubit { .. })
        ));
    }

    #[test]
    fn from_lowered_rejects_unlowered_and_measured_circuits() {
        let noise = GateNoise::default();
        let mut c = Circuit::new(3);
        c.cswap(0, 1, 2);
        assert!(matches!(
            ChannelProgram::from_lowered(&c, &noise),
            Err(QsimError::Unsupported(_))
        ));
        let mut c = Circuit::with_clbits(1, 1);
        c.measure(0, 0);
        assert!(matches!(
            ChannelProgram::from_lowered(&c, &noise),
            Err(QsimError::Unsupported(_))
        ));
    }

    /// Forward-simulates the noisy lowered SWAP-test network on
    /// `|0⟩⟨0|_anc ⊗ ρ_B ⊗ ρ_A` and returns P(ancilla = 1) — the
    /// ground truth both the dense functional and the MPO must yield.
    fn swap_test_forward(n: usize, rho_a: &CMatrix, rho_b: &CMatrix, noise: &GateNoise) -> f64 {
        let ancilla = 2 * n;
        let sub = 1usize << n;
        let dim = 1usize << (2 * n + 1);
        let mut full = CMatrix::zeros(dim, dim);
        for ra in 0..sub {
            for ca in 0..sub {
                for rb in 0..sub {
                    for cb in 0..sub {
                        full[(rb * sub + ra, cb * sub + ca)] = rho_a[(ra, ca)] * rho_b[(rb, cb)];
                    }
                }
            }
        }
        let mut rho = DensityMatrix::from_cmatrix(&full).unwrap();
        let mut circ = Circuit::new(2 * n + 1);
        circ.h(ancilla);
        for q in 0..n {
            circ.cswap(ancilla, q, n + q);
        }
        circ.h(ancilla);
        let lowered = transpile::decompose_multiqubit(&circ);
        for instr in lowered.instructions() {
            if let Operation::Gate(g) = &instr.op {
                rho.apply_gate(*g, &instr.qubits).unwrap();
                noise
                    .apply_after_gate(&mut rho, g.num_qubits(), &instr.qubits)
                    .unwrap();
            }
        }
        rho.probability_one(ancilla).unwrap()
    }

    #[test]
    fn mpo_readout_matches_forward_simulation() {
        for n in [1usize, 2] {
            for noise_model in [None, Some(NoiseModel::brisbane())] {
                let gate_noise = noise_model
                    .as_ref()
                    .map(GateNoise::from_model)
                    .unwrap_or_default();
                let mpo = SwapTestMpo::build(n, &gate_noise).unwrap();
                let sub = 1usize << n;
                let dim2 = sub * sub;
                let rho_a = test_state(n, 3);
                let rho_b = test_state(n, 11);

                let vec_b: Vec<C64> = (0..sub)
                    .flat_map(|v| (0..sub).map(move |u| (v, u)))
                    .map(|(v, u)| rho_b[(v, u)])
                    .collect();
                let mut y = vec![C64::ZERO; dim2];
                mpo.apply_panel(&vec_b, 1, &mut y);
                let mut raw = C64::ZERO;
                for va in 0..sub {
                    for ua in 0..sub {
                        raw += rho_a[(va, ua)] * y[va * sub + ua];
                    }
                }

                let expect = swap_test_forward(n, &rho_a, &rho_b, &gate_noise);
                assert!(
                    (raw.re - expect).abs() < 1e-9 && raw.im.abs() < 1e-9,
                    "n={n}: MPO readout {raw} vs forward {expect}"
                );
            }
        }
    }
}
