//! Noise channels and the Brisbane-like hardware noise model.
//!
//! The paper's noisy simulations "model … IBM's Brisbane quantum computer"
//! using its published median properties. We reproduce the same channel
//! structure:
//!
//! * **depolarizing** error per gate (1-qubit and 2-qubit rates),
//! * **thermal relaxation** (amplitude damping from T1, pure dephasing from
//!   T2) accrued over each gate's duration,
//! * a symmetric **readout** bit-flip applied to measurement outcomes.

use crate::complex::C64;
use crate::gate::Gate;
use crate::matrix::CMatrix;

/// Builds the single-qubit depolarizing channel with error parameter `p`:
/// `ρ → (1−p)ρ + p/3 (XρX + YρY + ZρZ)`.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
pub fn depolarizing_1q(p: f64) -> Vec<CMatrix> {
    assert!((0.0..=1.0).contains(&p), "depolarizing parameter in [0,1]");
    let k0 = Gate::I.matrix().scaled(C64::from_real((1.0 - p).sqrt()));
    let w = C64::from_real((p / 3.0).sqrt());
    vec![
        k0,
        Gate::X.matrix().scaled(w),
        Gate::Y.matrix().scaled(w),
        Gate::Z.matrix().scaled(w),
    ]
}

/// Builds the two-qubit depolarizing channel with error parameter `p`:
/// the identity with weight `1−p` plus the 15 non-identity Pauli pairs each
/// with weight `p/15`.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
pub fn depolarizing_2q(p: f64) -> Vec<CMatrix> {
    assert!((0.0..=1.0).contains(&p), "depolarizing parameter in [0,1]");
    let paulis = [Gate::I, Gate::X, Gate::Y, Gate::Z];
    let mut kraus = Vec::with_capacity(16);
    for (ai, a) in paulis.iter().enumerate() {
        for (bi, b) in paulis.iter().enumerate() {
            let weight = if ai == 0 && bi == 0 {
                (1.0 - p).sqrt()
            } else {
                (p / 15.0).sqrt()
            };
            kraus.push(a.matrix().kron(&b.matrix()).scaled(C64::from_real(weight)));
        }
    }
    kraus
}

/// Builds the amplitude-damping channel with decay probability `gamma`.
///
/// # Panics
///
/// Panics if `gamma` is outside `[0, 1]`.
pub fn amplitude_damping(gamma: f64) -> Vec<CMatrix> {
    assert!((0.0..=1.0).contains(&gamma), "gamma in [0,1]");
    let k0 = CMatrix::from_rows(&[
        &[C64::ONE, C64::ZERO],
        &[C64::ZERO, C64::from_real((1.0 - gamma).sqrt())],
    ]);
    let k1 = CMatrix::from_rows(&[
        &[C64::ZERO, C64::from_real(gamma.sqrt())],
        &[C64::ZERO, C64::ZERO],
    ]);
    vec![k0, k1]
}

/// Builds the phase-damping channel with dephasing probability `lambda`.
///
/// # Panics
///
/// Panics if `lambda` is outside `[0, 1]`.
pub fn phase_damping(lambda: f64) -> Vec<CMatrix> {
    assert!((0.0..=1.0).contains(&lambda), "lambda in [0,1]");
    let k0 = CMatrix::from_rows(&[
        &[C64::ONE, C64::ZERO],
        &[C64::ZERO, C64::from_real((1.0 - lambda).sqrt())],
    ]);
    let k1 = CMatrix::from_rows(&[
        &[C64::ZERO, C64::ZERO],
        &[C64::ZERO, C64::from_real(lambda.sqrt())],
    ]);
    vec![k0, k1]
}

/// Verifies the completeness relation `Σ K†K = I` within `tol`.
pub fn is_trace_preserving(kraus: &[CMatrix], tol: f64) -> bool {
    if kraus.is_empty() {
        return false;
    }
    let dim = kraus[0].rows();
    let mut sum = CMatrix::zeros(dim, dim);
    for k in kraus {
        sum = &sum + &(&k.dagger() * k);
    }
    sum.approx_eq(&CMatrix::identity(dim), tol)
}

/// A hardware noise model in the style of IBM backend calibration data.
///
/// All times are in **seconds**; error rates are probabilities.
///
/// # Examples
///
/// ```
/// use qsim::noise::NoiseModel;
///
/// let nm = NoiseModel::brisbane();
/// assert!(nm.readout_error > 0.0);
/// let channels = nm.channels_for_1q_gate();
/// assert!(!channels.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseModel {
    /// Median T1 relaxation time.
    pub t1: f64,
    /// Median T2 dephasing time.
    pub t2: f64,
    /// Depolarizing error per single-qubit gate.
    pub error_1q: f64,
    /// Depolarizing error per two-qubit gate.
    pub error_2q: f64,
    /// Duration of a single-qubit gate.
    pub gate_time_1q: f64,
    /// Duration of a two-qubit gate.
    pub gate_time_2q: f64,
    /// Symmetric readout bit-flip probability.
    pub readout_error: f64,
}

impl NoiseModel {
    /// The paper's IBM-Brisbane median properties (§V, Experimental Setup):
    /// T1 = 230.42 µs, T2 = 143.41 µs, SX error 2.274×10⁻⁴, two-qubit error
    /// 2.903×10⁻³, readout error 1.38×10⁻². Gate durations use Brisbane's
    /// published 60 ns (SX) and 660 ns (ECR).
    pub fn brisbane() -> Self {
        NoiseModel {
            t1: 230.42e-6,
            t2: 143.41e-6,
            error_1q: 2.274e-4,
            error_2q: 2.903e-3,
            gate_time_1q: 60e-9,
            gate_time_2q: 660e-9,
            readout_error: 1.38e-2,
        }
    }

    /// A noiseless model (identity channels everywhere), useful for
    /// verifying that the noisy code path reduces to the ideal one.
    pub fn ideal() -> Self {
        NoiseModel {
            t1: f64::INFINITY,
            t2: f64::INFINITY,
            error_1q: 0.0,
            error_2q: 0.0,
            gate_time_1q: 0.0,
            gate_time_2q: 0.0,
            readout_error: 0.0,
        }
    }

    /// Returns a copy with every error source scaled by `factor`
    /// (times divided, rates multiplied). Used for noise-sensitivity
    /// ablations.
    ///
    /// # Panics
    ///
    /// Panics if scaled error rates leave `[0, 1]`.
    pub fn scaled(&self, factor: f64) -> Self {
        let nm = NoiseModel {
            t1: self.t1 / factor,
            t2: self.t2 / factor,
            error_1q: self.error_1q * factor,
            error_2q: self.error_2q * factor,
            gate_time_1q: self.gate_time_1q,
            gate_time_2q: self.gate_time_2q,
            readout_error: (self.readout_error * factor).min(0.5),
        };
        assert!(nm.error_1q <= 1.0 && nm.error_2q <= 1.0);
        nm
    }

    /// Amplitude-damping probability accrued over `duration`.
    fn gamma(&self, duration: f64) -> f64 {
        if self.t1.is_infinite() || duration == 0.0 {
            0.0
        } else {
            1.0 - (-duration / self.t1).exp()
        }
    }

    /// Pure-dephasing probability accrued over `duration`, derived from
    /// `1/Tφ = 1/T2 − 1/(2 T1)`.
    fn lambda(&self, duration: f64) -> f64 {
        if self.t2.is_infinite() || duration == 0.0 {
            return 0.0;
        }
        let inv_tphi = 1.0 / self.t2 - 1.0 / (2.0 * self.t1);
        if inv_tphi <= 0.0 {
            0.0
        } else {
            1.0 - (-duration * inv_tphi).exp()
        }
    }

    /// Per-qubit relaxation channels (amplitude then phase damping) for a
    /// gate of the given duration. Empty when the model is ideal.
    pub fn relaxation_channels(&self, duration: f64) -> Vec<Vec<CMatrix>> {
        let mut out = Vec::new();
        let g = self.gamma(duration);
        if g > 0.0 {
            out.push(amplitude_damping(g));
        }
        let l = self.lambda(duration);
        if l > 0.0 {
            out.push(phase_damping(l));
        }
        out
    }

    /// The 1-qubit channels to apply after each single-qubit gate:
    /// depolarizing (if any) followed by thermal relaxation.
    pub fn channels_for_1q_gate(&self) -> Vec<Vec<CMatrix>> {
        let mut out = Vec::new();
        if self.error_1q > 0.0 {
            out.push(depolarizing_1q(self.error_1q));
        }
        out.extend(self.relaxation_channels(self.gate_time_1q));
        out
    }

    /// The channels to apply after each two-qubit gate: one 2-qubit
    /// depolarizing channel plus per-qubit relaxation (returned separately:
    /// `(two_qubit_channels, per_qubit_channels)`).
    pub fn channels_for_2q_gate(&self) -> (Vec<Vec<CMatrix>>, Vec<Vec<CMatrix>>) {
        let mut two = Vec::new();
        if self.error_2q > 0.0 {
            two.push(depolarizing_2q(self.error_2q));
        }
        (two, self.relaxation_channels(self.gate_time_2q))
    }

    /// Applies the symmetric readout confusion matrix to an ideal
    /// probability of reading `1`.
    pub fn apply_readout(&self, p_one: f64) -> f64 {
        let e = self.readout_error;
        p_one * (1.0 - e) + (1.0 - p_one) * e
    }

    /// Whether this model introduces any error at all.
    pub fn is_ideal(&self) -> bool {
        self.error_1q == 0.0
            && self.error_2q == 0.0
            && self.readout_error == 0.0
            && (self.t1.is_infinite() || self.gate_time_1q == 0.0 && self.gate_time_2q == 0.0)
    }
}

impl Default for NoiseModel {
    /// Defaults to the Brisbane-like preset used throughout the paper.
    fn default() -> Self {
        NoiseModel::brisbane()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::DensityMatrix;

    const TOL: f64 = 1e-10;

    #[test]
    fn all_channels_are_trace_preserving() {
        assert!(is_trace_preserving(&depolarizing_1q(0.01), TOL));
        assert!(is_trace_preserving(&depolarizing_1q(0.0), TOL));
        assert!(is_trace_preserving(&depolarizing_1q(1.0), TOL));
        assert!(is_trace_preserving(&depolarizing_2q(0.05), TOL));
        assert!(is_trace_preserving(&amplitude_damping(0.3), TOL));
        assert!(is_trace_preserving(&phase_damping(0.7), TOL));
    }

    #[test]
    fn primitive_channels_are_cptp_across_parameter_sweeps() {
        // The completeness relation Σ K†K = I must hold for every channel
        // constructor over its whole parameter range.
        for p in [0.0, 1e-6, 0.01, 0.25, 0.5, 0.75, 1.0] {
            assert!(is_trace_preserving(&depolarizing_1q(p), TOL), "d1q({p})");
            assert!(is_trace_preserving(&depolarizing_2q(p), TOL), "d2q({p})");
            assert!(is_trace_preserving(&amplitude_damping(p), TOL), "amp({p})");
            assert!(is_trace_preserving(&phase_damping(p), TOL), "phase({p})");
        }
    }

    #[test]
    fn model_channel_stacks_are_cptp_for_all_presets_and_scales() {
        // Every channel any NoiseModel hands the simulator — 1q gate stack,
        // 2q gate stack, raw relaxation — is CPTP, for the ideal and
        // Brisbane presets and for Brisbane scaled by {0, 0.5, 1, 2}.
        let mut models = vec![NoiseModel::ideal(), NoiseModel::brisbane()];
        for factor in [0.0, 0.5, 1.0, 2.0] {
            models.push(NoiseModel::brisbane().scaled(factor));
        }
        for (i, nm) in models.iter().enumerate() {
            for ch in nm.channels_for_1q_gate() {
                assert!(is_trace_preserving(&ch, TOL), "model {i}: 1q stack");
            }
            let (two, per_q) = nm.channels_for_2q_gate();
            for ch in two {
                assert!(is_trace_preserving(&ch, TOL), "model {i}: 2q depol");
            }
            for ch in per_q {
                assert!(is_trace_preserving(&ch, TOL), "model {i}: 2q relax");
            }
            for duration in [nm.gate_time_1q, nm.gate_time_2q, 1e-6] {
                for ch in nm.relaxation_channels(duration) {
                    assert!(
                        is_trace_preserving(&ch, TOL),
                        "model {i}: relaxation over {duration}"
                    );
                }
            }
        }
    }

    #[test]
    fn zero_scaled_model_is_ideal() {
        let nm = NoiseModel::brisbane().scaled(0.0);
        assert!(nm.is_ideal());
        assert!(nm.channels_for_1q_gate().is_empty());
        assert_eq!(nm.apply_readout(0.42), 0.42);
    }

    #[test]
    fn depolarizing_full_strength_mixes_completely() {
        let mut rho = DensityMatrix::new(1).unwrap();
        // p = 3/4 gives the maximally mixed state in this convention:
        // (1-3/4)ρ + (1/4)(XρX+YρY+ZρZ) = I/2 for any pure ρ.
        rho.apply_kraus(&depolarizing_1q(0.75), &[0]).unwrap();
        assert!((rho.purity() - 0.5).abs() < TOL);
    }

    #[test]
    fn amplitude_damping_decays_excited_state() {
        let mut rho = DensityMatrix::new(1).unwrap();
        rho.apply_gate(Gate::X, &[0]).unwrap();
        rho.apply_kraus(&amplitude_damping(0.25), &[0]).unwrap();
        assert!((rho.probability_one(0).unwrap() - 0.75).abs() < TOL);
    }

    #[test]
    fn phase_damping_preserves_populations() {
        let mut rho = DensityMatrix::new(1).unwrap();
        rho.apply_gate(Gate::RY(0.9), &[0]).unwrap();
        let p_before = rho.probability_one(0).unwrap();
        rho.apply_kraus(&phase_damping(0.5), &[0]).unwrap();
        assert!((rho.probability_one(0).unwrap() - p_before).abs() < TOL);
        assert!(rho.purity() < 1.0 - 1e-6);
    }

    #[test]
    fn brisbane_parameters_match_paper() {
        let nm = NoiseModel::brisbane();
        assert!((nm.t1 - 230.42e-6).abs() < 1e-12);
        assert!((nm.t2 - 143.41e-6).abs() < 1e-12);
        assert!((nm.error_1q - 2.274e-4).abs() < 1e-12);
        assert!((nm.error_2q - 2.903e-3).abs() < 1e-12);
        assert!((nm.readout_error - 1.38e-2).abs() < 1e-12);
    }

    #[test]
    fn ideal_model_is_noiseless() {
        let nm = NoiseModel::ideal();
        assert!(nm.is_ideal());
        assert!(nm.channels_for_1q_gate().is_empty());
        let (two, per_q) = nm.channels_for_2q_gate();
        assert!(two.is_empty());
        assert!(per_q.is_empty());
        assert_eq!(nm.apply_readout(0.3), 0.3);
    }

    #[test]
    fn brisbane_is_not_ideal_and_channels_exist() {
        let nm = NoiseModel::brisbane();
        assert!(!nm.is_ideal());
        assert_eq!(nm.channels_for_1q_gate().len(), 3); // depol + amp + phase
        let (two, per_q) = nm.channels_for_2q_gate();
        assert_eq!(two.len(), 1);
        assert_eq!(per_q.len(), 2);
        for ch in nm.channels_for_1q_gate() {
            assert!(is_trace_preserving(&ch, TOL));
        }
    }

    #[test]
    fn readout_confusion_is_symmetric_and_bounded() {
        let nm = NoiseModel::brisbane();
        let p = nm.apply_readout(0.0);
        assert!((p - nm.readout_error).abs() < TOL);
        let p = nm.apply_readout(1.0);
        assert!((p - (1.0 - nm.readout_error)).abs() < TOL);
        let p = nm.apply_readout(0.5);
        assert!((p - 0.5).abs() < TOL);
    }

    #[test]
    fn scaled_model_amplifies_error() {
        let nm = NoiseModel::brisbane().scaled(2.0);
        assert!((nm.error_1q - 2.0 * 2.274e-4).abs() < 1e-12);
        assert!(nm.t1 < NoiseModel::brisbane().t1);
    }

    #[test]
    fn relaxation_probabilities_grow_with_duration() {
        let nm = NoiseModel::brisbane();
        assert!(nm.gamma(660e-9) > nm.gamma(60e-9));
        assert!(nm.lambda(660e-9) > nm.lambda(60e-9));
        assert_eq!(nm.gamma(0.0), 0.0);
    }

    use crate::gate::Gate;
}
