//! Parallel batch execution.
//!
//! Quorum's ensemble groups are "embarrassingly parallel" (paper §IV-F):
//! every group is independent. This module provides a work-stealing batch
//! runner over any [`Backend`] using `std::thread::scope` — no `'static`
//! bounds required.

use crate::circuit::Circuit;
use crate::error::QsimError;
use crate::simulator::{Backend, OutcomeDistribution};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Computes the exact outcome distribution of every circuit, fanning work
/// out over `threads` OS threads (1 = sequential). Result order matches
/// input order.
///
/// # Examples
///
/// ```
/// use qsim::circuit::Circuit;
/// use qsim::parallel::run_batch;
/// use qsim::simulator::StatevectorBackend;
///
/// let mut qc = Circuit::with_clbits(1, 1);
/// qc.h(0).measure(0, 0);
/// let circuits = vec![qc.clone(), qc];
/// let results = run_batch(&StatevectorBackend::new(), &circuits, 2);
/// assert_eq!(results.len(), 2);
/// assert!(results[0].as_ref().unwrap().marginal_one(0) > 0.49);
/// ```
pub fn run_batch<B: Backend>(
    backend: &B,
    circuits: &[Circuit],
    threads: usize,
) -> Vec<Result<OutcomeDistribution, QsimError>> {
    let threads = threads.max(1).min(circuits.len().max(1));
    if threads == 1 {
        return circuits.iter().map(|c| backend.probabilities(c)).collect();
    }
    let mut results: Vec<Option<Result<OutcomeDistribution, QsimError>>> =
        (0..circuits.len()).map(|_| None).collect();
    let next = AtomicUsize::new(0);
    let results_ptr = ResultsCell(&mut results);

    std::thread::scope(|scope| {
        let results_ref = &results_ptr;
        let next_ref = &next;
        for _ in 0..threads {
            scope.spawn(move || loop {
                let idx = next_ref.fetch_add(1, Ordering::Relaxed);
                if idx >= circuits.len() {
                    break;
                }
                let out = backend.probabilities(&circuits[idx]);
                // SAFETY-free: each index is claimed exactly once by the
                // atomic counter, so no two threads write the same slot.
                results_ref.set(idx, out);
            });
        }
    });

    results
        .into_iter()
        .map(|r| r.expect("every index was claimed"))
        .collect()
}

/// Shared mutable results buffer with disjoint-index writes coordinated by
/// an atomic counter. Wrapped in a tiny cell type to confine the single
/// `unsafe` block.
struct ResultsCell<'a>(&'a mut [Option<Result<OutcomeDistribution, QsimError>>]);

unsafe impl Sync for ResultsCell<'_> {}

impl ResultsCell<'_> {
    fn set(&self, idx: usize, value: Result<OutcomeDistribution, QsimError>) {
        // SAFETY: `idx` is claimed exactly once via fetch_add, so writes
        // never alias; the buffer outlives the thread scope.
        unsafe {
            let slot =
                self.0.as_ptr().add(idx) as *mut Option<Result<OutcomeDistribution, QsimError>>;
            *slot = Some(value);
        }
    }
}

/// Runs a closure over indexed work items in parallel, collecting outputs
/// in input order. Generic helper for ensemble-level parallelism where the
/// work is not a single circuit (e.g. a whole Quorum ensemble group).
pub fn map_indexed<T, F>(num_items: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    map_indexed_with(num_items, threads, || (), |(), idx| f(idx))
}

/// [`map_indexed`] with per-worker scratch state: `init` runs once on each
/// worker thread (and once for the sequential path) and the resulting
/// value is threaded through every item that worker claims. This is how
/// the GEMM seam reuses its split-complex panel buffers across the panel
/// stream instead of reallocating per panel — each worker pays for one
/// scratch allocation per call, however many panels it processes — and
/// how the lockstep noisy state preparation fans its fixed-width vec(ρ)
/// column blocks out across workers (each worker keeping one set of RY
/// coefficient lanes for its whole block stream). Items are claimed off
/// one atomic counter, so distribution is work-stealing-ish; callers that
/// need thread-count-independent *results* make each item's output a pure
/// function of its index (fixed block boundaries), as both users above do.
pub fn map_indexed_with<S, T, I, F>(num_items: usize, threads: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let threads = threads.max(1).min(num_items.max(1));
    if threads == 1 {
        let mut scratch = init();
        return (0..num_items).map(|idx| f(&mut scratch, idx)).collect();
    }
    let mut results: Vec<Option<T>> = (0..num_items).map(|_| None).collect();
    let next = AtomicUsize::new(0);
    let cell = MapCell(&mut results);

    std::thread::scope(|scope| {
        let cell_ref = &cell;
        let next_ref = &next;
        let init_ref = &init;
        let f_ref = &f;
        for _ in 0..threads {
            scope.spawn(move || {
                let mut scratch = init_ref();
                loop {
                    let idx = next_ref.fetch_add(1, Ordering::Relaxed);
                    if idx >= num_items {
                        break;
                    }
                    cell_ref.set(idx, f_ref(&mut scratch, idx));
                }
            });
        }
    });

    results
        .into_iter()
        .map(|r| r.expect("every index was claimed"))
        .collect()
}

struct MapCell<'a, T>(&'a mut [Option<T>]);

unsafe impl<T: Send> Sync for MapCell<'_, T> {}

impl<T> MapCell<'_, T> {
    fn set(&self, idx: usize, value: T) {
        // SAFETY: disjoint indices via fetch_add; buffer outlives the scope.
        unsafe {
            let slot = self.0.as_ptr().add(idx) as *mut Option<T>;
            *slot = Some(value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::StatevectorBackend;

    fn sample_circuit(theta: f64) -> Circuit {
        let mut qc = Circuit::with_clbits(2, 1);
        qc.ry(theta, 0).cx(0, 1).measure(1, 0);
        qc
    }

    #[test]
    fn batch_results_preserve_order() {
        let circuits: Vec<Circuit> = (0..16).map(|i| sample_circuit(i as f64 * 0.2)).collect();
        let backend = StatevectorBackend::new();
        let seq = run_batch(&backend, &circuits, 1);
        let par = run_batch(&backend, &circuits, 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert!((a.marginal_one(0) - b.marginal_one(0)).abs() < 1e-12);
        }
    }

    #[test]
    fn batch_handles_more_threads_than_work() {
        let circuits = vec![sample_circuit(0.3)];
        let out = run_batch(&StatevectorBackend::new(), &circuits, 64);
        assert_eq!(out.len(), 1);
        assert!(out[0].is_ok());
    }

    #[test]
    fn batch_handles_empty_input() {
        let out = run_batch(&StatevectorBackend::new(), &[], 4);
        assert!(out.is_empty());
    }

    #[test]
    fn batch_propagates_errors_per_item() {
        let good = sample_circuit(0.5);
        let mut bad = Circuit::with_clbits(2, 1);
        // Valid circuit object but will exceed the branch cap at runtime.
        bad.h(0).h(1);
        for _ in 0..15 {
            bad.reset(0);
            bad.h(0);
        }
        bad.measure(0, 0);
        let backend = StatevectorBackend::new().with_max_branches(4);
        let out = run_batch(&backend, &[good, bad], 2);
        assert!(out[0].is_ok());
        assert!(out[1].is_err());
    }

    #[test]
    fn map_indexed_matches_sequential() {
        let seq = map_indexed(100, 1, |i| i * i);
        let par = map_indexed(100, 8, |i| i * i);
        assert_eq!(seq, par);
        assert_eq!(seq[7], 49);
    }

    #[test]
    fn map_indexed_empty() {
        let out: Vec<usize> = map_indexed(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn map_indexed_with_reuses_scratch_per_worker() {
        use std::sync::atomic::AtomicUsize;
        // Each worker's scratch counts the items it processed; `init` runs
        // once per worker, so the number of inits never exceeds the thread
        // count and every item is claimed exactly once.
        let inits = AtomicUsize::new(0);
        for threads in [1usize, 4] {
            inits.store(0, Ordering::Relaxed);
            let out = map_indexed_with(
                37,
                threads,
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                    0usize
                },
                |seen, idx| {
                    *seen += 1;
                    (idx, *seen)
                },
            );
            assert_eq!(out.len(), 37);
            let total: usize = out.iter().map(|&(idx, _)| idx).sum();
            assert_eq!(total, 37 * 36 / 2, "threads {threads}");
            assert!(inits.load(Ordering::Relaxed) <= threads.max(1));
            // Scratch persistence: the per-item counters across all
            // workers account for every item exactly once.
            let max_seen: usize = out.iter().map(|&(_, s)| s).sum();
            assert!(max_seen >= 37);
        }
    }
}
