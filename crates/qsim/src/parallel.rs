//! Parallel batch execution.
//!
//! Quorum's ensemble groups are "embarrassingly parallel" (paper §IV-F):
//! every group is independent. This module provides a work-stealing batch
//! runner over any [`Backend`] plus the resident [`WorkerPool`] that
//! executes it: parked OS threads that live for the whole process, so a
//! streaming workload (one scored panel after another) pays thread spawn
//! and join once instead of per panel — and, because the workers are the
//! *same* threads every panel, every `thread_local` scratch buffer in the
//! kernel layer (e.g. the GEMM seam's split-complex panels) stays warm
//! across panels instead of being torn down with the scope.
//!
//! Work distribution is an atomic claim counter over item indices, so
//! which worker runs which item is scheduling-dependent — callers that
//! need thread-count-independent *results* make each item's output a pure
//! function of its index (fixed block boundaries), which every caller in
//! this codebase does. The pool never changes what is computed, only who
//! computes it.

use crate::circuit::Circuit;
use crate::error::QsimError;
use crate::simulator::{Backend, OutcomeDistribution};
use std::any::Any;
use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// Environment knob naming the resident pool's total participant count
/// (dispatching caller + parked workers). Unset or unparsable, the pool
/// sizes itself to `std::thread::available_parallelism()`.
pub const POOL_THREADS_ENV: &str = "QUORUM_POOL_THREADS";

/// A resident, parked worker pool for borrowed (non-`'static`) jobs.
///
/// Jobs are dispatched by reference: the caller hands the pool a
/// `&(dyn Fn() + Sync)` task, each participating worker invokes it once
/// (the task body claims items off a shared atomic counter), the caller
/// itself runs the task too, and the dispatch does not return until
/// every participating worker has left the task — so the borrow is
/// confined and the closure may capture stack data freely.
///
/// A worker that panics inside a task survives: the payload is parked,
/// the worker returns to its parked loop, and the *caller* re-raises the
/// panic after every participant has finished — the same observable
/// behavior as the `std::thread::scope` path the pool replaces.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers park here waiting for a new job generation.
    work_cv: Condvar,
    /// The dispatching caller parks here waiting for workers to drain.
    done_cv: Condvar,
}

struct PoolState {
    /// Bumped once per dispatched job so parked workers can tell a fresh
    /// job from the one they already ran.
    generation: u64,
    /// The in-flight borrowed task, if any (one job at a time; a second
    /// concurrent dispatch reports "busy" and the caller falls back to a
    /// scoped spawn).
    job: Option<TaskPtr>,
    /// Worker entries not yet picked up. The caller zeroes this after
    /// running its own share so sleepy workers never touch a job whose
    /// borrow is about to end.
    unclaimed: usize,
    /// Workers currently inside the task body.
    running: usize,
    /// First panic payload raised inside the task, re-raised by the caller.
    panic_payload: Option<Box<dyn Any + Send>>,
    shutdown: bool,
}

/// Lifetime-erased pointer to the borrowed task. Confined: the dispatch
/// protocol guarantees no worker dereferences it after `run` returns.
#[derive(Clone, Copy)]
struct TaskPtr(*const (dyn Fn() + Sync));

// SAFETY: the pointee is `Sync` (shared invocation is sound) and the
// dispatch protocol bounds every dereference inside the caller's borrow.
unsafe impl Send for TaskPtr {}

/// Erases the borrow lifetime of a task reference so it can sit in the
/// pool's job slot.
///
/// # Safety
///
/// The caller must guarantee no worker dereferences the pointer after the
/// original borrow ends — [`WorkerPool::run`] does, by cancelling
/// unclaimed entries and draining running workers before it returns.
unsafe fn erase_task_lifetime<'a>(
    task: &'a (dyn Fn() + Sync + 'a),
) -> *const (dyn Fn() + Sync + 'static) {
    // SAFETY: fat pointers to the same trait differ only in the erased
    // lifetime bound; see the function contract above.
    unsafe {
        std::mem::transmute::<&'a (dyn Fn() + Sync + 'a), &'static (dyn Fn() + Sync + 'static)>(
            task,
        )
    }
}

thread_local! {
    /// Set while the current thread is a pool worker running a task, so a
    /// nested parallel call falls back to a scoped spawn instead of
    /// deadlocking on its own pool.
    static IN_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

fn lock_state(shared: &PoolShared) -> MutexGuard<'_, PoolState> {
    // A panicking task is caught before it can poison anything observable;
    // recover rather than wedge a resident server on a poisoned mutex.
    shared
        .state
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl WorkerPool {
    /// Spawns a pool with `workers` resident parked threads. A dispatch
    /// additionally runs on the calling thread, so `WorkerPool::new(3)`
    /// yields up to four participants per job.
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                generation: 0,
                job: None,
                unclaimed: 0,
                running: 0,
                panic_payload: None,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("quorum-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// The process-wide pool, created on first use. Sized by
    /// [`POOL_THREADS_ENV`] (total participants) when set, otherwise by
    /// `available_parallelism()`; one participant is the dispatching
    /// caller, so the resident worker count is one less.
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let participants = std::env::var(POOL_THREADS_ENV)
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n >= 1)
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(std::num::NonZeroUsize::get)
                        .unwrap_or(1)
                });
            WorkerPool::new(participants.saturating_sub(1))
        })
    }

    /// Resident worker count (excluding the dispatching caller).
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// True when the current thread is a pool worker mid-task — callers
    /// use this to avoid dispatching nested jobs into their own pool.
    pub fn on_pool_worker() -> bool {
        IN_POOL_WORKER.with(Cell::get)
    }

    /// Runs `task` on the calling thread plus up to `extra` resident
    /// workers, returning only after every participant has left the task.
    /// Returns `false` without running anything when another job is
    /// already in flight (the caller should fall back to a scoped spawn).
    ///
    /// Panics raised inside the task (on any participant) are re-raised
    /// here after all participants finish.
    pub fn run(&self, extra: usize, task: &(dyn Fn() + Sync)) -> bool {
        let extra = extra.min(self.workers());
        if extra > 0 {
            let mut st = lock_state(&self.shared);
            if st.job.is_some() {
                return false;
            }
            // SAFETY: erases the borrow's lifetime; `unclaimed` is zeroed
            // and `running` drained below before this function returns,
            // so no worker touches the pointer after the borrow ends.
            let ptr = TaskPtr(unsafe { erase_task_lifetime(task) });
            st.generation += 1;
            st.job = Some(ptr);
            st.unclaimed = extra;
            drop(st);
            self.shared.work_cv.notify_all();
        }
        let caller_panic = panic::catch_unwind(AssertUnwindSafe(task)).err();
        let pool_panic = if extra > 0 {
            let mut st = lock_state(&self.shared);
            // Entries nobody picked up are cancelled — the work they would
            // have claimed was already drained by the faster participants.
            st.unclaimed = 0;
            while st.running > 0 {
                st = self
                    .shared
                    .done_cv
                    .wait(st)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
            st.job = None;
            st.panic_payload.take()
        } else {
            None
        };
        if let Some(payload) = caller_panic.or(pool_panic) {
            panic::resume_unwind(payload);
        }
        true
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = lock_state(&self.shared);
            st.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    let mut seen_generation = 0u64;
    loop {
        let task = {
            let mut st = lock_state(shared);
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation > seen_generation {
                    seen_generation = st.generation;
                    if st.unclaimed > 0 {
                        st.unclaimed -= 1;
                        st.running += 1;
                        break st.job.expect("unclaimed entries imply a job");
                    }
                }
                st = shared
                    .work_cv
                    .wait(st)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        };
        // SAFETY: claimed under the lock while `unclaimed > 0`, so the
        // dispatching caller is still inside `run` and the borrow is live.
        let task_ref = unsafe { &*task.0 };
        IN_POOL_WORKER.with(|flag| flag.set(true));
        let outcome = panic::catch_unwind(AssertUnwindSafe(task_ref));
        IN_POOL_WORKER.with(|flag| flag.set(false));
        let mut st = lock_state(shared);
        st.running -= 1;
        if let Err(payload) = outcome {
            // Keep the first payload; the caller re-raises it. The worker
            // itself survives and goes back to parking.
            st.panic_payload.get_or_insert(payload);
        }
        if st.running == 0 {
            shared.done_cv.notify_all();
        }
    }
}

/// Computes the exact outcome distribution of every circuit, fanning work
/// out over `threads` OS threads (1 = sequential). Result order matches
/// input order.
///
/// # Examples
///
/// ```
/// use qsim::circuit::Circuit;
/// use qsim::parallel::run_batch;
/// use qsim::simulator::StatevectorBackend;
///
/// let mut qc = Circuit::with_clbits(1, 1);
/// qc.h(0).measure(0, 0);
/// let circuits = vec![qc.clone(), qc];
/// let results = run_batch(&StatevectorBackend::new(), &circuits, 2);
/// assert_eq!(results.len(), 2);
/// assert!(results[0].as_ref().unwrap().marginal_one(0) > 0.49);
/// ```
pub fn run_batch<B: Backend>(
    backend: &B,
    circuits: &[Circuit],
    threads: usize,
) -> Vec<Result<OutcomeDistribution, QsimError>> {
    map_indexed(circuits.len(), threads, |idx| {
        backend.probabilities(&circuits[idx])
    })
}

/// Runs a closure over indexed work items in parallel, collecting outputs
/// in input order. Generic helper for ensemble-level parallelism where the
/// work is not a single circuit (e.g. a whole Quorum ensemble group).
pub fn map_indexed<T, F>(num_items: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    map_indexed_with(num_items, threads, || (), |(), idx| f(idx))
}

/// [`map_indexed`] with per-worker scratch state: `init` runs once on each
/// worker thread (and once for the sequential path) and the resulting
/// value is threaded through every item that worker claims. This is how
/// the GEMM seam reuses its split-complex panel buffers across the panel
/// stream instead of reallocating per panel — each worker pays for one
/// scratch allocation per call, however many panels it processes — and
/// how the lockstep noisy state preparation fans its fixed-width vec(ρ)
/// column blocks out across workers (each worker keeping one set of RY
/// coefficient lanes for its whole block stream). Items are claimed off
/// one atomic counter, so distribution is work-stealing-ish; callers that
/// need thread-count-independent *results* make each item's output a pure
/// function of its index (fixed block boundaries), as both users above do.
pub fn map_indexed_with<S, T, I, F>(num_items: usize, threads: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let threads = threads.max(1).min(num_items.max(1));
    if threads == 1 {
        let mut scratch = init();
        return (0..num_items).map(|idx| f(&mut scratch, idx)).collect();
    }
    let mut results: Vec<Option<T>> = (0..num_items).map(|_| None).collect();
    let next = AtomicUsize::new(0);
    let cell = MapCell(&mut results);

    // One participant's share of the job: fresh scratch, then drain the
    // claim counter. Identical for pool workers, scoped threads, and the
    // dispatching caller — and item `idx`'s output never depends on who
    // ran it.
    let participate = || {
        let mut scratch = init();
        loop {
            let idx = next.fetch_add(1, Ordering::Relaxed);
            if idx >= num_items {
                break;
            }
            cell.set(idx, f(&mut scratch, idx));
        }
    };

    // The resident pool first: persistent workers keep kernel-layer
    // `thread_local` scratch warm across panels and skip the per-call
    // spawn/join. Fall back to a scoped spawn when the pool is already
    // running a job or when this thread *is* a pool worker (a nested
    // dispatch would deadlock on the single job slot).
    let pooled =
        !WorkerPool::on_pool_worker() && WorkerPool::global().run(threads - 1, &participate);
    if !pooled {
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(participate);
            }
        });
    }

    results
        .into_iter()
        .map(|r| r.expect("every index was claimed"))
        .collect()
}

struct MapCell<'a, T>(&'a mut [Option<T>]);

unsafe impl<T: Send> Sync for MapCell<'_, T> {}

impl<T> MapCell<'_, T> {
    fn set(&self, idx: usize, value: T) {
        // SAFETY: disjoint indices via fetch_add; buffer outlives the scope.
        unsafe {
            let slot = self.0.as_ptr().add(idx) as *mut Option<T>;
            *slot = Some(value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::StatevectorBackend;

    fn sample_circuit(theta: f64) -> Circuit {
        let mut qc = Circuit::with_clbits(2, 1);
        qc.ry(theta, 0).cx(0, 1).measure(1, 0);
        qc
    }

    #[test]
    fn batch_results_preserve_order() {
        let circuits: Vec<Circuit> = (0..16).map(|i| sample_circuit(i as f64 * 0.2)).collect();
        let backend = StatevectorBackend::new();
        let seq = run_batch(&backend, &circuits, 1);
        let par = run_batch(&backend, &circuits, 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert!((a.marginal_one(0) - b.marginal_one(0)).abs() < 1e-12);
        }
    }

    #[test]
    fn batch_handles_more_threads_than_work() {
        let circuits = vec![sample_circuit(0.3)];
        let out = run_batch(&StatevectorBackend::new(), &circuits, 64);
        assert_eq!(out.len(), 1);
        assert!(out[0].is_ok());
    }

    #[test]
    fn batch_handles_empty_input() {
        let out = run_batch(&StatevectorBackend::new(), &[], 4);
        assert!(out.is_empty());
    }

    #[test]
    fn batch_propagates_errors_per_item() {
        let good = sample_circuit(0.5);
        let mut bad = Circuit::with_clbits(2, 1);
        // Valid circuit object but will exceed the branch cap at runtime.
        bad.h(0).h(1);
        for _ in 0..15 {
            bad.reset(0);
            bad.h(0);
        }
        bad.measure(0, 0);
        let backend = StatevectorBackend::new().with_max_branches(4);
        let out = run_batch(&backend, &[good, bad], 2);
        assert!(out[0].is_ok());
        assert!(out[1].is_err());
    }

    #[test]
    fn map_indexed_matches_sequential() {
        let seq = map_indexed(100, 1, |i| i * i);
        let par = map_indexed(100, 8, |i| i * i);
        assert_eq!(seq, par);
        assert_eq!(seq[7], 49);
    }

    #[test]
    fn map_indexed_empty() {
        let out: Vec<usize> = map_indexed(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn pool_reuses_worker_threads_across_panels() {
        use std::collections::HashSet;
        use std::sync::{Barrier, Mutex};
        let pool = WorkerPool::new(3);
        let caller = std::thread::current().id();
        let mut panels: Vec<HashSet<std::thread::ThreadId>> = Vec::new();
        for _ in 0..5 {
            let ids = Mutex::new(HashSet::new());
            // All four participants (caller + 3 residents) must enter the
            // task before any may leave, so every panel records the full
            // worker set.
            let barrier = Barrier::new(4);
            let ran = pool.run(3, &|| {
                ids.lock().unwrap().insert(std::thread::current().id());
                barrier.wait();
            });
            assert!(ran, "private pool must never be busy");
            let mut ids = ids.into_inner().unwrap();
            assert_eq!(ids.len(), 4);
            assert!(ids.remove(&caller));
            panels.push(ids);
        }
        for window in panels.windows(2) {
            assert_eq!(
                window[0], window[1],
                "resident workers must be the same threads panel after panel"
            );
        }
    }

    #[test]
    fn pool_survives_panicked_job() {
        let pool = WorkerPool::new(2);
        let boom = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(2, &|| panic!("poisoned job"));
        }));
        assert!(boom.is_err(), "the job's panic must reach the caller");
        // The workers themselves survive the poisoned job: the next panel
        // dispatches and completes normally on the same pool.
        for _ in 0..3 {
            let count = AtomicUsize::new(0);
            let barrier = std::sync::Barrier::new(3);
            let ran = pool.run(2, &|| {
                count.fetch_add(1, Ordering::Relaxed);
                barrier.wait();
            });
            assert!(ran);
            assert_eq!(count.load(Ordering::Relaxed), 3);
        }
    }

    #[test]
    fn map_indexed_propagates_worker_panics() {
        let boom = std::panic::catch_unwind(|| {
            map_indexed(16, 4, |i| {
                if i == 7 {
                    panic!("item 7 poisoned");
                }
                i
            })
        });
        assert!(boom.is_err());
        // And the global pool still serves the next call.
        let out = map_indexed(16, 4, |i| i * 2);
        assert_eq!(out[8], 16);
    }

    #[test]
    fn map_indexed_with_reuses_scratch_per_worker() {
        use std::sync::atomic::AtomicUsize;
        // Each worker's scratch counts the items it processed; `init` runs
        // once per worker, so the number of inits never exceeds the thread
        // count and every item is claimed exactly once.
        let inits = AtomicUsize::new(0);
        for threads in [1usize, 4] {
            inits.store(0, Ordering::Relaxed);
            let out = map_indexed_with(
                37,
                threads,
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                    0usize
                },
                |seen, idx| {
                    *seen += 1;
                    (idx, *seen)
                },
            );
            assert_eq!(out.len(), 37);
            let total: usize = out.iter().map(|&(idx, _)| idx).sum();
            assert_eq!(total, 37 * 36 / 2, "threads {threads}");
            assert!(inits.load(Ordering::Relaxed) <= threads.max(1));
            // Scratch persistence: the per-item counters across all
            // workers account for every item exactly once.
            let max_seen: usize = out.iter().map(|&(_, s)| s).sum();
            assert!(max_seen >= 37);
        }
    }
}
