//! ASCII circuit rendering.
//!
//! A compact wire diagram for debugging and documentation: one row per
//! qubit, one column per circuit moment (gates packed greedily left, as in
//! the depth computation). Multi-qubit gates draw vertical connectors.
//!
//! ```text
//! q0: ─[ry 0.93]─■──────X──
//! q1: ───────────┼──────■──
//! q2: ───────────X─[rz]────
//! ```

use crate::circuit::{Circuit, Operation};
use crate::gate::Gate;

/// Renders the circuit as a multi-line ASCII diagram.
///
/// # Examples
///
/// ```
/// use qsim::circuit::Circuit;
/// use qsim::draw::draw;
///
/// let mut qc = Circuit::with_clbits(2, 1);
/// qc.h(0).cx(0, 1).measure(1, 0);
/// let art = draw(&qc);
/// assert!(art.contains("q0:"));
/// assert!(art.contains("[h]"));
/// assert!(art.contains("[M0]"));
/// ```
pub fn draw(circ: &Circuit) -> String {
    let n = circ.num_qubits();
    if n == 0 {
        return String::from("(empty circuit)\n");
    }
    // Assign each instruction to the earliest column where all its qubits
    // are free (mirrors Circuit::depth).
    let mut level = vec![0usize; n];
    // cells[column][qubit] = label
    let mut cells: Vec<Vec<Option<CellLabel>>> = Vec::new();
    for instr in circ.instructions() {
        if matches!(instr.op, Operation::Barrier) {
            let max = instr.qubits.iter().map(|&q| level[q]).max().unwrap_or(0);
            for &q in &instr.qubits {
                level[q] = max;
            }
            continue;
        }
        let col = instr.qubits.iter().map(|&q| level[q]).max().unwrap_or(0);
        while cells.len() <= col {
            cells.push(vec![None; n]);
        }
        let lo = *instr.qubits.iter().min().expect("non-empty operands");
        let hi = *instr.qubits.iter().max().expect("non-empty operands");
        match &instr.op {
            Operation::Gate(g) => {
                let labels = gate_labels(g, &instr.qubits);
                for (&q, label) in instr.qubits.iter().zip(labels) {
                    cells[col][q] = Some(CellLabel::Text(label));
                }
            }
            Operation::Reset => {
                cells[col][instr.qubits[0]] = Some(CellLabel::Text("[reset]".into()));
            }
            Operation::Measure { clbit } => {
                cells[col][instr.qubits[0]] = Some(CellLabel::Text(format!("[M{clbit}]")));
            }
            Operation::Barrier => unreachable!("handled above"),
        }
        // Vertical connectors through pass-through wires of multi-qubit
        // gates.
        if hi > lo {
            for (offset, cell) in cells[col][lo + 1..hi].iter_mut().enumerate() {
                if !instr.qubits.contains(&(lo + 1 + offset)) {
                    *cell = Some(CellLabel::Passthrough);
                }
            }
        }
        for &q in &instr.qubits {
            level[q] = col + 1;
        }
        for lvl in &mut level[lo..=hi] {
            *lvl = (*lvl).max(col + 1);
        }
    }

    // Column widths.
    let widths: Vec<usize> = cells
        .iter()
        .map(|col| {
            col.iter()
                .map(|c| match c {
                    Some(CellLabel::Text(t)) => t.len(),
                    Some(CellLabel::Passthrough) => 1,
                    None => 1,
                })
                .max()
                .unwrap_or(1)
        })
        .collect();

    let mut out = String::new();
    for q in 0..n {
        out.push_str(&format!("q{q}: "));
        for (col, width) in cells.iter().zip(&widths) {
            out.push('─');
            match &col[q] {
                Some(CellLabel::Text(t)) => {
                    out.push_str(t);
                    out.push_str(&"─".repeat(width - t.len()));
                }
                Some(CellLabel::Passthrough) => {
                    out.push('┼');
                    out.push_str(&"─".repeat(width - 1));
                }
                None => out.push_str(&"─".repeat(*width)),
            }
        }
        out.push('─');
        out.push('\n');
    }
    out
}

#[derive(Clone)]
enum CellLabel {
    Text(String),
    Passthrough,
}

/// Per-operand labels: controls draw as `■`, targets by gate.
fn gate_labels(g: &Gate, qubits: &[usize]) -> Vec<String> {
    match g {
        Gate::CX => vec!["■".into(), "X".into()],
        Gate::CZ => vec!["■".into(), "■".into()],
        Gate::CRZ(t) => vec!["■".into(), format!("[rz {t:.2}]")],
        Gate::CPhase(t) => vec!["■".into(), format!("[p {t:.2}]")],
        Gate::Swap => vec!["x".into(), "x".into()],
        Gate::CCX => vec!["■".into(), "■".into(), "X".into()],
        Gate::CSwap => vec!["■".into(), "x".into(), "x".into()],
        g if qubits.len() == 1 => {
            let label = match g.angle() {
                Some(t) => format!("[{} {t:.2}]", g.name()),
                None => format!("[{}]", g.name()),
            };
            vec![label]
        }
        g => qubits.iter().map(|_| format!("[{}]", g.name())).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bell_diagram_shape() {
        let mut qc = Circuit::with_clbits(2, 2);
        qc.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
        let art = draw(&qc);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("q0:"));
        assert!(lines[0].contains("[h]"));
        assert!(lines[0].contains('■'));
        assert!(lines[1].contains('X'));
        assert!(lines[0].contains("[M0]"));
        assert!(lines[1].contains("[M1]"));
    }

    #[test]
    fn parallel_gates_share_a_column() {
        let mut qc = Circuit::new(2);
        qc.h(0).h(1);
        let art = draw(&qc);
        let lines: Vec<&str> = art.lines().collect();
        // Both [h] labels appear at the same column offset.
        let pos0 = lines[0].find("[h]").unwrap();
        let pos1 = lines[1].find("[h]").unwrap();
        assert_eq!(pos0, pos1);
    }

    #[test]
    fn dependent_gates_occupy_later_columns() {
        let mut qc = Circuit::new(1);
        qc.h(0).x(0);
        let art = draw(&qc);
        let line = art.lines().next().unwrap();
        assert!(line.find("[h]").unwrap() < line.find("[x]").unwrap());
    }

    #[test]
    fn cswap_draws_control_and_swaps() {
        let mut qc = Circuit::new(3);
        qc.cswap(2, 0, 1);
        let art = draw(&qc);
        let lines: Vec<&str> = art.lines().collect();
        assert!(lines[2].contains('■'));
        assert!(lines[0].contains('x'));
        assert!(lines[1].contains('x'));
    }

    #[test]
    fn passthrough_wires_show_connector() {
        let mut qc = Circuit::new(3);
        qc.cx(0, 2);
        let art = draw(&qc);
        let lines: Vec<&str> = art.lines().collect();
        assert!(
            lines[1].contains('┼'),
            "middle wire missing connector: {art}"
        );
    }

    #[test]
    fn rotations_show_angles() {
        let mut qc = Circuit::new(1);
        qc.rx(1.5, 0);
        let art = draw(&qc);
        assert!(art.contains("[rx 1.50]"));
    }

    #[test]
    fn reset_and_empty() {
        let mut qc = Circuit::new(1);
        qc.reset(0);
        assert!(draw(&qc).contains("[reset]"));
        assert_eq!(draw(&Circuit::new(0)), "(empty circuit)\n");
    }

    #[test]
    fn barrier_does_not_render_but_aligns() {
        let mut qc = Circuit::new(2);
        qc.h(0).barrier().h(1);
        let art = draw(&qc);
        let lines: Vec<&str> = art.lines().collect();
        // h(1) must be in a later-or-equal column than h(0)'s.
        let pos0 = lines[0].find("[h]").unwrap();
        let pos1 = lines[1].find("[h]").unwrap();
        assert!(pos1 >= pos0);
    }
}
