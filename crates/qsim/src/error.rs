//! Error types for the `qsim` crate.

use std::error::Error;
use std::fmt;

/// Errors produced while building or simulating quantum circuits.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QsimError {
    /// A qubit index was at or beyond the circuit/state width.
    QubitOutOfRange {
        /// The offending qubit index.
        qubit: usize,
        /// The number of qubits available.
        num_qubits: usize,
    },
    /// The same qubit was passed twice to a multi-qubit operation.
    DuplicateQubit {
        /// The repeated qubit index.
        qubit: usize,
    },
    /// A vector or matrix had the wrong dimension.
    DimensionMismatch {
        /// Expected length/dimension.
        expected: usize,
        /// Actual length/dimension.
        actual: usize,
    },
    /// An amplitude vector did not have unit norm.
    NotNormalized {
        /// The squared norm that was observed.
        norm_sqr: f64,
    },
    /// Amplitudes fed to real-amplitude state preparation were negative or
    /// non-finite.
    InvalidAmplitude {
        /// Index of the bad amplitude.
        index: usize,
    },
    /// A probability was outside `[0, 1]`.
    InvalidProbability {
        /// The offending value.
        value: f64,
    },
    /// A classical bit index was out of range.
    ClbitOutOfRange {
        /// The offending classical bit index.
        clbit: usize,
        /// The number of classical bits available.
        num_clbits: usize,
    },
    /// Allocating a density matrix of this width would exceed the
    /// simulator's memory budget
    /// ([`crate::density::DENSITY_MEMORY_BUDGET_BYTES`]).
    ExceedsMemoryBudget {
        /// The requested register width.
        num_qubits: usize,
        /// The widest register the budget admits.
        max_qubits: usize,
    },
    /// The operation is not supported by the chosen backend.
    Unsupported(String),
}

impl fmt::Display for QsimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QsimError::QubitOutOfRange { qubit, num_qubits } => {
                write!(
                    f,
                    "qubit index {qubit} out of range for {num_qubits} qubits"
                )
            }
            QsimError::DuplicateQubit { qubit } => {
                write!(f, "qubit {qubit} used more than once in a single operation")
            }
            QsimError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            QsimError::NotNormalized { norm_sqr } => {
                write!(f, "state is not normalized: squared norm is {norm_sqr}")
            }
            QsimError::InvalidAmplitude { index } => {
                write!(f, "invalid amplitude at index {index}")
            }
            QsimError::InvalidProbability { value } => {
                write!(f, "probability {value} outside [0, 1]")
            }
            QsimError::ClbitOutOfRange { clbit, num_clbits } => {
                write!(
                    f,
                    "classical bit {clbit} out of range for {num_clbits} bits"
                )
            }
            QsimError::ExceedsMemoryBudget {
                num_qubits,
                max_qubits,
            } => {
                write!(
                    f,
                    "a {num_qubits}-qubit density matrix would exceed the memory \
                     budget (at most {max_qubits} qubits)"
                )
            }
            QsimError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
        }
    }
}

impl Error for QsimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = QsimError::QubitOutOfRange {
            qubit: 9,
            num_qubits: 3,
        };
        assert_eq!(e.to_string(), "qubit index 9 out of range for 3 qubits");
        let e = QsimError::NotNormalized { norm_sqr: 2.0 };
        assert!(e.to_string().contains("not normalized"));
        let e = QsimError::Unsupported("conditional gates".into());
        assert!(e.to_string().contains("conditional gates"));
        let e = QsimError::ExceedsMemoryBudget {
            num_qubits: 20,
            max_qubits: 13,
        };
        assert!(e.to_string().contains("20-qubit"));
        assert!(e.to_string().contains("13"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QsimError>();
    }
}
