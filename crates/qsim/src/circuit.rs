//! Quantum circuit intermediate representation.
//!
//! A [`Circuit`] is an ordered list of [`Instruction`]s over `num_qubits`
//! qubits and `num_clbits` classical bits. Besides unitary gates it supports
//! the two non-unitary operations Quorum needs: mid-circuit **reset** (the
//! autoencoder bottleneck) and terminal **measure** (the SWAP-test ancilla).

use crate::error::QsimError;
use crate::gate::Gate;
use std::fmt;

/// One operation in a circuit.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Operation {
    /// A unitary gate.
    Gate(Gate),
    /// Non-unitary reset of one qubit to `|0⟩`.
    Reset,
    /// Projective measurement of one qubit into a classical bit.
    Measure {
        /// Destination classical bit.
        clbit: usize,
    },
    /// A no-op scheduling barrier (kept for depth accounting parity with
    /// Qiskit circuits; simulators skip it).
    Barrier,
}

/// An [`Operation`] bound to concrete qubit operands.
#[derive(Debug, Clone, PartialEq)]
pub struct Instruction {
    /// What to do.
    pub op: Operation,
    /// Which qubits to do it to (order matters for controlled gates).
    pub qubits: Vec<usize>,
}

impl Instruction {
    /// Creates a gate instruction.
    pub fn gate(gate: Gate, qubits: Vec<usize>) -> Self {
        Instruction {
            op: Operation::Gate(gate),
            qubits,
        }
    }
}

/// An ordered quantum circuit over `num_qubits` qubits.
///
/// Builder methods return `&mut Self` so construction chains:
///
/// ```
/// use qsim::circuit::Circuit;
///
/// let mut qc = Circuit::new(3);
/// qc.h(0).cx(0, 1).rx(0.5, 2);
/// assert_eq!(qc.len(), 3);
/// assert_eq!(qc.depth(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    num_qubits: usize,
    num_clbits: usize,
    instructions: Vec<Instruction>,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` qubits and no classical
    /// bits.
    pub fn new(num_qubits: usize) -> Self {
        Circuit {
            num_qubits,
            num_clbits: 0,
            instructions: Vec::new(),
        }
    }

    /// Creates an empty circuit with classical bits for measurement results.
    pub fn with_clbits(num_qubits: usize, num_clbits: usize) -> Self {
        Circuit {
            num_qubits,
            num_clbits,
            instructions: Vec::new(),
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of classical bits.
    pub fn num_clbits(&self) -> usize {
        self.num_clbits
    }

    /// Number of instructions (including barriers).
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the circuit has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// The instruction list in program order.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Validates and appends an instruction.
    ///
    /// # Errors
    ///
    /// * [`QsimError::QubitOutOfRange`] if an operand exceeds the width.
    /// * [`QsimError::DuplicateQubit`] if an operand repeats.
    /// * [`QsimError::DimensionMismatch`] if the operand count does not
    ///   match the gate arity.
    /// * [`QsimError::ClbitOutOfRange`] for a bad measure destination.
    pub fn push(&mut self, instr: Instruction) -> Result<&mut Self, QsimError> {
        for (i, &q) in instr.qubits.iter().enumerate() {
            if q >= self.num_qubits {
                return Err(QsimError::QubitOutOfRange {
                    qubit: q,
                    num_qubits: self.num_qubits,
                });
            }
            if instr.qubits[..i].contains(&q) {
                return Err(QsimError::DuplicateQubit { qubit: q });
            }
        }
        match &instr.op {
            Operation::Gate(g) => {
                if instr.qubits.len() != g.num_qubits() {
                    return Err(QsimError::DimensionMismatch {
                        expected: g.num_qubits(),
                        actual: instr.qubits.len(),
                    });
                }
            }
            Operation::Reset => {
                if instr.qubits.len() != 1 {
                    return Err(QsimError::DimensionMismatch {
                        expected: 1,
                        actual: instr.qubits.len(),
                    });
                }
            }
            Operation::Measure { clbit } => {
                if instr.qubits.len() != 1 {
                    return Err(QsimError::DimensionMismatch {
                        expected: 1,
                        actual: instr.qubits.len(),
                    });
                }
                if *clbit >= self.num_clbits {
                    return Err(QsimError::ClbitOutOfRange {
                        clbit: *clbit,
                        num_clbits: self.num_clbits,
                    });
                }
            }
            Operation::Barrier => {}
        }
        self.instructions.push(instr);
        Ok(self)
    }

    fn push_gate(&mut self, gate: Gate, qubits: Vec<usize>) -> &mut Self {
        self.push(Instruction::gate(gate, qubits))
            .expect("invalid gate operands");
        self
    }

    /// Appends an identity gate (useful for noise-injection studies).
    pub fn id(&mut self, q: usize) -> &mut Self {
        self.push_gate(Gate::I, vec![q])
    }

    /// Appends a Hadamard gate.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.push_gate(Gate::H, vec![q])
    }

    /// Appends a Pauli-X gate.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.push_gate(Gate::X, vec![q])
    }

    /// Appends a Pauli-Y gate.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.push_gate(Gate::Y, vec![q])
    }

    /// Appends a Pauli-Z gate.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.push_gate(Gate::Z, vec![q])
    }

    /// Appends an S gate.
    pub fn s(&mut self, q: usize) -> &mut Self {
        self.push_gate(Gate::S, vec![q])
    }

    /// Appends an S† gate.
    pub fn sdg(&mut self, q: usize) -> &mut Self {
        self.push_gate(Gate::Sdg, vec![q])
    }

    /// Appends a T gate.
    pub fn t(&mut self, q: usize) -> &mut Self {
        self.push_gate(Gate::T, vec![q])
    }

    /// Appends a T† gate.
    pub fn tdg(&mut self, q: usize) -> &mut Self {
        self.push_gate(Gate::Tdg, vec![q])
    }

    /// Appends a √X gate.
    pub fn sx(&mut self, q: usize) -> &mut Self {
        self.push_gate(Gate::SX, vec![q])
    }

    /// Appends an RX rotation.
    pub fn rx(&mut self, theta: f64, q: usize) -> &mut Self {
        self.push_gate(Gate::RX(theta), vec![q])
    }

    /// Appends an RY rotation.
    pub fn ry(&mut self, theta: f64, q: usize) -> &mut Self {
        self.push_gate(Gate::RY(theta), vec![q])
    }

    /// Appends an RZ rotation.
    pub fn rz(&mut self, theta: f64, q: usize) -> &mut Self {
        self.push_gate(Gate::RZ(theta), vec![q])
    }

    /// Appends a phase gate.
    pub fn p(&mut self, theta: f64, q: usize) -> &mut Self {
        self.push_gate(Gate::Phase(theta), vec![q])
    }

    /// Appends a generic U(θ,φ,λ) rotation.
    pub fn u(&mut self, theta: f64, phi: f64, lambda: f64, q: usize) -> &mut Self {
        self.push_gate(Gate::U(theta, phi, lambda), vec![q])
    }

    /// Appends a CX with `control` and `target`.
    pub fn cx(&mut self, control: usize, target: usize) -> &mut Self {
        self.push_gate(Gate::CX, vec![control, target])
    }

    /// Appends a CZ.
    pub fn cz(&mut self, a: usize, b: usize) -> &mut Self {
        self.push_gate(Gate::CZ, vec![a, b])
    }

    /// Appends a controlled-RZ.
    pub fn crz(&mut self, theta: f64, control: usize, target: usize) -> &mut Self {
        self.push_gate(Gate::CRZ(theta), vec![control, target])
    }

    /// Appends a controlled-phase.
    pub fn cp(&mut self, theta: f64, a: usize, b: usize) -> &mut Self {
        self.push_gate(Gate::CPhase(theta), vec![a, b])
    }

    /// Appends a SWAP.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.push_gate(Gate::Swap, vec![a, b])
    }

    /// Appends a Toffoli with controls `c1`, `c2` and target `t`.
    pub fn ccx(&mut self, c1: usize, c2: usize, t: usize) -> &mut Self {
        self.push_gate(Gate::CCX, vec![c1, c2, t])
    }

    /// Appends a Fredkin (controlled-SWAP) with control `c` swapping
    /// `t1`/`t2`.
    pub fn cswap(&mut self, c: usize, t1: usize, t2: usize) -> &mut Self {
        self.push_gate(Gate::CSwap, vec![c, t1, t2])
    }

    /// Appends a mid-circuit reset of `q` to `|0⟩`.
    pub fn reset(&mut self, q: usize) -> &mut Self {
        self.push(Instruction {
            op: Operation::Reset,
            qubits: vec![q],
        })
        .expect("invalid reset operand");
        self
    }

    /// Appends a measurement of `q` into classical bit `clbit`.
    ///
    /// # Panics
    ///
    /// Panics if `clbit` is out of range; use [`Circuit::push`] for a
    /// fallible version.
    pub fn measure(&mut self, q: usize, clbit: usize) -> &mut Self {
        self.push(Instruction {
            op: Operation::Measure { clbit },
            qubits: vec![q],
        })
        .expect("invalid measure operands");
        self
    }

    /// Appends a barrier over all qubits.
    pub fn barrier(&mut self) -> &mut Self {
        let qubits: Vec<usize> = (0..self.num_qubits).collect();
        self.push(Instruction {
            op: Operation::Barrier,
            qubits,
        })
        .expect("barrier is always valid");
        self
    }

    /// Appends every instruction of `other`, offsetting its qubits by
    /// `qubit_offset`.
    ///
    /// # Errors
    ///
    /// Returns an error if any shifted operand exceeds this circuit's width
    /// or `other` measures into a classical bit this circuit lacks.
    pub fn compose(
        &mut self,
        other: &Circuit,
        qubit_offset: usize,
    ) -> Result<&mut Self, QsimError> {
        for instr in &other.instructions {
            let shifted = Instruction {
                op: instr.op.clone(),
                qubits: instr.qubits.iter().map(|q| q + qubit_offset).collect(),
            };
            self.push(shifted)?;
        }
        Ok(self)
    }

    /// Returns the adjoint circuit: instructions reversed with every gate
    /// inverted.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::Unsupported`] if the circuit contains a reset or
    /// measurement — non-unitary operations have no inverse.
    pub fn inverse(&self) -> Result<Circuit, QsimError> {
        let mut out = Circuit::with_clbits(self.num_qubits, self.num_clbits);
        for instr in self.instructions.iter().rev() {
            match &instr.op {
                Operation::Gate(g) => {
                    out.instructions.push(Instruction {
                        op: Operation::Gate(g.inverse()),
                        qubits: instr.qubits.clone(),
                    });
                }
                Operation::Barrier => {
                    out.instructions.push(instr.clone());
                }
                Operation::Reset | Operation::Measure { .. } => {
                    return Err(QsimError::Unsupported(
                        "inverse of a non-unitary circuit".into(),
                    ));
                }
            }
        }
        Ok(out)
    }

    /// Circuit depth: the length of the longest qubit-dependency chain,
    /// counting gates, resets and measures (barriers force alignment but add
    /// no depth, matching Qiskit's convention).
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.num_qubits];
        for instr in &self.instructions {
            match instr.op {
                Operation::Barrier => {
                    let max = instr.qubits.iter().map(|&q| level[q]).max().unwrap_or(0);
                    for &q in &instr.qubits {
                        level[q] = max;
                    }
                }
                _ => {
                    let max = instr.qubits.iter().map(|&q| level[q]).max().unwrap_or(0);
                    for &q in &instr.qubits {
                        level[q] = max + 1;
                    }
                }
            }
        }
        level.into_iter().max().unwrap_or(0)
    }

    /// Counts instructions by mnemonic (`"cx"`, `"reset"`, ...), returned
    /// sorted by name for deterministic output.
    pub fn count_ops(&self) -> Vec<(String, usize)> {
        let mut counts = std::collections::BTreeMap::new();
        for instr in &self.instructions {
            let name = match &instr.op {
                Operation::Gate(g) => g.name().to_string(),
                Operation::Reset => "reset".to_string(),
                Operation::Measure { .. } => "measure".to_string(),
                Operation::Barrier => "barrier".to_string(),
            };
            *counts.entry(name).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }

    /// Number of one-qubit gates (excluding resets/measures/barriers).
    pub fn count_1q_gates(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| matches!(&i.op, Operation::Gate(g) if g.num_qubits() == 1))
            .count()
    }

    /// Number of multi-qubit gates.
    pub fn count_multi_qubit_gates(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| matches!(&i.op, Operation::Gate(g) if g.num_qubits() > 1))
            .count()
    }

    /// Whether the circuit contains any reset or measurement.
    pub fn has_nonunitary_ops(&self) -> bool {
        self.instructions
            .iter()
            .any(|i| matches!(i.op, Operation::Reset | Operation::Measure { .. }))
    }

    /// Indices of the classical bits written by measurements, in program
    /// order.
    pub fn measured_clbits(&self) -> Vec<usize> {
        self.instructions
            .iter()
            .filter_map(|i| match i.op {
                Operation::Measure { clbit } => Some(clbit),
                _ => None,
            })
            .collect()
    }

    /// Accumulates the circuit into a single dense `2^n × 2^n` unitary by
    /// evolving every computational basis state through the gate list.
    ///
    /// This is the fusion primitive behind analytic scoring engines: a
    /// fixed subcircuit (e.g. an autoencoder ansatz) is folded into one
    /// matrix once, then applied to many states as a plain matvec via
    /// [`crate::statevector::Statevector::apply_unitary`].
    ///
    /// # Errors
    ///
    /// * [`QsimError::Unsupported`] if the circuit contains a reset or
    ///   measurement (non-unitary), or spans more than 12 qubits (the
    ///   dense matrix would exceed sensible memory).
    ///
    /// # Examples
    ///
    /// ```
    /// use qsim::circuit::Circuit;
    ///
    /// let mut qc = Circuit::new(1);
    /// qc.h(0);
    /// let u = qc.to_unitary().unwrap();
    /// assert!(u.is_unitary(1e-12));
    /// let s = std::f64::consts::FRAC_1_SQRT_2;
    /// assert!((u[(0, 0)].re - s).abs() < 1e-12);
    /// assert!((u[(1, 1)].re + s).abs() < 1e-12);
    /// ```
    pub fn to_unitary(&self) -> Result<crate::matrix::CMatrix, QsimError> {
        use crate::complex::C64;
        use crate::statevector::Statevector;

        if self.num_qubits > 12 {
            return Err(QsimError::Unsupported(format!(
                "dense unitary of a {}-qubit circuit would be too large",
                self.num_qubits
            )));
        }
        let dim = 1usize << self.num_qubits;
        let mut unitary = crate::matrix::CMatrix::zeros(dim, dim);
        for col in 0..dim {
            let mut amps = vec![C64::ZERO; dim];
            amps[col] = C64::ONE;
            let mut sv = Statevector::from_amplitudes(amps)?;
            for instr in &self.instructions {
                match &instr.op {
                    Operation::Gate(g) => sv.apply_gate(*g, &instr.qubits)?,
                    Operation::Barrier => {}
                    Operation::Reset | Operation::Measure { .. } => {
                        return Err(QsimError::Unsupported(
                            "dense unitary of a non-unitary circuit".into(),
                        ))
                    }
                }
            }
            for (row, &a) in sv.amplitudes().iter().enumerate() {
                unitary[(row, col)] = a;
            }
        }
        Ok(unitary)
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit<{} qubits, {} clbits, {} ops>",
            self.num_qubits,
            self.num_clbits,
            self.instructions.len()
        )?;
        for instr in &self.instructions {
            match &instr.op {
                Operation::Gate(g) => writeln!(f, "  {} {:?}", g, instr.qubits)?,
                Operation::Reset => writeln!(f, "  reset {:?}", instr.qubits)?,
                Operation::Measure { clbit } => {
                    writeln!(f, "  measure {:?} -> c{}", instr.qubits, clbit)?
                }
                Operation::Barrier => writeln!(f, "  barrier")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains_and_counts() {
        let mut qc = Circuit::new(3);
        qc.h(0).cx(0, 1).cx(1, 2).rz(0.5, 2);
        assert_eq!(qc.len(), 4);
        assert_eq!(qc.count_1q_gates(), 2);
        assert_eq!(qc.count_multi_qubit_gates(), 2);
        let ops = qc.count_ops();
        assert_eq!(
            ops,
            vec![
                ("cx".to_string(), 2),
                ("h".to_string(), 1),
                ("rz".to_string(), 1)
            ]
        );
    }

    #[test]
    fn depth_tracks_longest_chain() {
        let mut qc = Circuit::new(3);
        // h(0) then cx(0,1) then cx(1,2): chain of 3 through the qubits.
        qc.h(0).cx(0, 1).cx(1, 2);
        assert_eq!(qc.depth(), 3);
        // Parallel single-qubit gates add depth 1 total.
        let mut qc2 = Circuit::new(3);
        qc2.h(0).h(1).h(2);
        assert_eq!(qc2.depth(), 1);
    }

    #[test]
    fn barrier_aligns_but_adds_no_depth() {
        let mut qc = Circuit::new(2);
        qc.h(0).barrier().h(1);
        // h(1) must come after the barrier which waited for h(0).
        assert_eq!(qc.depth(), 2);
    }

    #[test]
    fn push_validates_range_and_duplicates() {
        let mut qc = Circuit::new(2);
        let err = qc.push(Instruction::gate(Gate::H, vec![5])).unwrap_err();
        assert!(matches!(err, QsimError::QubitOutOfRange { qubit: 5, .. }));
        let err = qc
            .push(Instruction::gate(Gate::CX, vec![1, 1]))
            .unwrap_err();
        assert!(matches!(err, QsimError::DuplicateQubit { qubit: 1 }));
        let err = qc.push(Instruction::gate(Gate::CX, vec![0])).unwrap_err();
        assert!(matches!(err, QsimError::DimensionMismatch { .. }));
    }

    #[test]
    fn measure_validates_clbit() {
        let mut qc = Circuit::with_clbits(2, 1);
        qc.measure(0, 0);
        let err = qc
            .push(Instruction {
                op: Operation::Measure { clbit: 3 },
                qubits: vec![1],
            })
            .unwrap_err();
        assert!(matches!(err, QsimError::ClbitOutOfRange { clbit: 3, .. }));
        assert_eq!(qc.measured_clbits(), vec![0]);
    }

    #[test]
    fn inverse_reverses_and_negates() {
        let mut qc = Circuit::new(2);
        qc.rx(0.5, 0).cx(0, 1).rz(-1.5, 1);
        let inv = qc.inverse().unwrap();
        let gates: Vec<&Operation> = inv.instructions().iter().map(|i| &i.op).collect();
        assert_eq!(gates.len(), 3);
        assert_eq!(*gates[0], Operation::Gate(Gate::RZ(1.5)));
        assert_eq!(*gates[1], Operation::Gate(Gate::CX));
        assert_eq!(*gates[2], Operation::Gate(Gate::RX(-0.5)));
    }

    #[test]
    fn inverse_rejects_nonunitary() {
        let mut qc = Circuit::new(1);
        qc.h(0).reset(0);
        assert!(matches!(qc.inverse(), Err(QsimError::Unsupported(_))));
    }

    #[test]
    fn compose_offsets_qubits() {
        let mut inner = Circuit::new(2);
        inner.h(0).cx(0, 1);
        let mut outer = Circuit::new(4);
        outer.compose(&inner, 2).unwrap();
        assert_eq!(outer.instructions()[0].qubits, vec![2]);
        assert_eq!(outer.instructions()[1].qubits, vec![2, 3]);
    }

    #[test]
    fn compose_rejects_overflow() {
        let mut inner = Circuit::new(2);
        inner.cx(0, 1);
        let mut outer = Circuit::new(2);
        assert!(outer.compose(&inner, 1).is_err());
    }

    #[test]
    fn nonunitary_detection() {
        let mut qc = Circuit::new(2);
        qc.h(0);
        assert!(!qc.has_nonunitary_ops());
        qc.reset(1);
        assert!(qc.has_nonunitary_ops());
    }

    #[test]
    fn display_renders_each_instruction() {
        let mut qc = Circuit::with_clbits(2, 1);
        qc.h(0).cx(0, 1).reset(0).measure(1, 0).barrier();
        let text = qc.to_string();
        assert!(text.contains("h [0]"));
        assert!(text.contains("cx [0, 1]"));
        assert!(text.contains("reset [0]"));
        assert!(text.contains("measure [1] -> c0"));
        assert!(text.contains("barrier"));
    }

    #[test]
    fn default_is_empty() {
        let qc = Circuit::default();
        assert!(qc.is_empty());
        assert_eq!(qc.depth(), 0);
    }
}
