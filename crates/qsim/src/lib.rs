//! # qsim — a hand-rolled quantum circuit simulation stack
//!
//! This crate is the substrate for the Quorum reproduction (DAC 2025,
//! arXiv:2504.13113): everything the paper obtained from Qiskit + Aer is
//! implemented here from scratch in safe, dependency-light Rust.
//!
//! ## Layers
//!
//! * [`complex`] / [`matrix`] — scalar and small-matrix complex algebra.
//! * [`kernel`] — split-complex SIMD GEMM micro-kernels behind the
//!   [`matrix::CMatrix::matmul`] seam (scalar oracle → autovectorised
//!   SoA → runtime-dispatched AVX2/FMA under `--features simd`).
//! * [`gate`] — the gate library (rotations, Cliffords, CSWAP, …).
//! * [`circuit`] — a circuit IR with mid-circuit reset and measurement.
//! * [`statevector`] — pure-state evolution kernels.
//! * [`density`] — mixed-state evolution with Kraus channels.
//! * [`noise`] — depolarizing/relaxation/readout noise; the Brisbane-like
//!   preset from the paper's experimental setup.
//! * [`stateprep`] — Möttönen amplitude encoding (the paper's §IV-B).
//! * [`transpile`] — lowering to hardware basis gates so noise is charged
//!   per physical gate.
//! * [`simulator`] — [`simulator::Backend`] implementations: exact
//!   branching statevector and density matrix.
//! * [`parallel`] — batch execution across threads ("embarrassingly
//!   parallel" ensembles, paper §IV-F).
//! * [`sampling`] — the shared cumulative-distribution shot sampler used
//!   by every backend and engine.
//!
//! ## Quick example: a SWAP test
//!
//! ```
//! use qsim::circuit::Circuit;
//! use qsim::simulator::{Backend, StatevectorBackend};
//!
//! // Compare |0⟩ and |1⟩ with a SWAP test: P(ancilla=1) = (1-|⟨a|b⟩|²)/2.
//! let mut qc = Circuit::with_clbits(3, 1);
//! qc.x(1);            // second state = |1⟩
//! qc.h(2);            // ancilla
//! qc.cswap(2, 0, 1);
//! qc.h(2);
//! qc.measure(2, 0);
//!
//! let dist = StatevectorBackend::new().probabilities(&qc).unwrap();
//! assert!((dist.marginal_one(0) - 0.5).abs() < 1e-12);
//! ```

#![warn(missing_docs)]

pub mod channel;
pub mod circuit;
pub mod complex;
pub mod density;
pub mod draw;
pub mod error;
pub mod gate;
pub mod kernel;
pub mod matrix;
pub mod noise;
pub mod parallel;
pub mod pauli;
pub mod qasm;
pub mod sampling;
pub mod simulator;
pub mod stateprep;
pub mod statevector;
pub mod transpile;

pub use circuit::Circuit;
pub use complex::C64;
pub use error::QsimError;
pub use gate::Gate;
pub use noise::NoiseModel;
pub use simulator::{
    Backend, Counts, DensityMatrixBackend, GateNoise, OutcomeDistribution, StatevectorBackend,
};
pub use statevector::Statevector;
