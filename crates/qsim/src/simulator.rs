//! Execution backends: exact outcome distributions and shot sampling.
//!
//! Two backends implement [`Backend`]:
//!
//! * [`StatevectorBackend`] — evolves a **weighted set of pure-state
//!   branches**. Non-unitary resets/measures split a branch in two, so the
//!   final classical distribution is *exact* (no sampling noise), at a cost
//!   bounded by `2^(#non-unitary ops)` statevectors. This is the fast path
//!   for Quorum's noiseless experiments.
//! * [`DensityMatrixBackend`] — evolves the full density matrix with
//!   optional Kraus noise after every physical gate (circuits are lowered
//!   with [`crate::transpile::decompose_multiqubit`] first so that noise is
//!   charged per hardware gate). This is the paper's "noisy simulation"
//!   path and the exactness cross-check for the branching backend.

use crate::circuit::{Circuit, Operation};
use crate::density::DensityMatrix;
use crate::error::QsimError;
use crate::noise::NoiseModel;
use crate::statevector::Statevector;
use crate::transpile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Exact probability distribution over classical-bit patterns.
///
/// Patterns are `u64` values where bit `k` is classical bit `k`.
#[derive(Debug, Clone, PartialEq)]
pub struct OutcomeDistribution {
    num_clbits: usize,
    probs: HashMap<u64, f64>,
}

impl OutcomeDistribution {
    /// Creates a distribution from raw `(pattern, probability)` pairs.
    pub fn from_probs(num_clbits: usize, probs: HashMap<u64, f64>) -> Self {
        OutcomeDistribution { num_clbits, probs }
    }

    /// Number of classical bits in each pattern.
    pub fn num_clbits(&self) -> usize {
        self.num_clbits
    }

    /// Probability of an exact pattern.
    pub fn probability(&self, pattern: u64) -> f64 {
        *self.probs.get(&pattern).unwrap_or(&0.0)
    }

    /// Marginal probability that classical bit `clbit` reads 1.
    pub fn marginal_one(&self, clbit: usize) -> f64 {
        let mask = 1u64 << clbit;
        self.probs
            .iter()
            .filter(|(p, _)| *p & mask != 0)
            .map(|(_, w)| w)
            .sum()
    }

    /// All `(pattern, probability)` entries, sorted by pattern.
    pub fn entries(&self) -> Vec<(u64, f64)> {
        let mut v: Vec<(u64, f64)> = self.probs.iter().map(|(&k, &v)| (k, v)).collect();
        v.sort_by_key(|&(k, _)| k);
        v
    }

    /// Total probability mass (should be 1 within numerical error).
    pub fn total(&self) -> f64 {
        self.probs.values().sum()
    }

    /// Draws `shots` samples.
    pub fn sample<R: Rng + ?Sized>(&self, shots: u64, rng: &mut R) -> Counts {
        let entries = self.entries();
        let weights: Vec<f64> = entries.iter().map(|&(_, p)| p).collect();
        let map = crate::sampling::sample_counts_by_index(&weights, shots, rng)
            .into_iter()
            .enumerate()
            .filter(|&(_, c)| c > 0)
            .map(|(idx, c)| (entries[idx].0, c))
            .collect();
        Counts {
            num_clbits: self.num_clbits,
            shots,
            map,
        }
    }

    /// Applies an independent symmetric bit-flip with probability `e` to
    /// every classical bit (readout confusion).
    pub fn with_readout_error(&self, e: f64) -> OutcomeDistribution {
        if e == 0.0 {
            return self.clone();
        }
        let mut out: HashMap<u64, f64> = HashMap::new();
        let k = self.num_clbits;
        for (&pattern, &w) in &self.probs {
            // Enumerate all flip masks; k is small (1–2 for Quorum/QNN).
            for flip in 0..(1u64 << k) {
                let flips = flip.count_ones() as i32;
                let weight = w * e.powi(flips) * (1.0 - e).powi(k as i32 - flips);
                *out.entry(pattern ^ flip).or_insert(0.0) += weight;
            }
        }
        OutcomeDistribution {
            num_clbits: k,
            probs: out,
        }
    }
}

/// Measurement counts from a sampled run.
#[derive(Debug, Clone, PartialEq)]
pub struct Counts {
    num_clbits: usize,
    shots: u64,
    map: HashMap<u64, u64>,
}

impl Counts {
    /// Number of classical bits per outcome.
    pub fn num_clbits(&self) -> usize {
        self.num_clbits
    }

    /// Total shots taken.
    pub fn shots(&self) -> u64 {
        self.shots
    }

    /// How many shots produced `pattern`.
    pub fn count(&self, pattern: u64) -> u64 {
        *self.map.get(&pattern).unwrap_or(&0)
    }

    /// Empirical probability of `pattern`.
    pub fn probability(&self, pattern: u64) -> f64 {
        self.count(pattern) as f64 / self.shots as f64
    }

    /// Empirical marginal probability that `clbit` reads 1.
    pub fn marginal_one(&self, clbit: usize) -> f64 {
        let mask = 1u64 << clbit;
        let ones: u64 = self
            .map
            .iter()
            .filter(|(p, _)| *p & mask != 0)
            .map(|(_, c)| c)
            .sum();
        ones as f64 / self.shots as f64
    }

    /// All `(pattern, count)` entries, sorted by pattern.
    pub fn entries(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.map.iter().map(|(&k, &v)| (k, v)).collect();
        v.sort_by_key(|&(k, _)| k);
        v
    }
}

/// A circuit-execution engine.
///
/// Implementations must be `Send + Sync` so ensembles can fan out across
/// threads (see [`crate::parallel`]).
pub trait Backend: Send + Sync {
    /// A short human-readable backend name.
    fn name(&self) -> &'static str;

    /// Computes the exact outcome distribution over the circuit's classical
    /// bits.
    ///
    /// # Errors
    ///
    /// Propagates circuit-validation errors and backend capability limits.
    fn probabilities(&self, circuit: &Circuit) -> Result<OutcomeDistribution, QsimError>;

    /// Samples `shots` measurement outcomes (deterministic in `seed`).
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Backend::probabilities`].
    fn run(&self, circuit: &Circuit, shots: u64, seed: u64) -> Result<Counts, QsimError> {
        let dist = self.probabilities(circuit)?;
        let mut rng = StdRng::seed_from_u64(seed);
        Ok(dist.sample(shots, &mut rng))
    }
}

/// Exact pure-state backend with weighted branching on non-unitary ops.
#[derive(Debug, Clone)]
pub struct StatevectorBackend {
    /// Branches with weight below this threshold are pruned.
    prune_threshold: f64,
    /// Hard cap on simultaneous branches (guards against pathological
    /// circuits with very many resets).
    max_branches: usize,
}

impl StatevectorBackend {
    /// Creates a backend with default pruning (`1e-14`) and branch cap
    /// (`4096`).
    pub fn new() -> Self {
        StatevectorBackend {
            prune_threshold: 1e-14,
            max_branches: 4096,
        }
    }

    /// Overrides the branch cap.
    pub fn with_max_branches(mut self, max: usize) -> Self {
        self.max_branches = max;
        self
    }
}

impl Default for StatevectorBackend {
    fn default() -> Self {
        StatevectorBackend::new()
    }
}

struct Branch {
    weight: f64,
    sv: Statevector,
    clbits: u64,
}

impl Backend for StatevectorBackend {
    fn name(&self) -> &'static str {
        "statevector-branching"
    }

    fn probabilities(&self, circuit: &Circuit) -> Result<OutcomeDistribution, QsimError> {
        let mut branches = vec![Branch {
            weight: 1.0,
            sv: Statevector::new(circuit.num_qubits()),
            clbits: 0,
        }];
        for instr in circuit.instructions() {
            match &instr.op {
                Operation::Gate(g) => {
                    for b in &mut branches {
                        b.sv.apply_gate(*g, &instr.qubits)?;
                    }
                }
                Operation::Barrier => {}
                Operation::Reset => {
                    let q = instr.qubits[0];
                    branches = self.split(branches, q, |sv, outcome| {
                        if outcome {
                            // Reset maps the |1⟩ branch back to |0⟩.
                            sv.apply_gate(crate::gate::Gate::X, &[q]).expect("valid");
                        }
                    })?;
                }
                Operation::Measure { clbit } => {
                    let q = instr.qubits[0];
                    let bit = 1u64 << *clbit;
                    branches = self.split_with_clbits(branches, q, bit)?;
                }
            }
            if branches.len() > self.max_branches {
                return Err(QsimError::Unsupported(format!(
                    "circuit needs more than {} branches",
                    self.max_branches
                )));
            }
        }
        let mut probs: HashMap<u64, f64> = HashMap::new();
        for b in branches {
            *probs.entry(b.clbits).or_insert(0.0) += b.weight;
        }
        Ok(OutcomeDistribution {
            num_clbits: circuit.num_clbits(),
            probs,
        })
    }
}

impl StatevectorBackend {
    /// Splits every branch on qubit `q`, applying `post(sv, outcome)` to
    /// each collapsed branch (used for reset's conditional X).
    fn split<F: Fn(&mut Statevector, bool)>(
        &self,
        branches: Vec<Branch>,
        q: usize,
        post: F,
    ) -> Result<Vec<Branch>, QsimError> {
        let mut out = Vec::with_capacity(branches.len() * 2);
        for b in branches {
            let p1 = b.sv.probability_one(q)?;
            for outcome in [false, true] {
                let p = if outcome { p1 } else { 1.0 - p1 };
                let weight = b.weight * p;
                if weight <= self.prune_threshold {
                    continue;
                }
                let mut sv = b.sv.clone();
                sv.collapse(q, outcome)?;
                post(&mut sv, outcome);
                out.push(Branch {
                    weight,
                    sv,
                    clbits: b.clbits,
                });
            }
        }
        Ok(out)
    }

    /// Splits every branch on qubit `q`, recording the outcome in the
    /// classical bit mask `bit`.
    fn split_with_clbits(
        &self,
        branches: Vec<Branch>,
        q: usize,
        bit: u64,
    ) -> Result<Vec<Branch>, QsimError> {
        let mut out = Vec::with_capacity(branches.len() * 2);
        for b in branches {
            let p1 = b.sv.probability_one(q)?;
            for outcome in [false, true] {
                let p = if outcome { p1 } else { 1.0 - p1 };
                let weight = b.weight * p;
                if weight <= self.prune_threshold {
                    continue;
                }
                let mut sv = b.sv.clone();
                sv.collapse(q, outcome)?;
                let clbits = if outcome {
                    b.clbits | bit
                } else {
                    b.clbits & !bit
                };
                out.push(Branch { weight, sv, clbits });
            }
        }
        Ok(out)
    }
}

/// The per-physical-gate noise channels of a [`NoiseModel`], fused into
/// single superoperators at construction time.
///
/// Shared by [`DensityMatrixBackend`] and `quorum_core`'s analytic density
/// engine so both charge *exactly* the same error after every lowered gate:
/// one fused 4×4 block operation after each 1-qubit gate, and the
/// closed-form two-qubit depolarizing plus per-qubit relaxation after each
/// CX — instead of up to eight Kraus terms per gate.
///
/// The adjoint channels are precomputed too, so observables can be pulled
/// *backwards* through a noisy gate sequence (Heisenberg picture) with the
/// same kernels.
#[derive(Debug, Clone, Default)]
pub struct GateNoise {
    /// Fused channel after every 1-qubit gate.
    superop_1q: Option<[[crate::complex::C64; 4]; 4]>,
    /// Adjoint of `superop_1q`.
    superop_1q_adj: Option<[[crate::complex::C64; 4]; 4]>,
    /// Depolarizing parameter applied after every CX (closed form; the
    /// channel is self-adjoint).
    depol_2q: f64,
    /// Fused per-qubit relaxation accrued over a 2-qubit gate's duration.
    superop_2q_relax: Option<[[crate::complex::C64; 4]; 4]>,
    /// Adjoint of `superop_2q_relax`.
    superop_2q_relax_adj: Option<[[crate::complex::C64; 4]; 4]>,
    /// Symmetric readout bit-flip probability.
    readout_error: f64,
}

impl GateNoise {
    /// Fuses the model's per-gate channel stacks into superoperators.
    pub fn from_model(noise: &NoiseModel) -> Self {
        use crate::density::{
            compose_superops, superop_adjoint_1q, superop_from_kraus, superop_to_array_1q,
        };
        let fuse = |channels: &[Vec<crate::matrix::CMatrix>]| {
            channels
                .iter()
                .map(|ch| superop_from_kraus(ch))
                .reduce(|acc, next| compose_superops(&acc, &next))
        };
        let superop_1q = fuse(&noise.channels_for_1q_gate()).map(|s| superop_to_array_1q(&s));
        let (_, per_q) = noise.channels_for_2q_gate();
        let superop_2q_relax = fuse(&per_q).map(|s| superop_to_array_1q(&s));
        GateNoise {
            superop_1q,
            superop_1q_adj: superop_1q.as_ref().map(superop_adjoint_1q),
            depol_2q: noise.error_2q,
            superop_2q_relax,
            superop_2q_relax_adj: superop_2q_relax.as_ref().map(superop_adjoint_1q),
            readout_error: noise.readout_error,
        }
    }

    /// The model's symmetric readout bit-flip probability.
    pub fn readout_error(&self) -> f64 {
        self.readout_error
    }

    /// The fused channel charged after every 1-qubit gate, if any.
    pub fn superop_1q(&self) -> Option<&[[crate::complex::C64; 4]; 4]> {
        self.superop_1q.as_ref()
    }

    /// The closed-form depolarizing parameter charged after every CX.
    pub fn depol_2q(&self) -> f64 {
        self.depol_2q
    }

    /// The fused per-qubit relaxation charged on each operand of a
    /// 2-qubit gate, if any.
    pub fn superop_2q_relax(&self) -> Option<&[[crate::complex::C64; 4]; 4]> {
        self.superop_2q_relax.as_ref()
    }

    /// Applies the post-gate channel stack for a gate of the given arity on
    /// `qubits` — the Schrödinger-picture direction used when evolving
    /// states forward.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::Unsupported`] for arity > 2 (the circuit must
    /// be lowered with [`crate::transpile::decompose_multiqubit`] first)
    /// and propagates operand-validation errors.
    pub fn apply_after_gate(
        &self,
        rho: &mut DensityMatrix,
        gate_arity: usize,
        qubits: &[usize],
    ) -> Result<(), QsimError> {
        match gate_arity {
            1 => {
                if let Some(s) = &self.superop_1q {
                    rho.apply_superop_1q(qubits[0], s)?;
                }
            }
            2 => {
                if self.depol_2q > 0.0 {
                    rho.apply_depolarizing_2q(qubits[0], qubits[1], self.depol_2q)?;
                }
                if let Some(s) = &self.superop_2q_relax {
                    rho.apply_superop_1q(qubits[0], s)?;
                    rho.apply_superop_1q(qubits[1], s)?;
                }
            }
            _ => {
                return Err(QsimError::Unsupported(
                    "3-qubit gate survived lowering".into(),
                ))
            }
        }
        Ok(())
    }

    /// Applies the post-gate channel stack to **every column** of a
    /// `dim² × samples` vec(ρ) panel — the lockstep analogue of
    /// [`GateNoise::apply_after_gate`], charging the *same* fused
    /// channels with the same per-element arithmetic through the batched
    /// panel kernels ([`crate::density::apply_superop_1q_columns`] /
    /// [`crate::density::apply_depolarizing_2q_columns`]), so a batch
    /// walked in lockstep matches per-sample evolution bit for bit.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::Unsupported`] for arity > 2, like the
    /// per-sample direction.
    ///
    /// # Panics
    ///
    /// Panics on a malformed panel shape or out-of-range operands (the
    /// panel kernels' contract).
    pub fn apply_after_gate_columns(
        &self,
        data: &mut [crate::complex::C64],
        dim: usize,
        samples: usize,
        gate_arity: usize,
        qubits: &[usize],
    ) -> Result<(), QsimError> {
        use crate::density::{apply_depolarizing_2q_columns, apply_superop_1q_columns};
        match gate_arity {
            1 => {
                if let Some(s) = &self.superop_1q {
                    apply_superop_1q_columns(data, dim, samples, qubits[0], s);
                }
            }
            2 => {
                if self.depol_2q > 0.0 {
                    apply_depolarizing_2q_columns(
                        data,
                        dim,
                        samples,
                        qubits[0],
                        qubits[1],
                        self.depol_2q,
                    );
                }
                if let Some(s) = &self.superop_2q_relax {
                    apply_superop_1q_columns(data, dim, samples, qubits[0], s);
                    apply_superop_1q_columns(data, dim, samples, qubits[1], s);
                }
            }
            _ => {
                return Err(QsimError::Unsupported(
                    "3-qubit gate survived lowering".into(),
                ))
            }
        }
        Ok(())
    }

    /// Applies the *adjoint* of the post-gate channel stack — the
    /// Heisenberg-picture direction used when pulling an observable
    /// backwards through a noisy gate. Channels are applied in reverse
    /// order with each one daggered (the two-qubit depolarizing channel is
    /// self-adjoint).
    ///
    /// # Errors
    ///
    /// Same conditions as [`GateNoise::apply_after_gate`].
    pub fn apply_adjoint_after_gate(
        &self,
        obs: &mut DensityMatrix,
        gate_arity: usize,
        qubits: &[usize],
    ) -> Result<(), QsimError> {
        match gate_arity {
            1 => {
                if let Some(s) = &self.superop_1q_adj {
                    obs.apply_superop_1q(qubits[0], s)?;
                }
            }
            2 => {
                if let Some(s) = &self.superop_2q_relax_adj {
                    obs.apply_superop_1q(qubits[1], s)?;
                    obs.apply_superop_1q(qubits[0], s)?;
                }
                if self.depol_2q > 0.0 {
                    obs.apply_depolarizing_2q(qubits[0], qubits[1], self.depol_2q)?;
                }
            }
            _ => {
                return Err(QsimError::Unsupported(
                    "3-qubit gate survived lowering".into(),
                ))
            }
        }
        Ok(())
    }
}

/// Exact mixed-state backend with optional per-gate Kraus noise.
///
/// The per-gate channel stacks (depolarizing + relaxation) are fused into
/// single superoperators at construction time via [`GateNoise`], so the
/// noisy hot loop applies one fused block operation per gate instead of up
/// to eight Kraus terms.
#[derive(Debug, Clone, Default)]
pub struct DensityMatrixBackend {
    noise: Option<NoiseModel>,
    gate_noise: GateNoise,
}

impl DensityMatrixBackend {
    /// Creates a noiseless density-matrix backend.
    pub fn new() -> Self {
        DensityMatrixBackend::default()
    }

    /// Creates a backend that applies the given noise model after every
    /// physical gate (circuits are lowered to 1q+CX form first).
    pub fn with_noise(noise: NoiseModel) -> Self {
        let gate_noise = GateNoise::from_model(&noise);
        DensityMatrixBackend {
            noise: Some(noise),
            gate_noise,
        }
    }

    /// The configured noise model, if any.
    pub fn noise(&self) -> Option<&NoiseModel> {
        self.noise.as_ref()
    }
}

impl Backend for DensityMatrixBackend {
    fn name(&self) -> &'static str {
        "density-matrix"
    }

    fn probabilities(&self, circuit: &Circuit) -> Result<OutcomeDistribution, QsimError> {
        // With noise we must charge error per physical gate, so lower
        // multi-qubit gates to CX + 1q first.
        let lowered;
        let circ = if self.noise.is_some() {
            lowered = transpile::decompose_multiqubit(circuit);
            &lowered
        } else {
            circuit
        };

        let n = circ.num_qubits();
        let mut rho = DensityMatrix::new(n)?;
        // clbit -> qubit mapping established by measures; measures must be
        // terminal per qubit (checked below).
        let mut measured: Vec<Option<usize>> = vec![None; circ.num_clbits()];
        let mut measured_qubits: Vec<usize> = Vec::new();

        for instr in circ.instructions() {
            // No further operations allowed on already-measured qubits.
            if !matches!(instr.op, Operation::Barrier) {
                for &q in &instr.qubits {
                    if measured_qubits.contains(&q) {
                        return Err(QsimError::Unsupported(
                            "operation after measurement on the same qubit".into(),
                        ));
                    }
                }
            }
            match &instr.op {
                Operation::Gate(g) => {
                    rho.apply_gate(*g, &instr.qubits)?;
                    if self.noise.is_some() {
                        self.gate_noise.apply_after_gate(
                            &mut rho,
                            g.num_qubits(),
                            &instr.qubits,
                        )?;
                    }
                }
                Operation::Barrier => {}
                Operation::Reset => {
                    rho.reset(instr.qubits[0])?;
                }
                Operation::Measure { clbit } => {
                    let q = instr.qubits[0];
                    rho.dephase(q)?;
                    measured[*clbit] = Some(q);
                    measured_qubits.push(q);
                }
            }
        }

        // Read the joint distribution of measured qubits off the diagonal.
        let diag = rho.diagonal_probabilities();
        let mut probs: HashMap<u64, f64> = HashMap::new();
        for (i, &p) in diag.iter().enumerate() {
            if p <= 0.0 {
                continue;
            }
            let mut pattern = 0u64;
            for (clbit, assignment) in measured.iter().enumerate() {
                if let Some(q) = assignment {
                    if i >> q & 1 == 1 {
                        pattern |= 1 << clbit;
                    }
                }
            }
            *probs.entry(pattern).or_insert(0.0) += p;
        }
        let dist = OutcomeDistribution {
            num_clbits: circ.num_clbits(),
            probs,
        };
        Ok(match &self.noise {
            Some(nm) if nm.readout_error > 0.0 => dist.with_readout_error(nm.readout_error),
            _ => dist,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    const TOL: f64 = 1e-10;

    fn bell_measured() -> Circuit {
        let mut qc = Circuit::with_clbits(2, 2);
        qc.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
        qc
    }

    #[test]
    fn statevector_backend_bell_distribution() {
        let backend = StatevectorBackend::new();
        let dist = backend.probabilities(&bell_measured()).unwrap();
        assert!((dist.probability(0b00) - 0.5).abs() < TOL);
        assert!((dist.probability(0b11) - 0.5).abs() < TOL);
        assert!(dist.probability(0b01) < TOL);
        assert!((dist.total() - 1.0).abs() < TOL);
    }

    #[test]
    fn density_backend_matches_statevector_on_bell() {
        let sv = StatevectorBackend::new();
        let dm = DensityMatrixBackend::new();
        let circuit = bell_measured();
        let a = sv.probabilities(&circuit).unwrap();
        let b = dm.probabilities(&circuit).unwrap();
        for pattern in 0..4u64 {
            assert!((a.probability(pattern) - b.probability(pattern)).abs() < TOL);
        }
    }

    #[test]
    fn backends_agree_on_reset_circuit() {
        // H, entangle, reset, rotate, measure: exercises exact branching.
        let mut qc = Circuit::with_clbits(3, 1);
        qc.h(0)
            .cx(0, 1)
            .ry(0.7, 2)
            .cx(1, 2)
            .reset(1)
            .rx(0.4, 1)
            .cx(2, 1)
            .measure(1, 0);
        let a = StatevectorBackend::new().probabilities(&qc).unwrap();
        let b = DensityMatrixBackend::new().probabilities(&qc).unwrap();
        assert!(
            (a.marginal_one(0) - b.marginal_one(0)).abs() < TOL,
            "sv {} vs dm {}",
            a.marginal_one(0),
            b.marginal_one(0)
        );
    }

    #[test]
    fn reset_branching_is_exact() {
        // |+> reset-to-zero then H then measure: P(1) must be exactly 1/2.
        let mut qc = Circuit::with_clbits(1, 1);
        qc.h(0).reset(0).h(0).measure(0, 0);
        let dist = StatevectorBackend::new().probabilities(&qc).unwrap();
        assert!((dist.marginal_one(0) - 0.5).abs() < TOL);
    }

    #[test]
    fn mid_circuit_measure_branches() {
        // Measure in the middle, then keep evolving: deferred-measurement
        // equivalence says P(final) = Σ_branches.
        let mut qc = Circuit::with_clbits(2, 2);
        qc.h(0).measure(0, 0).h(0).measure(0, 1);
        let dist = StatevectorBackend::new().probabilities(&qc).unwrap();
        // After first measure each branch is a basis state; H gives 50/50.
        for pattern in 0..4u64 {
            assert!((dist.probability(pattern) - 0.25).abs() < TOL);
        }
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let backend = StatevectorBackend::new();
        let c1 = backend.run(&bell_measured(), 1000, 7).unwrap();
        let c2 = backend.run(&bell_measured(), 1000, 7).unwrap();
        assert_eq!(c1, c2);
        let c3 = backend.run(&bell_measured(), 1000, 8).unwrap();
        assert_ne!(c1.entries(), c3.entries());
    }

    #[test]
    fn sampled_counts_converge_to_distribution() {
        let backend = StatevectorBackend::new();
        let counts = backend.run(&bell_measured(), 40_000, 3).unwrap();
        assert_eq!(counts.shots(), 40_000);
        assert!((counts.probability(0b00) - 0.5).abs() < 0.02);
        assert!((counts.marginal_one(0) - 0.5).abs() < 0.02);
        assert_eq!(counts.count(0b01) + counts.count(0b10), 0);
    }

    #[test]
    fn noisy_backend_blurs_deterministic_outcome() {
        let mut qc = Circuit::with_clbits(1, 1);
        qc.x(0).measure(0, 0);
        let ideal = DensityMatrixBackend::new().probabilities(&qc).unwrap();
        assert!((ideal.marginal_one(0) - 1.0).abs() < TOL);
        let noisy = DensityMatrixBackend::with_noise(NoiseModel::brisbane())
            .probabilities(&qc)
            .unwrap();
        let p = noisy.marginal_one(0);
        assert!(p < 1.0 - 1e-3, "noise should reduce P(1), got {p}");
        assert!(p > 0.95, "Brisbane noise is mild, got {p}");
    }

    #[test]
    fn gate_noise_adjoint_satisfies_heisenberg_duality() {
        // Tr[N(ρ) X] == Tr[ρ N†(X)] for the full per-gate channel stacks,
        // both the 1-qubit stack and the CX stack (depolarizing + per-qubit
        // relaxation). This is the law the analytic density engine's
        // backward-evolved SWAP-test functional rests on.
        use crate::gate::Gate;
        let gate_noise = GateNoise::from_model(&NoiseModel::brisbane());
        let mut rho = DensityMatrix::new(3).unwrap();
        rho.apply_gate(Gate::RY(0.9), &[0]).unwrap();
        rho.apply_gate(Gate::CX, &[0, 1]).unwrap();
        rho.apply_gate(Gate::RX(0.4), &[2]).unwrap();
        let mut obs = DensityMatrix::new(3).unwrap();
        obs.apply_gate(Gate::RY(2.2), &[1]).unwrap();
        obs.apply_gate(Gate::CX, &[1, 2]).unwrap();
        for (arity, qubits) in [(1usize, vec![1usize]), (2, vec![0, 2])] {
            let mut forward = rho.clone();
            gate_noise
                .apply_after_gate(&mut forward, arity, &qubits)
                .unwrap();
            let mut backward = obs.clone();
            gate_noise
                .apply_adjoint_after_gate(&mut backward, arity, &qubits)
                .unwrap();
            let lhs = forward.overlap(&obs).unwrap();
            let rhs = rho.overlap(&backward).unwrap();
            assert!((lhs - rhs).abs() < 1e-12, "arity {arity}: {lhs} vs {rhs}");
        }
    }

    #[test]
    fn gate_noise_rejects_unlowered_gates() {
        let gate_noise = GateNoise::from_model(&NoiseModel::brisbane());
        let mut rho = DensityMatrix::new(3).unwrap();
        assert!(matches!(
            gate_noise.apply_after_gate(&mut rho, 3, &[0, 1, 2]),
            Err(QsimError::Unsupported(_))
        ));
        assert!(matches!(
            gate_noise.apply_adjoint_after_gate(&mut rho, 3, &[0, 1, 2]),
            Err(QsimError::Unsupported(_))
        ));
    }

    #[test]
    fn noisy_backend_with_ideal_model_matches_noiseless() {
        let mut qc = Circuit::with_clbits(2, 1);
        qc.h(0).cx(0, 1).rx(0.3, 1).measure(1, 0);
        let a = DensityMatrixBackend::new().probabilities(&qc).unwrap();
        let b = DensityMatrixBackend::with_noise(NoiseModel::ideal())
            .probabilities(&qc)
            .unwrap();
        assert!((a.marginal_one(0) - b.marginal_one(0)).abs() < TOL);
    }

    #[test]
    fn density_backend_rejects_gate_after_measure() {
        let mut qc = Circuit::with_clbits(1, 1);
        qc.h(0).measure(0, 0).h(0);
        assert!(matches!(
            DensityMatrixBackend::new().probabilities(&qc),
            Err(QsimError::Unsupported(_))
        ));
    }

    #[test]
    fn readout_error_convolution() {
        let mut probs = HashMap::new();
        probs.insert(0b0u64, 1.0);
        let dist = OutcomeDistribution::from_probs(1, probs).with_readout_error(0.1);
        assert!((dist.probability(0b1) - 0.1).abs() < TOL);
        assert!((dist.probability(0b0) - 0.9).abs() < TOL);
        assert!((dist.total() - 1.0).abs() < TOL);
    }

    #[test]
    fn readout_error_two_bits() {
        let mut probs = HashMap::new();
        probs.insert(0b00u64, 1.0);
        let dist = OutcomeDistribution::from_probs(2, probs).with_readout_error(0.2);
        assert!((dist.probability(0b00) - 0.64).abs() < TOL);
        assert!((dist.probability(0b01) - 0.16).abs() < TOL);
        assert!((dist.probability(0b10) - 0.16).abs() < TOL);
        assert!((dist.probability(0b11) - 0.04).abs() < TOL);
    }

    #[test]
    fn branch_cap_is_enforced() {
        let backend = StatevectorBackend::new().with_max_branches(2);
        let mut qc = Circuit::with_clbits(3, 3);
        qc.h(0).h(1).h(2).measure(0, 0).measure(1, 1).measure(2, 2);
        assert!(matches!(
            backend.probabilities(&qc),
            Err(QsimError::Unsupported(_))
        ));
    }

    #[test]
    fn swap_test_identical_states_reads_zero() {
        // Canonical SWAP test: two identical |+> states => ancilla P(1)=0.
        let mut qc = Circuit::with_clbits(3, 1);
        qc.h(0); // ancilla will be qubit 2; data qubits 0,1
        qc.h(1);
        qc.h(2);
        qc.cswap(2, 0, 1);
        qc.h(2);
        qc.measure(2, 0);
        let dist = StatevectorBackend::new().probabilities(&qc).unwrap();
        assert!(dist.marginal_one(0) < TOL);
    }

    #[test]
    fn swap_test_orthogonal_states_reads_half() {
        // |0> vs |1>: overlap 0 => P(1) = (1 - 0)/2 = 1/2.
        let mut qc = Circuit::with_clbits(3, 1);
        qc.x(1);
        qc.h(2);
        qc.cswap(2, 0, 1);
        qc.h(2);
        qc.measure(2, 0);
        let dist = StatevectorBackend::new().probabilities(&qc).unwrap();
        assert!((dist.marginal_one(0) - 0.5).abs() < TOL);
        // And the density backend agrees.
        let dist2 = DensityMatrixBackend::new().probabilities(&qc).unwrap();
        assert!((dist2.marginal_one(0) - 0.5).abs() < TOL);
    }

    #[test]
    fn gate_marker_trait_objects() {
        // Backends must be usable as trait objects for the bench harness.
        let backends: Vec<Box<dyn Backend>> = vec![
            Box::new(StatevectorBackend::new()),
            Box::new(DensityMatrixBackend::new()),
        ];
        for b in &backends {
            let dist = b.probabilities(&bell_measured()).unwrap();
            assert!((dist.total() - 1.0).abs() < TOL);
            assert!(!b.name().is_empty());
        }
    }

    #[test]
    fn unmeasured_circuit_yields_empty_pattern() {
        let mut qc = Circuit::new(2);
        qc.h(0).cx(0, 1);
        let dist = StatevectorBackend::new().probabilities(&qc).unwrap();
        assert!((dist.probability(0) - 1.0).abs() < TOL);
    }

    #[allow(unused_imports)]
    use Gate as _GateUnused;
}
