//! OpenQASM 2.0 interchange.
//!
//! Quorum circuits can be exported for execution on real IBM hardware (the
//! paper's intended target once run volumes become affordable) and
//! re-imported for cross-checking. The supported subset covers everything
//! [`crate::circuit::Circuit`] can express: the gate library, `reset`,
//! `measure`, and `barrier`, over one quantum and one classical register.

use crate::circuit::{Circuit, Instruction, Operation};
use crate::error::QsimError;
use crate::gate::Gate;
use std::fmt::Write as _;

/// Serialises a circuit to OpenQASM 2.0 text.
///
/// # Examples
///
/// ```
/// use qsim::circuit::Circuit;
/// use qsim::qasm::{to_qasm, from_qasm};
///
/// let mut qc = Circuit::with_clbits(2, 1);
/// qc.h(0).cx(0, 1).measure(1, 0);
/// let text = to_qasm(&qc);
/// assert!(text.contains("cx q[0],q[1];"));
/// let back = from_qasm(&text).unwrap();
/// assert_eq!(back.num_qubits(), 2);
/// assert_eq!(back.len(), qc.len());
/// ```
pub fn to_qasm(circ: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    let _ = writeln!(out, "qreg q[{}];", circ.num_qubits().max(1));
    if circ.num_clbits() > 0 {
        let _ = writeln!(out, "creg c[{}];", circ.num_clbits());
    }
    for instr in circ.instructions() {
        let q = &instr.qubits;
        match &instr.op {
            Operation::Gate(g) => {
                let name = qasm_gate_name(g);
                let params = qasm_params(g);
                let operands = q
                    .iter()
                    .map(|i| format!("q[{i}]"))
                    .collect::<Vec<_>>()
                    .join(",");
                let _ = writeln!(out, "{name}{params} {operands};");
            }
            Operation::Reset => {
                let _ = writeln!(out, "reset q[{}];", q[0]);
            }
            Operation::Measure { clbit } => {
                let _ = writeln!(out, "measure q[{}] -> c[{}];", q[0], clbit);
            }
            Operation::Barrier => {
                let operands = q
                    .iter()
                    .map(|i| format!("q[{i}]"))
                    .collect::<Vec<_>>()
                    .join(",");
                let _ = writeln!(out, "barrier {operands};");
            }
        }
    }
    out
}

fn qasm_gate_name(g: &Gate) -> &'static str {
    match g {
        Gate::Phase(_) => "u1", // qelib1's phase gate
        Gate::U(..) => "u3",
        Gate::CPhase(_) => "cu1",
        Gate::SXdg => "sxdg",
        g => g.name(),
    }
}

fn qasm_params(g: &Gate) -> String {
    match *g {
        Gate::RX(t)
        | Gate::RY(t)
        | Gate::RZ(t)
        | Gate::Phase(t)
        | Gate::CRZ(t)
        | Gate::CPhase(t) => format!("({t})"),
        Gate::U(a, b, c) => format!("({a},{b},{c})"),
        _ => String::new(),
    }
}

/// Parses the OpenQASM 2.0 subset produced by [`to_qasm`] (single `q`/`c`
/// registers, the qelib1 gate names this crate emits).
///
/// # Errors
///
/// Returns [`QsimError::Unsupported`] for syntax or gates outside the
/// subset, and propagates circuit-validation errors for bad operands.
pub fn from_qasm(text: &str) -> Result<Circuit, QsimError> {
    /// One parsed statement: mnemonic, angle parameters, qubit operands,
    /// and the destination clbit for measures.
    type ParsedOp = (String, Vec<f64>, Vec<usize>, Option<usize>);

    let mut num_qubits = 0usize;
    let mut num_clbits = 0usize;
    let mut body: Vec<ParsedOp> = Vec::new();

    for raw_line in text.lines() {
        let line = raw_line.trim();
        if line.is_empty()
            || line.starts_with("//")
            || line.starts_with("OPENQASM")
            || line.starts_with("include")
        {
            continue;
        }
        let line = line
            .strip_suffix(';')
            .ok_or_else(|| QsimError::Unsupported(format!("missing semicolon: {line}")))?;
        if let Some(rest) = line.strip_prefix("qreg ") {
            num_qubits = parse_reg_size(rest, 'q')?;
            continue;
        }
        if let Some(rest) = line.strip_prefix("creg ") {
            num_clbits = parse_reg_size(rest, 'c')?;
            continue;
        }
        if let Some(rest) = line.strip_prefix("measure ") {
            let (qpart, cpart) = rest
                .split_once("->")
                .ok_or_else(|| QsimError::Unsupported(format!("bad measure: {rest}")))?;
            let qubit = parse_index(qpart.trim(), 'q')?;
            let clbit = parse_index(cpart.trim(), 'c')?;
            body.push(("measure".into(), vec![], vec![qubit], Some(clbit)));
            continue;
        }
        if let Some(rest) = line.strip_prefix("reset ") {
            body.push((
                "reset".into(),
                vec![],
                vec![parse_index(rest.trim(), 'q')?],
                None,
            ));
            continue;
        }
        if let Some(rest) = line.strip_prefix("barrier ") {
            let qubits = rest
                .split(',')
                .map(|t| parse_index(t.trim(), 'q'))
                .collect::<Result<Vec<usize>, _>>()?;
            body.push(("barrier".into(), vec![], qubits, None));
            continue;
        }
        // Gate: name[(params)] operands
        let (head, operands) = line
            .split_once(' ')
            .ok_or_else(|| QsimError::Unsupported(format!("bad statement: {line}")))?;
        let (name, params) = match head.split_once('(') {
            Some((n, p)) => {
                let p = p
                    .strip_suffix(')')
                    .ok_or_else(|| QsimError::Unsupported(format!("bad params: {head}")))?;
                let values = p
                    .split(',')
                    .map(|t| {
                        t.trim()
                            .parse::<f64>()
                            .map_err(|_| QsimError::Unsupported(format!("bad angle: {t}")))
                    })
                    .collect::<Result<Vec<f64>, _>>()?;
                (n.to_string(), values)
            }
            None => (head.to_string(), vec![]),
        };
        let qubits = operands
            .split(',')
            .map(|t| parse_index(t.trim(), 'q'))
            .collect::<Result<Vec<usize>, _>>()?;
        body.push((name, params, qubits, None));
    }

    let mut circ = Circuit::with_clbits(num_qubits, num_clbits);
    for (name, params, qubits, clbit) in body {
        let instr = match name.as_str() {
            "measure" => Instruction {
                op: Operation::Measure {
                    clbit: clbit.expect("parsed above"),
                },
                qubits,
            },
            "reset" => Instruction {
                op: Operation::Reset,
                qubits,
            },
            "barrier" => Instruction {
                op: Operation::Barrier,
                qubits,
            },
            _ => Instruction {
                op: Operation::Gate(gate_from_qasm(&name, &params)?),
                qubits,
            },
        };
        circ.push(instr)?;
    }
    Ok(circ)
}

fn gate_from_qasm(name: &str, params: &[f64]) -> Result<Gate, QsimError> {
    let need = |n: usize| -> Result<(), QsimError> {
        if params.len() == n {
            Ok(())
        } else {
            Err(QsimError::Unsupported(format!(
                "gate {name} expects {n} parameters, got {}",
                params.len()
            )))
        }
    };
    Ok(match name {
        "id" => Gate::I,
        "h" => Gate::H,
        "x" => Gate::X,
        "y" => Gate::Y,
        "z" => Gate::Z,
        "s" => Gate::S,
        "sdg" => Gate::Sdg,
        "t" => Gate::T,
        "tdg" => Gate::Tdg,
        "sx" => Gate::SX,
        "sxdg" => Gate::SXdg,
        "rx" => {
            need(1)?;
            Gate::RX(params[0])
        }
        "ry" => {
            need(1)?;
            Gate::RY(params[0])
        }
        "rz" => {
            need(1)?;
            Gate::RZ(params[0])
        }
        "u1" | "p" => {
            need(1)?;
            Gate::Phase(params[0])
        }
        "u3" | "u" => {
            need(3)?;
            Gate::U(params[0], params[1], params[2])
        }
        "cx" => Gate::CX,
        "cz" => Gate::CZ,
        "crz" => {
            need(1)?;
            Gate::CRZ(params[0])
        }
        "cu1" | "cp" => {
            need(1)?;
            Gate::CPhase(params[0])
        }
        "swap" => Gate::Swap,
        "ccx" => Gate::CCX,
        "cswap" => Gate::CSwap,
        other => return Err(QsimError::Unsupported(format!("unknown gate {other}"))),
    })
}

fn parse_reg_size(rest: &str, reg: char) -> Result<usize, QsimError> {
    // e.g. "q[7]"
    let inner = rest
        .trim()
        .strip_prefix(reg)
        .and_then(|s| s.strip_prefix('['))
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| QsimError::Unsupported(format!("bad register declaration: {rest}")))?;
    inner
        .parse()
        .map_err(|_| QsimError::Unsupported(format!("bad register size: {rest}")))
}

fn parse_index(token: &str, reg: char) -> Result<usize, QsimError> {
    let inner = token
        .strip_prefix(reg)
        .and_then(|s| s.strip_prefix('['))
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| QsimError::Unsupported(format!("bad operand: {token}")))?;
    inner
        .parse()
        .map_err(|_| QsimError::Unsupported(format!("bad operand index: {token}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::{Backend, StatevectorBackend};

    fn assert_round_trip(circ: &Circuit) {
        let text = to_qasm(circ);
        let back = from_qasm(&text).expect("parses");
        assert_eq!(back.num_qubits(), circ.num_qubits());
        assert_eq!(back.num_clbits(), circ.num_clbits());
        assert_eq!(back.len(), circ.len());
        // Outcome distributions agree.
        if circ.num_clbits() > 0 {
            let backend = StatevectorBackend::new();
            let a = backend.probabilities(circ).unwrap();
            let b = backend.probabilities(&back).unwrap();
            for (pattern, p) in a.entries() {
                assert!((p - b.probability(pattern)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn bell_circuit_round_trips() {
        let mut qc = Circuit::with_clbits(2, 2);
        qc.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
        assert_round_trip(&qc);
    }

    #[test]
    fn every_gate_round_trips() {
        let mut qc = Circuit::new(3);
        qc.id(0)
            .h(0)
            .x(1)
            .y(2)
            .z(0)
            .s(1)
            .sdg(2)
            .t(0)
            .tdg(1)
            .sx(2)
            .rx(0.3, 0)
            .ry(-1.2, 1)
            .rz(2.5, 2)
            .p(0.7, 0)
            .u(0.1, 0.2, 0.3, 1)
            .cx(0, 1)
            .cz(1, 2)
            .crz(0.9, 0, 2)
            .cp(-0.4, 1, 0)
            .swap(0, 2)
            .ccx(0, 1, 2)
            .cswap(2, 0, 1);
        assert_round_trip(&qc);
    }

    #[test]
    fn quorum_circuit_round_trips() {
        use crate::stateprep::prepare_real_amplitudes;
        let prep = prepare_real_amplitudes(2, &[0.3, 0.5, 0.2, 0.7]).unwrap();
        let mut qc = Circuit::with_clbits(5, 1);
        qc.compose(&prep, 0).unwrap();
        qc.compose(&prep, 2).unwrap();
        qc.reset(1);
        qc.barrier();
        qc.h(4);
        qc.cswap(4, 0, 2).cswap(4, 1, 3);
        qc.h(4);
        qc.measure(4, 0);
        assert_round_trip(&qc);
    }

    #[test]
    fn emitted_text_is_valid_qasm_prologue() {
        let mut qc = Circuit::with_clbits(1, 1);
        qc.h(0).measure(0, 0);
        let text = to_qasm(&qc);
        assert!(text.starts_with("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n"));
        assert!(text.contains("qreg q[1];"));
        assert!(text.contains("creg c[1];"));
        assert!(text.contains("measure q[0] -> c[0];"));
    }

    #[test]
    fn parse_rejects_unknown_gates_and_syntax() {
        assert!(from_qasm("qreg q[1];\nfoo q[0];\n").is_err());
        assert!(from_qasm("qreg q[1];\nh q[0]\n").is_err()); // missing ;
        assert!(from_qasm("qreg q[oops];\n").is_err());
        assert!(from_qasm("qreg q[2];\nrx() q[0];\n").is_err());
        assert!(from_qasm("qreg q[1];\nrx(0.1,0.2) q[0];\n").is_err());
    }

    #[test]
    fn parse_validates_operands() {
        // Qubit out of range caught by circuit validation.
        assert!(from_qasm("qreg q[1];\nh q[5];\n").is_err());
        // Measure into undeclared creg.
        assert!(from_qasm("qreg q[1];\nmeasure q[0] -> c[0];\n").is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "OPENQASM 2.0;\n// a comment\n\nqreg q[1];\nh q[0];\n";
        let circ = from_qasm(text).unwrap();
        assert_eq!(circ.len(), 1);
    }
}
