//! Shared cumulative-distribution sampling.
//!
//! Every shot-sampling path in the stack — [`crate::statevector::Statevector::sample_counts`],
//! [`crate::simulator::OutcomeDistribution::sample`] and the analytic
//! scoring engine's binomial draws — reduces to the same primitive: draw
//! `shots` indices from a weight vector. This module is the single
//! implementation, with a binary-search hot loop over the prefix-sum
//! table.

use rand::Rng;

/// Draws `shots` indices proportional to `weights` and returns the count
/// per index (`result.len() == weights.len()`).
///
/// Weights need not be normalised; draws are taken against the running
/// total. Zero-weight entries are never selected (up to floating-point
/// boundary effects identical to the previous per-call-site
/// implementations). An empty weight vector yields an empty count vector
/// regardless of `shots`.
pub fn sample_counts_by_index<R: Rng + ?Sized>(
    weights: &[f64],
    shots: u64,
    rng: &mut R,
) -> Vec<u64> {
    if weights.is_empty() {
        return Vec::new();
    }
    let mut cumulative = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for &w in weights {
        acc += w;
        cumulative.push(acc);
    }
    let mut counts = vec![0u64; weights.len()];
    for _ in 0..shots {
        let r: f64 = rng.gen::<f64>() * acc;
        // Binary search for the first cumulative weight ≥ r.
        let idx = cumulative
            .partition_point(|&c| c < r)
            .min(weights.len() - 1);
        counts[idx] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn counts_sum_to_shots() {
        let mut rng = StdRng::seed_from_u64(1);
        let counts = sample_counts_by_index(&[0.2, 0.3, 0.5], 10_000, &mut rng);
        assert_eq!(counts.iter().sum::<u64>(), 10_000);
    }

    #[test]
    fn frequencies_track_weights() {
        let mut rng = StdRng::seed_from_u64(2);
        let counts = sample_counts_by_index(&[1.0, 3.0], 40_000, &mut rng);
        let frac = counts[1] as f64 / 40_000.0;
        assert!((frac - 0.75).abs() < 0.01, "sampled {frac}");
    }

    #[test]
    fn zero_weight_entries_are_never_drawn() {
        let mut rng = StdRng::seed_from_u64(3);
        let counts = sample_counts_by_index(&[0.5, 0.0, 0.5], 5_000, &mut rng);
        assert_eq!(counts[1], 0);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = sample_counts_by_index(&[0.1, 0.9], 500, &mut StdRng::seed_from_u64(7));
        let b = sample_counts_by_index(&[0.1, 0.9], 500, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn empty_weights_yield_empty_counts() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(sample_counts_by_index(&[], 100, &mut rng).is_empty());
    }

    #[test]
    fn single_entry_takes_everything() {
        let mut rng = StdRng::seed_from_u64(5);
        let counts = sample_counts_by_index(&[0.123], 64, &mut rng);
        assert_eq!(counts, vec![64]);
    }
}
