//! # classical-baselines — the paper's background detectors
//!
//! Classical unsupervised anomaly detectors referenced in the paper's
//! §II-C (clustering, Isolation Forests) plus two standard companions
//! (LOF, per-feature z-scores). They share the [`Detector`] trait so the
//! bench harness can sweep them next to Quorum and the QNN.
//!
//! ```
//! use classical_baselines::{Detector, IsolationForest};
//! use qdata::Dataset;
//!
//! let mut rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 * 0.01, 1.0]).collect();
//! rows.push(vec![50.0, -50.0]);
//! let ds = Dataset::from_rows("demo", rows, None).unwrap();
//! let scores = IsolationForest::default().score(&ds);
//! assert_eq!(qmetrics::top_n_indices(&scores, 1)[0], 40);
//! ```

#![warn(missing_docs)]

pub mod isolation_forest;
pub mod kmeans;
pub mod lof;
pub mod zscore;

use qdata::Dataset;

/// A score-based unsupervised anomaly detector: higher score = more
/// anomalous. Implementations must be deterministic given their seeds.
pub trait Detector {
    /// Short identifier for reports.
    fn name(&self) -> &'static str;

    /// Scores every sample of the dataset (labels must be ignored).
    fn score(&self, data: &Dataset) -> Vec<f64>;
}

pub use isolation_forest::IsolationForest;
pub use kmeans::KMeansDetector;
pub use lof::LocalOutlierFactor;
pub use zscore::ZScoreDetector;
