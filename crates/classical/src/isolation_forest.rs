//! Isolation Forest (Liu, Ting & Zhou), the tree-based detector the paper's
//! background cites: anomalies are isolated by fewer random splits.

use crate::Detector;
use qdata::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Isolation-forest configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct IsolationForest {
    /// Number of trees (default 100).
    pub num_trees: usize,
    /// Sub-sample size per tree (default 256, clamped to the dataset).
    pub subsample: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for IsolationForest {
    fn default() -> Self {
        IsolationForest {
            num_trees: 100,
            subsample: 256,
            seed: 1,
        }
    }
}

enum Node {
    Internal {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
    Leaf {
        size: usize,
    },
}

/// Average unsuccessful-search path length of a BST with `n` nodes — the
/// normalising constant `c(n)` from the paper.
fn c_factor(n: usize) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    let n = n as f64;
    2.0 * ((n - 1.0).ln() + 0.5772156649015329) - 2.0 * (n - 1.0) / n
}

fn build_tree<R: Rng + ?Sized>(
    rows: &[&[f64]],
    depth: usize,
    max_depth: usize,
    rng: &mut R,
) -> Node {
    if rows.len() <= 1 || depth >= max_depth {
        return Node::Leaf { size: rows.len() };
    }
    let num_features = rows[0].len();
    // Pick a feature with spread; give up after a few attempts (constant
    // data region).
    for _ in 0..num_features.max(4) {
        let feature = rng.gen_range(0..num_features);
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for r in rows {
            lo = lo.min(r[feature]);
            hi = hi.max(r[feature]);
        }
        if hi <= lo {
            continue;
        }
        let threshold = rng.gen_range(lo..hi);
        let (left_rows, right_rows): (Vec<&[f64]>, Vec<&[f64]>) =
            rows.iter().partition(|r| r[feature] < threshold);
        if left_rows.is_empty() || right_rows.is_empty() {
            continue;
        }
        return Node::Internal {
            feature,
            threshold,
            left: Box::new(build_tree(&left_rows, depth + 1, max_depth, rng)),
            right: Box::new(build_tree(&right_rows, depth + 1, max_depth, rng)),
        };
    }
    Node::Leaf { size: rows.len() }
}

fn path_length(node: &Node, row: &[f64], depth: f64) -> f64 {
    match node {
        Node::Leaf { size } => depth + c_factor(*size),
        Node::Internal {
            feature,
            threshold,
            left,
            right,
        } => {
            if row[*feature] < *threshold {
                path_length(left, row, depth + 1.0)
            } else {
                path_length(right, row, depth + 1.0)
            }
        }
    }
}

impl Detector for IsolationForest {
    fn name(&self) -> &'static str {
        "isolation-forest"
    }

    fn score(&self, data: &Dataset) -> Vec<f64> {
        let rows = data.rows();
        let n = rows.len();
        let psi = self.subsample.clamp(2, n);
        let max_depth = (psi as f64).log2().ceil() as usize;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut trees = Vec::with_capacity(self.num_trees);
        for _ in 0..self.num_trees {
            // Sample psi rows without replacement.
            let mut idx: Vec<usize> = (0..n).collect();
            for i in 0..psi {
                let j = rng.gen_range(i..n);
                idx.swap(i, j);
            }
            let sample: Vec<&[f64]> = idx[..psi].iter().map(|&i| rows[i].as_slice()).collect();
            trees.push(build_tree(&sample, 0, max_depth, &mut rng));
        }
        let c = c_factor(psi);
        rows.iter()
            .map(|row| {
                let mean_path: f64 = trees.iter().map(|t| path_length(t, row, 0.0)).sum::<f64>()
                    / trees.len() as f64;
                // s = 2^(−E[h]/c): → 1 for easy-to-isolate points.
                2f64.powf(-mean_path / c.max(1e-12))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planted() -> Dataset {
        let mut rows: Vec<Vec<f64>> = (0..60)
            .map(|i| {
                let t = (i as f64) * 0.01;
                vec![1.0 + t, 2.0 - t, 1.5 + t * 0.5]
            })
            .collect();
        rows.push(vec![15.0, -10.0, 20.0]);
        rows.push(vec![-12.0, 18.0, -9.0]);
        let mut labels = vec![false; 60];
        labels.extend([true, true]);
        Dataset::from_rows("planted", rows, Some(labels)).unwrap()
    }

    #[test]
    fn scores_isolate_planted_outliers() {
        let ds = planted();
        let forest = IsolationForest::default();
        let scores = forest.score(&ds);
        let flags = qmetrics::flag_top_n(&scores, 2);
        assert!(flags[60] && flags[61], "outliers not top-scored");
    }

    #[test]
    fn scores_are_in_unit_interval() {
        let scores = IsolationForest::default().score(&planted());
        for &s in &scores {
            assert!((0.0..=1.0).contains(&s), "score {s}");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let ds = planted();
        let a = IsolationForest::default().score(&ds);
        let b = IsolationForest::default().score(&ds);
        assert_eq!(a, b);
        let c = IsolationForest {
            seed: 99,
            ..IsolationForest::default()
        }
        .score(&ds);
        assert_ne!(a, c);
    }

    #[test]
    fn c_factor_grows_logarithmically() {
        assert_eq!(c_factor(1), 0.0);
        assert!(c_factor(10) > 0.0);
        assert!(c_factor(100) > c_factor(10));
        assert!(c_factor(100) < c_factor(10) * 3.0);
    }

    #[test]
    fn constant_dataset_degenerates_gracefully() {
        let rows = vec![vec![1.0, 1.0]; 20];
        let ds = Dataset::from_rows("const", rows, None).unwrap();
        let scores = IsolationForest::default().score(&ds);
        // Everyone equally isolated.
        let first = scores[0];
        assert!(scores.iter().all(|&s| (s - first).abs() < 1e-9));
    }
}
