//! K-means distance detector: cluster the data, score each sample by its
//! distance to the nearest centroid (the "clustering" baseline of the
//! paper's background section).

use crate::Detector;
use qdata::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// K-means anomaly detector configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansDetector {
    /// Number of clusters (default 8).
    pub k: usize,
    /// Lloyd iterations (default 50).
    pub max_iters: usize,
    /// RNG seed for k-means++ initialisation.
    pub seed: u64,
}

impl Default for KMeansDetector {
    fn default() -> Self {
        KMeansDetector {
            k: 8,
            max_iters: 50,
            seed: 1,
        }
    }
}

fn dist_sqr(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

impl KMeansDetector {
    /// Runs k-means++ then Lloyd's algorithm, returning the centroids.
    fn fit(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let n = rows.len();
        let k = self.k.clamp(1, n);
        let mut rng = StdRng::seed_from_u64(self.seed);
        // k-means++ seeding.
        let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
        centroids.push(rows[rng.gen_range(0..n)].clone());
        while centroids.len() < k {
            let d2: Vec<f64> = rows
                .iter()
                .map(|r| {
                    centroids
                        .iter()
                        .map(|c| dist_sqr(r, c))
                        .fold(f64::INFINITY, f64::min)
                })
                .collect();
            let total: f64 = d2.iter().sum();
            if total <= 0.0 {
                // All points coincide with existing centroids.
                centroids.push(rows[rng.gen_range(0..n)].clone());
                continue;
            }
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = n - 1;
            for (i, &d) in d2.iter().enumerate() {
                target -= d;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            centroids.push(rows[chosen].clone());
        }
        // Lloyd iterations.
        let dim = rows[0].len();
        for _ in 0..self.max_iters {
            let mut sums = vec![vec![0.0; dim]; centroids.len()];
            let mut counts = vec![0usize; centroids.len()];
            for r in rows {
                let nearest = centroids
                    .iter()
                    .enumerate()
                    .min_by(|a, b| dist_sqr(r, a.1).total_cmp(&dist_sqr(r, b.1)))
                    .expect("k >= 1")
                    .0;
                for (s, v) in sums[nearest].iter_mut().zip(r) {
                    *s += v;
                }
                counts[nearest] += 1;
            }
            let mut moved = 0.0;
            for (c, (sum, count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
                if *count == 0 {
                    continue;
                }
                let new: Vec<f64> = sum.iter().map(|s| s / *count as f64).collect();
                moved += dist_sqr(c, &new);
                *c = new;
            }
            if moved < 1e-12 {
                break;
            }
        }
        centroids
    }
}

impl Detector for KMeansDetector {
    fn name(&self) -> &'static str {
        "kmeans-distance"
    }

    fn score(&self, data: &Dataset) -> Vec<f64> {
        let rows = data.rows();
        let centroids = self.fit(rows);
        rows.iter()
            .map(|r| {
                centroids
                    .iter()
                    .map(|c| dist_sqr(r, c))
                    .fold(f64::INFINITY, f64::min)
                    .sqrt()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_clusters_and_outlier() -> Dataset {
        let mut rows = Vec::new();
        for i in 0..25 {
            rows.push(vec![0.0 + (i as f64) * 0.01, 0.0]);
            rows.push(vec![10.0 - (i as f64) * 0.01, 10.0]);
        }
        rows.push(vec![5.0, -8.0]);
        Dataset::from_rows("km", rows, None).unwrap()
    }

    #[test]
    fn outlier_is_farthest_from_centroids() {
        let ds = two_clusters_and_outlier();
        let det = KMeansDetector {
            k: 2,
            ..KMeansDetector::default()
        };
        let scores = det.score(&ds);
        let top = qmetrics::top_n_indices(&scores, 1)[0];
        assert_eq!(top, 50);
    }

    #[test]
    fn cluster_members_score_low() {
        let ds = two_clusters_and_outlier();
        let det = KMeansDetector {
            k: 2,
            ..KMeansDetector::default()
        };
        let scores = det.score(&ds);
        let mean_inlier: f64 = scores[..50].iter().sum::<f64>() / 50.0;
        assert!(mean_inlier < 1.0, "inlier mean distance {mean_inlier}");
        assert!(scores[50] > 5.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let ds = two_clusters_and_outlier();
        let a = KMeansDetector::default().score(&ds);
        let b = KMeansDetector::default().score(&ds);
        assert_eq!(a, b);
    }

    #[test]
    fn k_larger_than_dataset_is_clamped() {
        let rows = vec![vec![0.0], vec![1.0], vec![2.0]];
        let ds = Dataset::from_rows("small", rows, None).unwrap();
        let det = KMeansDetector {
            k: 10,
            ..KMeansDetector::default()
        };
        let scores = det.score(&ds);
        assert_eq!(scores.len(), 3);
    }

    #[test]
    fn identical_points_converge() {
        let rows = vec![vec![2.0, 2.0]; 12];
        let ds = Dataset::from_rows("same", rows, None).unwrap();
        let scores = KMeansDetector::default().score(&ds);
        assert!(scores.iter().all(|&s| s < 1e-9));
    }
}
