//! Local Outlier Factor (Breunig et al.): density-based anomaly scores via
//! k-nearest-neighbour reachability. Brute-force distances — adequate for
//! the paper's dataset sizes (≤ 1,000 samples).

use crate::Detector;
use qdata::Dataset;

/// LOF configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalOutlierFactor {
    /// Neighbourhood size (default 20).
    pub k: usize,
}

impl Default for LocalOutlierFactor {
    fn default() -> Self {
        LocalOutlierFactor { k: 20 }
    }
}

fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

impl Detector for LocalOutlierFactor {
    fn name(&self) -> &'static str {
        "lof"
    }

    fn score(&self, data: &Dataset) -> Vec<f64> {
        let rows = data.rows();
        let n = rows.len();
        let k = self.k.clamp(1, n.saturating_sub(1).max(1));
        // Pairwise distances and k-NN lists.
        let mut neighbours: Vec<Vec<(f64, usize)>> = Vec::with_capacity(n);
        for i in 0..n {
            let mut d: Vec<(f64, usize)> = (0..n)
                .filter(|&j| j != i)
                .map(|j| (euclidean(&rows[i], &rows[j]), j))
                .collect();
            d.sort_by(|a, b| a.0.total_cmp(&b.0));
            d.truncate(k);
            neighbours.push(d);
        }
        let k_distance: Vec<f64> = neighbours
            .iter()
            .map(|nb| nb.last().map_or(0.0, |x| x.0))
            .collect();
        // Local reachability density.
        let lrd: Vec<f64> = (0..n)
            .map(|i| {
                let sum_reach: f64 = neighbours[i]
                    .iter()
                    .map(|&(d, j)| d.max(k_distance[j]))
                    .sum();
                if sum_reach <= 0.0 {
                    f64::INFINITY
                } else {
                    neighbours[i].len() as f64 / sum_reach
                }
            })
            .collect();
        // LOF = mean(lrd of neighbours) / own lrd.
        (0..n)
            .map(|i| {
                if lrd[i].is_infinite() {
                    return 1.0; // duplicate-dense point: perfectly normal
                }
                let mean_nb: f64 = neighbours[i]
                    .iter()
                    .map(|&(_, j)| if lrd[j].is_infinite() { lrd[i] } else { lrd[j] })
                    .sum::<f64>()
                    / neighbours[i].len() as f64;
                mean_nb / lrd[i]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planted() -> Dataset {
        let mut rows: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![(i % 7) as f64 * 0.1, (i % 5) as f64 * 0.1])
            .collect();
        rows.push(vec![5.0, 5.0]);
        Dataset::from_rows("lof", rows, None).unwrap()
    }

    #[test]
    fn outlier_has_highest_lof() {
        let scores = LocalOutlierFactor::default().score(&planted());
        let max_idx = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(max_idx, 50);
        assert!(scores[50] > 1.5, "outlier LOF {}", scores[50]);
    }

    #[test]
    fn inliers_score_near_one() {
        let scores = LocalOutlierFactor::default().score(&planted());
        let inlier_mean: f64 = scores[..50].iter().sum::<f64>() / 50.0;
        assert!(
            (inlier_mean - 1.0).abs() < 0.3,
            "inlier mean LOF {inlier_mean}"
        );
    }

    #[test]
    fn duplicates_do_not_blow_up() {
        let rows = vec![vec![1.0, 2.0]; 30];
        let ds = Dataset::from_rows("dup", rows, None).unwrap();
        let scores = LocalOutlierFactor::default().score(&ds);
        for &s in &scores {
            assert!(s.is_finite());
        }
    }

    #[test]
    fn k_is_clamped_for_tiny_datasets() {
        let rows = vec![vec![0.0], vec![1.0], vec![2.0]];
        let ds = Dataset::from_rows("tiny", rows, None).unwrap();
        let scores = LocalOutlierFactor { k: 50 }.score(&ds);
        assert_eq!(scores.len(), 3);
        assert!(scores.iter().all(|s| s.is_finite()));
    }
}
