//! Per-feature z-score detector: the simplest classical baseline. A sample
//! scores by the largest absolute standard deviation any single feature
//! shows — strong on marginal outliers, blind to correlation-breaking
//! anomalies (which is exactly what the power-plant experiment probes).

use crate::Detector;
use qdata::Dataset;
use qmetrics::stats;

/// Z-score detector configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ZScoreDetector {
    /// Use the mean of per-feature |z| instead of the maximum.
    pub aggregate_mean: bool,
}

impl Detector for ZScoreDetector {
    fn name(&self) -> &'static str {
        "zscore"
    }

    fn score(&self, data: &Dataset) -> Vec<f64> {
        let m = data.num_features();
        let mut means = Vec::with_capacity(m);
        let mut stds = Vec::with_capacity(m);
        for j in 0..m {
            let col = data.column(j);
            means.push(stats::mean(&col));
            stds.push(stats::population_std(&col));
        }
        data.rows()
            .iter()
            .map(|row| {
                let zs = row
                    .iter()
                    .enumerate()
                    .map(|(j, &v)| stats::zscore(v, means[j], stds[j]).abs());
                if self.aggregate_mean {
                    let (sum, count) = zs.fold((0.0, 0usize), |(s, c), z| (s + z, c + 1));
                    if count == 0 {
                        0.0
                    } else {
                        sum / count as f64
                    }
                } else {
                    zs.fold(0.0, f64::max)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_marginal_outlier() {
        let mut rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 * 0.01, 5.0]).collect();
        rows.push(vec![0.15, 50.0]);
        let ds = Dataset::from_rows("z", rows, None).unwrap();
        let scores = ZScoreDetector::default().score(&ds);
        let top = qmetrics::top_n_indices(&scores, 1)[0];
        assert_eq!(top, 30);
    }

    #[test]
    fn misses_correlation_breaking_anomaly() {
        // Two perfectly correlated features; the anomaly swaps them but
        // stays in range — max-|z| cannot see it clearly.
        let mut rows: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                let t = i as f64 / 40.0;
                vec![t, t]
            })
            .collect();
        rows.push(vec![0.1, 0.9]);
        let ds = Dataset::from_rows("corr", rows, None).unwrap();
        let scores = ZScoreDetector::default().score(&ds);
        let anomaly_score = scores[40];
        let max_normal = scores[..40].iter().cloned().fold(0.0, f64::max);
        // The anomaly does NOT dominate: its score is comparable to the
        // extreme normal points.
        assert!(anomaly_score < max_normal * 1.5);
    }

    #[test]
    fn mean_aggregation_differs_from_max() {
        let rows = vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![10.0, 0.1],
        ];
        let ds = Dataset::from_rows("agg", rows, None).unwrap();
        let max_scores = ZScoreDetector::default().score(&ds);
        let mean_scores = ZScoreDetector {
            aggregate_mean: true,
        }
        .score(&ds);
        assert_ne!(max_scores, mean_scores);
    }

    #[test]
    fn constant_features_contribute_zero() {
        let rows = vec![vec![3.0, 1.0], vec![3.0, 2.0], vec![3.0, 3.0]];
        let ds = Dataset::from_rows("const", rows, None).unwrap();
        let scores = ZScoreDetector::default().score(&ds);
        assert!(scores.iter().all(|s| s.is_finite()));
    }
}
