//! Confusion-matrix metrics: precision, recall, F1, accuracy — the four
//! numbers of the paper's Fig. 8.

use std::fmt;

/// A binary confusion matrix where "positive" means *anomaly*.
///
/// # Examples
///
/// ```
/// use qmetrics::confusion::ConfusionMatrix;
///
/// let truth =     [true,  true,  false, false, false];
/// let predicted = [true,  false, true,  false, false];
/// let cm = ConfusionMatrix::from_predictions(&truth, &predicted);
/// assert_eq!(cm.true_positives(), 1);
/// assert!((cm.precision() - 0.5).abs() < 1e-12);
/// assert!((cm.recall() - 0.5).abs() < 1e-12);
/// assert!((cm.f1() - 0.5).abs() < 1e-12);
/// assert!((cm.accuracy() - 0.6).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfusionMatrix {
    tp: usize,
    fp: usize,
    tn: usize,
    fn_: usize,
}

impl ConfusionMatrix {
    /// Builds from raw cell counts (`tp`, `fp`, `tn`, `fn`).
    pub fn from_counts(tp: usize, fp: usize, tn: usize, fn_: usize) -> Self {
        ConfusionMatrix { tp, fp, tn, fn_ }
    }

    /// Builds from parallel truth/prediction slices.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn from_predictions(truth: &[bool], predicted: &[bool]) -> Self {
        assert_eq!(truth.len(), predicted.len(), "length mismatch");
        let mut cm = ConfusionMatrix::default();
        for (&t, &p) in truth.iter().zip(predicted) {
            match (t, p) {
                (true, true) => cm.tp += 1,
                (false, true) => cm.fp += 1,
                (false, false) => cm.tn += 1,
                (true, false) => cm.fn_ += 1,
            }
        }
        cm
    }

    /// Correctly flagged anomalies.
    pub fn true_positives(&self) -> usize {
        self.tp
    }

    /// Normal samples wrongly flagged.
    pub fn false_positives(&self) -> usize {
        self.fp
    }

    /// Correctly passed normal samples.
    pub fn true_negatives(&self) -> usize {
        self.tn
    }

    /// Missed anomalies.
    pub fn false_negatives(&self) -> usize {
        self.fn_
    }

    /// Total number of samples.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// `TP / (TP + FP)`; 0 when nothing was flagged (the convention the
    /// paper uses for the QNN's empty predictions on the letter dataset).
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// `TP / (TP + FN)`; 0 when there are no true anomalies.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Harmonic mean of precision and recall; 0 when both are 0.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// `(TP + TN) / total`; 0 for an empty matrix.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tp={} fp={} tn={} fn={} | P={:.3} R={:.3} F1={:.3} acc={:.3}",
            self.tp,
            self.fp,
            self.tn,
            self.fn_,
            self.precision(),
            self.recall(),
            self.f1(),
            self.accuracy()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let truth = [true, false, true, false];
        let cm = ConfusionMatrix::from_predictions(&truth, &truth);
        assert_eq!(cm.precision(), 1.0);
        assert_eq!(cm.recall(), 1.0);
        assert_eq!(cm.f1(), 1.0);
        assert_eq!(cm.accuracy(), 1.0);
    }

    #[test]
    fn no_flags_yields_zero_precision_recall() {
        // The QNN-on-letter case: nothing detected.
        let truth = [true, true, false, false];
        let predicted = [false; 4];
        let cm = ConfusionMatrix::from_predictions(&truth, &predicted);
        assert_eq!(cm.precision(), 0.0);
        assert_eq!(cm.recall(), 0.0);
        assert_eq!(cm.f1(), 0.0);
        assert_eq!(cm.accuracy(), 0.5);
    }

    #[test]
    fn conservative_detector_has_high_precision_low_recall() {
        // 10 anomalies, flags only 2 of them, no false positives.
        let mut truth = vec![false; 90];
        truth.extend(vec![true; 10]);
        let mut predicted = vec![false; 98];
        predicted.extend(vec![true; 2]);
        let cm = ConfusionMatrix::from_predictions(&truth, &predicted);
        assert_eq!(cm.precision(), 1.0);
        assert!((cm.recall() - 0.2).abs() < 1e-12);
        assert!((cm.f1() - 2.0 * 0.2 / 1.2).abs() < 1e-12);
    }

    #[test]
    fn from_counts_round_trip() {
        let cm = ConfusionMatrix::from_counts(3, 2, 90, 5);
        assert_eq!(cm.total(), 100);
        assert!((cm.precision() - 0.6).abs() < 1e-12);
        assert!((cm.recall() - 0.375).abs() < 1e-12);
        assert!((cm.accuracy() - 0.93).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_yields_zeros() {
        let cm = ConfusionMatrix::default();
        assert_eq!(cm.precision(), 0.0);
        assert_eq!(cm.recall(), 0.0);
        assert_eq!(cm.f1(), 0.0);
        assert_eq!(cm.accuracy(), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mismatched_lengths() {
        ConfusionMatrix::from_predictions(&[true], &[true, false]);
    }

    #[test]
    fn display_contains_all_metrics() {
        let cm = ConfusionMatrix::from_counts(1, 1, 1, 1);
        let text = cm.to_string();
        assert!(text.contains("P=0.500"));
        assert!(text.contains("acc=0.500"));
    }
}
