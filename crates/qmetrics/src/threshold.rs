//! Score thresholding: turning anomaly scores into binary flags.
//!
//! Quorum flags the top `k`% of anomaly scores (the paper's "Detection
//! Rate/Accuracy at various percentile thresholds"); the natural operating
//! point flags exactly as many samples as the estimated anomaly count.

/// Returns the indices of the `n` highest-scoring samples (ties broken by
/// lower index first), in descending score order.
///
/// # Examples
///
/// ```
/// use qmetrics::threshold::top_n_indices;
///
/// let scores = [0.1, 5.0, 3.0, 3.0];
/// assert_eq!(top_n_indices(&scores, 2), vec![1, 2]);
/// ```
pub fn top_n_indices(scores: &[f64], n: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
    order.truncate(n.min(scores.len()));
    order
}

/// Flags the `n` highest scores as anomalies.
pub fn flag_top_n(scores: &[f64], n: usize) -> Vec<bool> {
    let mut flags = vec![false; scores.len()];
    for idx in top_n_indices(scores, n) {
        flags[idx] = true;
    }
    flags
}

/// Flags the top `fraction` (`0.0..=1.0`) of scores as anomalies, rounding
/// the count to the nearest sample.
///
/// # Panics
///
/// Panics if `fraction` is outside `[0, 1]`.
pub fn flag_top_fraction(scores: &[f64], fraction: f64) -> Vec<bool> {
    assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
    let n = (scores.len() as f64 * fraction).round() as usize;
    flag_top_n(scores, n)
}

/// Flags scores at or above an absolute threshold.
pub fn flag_at_threshold(scores: &[f64], threshold: f64) -> Vec<bool> {
    scores.iter().map(|&s| s >= threshold).collect()
}

/// Detection rate at the top `fraction`: the share of true anomalies found
/// among the highest-scoring `fraction` of the dataset (the paper's
/// "Detection Rate … measuring the fraction of true anomalies captured in
/// the top k% of anomaly scores").
///
/// # Panics
///
/// Panics if lengths differ or `fraction` is outside `[0, 1]`.
pub fn detection_rate_at(scores: &[f64], labels: &[bool], fraction: f64) -> f64 {
    assert_eq!(scores.len(), labels.len(), "length mismatch");
    let total_anomalies = labels.iter().filter(|&&l| l).count();
    if total_anomalies == 0 {
        return 0.0;
    }
    let flags = flag_top_fraction(scores, fraction);
    let found = flags.iter().zip(labels).filter(|(&f, &l)| f && l).count();
    found as f64 / total_anomalies as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_n_orders_descending_with_stable_ties() {
        let scores = [1.0, 9.0, 9.0, 2.0, 8.0];
        assert_eq!(top_n_indices(&scores, 3), vec![1, 2, 4]);
        assert_eq!(top_n_indices(&scores, 0), Vec::<usize>::new());
        assert_eq!(top_n_indices(&scores, 99).len(), 5);
    }

    #[test]
    fn flag_top_n_marks_correct_samples() {
        let scores = [0.5, 2.0, 1.0];
        assert_eq!(flag_top_n(&scores, 1), vec![false, true, false]);
        assert_eq!(flag_top_n(&scores, 2), vec![false, true, true]);
    }

    #[test]
    fn flag_top_fraction_rounds() {
        let scores = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(
            flag_top_fraction(&scores, 0.5),
            vec![false, false, true, true]
        );
        assert_eq!(flag_top_fraction(&scores, 0.0), vec![false; 4]);
        assert_eq!(flag_top_fraction(&scores, 1.0), vec![true; 4]);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn flag_top_fraction_validates() {
        flag_top_fraction(&[1.0], 1.5);
    }

    #[test]
    fn threshold_flags() {
        assert_eq!(
            flag_at_threshold(&[0.1, 0.9, 0.5], 0.5),
            vec![false, true, true]
        );
    }

    #[test]
    fn detection_rate_basics() {
        // Score ranking: idx0 (9.0), idx2 (7.0), idx1 (5.0), idx3 (1.0);
        // anomalies are ranked 1st and 3rd.
        let scores = [9.0, 5.0, 7.0, 1.0];
        let labels = [true, true, false, false];
        assert!((detection_rate_at(&scores, &labels, 0.25) - 0.5).abs() < 1e-12);
        assert!((detection_rate_at(&scores, &labels, 0.5) - 0.5).abs() < 1e-12);
        assert!((detection_rate_at(&scores, &labels, 0.75) - 1.0).abs() < 1e-12);
        assert!((detection_rate_at(&scores, &labels, 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn detection_rate_no_anomalies_is_zero() {
        assert_eq!(detection_rate_at(&[1.0, 2.0], &[false, false], 0.5), 0.0);
    }
}
